//! # rome — RoMe: Row Granularity Access Memory System for Large Language Models
//!
//! This is the facade crate of the RoMe reproduction. It re-exports the
//! public APIs of the component crates so applications can depend on a single
//! crate:
//!
//! * [`hbm`] — cycle-accurate HBM DRAM device model (organization, timing,
//!   bank FSMs, refresh, generation spec database).
//! * [`engine`] — the generic event-driven simulation engine: the
//!   `MemoryController` trait, the generic multi-channel system, and the
//!   unified single-channel run loops both memory stacks share.
//! * [`mc`] — conventional HBM4 memory controller (FR-FCFS, address mapping,
//!   page policies, refresh scheduling).
//! * [`core`] — the RoMe interface itself: `RD_row`/`WR_row`, virtual banks,
//!   the logic-die command generator, the simplified RoMe memory controller,
//!   C/A pin accounting, and channel expansion.
//! * [`llm`] — LLM workload models (DeepSeek-V3, Grok-1, Llama-3-405B) and
//!   their prefill/decode memory traffic.
//! * [`workload`] — the streaming workload subsystem: lazy `TrafficSource`
//!   request generators (MoE routing skew, prefill/decode interleave,
//!   multi-tenant mixes), the closed-loop host model, and the synthetic
//!   stream builders.
//! * [`sim`] — system-level co-simulation: accelerator model, TPOT, channel
//!   load balance, energy roll-up.
//! * [`server`] — the scenario-serving subsystem: declarative
//!   `ScenarioSpec` batches served by a warm-calibration `ScenarioEngine`
//!   (in process or over the `rome-server` JSONL CLI), with sharded
//!   multi-cube execution.
//! * [`energy`] — DRAM energy and area models.
//! * [`telemetry`] — the unified metrics core: sharded counters, gauges,
//!   log₂-bucket latency histograms, and the named registry every serving
//!   layer records into (see the README's "Observability" section).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory and per-experiment index.

pub use rome_core as core;
pub use rome_energy as energy;
pub use rome_engine as engine;
pub use rome_hbm as hbm;
pub use rome_llm as llm;
pub use rome_mc as mc;
pub use rome_server as server;
pub use rome_sim as sim;
pub use rome_telemetry as telemetry;
pub use rome_workload as workload;
