//! Equivalence of the event-driven and cycle-stepped simulation drivers.
//!
//! The event-driven driver (`run_with_limit`) must execute the exact command
//! schedule of the original cycle-by-cycle loop (`run_with_limit_stepped`) —
//! this suite pins *bit-identical* `SimulationReport`s across workload
//! shapes, queue depths, and time limits, on both the conventional HBM4
//! controller and the RoMe controller. Since the engine extraction both
//! stacks run through the *same* generic loop
//! (`rome::engine::simulate::run_with_limit`), instantiated per controller
//! via the `MemoryController` trait.
//!
//! The conventional comparisons additionally pin the FR-FCFS *ready cache*
//! and the *data-oriented (SoA) scans*: the stepped baseline runs with the
//! cache and the SoA path disabled (the original per-entry scheduler) while
//! the event-driven run keeps both enabled, so any cached bound or packed
//! bitmask test that changed a single scheduling decision would surface as
//! a report mismatch here. A further arm re-runs the event-driven driver
//! with SoA off to pin that the oracle scan is inert under the fast driver
//! too.
//!
//! The multi-channel comparisons likewise pin the *event calendar*: the
//! cycle-stepped baseline system runs with the calendar disabled (the
//! pre-calendar loop that re-polls every controller and scans the whole
//! backlog) while the event-driven system keeps it enabled (cached
//! per-channel wakeups, lazy min-heap, skipped non-due channels), so a
//! wakeup cached one cycle too late — a missed event — would surface as a
//! completion mismatch here.

use rome::core::controller::{RomeController, RomeControllerConfig};
use rome::core::simulate as rome_simulate;
use rome::core::system::{RomeMemorySystem, RomeSystemConfig};
use rome::engine::simulate as engine_simulate;
use rome::mc::controller::{ChannelController, ControllerConfig};
use rome::mc::request::MemoryRequest;
use rome::mc::simulate as mc_simulate;
use rome::mc::system::{HostCompletion, MemorySystem, MemorySystemConfig};
use rome::mc::workload;

/// The workload set exercised on both systems: streaming reads, streaming
/// writes, uniformly random reads, and a read/write mix.
fn workloads(total_bytes: u64, granularity: u64) -> Vec<(&'static str, Vec<MemoryRequest>)> {
    vec![
        (
            "streaming-read",
            workload::streaming_reads(0, total_bytes, granularity),
        ),
        (
            "streaming-write",
            workload::streaming_writes(0, total_bytes, granularity),
        ),
        (
            "random-read",
            workload::random_reads(0, 1 << 24, total_bytes / granularity, granularity, 7),
        ),
        (
            "mixed",
            workload::read_write_mix(0, total_bytes, granularity, 4),
        ),
    ]
}

fn assert_mc_equivalent(
    cfg: ControllerConfig,
    requests: Vec<MemoryRequest>,
    max_ns: u64,
    label: &str,
) {
    // Event-driven with the ready cache and SoA scans (the default
    // configuration)…
    let mut cached_cfg = cfg.clone();
    cached_cfg.ready_cache = true;
    cached_cfg.soa = true;
    let mut event = ChannelController::new(cached_cfg.clone());
    // …against the cycle-stepped loop with both disabled: the original
    // per-entry scheduler, re-evaluating every candidate every tick.
    let mut plain_cfg = cfg;
    plain_cfg.ready_cache = false;
    plain_cfg.soa = false;
    let mut stepped = ChannelController::new(plain_cfg.clone());
    let mut event_plain = ChannelController::new(plain_cfg);
    // …and the event-driven driver with only SoA off (ready cache on): the
    // oracle scan under the fast driver.
    let mut soa_off_cfg = cached_cfg;
    soa_off_cfg.soa = false;
    let mut event_soa_off = ChannelController::new(soa_off_cfg);

    let fast = mc_simulate::run_with_limit(&mut event, requests.clone(), max_ns);
    let slow = mc_simulate::run_with_limit_stepped(&mut stepped, requests.clone(), max_ns);
    assert_eq!(fast, slow, "hbm4 reports diverged on {label}");
    // The cache and SoA scans must also be inert under the event-driven
    // driver alone.
    let fast_plain = mc_simulate::run_with_limit(&mut event_plain, requests.clone(), max_ns);
    assert_eq!(
        fast, fast_plain,
        "ready cache / SoA changed the hbm4 schedule on {label}"
    );
    let fast_soa_off = mc_simulate::run_with_limit(&mut event_soa_off, requests, max_ns);
    assert_eq!(
        fast, fast_soa_off,
        "SoA scan changed the hbm4 schedule on {label}"
    );
}

fn assert_rome_equivalent(
    cfg: RomeControllerConfig,
    requests: Vec<MemoryRequest>,
    max_ns: u64,
    label: &str,
) {
    let mut event = RomeController::new(cfg.clone());
    let mut stepped = RomeController::new(cfg.clone());
    // The stepped baseline also disables the packed hot arrays: the
    // original per-entry ready scan.
    stepped.set_soa(false);
    let mut event_soa_off = RomeController::new(cfg);
    event_soa_off.set_soa(false);
    let fast = rome_simulate::run_with_limit(&mut event, requests.clone(), max_ns);
    let slow = rome_simulate::run_with_limit_stepped(&mut stepped, requests.clone(), max_ns);
    assert_eq!(fast, slow, "rome reports diverged on {label}");
    let fast_soa_off = rome_simulate::run_with_limit(&mut event_soa_off, requests, max_ns);
    assert_eq!(
        fast, fast_soa_off,
        "SoA scan changed the rome schedule on {label}"
    );
}

#[test]
fn hbm4_reports_are_bit_identical_across_workloads() {
    for (label, reqs) in workloads(64 * 1024, 32) {
        assert_mc_equivalent(ControllerConfig::hbm4_baseline(), reqs, 50_000_000, label);
    }
}

#[test]
fn hbm4_reports_are_bit_identical_across_queue_depths() {
    for depth in [1usize, 2, 4, 64] {
        for (label, reqs) in workloads(16 * 1024, 32) {
            assert_mc_equivalent(
                ControllerConfig::hbm4_with_queue_depth(depth),
                reqs,
                50_000_000,
                &format!("{label}@depth{depth}"),
            );
        }
    }
}

#[test]
fn hbm4_reports_are_bit_identical_under_time_limits() {
    // Cutoffs landing mid-run, including ones far past the last event.
    for max_ns in [100u64, 1_000, 10_000, 1_000_000] {
        for (label, reqs) in workloads(32 * 1024, 32) {
            assert_mc_equivalent(
                ControllerConfig::hbm4_baseline(),
                reqs,
                max_ns,
                &format!("{label}@max{max_ns}"),
            );
        }
    }
}

#[test]
fn rome_reports_are_bit_identical_across_workloads() {
    for (label, reqs) in workloads(512 * 1024, 4096) {
        assert_rome_equivalent(
            RomeControllerConfig::paper_default(),
            reqs,
            50_000_000,
            label,
        );
    }
}

#[test]
fn rome_reports_are_bit_identical_across_queue_depths() {
    for depth in [1usize, 2, 8] {
        for (label, reqs) in workloads(256 * 1024, 4096) {
            assert_rome_equivalent(
                RomeControllerConfig::with_queue_depth(depth),
                reqs,
                50_000_000,
                &format!("{label}@depth{depth}"),
            );
        }
    }
}

#[test]
fn rome_reports_are_bit_identical_under_time_limits() {
    for max_ns in [100u64, 5_000, 1_000_000] {
        for (label, reqs) in workloads(256 * 1024, 4096) {
            assert_rome_equivalent(
                RomeControllerConfig::paper_default(),
                reqs,
                max_ns,
                &format!("{label}@max{max_ns}"),
            );
        }
    }
}

#[test]
fn generic_engine_driver_runs_both_stacks() {
    // Both stacks run through the one generic loop: calling
    // rome::engine::simulate directly on either controller type must give
    // the exact report the per-crate re-exports give.
    for (label, reqs) in workloads(16 * 1024, 32) {
        let mut a = ChannelController::new(ControllerConfig::hbm4_baseline());
        let mut b = ChannelController::new(ControllerConfig::hbm4_baseline());
        let via_engine = engine_simulate::run_with_limit(&mut a, reqs.clone(), 50_000_000);
        let via_mc = mc_simulate::run_with_limit(&mut b, reqs, 50_000_000);
        assert_eq!(via_engine, via_mc, "hbm4 engine path diverged on {label}");
    }
    for (label, reqs) in workloads(128 * 1024, 4096) {
        let mut a = RomeController::new(RomeControllerConfig::paper_default());
        let mut b = RomeController::new(RomeControllerConfig::paper_default());
        let via_engine = engine_simulate::run_with_limit(&mut a, reqs.clone(), 50_000_000);
        let via_core = rome_simulate::run_with_limit(&mut b, reqs, 50_000_000);
        assert_eq!(via_engine, via_core, "rome engine path diverged on {label}");
    }
}

#[test]
fn ready_cache_is_inert_on_the_dense_64_entry_queue() {
    // The ready cache's target workload: a 64-entry queue kept saturated, so
    // the scan sees tens of timing-blocked candidates every tick. Stepped
    // (cache off) and event-driven (cache on) must still agree bit for bit.
    for (label, reqs) in workloads(64 * 1024, 32) {
        assert_mc_equivalent(
            ControllerConfig::hbm4_with_queue_depth(64),
            reqs,
            50_000_000,
            &format!("{label}@dense64"),
        );
    }
}

#[test]
fn soa_scan_is_bit_identical_on_the_dense_64_entry_queue() {
    // The SoA path's target workload: a 64-entry queue kept saturated, so
    // every tick scans tens of candidates through the packed arrays and the
    // row-open bitmask. All four arms of assert_mc_equivalent (SoA+cache on,
    // stepped both-off, event both-off, event SoA-off) must agree bit for
    // bit on a larger backlog than the ready-cache case above.
    for (label, reqs) in workloads(128 * 1024, 32) {
        assert_mc_equivalent(
            ControllerConfig::hbm4_with_queue_depth(64),
            reqs,
            50_000_000,
            &format!("{label}@soa-dense64"),
        );
    }
}

#[test]
fn soa_scan_is_bit_identical_on_dense_multi_channel_backlogs() {
    // System-level SoA pinning under saturation: deep per-channel queues and
    // a long single-channel backlog, event calendar on in both arms so the
    // only difference is the scan representation.
    let mut cfg = MemorySystemConfig::hbm4(4);
    cfg.controller.read_queue_capacity = 64;
    cfg.controller.write_queue_capacity = 64;
    let mut soa_on = MemorySystem::new(cfg.clone());
    let mut soa_off = MemorySystem::new(cfg);
    soa_off.set_soa(false);
    for i in 0..512u64 {
        // Stride of one cache line: every channel sees a dense stream.
        let r = if i % 5 == 0 {
            MemoryRequest::write(i + 1, i * 32, 32, 0)
        } else {
            MemoryRequest::read(i + 1, i * 32, 32, 0)
        };
        soa_on.submit(r);
        soa_off.submit(r);
    }

    let drive = |sys: &mut MemorySystem| {
        let mut done: Vec<HostCompletion> = Vec::new();
        let mut now = 0u64;
        while !sys.is_idle() && now < 5_000_000 {
            let issued = sys.tick_into(now, &mut done);
            now = if issued {
                now + 1
            } else {
                sys.next_event_at(now).map_or(now + 1, |t| t.max(now + 1))
            };
        }
        done
    };
    let done_on = drive(&mut soa_on);
    let done_off = drive(&mut soa_off);
    assert_eq!(done_on, done_off);
    assert_eq!(done_on.len(), 512);
    assert_eq!(soa_on.bytes_per_channel(), soa_off.bytes_per_channel());
}

/// Host-request mix used for the multi-channel system tests: several
/// concurrent transfers of both kinds.
fn host_requests() -> Vec<MemoryRequest> {
    vec![
        MemoryRequest::read(1, 0, 48 * 1024, 0),
        MemoryRequest::write(2, 1 << 20, 32 * 1024, 0),
        MemoryRequest::read(3, 2 << 20, 8 * 1024, 0),
        MemoryRequest::write(4, 3 << 20, 4 * 1024, 0),
    ]
}

fn small_mc_system() -> MemorySystem {
    let mut cfg = MemorySystemConfig::hbm4(4);
    // Shallow queues so the backlog actually exerts back-pressure.
    cfg.controller.read_queue_capacity = 2;
    cfg.controller.write_queue_capacity = 2;
    cfg.controller.write_drain_high = 1;
    cfg.controller.write_drain_low = 0;
    MemorySystem::new(cfg)
}

fn small_rome_system() -> RomeMemorySystem {
    let mut cfg = RomeSystemConfig::with_channels(4);
    cfg.controller.queue_capacity = 2;
    RomeMemorySystem::new(cfg)
}

#[test]
fn mc_system_event_stepping_is_bit_identical_to_per_cycle_ticks() {
    // Driving the system through tick_into + next_event_at is the same
    // global scheduler, merely skipping provably idle cycles — completions
    // must match the per-cycle tick() loop exactly. The stepped baseline
    // disables the event calendar (the pre-calendar loop); the event-driven
    // run keeps it on, so stale cached wakeups would surface here.
    let mut stepped = small_mc_system();
    stepped.set_calendar(false);
    stepped.set_soa(false);
    let mut event = small_mc_system();
    for r in host_requests() {
        stepped.submit(r);
        event.submit(r);
    }

    let mut done_stepped = Vec::new();
    let mut now = 0u64;
    while !stepped.is_idle() && now < 5_000_000 {
        done_stepped.extend(stepped.tick(now));
        now += 1;
    }

    let mut done_event: Vec<HostCompletion> = Vec::new();
    let mut now = 0u64;
    while !event.is_idle() && now < 5_000_000 {
        let issued = event.tick_into(now, &mut done_event);
        now = if issued {
            now + 1
        } else {
            event.next_event_at(now).map_or(now + 1, |t| t.max(now + 1))
        };
    }

    assert_eq!(done_event, done_stepped);
    assert_eq!(event.bytes_per_channel(), stepped.bytes_per_channel());
}

#[test]
fn rome_system_event_stepping_is_bit_identical_to_per_cycle_ticks() {
    let mut stepped = small_rome_system();
    stepped.set_calendar(false);
    stepped.set_soa(false);
    let mut event = small_rome_system();
    for r in host_requests() {
        stepped.submit(r);
        event.submit(r);
    }

    let mut done_stepped = Vec::new();
    let mut now = 0u64;
    while !stepped.is_idle() && now < 5_000_000 {
        done_stepped.extend(stepped.tick(now));
        now += 1;
    }

    let mut done_event: Vec<HostCompletion> = Vec::new();
    let mut now = 0u64;
    while !event.is_idle() && now < 5_000_000 {
        let issued = event.tick_into(now, &mut done_event);
        now = if issued {
            now + 1
        } else {
            event.next_event_at(now).map_or(now + 1, |t| t.max(now + 1))
        };
    }

    assert_eq!(done_event, done_stepped);
    assert_eq!(event.bytes_per_channel(), stepped.bytes_per_channel());
}

#[test]
fn long_single_channel_backlog_stays_equivalent() {
    // Every fragment lands on the same channel (stride = channels ×
    // granularity) behind a 2-entry queue, so hundreds of fragments wait in
    // a single channel's backlog — the admission-probe case that used to
    // degenerate to O(backlog) per event step. The calendar run must still
    // match the pre-calendar stepped loop completion for completion.
    let mut stepped = small_mc_system();
    stepped.set_calendar(false);
    stepped.set_soa(false);
    let mut event = small_mc_system();
    for i in 0..256u64 {
        let r = MemoryRequest::read(i + 1, i * 4 * 32, 32, 0);
        stepped.submit(r);
        event.submit(r);
    }

    let mut done_stepped = Vec::new();
    let mut now = 0u64;
    while !stepped.is_idle() && now < 5_000_000 {
        done_stepped.extend(stepped.tick(now));
        now += 1;
    }

    let mut done_event: Vec<HostCompletion> = Vec::new();
    let mut now = 0u64;
    while !event.is_idle() && now < 5_000_000 {
        let issued = event.tick_into(now, &mut done_event);
        now = if issued {
            now + 1
        } else {
            event.next_event_at(now).map_or(now + 1, |t| t.max(now + 1))
        };
    }

    assert_eq!(done_event, done_stepped);
    assert_eq!(event.bytes_per_channel(), stepped.bytes_per_channel());
    // The workload really was single-channel: exactly one channel moved data.
    assert_eq!(
        event.bytes_per_channel().iter().filter(|&&b| b > 0).count(),
        1
    );
}

#[test]
fn mc_system_run_until_idle_preserves_totals_vs_per_cycle_ticks() {
    // run_until_idle runs channels independently (per-kind FIFO backlogs),
    // so its schedule legitimately differs from the tick() path in arrival
    // order; every total must nevertheless agree.
    let mut ticked = small_mc_system();
    ticked.set_calendar(false);
    ticked.set_soa(false);
    let mut parallel = small_mc_system();
    for r in host_requests() {
        ticked.submit(r);
        parallel.submit(r);
    }

    let mut done_ticked = Vec::new();
    let mut now = 0u64;
    while !ticked.is_idle() && now < 5_000_000 {
        done_ticked.extend(ticked.tick(now));
        now += 1;
    }
    let (done_parallel, stop) = parallel.run_until_idle(5_000_000);

    assert!(stop > 0);
    assert_eq!(done_parallel.len(), done_ticked.len());
    let mut ids_a: Vec<u64> = done_parallel.iter().map(|c| c.id.0).collect();
    let mut ids_b: Vec<u64> = done_ticked.iter().map(|c| c.id.0).collect();
    ids_a.sort_unstable();
    ids_b.sort_unstable();
    assert_eq!(ids_a, ids_b);
    assert_eq!(parallel.bytes_per_channel(), ticked.bytes_per_channel());
    assert_eq!(parallel.stats().bytes_read, ticked.stats().bytes_read);
    assert_eq!(parallel.stats().bytes_written, ticked.stats().bytes_written);
}

#[test]
fn rome_system_run_until_idle_preserves_totals_vs_per_cycle_ticks() {
    let mut ticked = small_rome_system();
    ticked.set_calendar(false);
    ticked.set_soa(false);
    let mut parallel = small_rome_system();
    for r in host_requests() {
        ticked.submit(r);
        parallel.submit(r);
    }

    let mut done_ticked = Vec::new();
    let mut now = 0u64;
    while !ticked.is_idle() && now < 5_000_000 {
        done_ticked.extend(ticked.tick(now));
        now += 1;
    }
    let (done_parallel, stop) = parallel.run_until_idle(5_000_000);

    assert!(stop > 0);
    assert_eq!(done_parallel.len(), done_ticked.len());
    let mut ids_a: Vec<u64> = done_parallel.iter().map(|c| c.id.0).collect();
    let mut ids_b: Vec<u64> = done_ticked.iter().map(|c| c.id.0).collect();
    ids_a.sort_unstable();
    ids_b.sort_unstable();
    assert_eq!(ids_a, ids_b);
    assert_eq!(parallel.bytes_per_channel(), ticked.bytes_per_channel());
    assert_eq!(parallel.stats().bytes_read, ticked.stats().bytes_read);
    assert_eq!(parallel.stats().bytes_written, ticked.stats().bytes_written);
}

#[test]
fn refresh_heavy_idle_windows_stay_equivalent() {
    // A tiny burst of traffic followed by a long idle window forces both
    // drivers through many refresh cycles; the event-driven driver must jump
    // between them without perturbing the schedule.
    let reqs = workload::streaming_reads(0, 2 * 1024, 32);
    assert_mc_equivalent(
        ControllerConfig::hbm4_baseline(),
        reqs,
        2_000_000,
        "refresh-idle",
    );
    let reqs = workload::streaming_reads(0, 16 * 4096, 4096);
    assert_rome_equivalent(
        RomeControllerConfig::paper_default(),
        reqs,
        2_000_000,
        "refresh-idle",
    );
}
