//! Cross-crate integration tests: the full path from LLM workload through the
//! memory-system models to TPOT, LBR, and energy.

use rome::core::controller::{RomeController, RomeControllerConfig};
use rome::core::system::{RomeMemorySystem, RomeSystemConfig};
use rome::energy::dram_energy::EnergyParams;
use rome::llm::{decode_step, ModelConfig, Parallelism};
use rome::mc::request::MemoryRequest;
use rome::mc::system::{MemorySystem, MemorySystemConfig};
use rome::sim::{
    channel_load_balance, decode_energy, decode_tpot, prefill_time, AcceleratorSpec, MemoryModel,
};

#[test]
fn headline_result_rome_beats_hbm4_in_decode_but_not_prefill() {
    let accel = AcceleratorSpec::paper_default();
    let hbm4 = MemoryModel::hbm4_baseline(&accel);
    let rome = MemoryModel::rome(&accel);
    for model in ModelConfig::paper_models() {
        let d_hbm4 = decode_tpot(&model, 128, 8192, &accel, &hbm4);
        let d_rome = decode_tpot(&model, 128, 8192, &accel, &rome);
        assert!(d_rome.tpot_ms < d_hbm4.tpot_ms, "{}", model.name);
        let p_hbm4 = prefill_time(&model, 16, 8192, &accel, &hbm4);
        let p_rome = prefill_time(&model, 16, 8192, &accel, &rome);
        let prefill_diff = (p_hbm4.tpot_ms - p_rome.tpot_ms).abs() / p_hbm4.tpot_ms;
        assert!(
            prefill_diff < 0.02,
            "{}: prefill difference {prefill_diff}",
            model.name
        );
    }
}

#[test]
fn rome_speedup_is_bounded_by_the_bandwidth_gain_plus_utilization_delta() {
    // RoMe's advantage comes from +12.5 % channels and a cleaner schedule;
    // the decode speedup can therefore never exceed ~25 % in this model.
    let accel = AcceleratorSpec::paper_default();
    let hbm4 = MemoryModel::hbm4_baseline(&accel);
    let rome = MemoryModel::rome(&accel);
    for model in ModelConfig::paper_models() {
        for batch in [8u64, 64, 512] {
            if batch > model.max_batch_for_capacity(8 * 256 * (1 << 30), 8192) {
                continue;
            }
            let h = decode_tpot(&model, batch, 8192, &accel, &hbm4).tpot_ms;
            let r = decode_tpot(&model, batch, 8192, &accel, &rome).tpot_ms;
            let speedup = h / r;
            assert!(
                speedup > 1.0 && speedup < 1.30,
                "{} batch {batch}: speedup {speedup}",
                model.name
            );
        }
    }
}

#[test]
fn whole_cube_memory_systems_complete_the_same_transfer() {
    // A 2 MiB transfer through a 4-channel slice of each memory system moves
    // the same payload; RoMe finishes it with two orders of magnitude fewer
    // interface commands.
    let bytes = 2 * 1024 * 1024u64;
    let mut conventional = MemorySystem::new(MemorySystemConfig::hbm4(4));
    conventional.submit(MemoryRequest::read(1, 0, bytes, 0));
    let (done, t_conv) = conventional.run_until_idle(10_000_000);
    assert_eq!(done.len(), 1);
    assert_eq!(conventional.stats().bytes_read, bytes);

    let mut rome_sys = RomeMemorySystem::new(RomeSystemConfig::with_channels(4));
    rome_sys.submit(MemoryRequest::read(1, 0, bytes, 0));
    let (done, t_rome) = rome_sys.run_until_idle(10_000_000);
    assert_eq!(done.len(), 1);
    assert_eq!(rome_sys.stats().bytes_read, bytes);

    // Both finish in a comparable time (same peak bandwidth per channel)…
    assert!(
        t_rome as f64 <= t_conv as f64 * 1.2,
        "RoMe {t_rome} vs conventional {t_conv}"
    );
    // …but RoMe issues one interface command per 4 KiB instead of per 32 B.
    let conv_cmds =
        conventional.stats().dram.col_ca_commands + conventional.stats().dram.row_ca_commands;
    let rome_cmds = rome_sys.stats().row_commands_issued();
    assert!(conv_cmds > 50 * rome_cmds, "{conv_cmds} vs {rome_cmds}");
}

#[test]
fn decode_traffic_drives_energy_and_lbr_consistently() {
    let accel = AcceleratorSpec::paper_default();
    let hbm4 = MemoryModel::hbm4_baseline(&accel);
    let rome = MemoryModel::rome(&accel);
    let model = ModelConfig::deepseek_v3();
    let par = Parallelism::paper_decode(&model);
    let step = decode_step(&model, &par, 256, 8192);

    let lbr = channel_load_balance(&step, rome.channels, rome.access_granularity);
    assert!(lbr.attention > 0.8 && lbr.attention <= 1.0);
    assert!(lbr.ffn > 0.8 && lbr.ffn <= 1.0);

    let cmp = decode_energy(&model, 256, 8192, &hbm4, &rome, &EnergyParams::hbm4());
    assert!(cmp.rome_counts.data_bytes >= step.total_bytes());
    assert!(cmp.act_energy_ratio() < 1.0);
    assert!(cmp.total_energy_ratio() < 1.0);
}

#[test]
fn rome_channel_controller_saturates_with_the_table_iv_queue_depth() {
    // Table IV: two outstanding row requests saturate a RoMe channel.
    let mut ctrl = RomeController::new(RomeControllerConfig::with_queue_depth(2));
    let report = rome::core::simulate::run_to_completion(
        &mut ctrl,
        rome::mc::workload::streaming_reads(0, 4 * 1024 * 1024, 4096),
    );
    assert!(
        report.achieved_bandwidth_gbps > 0.9 * 64.0,
        "{}",
        report.achieved_bandwidth_gbps
    );
}

#[test]
fn facade_crate_re_exports_every_component() {
    // Compile-time check that the `rome` facade exposes all six crates.
    let _ = rome::hbm::Organization::hbm4();
    let _ = rome::mc::ControllerConfig::hbm4_baseline();
    let _ = rome::core::RomeControllerConfig::paper_default();
    let _ = rome::llm::ModelConfig::grok_1();
    let _ = rome::sim::AcceleratorSpec::paper_default();
    let _ = rome::energy::AreaModel::paper_default();
}
