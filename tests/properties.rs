//! Property-based tests on the core invariants of the memory-system models.

use proptest::prelude::*;

use rome::core::generator::CommandGenerator;
use rome::core::row_command::{RowCommand, VbaAddress};
use rome::core::timing::RomeTimingParams;
use rome::core::vba::VbaConfig;
use rome::hbm::channel::HbmChannel;
use rome::hbm::command::CommandKind;
use rome::hbm::constraints::ConstraintEngine;
use rome::hbm::{BankAddress, Organization, PhysicalAddress, TimingParams};
use rome::mc::mapping::{AddressMapping, MappingScheme};
use rome::mc::request::MemoryRequest;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every address mapping candidate is a bijection on chunk-aligned
    /// addresses within the system capacity.
    #[test]
    fn address_mappings_round_trip(addr in 0u64..(1 << 34), candidate in 0usize..4) {
        let org = Organization::hbm4();
        let mappings = MappingScheme::sweep_candidates(org, 32);
        let m = &mappings[candidate % mappings.len()];
        let aligned = addr / 32 * 32;
        let dram = m.map(PhysicalAddress::new(aligned));
        prop_assert_eq!(m.unmap(dram).raw(), aligned);
        prop_assert!(dram.channel < 32);
        prop_assert!((dram.row as u64) < org.rows_per_bank as u64);
    }

    /// The RoMe mapping round-trips at row granularity too.
    #[test]
    fn rome_mapping_round_trips(chunk in 0u64..(1 << 22)) {
        let org = Organization::hbm4();
        let m = MappingScheme::rome_row_interleaved(org, 36, 4096);
        let addr = chunk * 4096;
        let dram = m.map(PhysicalAddress::new(addr));
        prop_assert_eq!(m.unmap(dram).raw(), addr);
    }

    /// Request fragmentation preserves total size, ordering, and alignment.
    #[test]
    fn fragmentation_conserves_bytes(bytes in 1u64..1_000_000, granularity in prop::sample::select(vec![32u64, 64, 256, 4096])) {
        let req = MemoryRequest::read(1, 0x4000_0000, bytes, 0);
        let frags = req.fragments(granularity);
        let total: u64 = frags.iter().map(|f| f.bytes).sum();
        prop_assert_eq!(total, bytes);
        prop_assert!(frags.iter().all(|f| f.bytes <= granularity));
        for (i, f) in frags.iter().enumerate() {
            prop_assert_eq!(f.address.raw(), req.address.raw() + i as u64 * granularity);
        }
    }

    /// The timing-constraint engine never allows a command earlier after
    /// recording more history (earliest-issue times are monotone).
    #[test]
    fn constraint_times_are_monotone(
        cmds in prop::collection::vec((0u8..2, 0u8..4, 0u8..4, 0u8..4), 1..20)
    ) {
        let org = Organization::hbm4();
        let timing = TimingParams::hbm4();
        let mut engine = ConstraintEngine::new(org, timing);
        let probe = BankAddress::new(0, 0, 0, 0);
        let mut now = 0;
        let mut last_act_earliest = 0;
        for (pc, sid, bg, ba) in cmds {
            let bank = BankAddress::new(pc, sid, bg, ba);
            let earliest = engine.earliest(CommandKind::Act, bank, now);
            engine.record(CommandKind::Act, bank, earliest, 1);
            now = earliest;
            let probe_earliest = engine.earliest(CommandKind::Act, probe, 0);
            prop_assert!(probe_earliest >= last_act_earliest,
                "earliest ACT time for the probe bank went backwards");
            last_act_earliest = probe_earliest;
        }
    }

    /// Every command sequence the RoMe command generator emits is legal under
    /// the full HBM4 timing model, for any VBA and row.
    #[test]
    fn command_generator_expansions_are_always_legal(sid in 0u8..4, vba in 0u8..8, row in 0u32..8192, write in any::<bool>()) {
        let org = Organization::hbm4();
        let timing = TimingParams::hbm4();
        let generator = CommandGenerator::new(org, timing, VbaConfig::rome_default());
        let mut channel = HbmChannel::new(org, timing);
        let target = VbaAddress::new(0, sid, vba);
        let command = if write { RowCommand::wr_row(target, row) } else { RowCommand::rd_row(target, row) };
        for s in generator.expand(command) {
            prop_assert!(channel.can_issue(&s.command, s.offset),
                "{:?} at {} violates timing", s.command, s.offset);
            channel.issue(s.command, s.offset).unwrap();
        }
        let bytes = channel.counters().bytes_read + channel.counters().bytes_written;
        prop_assert_eq!(bytes, 4096);
    }

    /// Two consecutive row commands separated by the Table III spacing are
    /// legal for any pair of distinct VBAs in the same rank.
    #[test]
    fn table_iii_spacing_is_sufficient(vba_a in 0u8..8, vba_b in 0u8..8, row in 0u32..4096) {
        prop_assume!(vba_a != vba_b);
        let org = Organization::hbm4();
        let timing = TimingParams::hbm4();
        let generator = CommandGenerator::new(org, timing, VbaConfig::rome_default());
        let rome_timing = RomeTimingParams::paper_table_v();
        let mut channel = HbmChannel::new(org, timing);
        for s in generator.expand(RowCommand::rd_row(VbaAddress::new(0, 0, vba_a), row)) {
            channel.issue(s.command, s.offset).unwrap();
        }
        let offset = u64::from(rome_timing.t_r2r_s);
        for s in generator.expand(RowCommand::rd_row(VbaAddress::new(0, 0, vba_b), row)) {
            prop_assert!(channel.can_issue(&s.command, offset + s.offset));
            channel.issue(s.command, offset + s.offset).unwrap();
        }
    }

    /// The VBA accounting is consistent for every design-space point: row
    /// bytes × VBAs per channel covers the channel's banks × row size.
    #[test]
    fn vba_design_space_conserves_capacity(index in 0usize..6) {
        let org = Organization::hbm4();
        let cfg = VbaConfig::design_space()[index];
        let per_channel_row_bytes = cfg.effective_row_bytes(&org) as u128 * cfg.vbas_per_channel(&org) as u128;
        let physical = org.row_bytes as u128 * org.banks_per_channel() as u128;
        prop_assert_eq!(per_channel_row_bytes, physical);
    }
}
