//! The deterministic fault-injection harness: proves the hardened serving
//! path's acceptance properties end to end.
//!
//! * **Isolation** — an injected panic in scenario `k` of an `N`-scenario
//!   batch yields `N` results with exactly one structured error at `k`, the
//!   `N−1` healthy payloads bit-identical to an uninjected run, and the warm
//!   engine still serves the next batch.
//! * **Abort semantics** — a budget-bounded runaway spec returns a partial
//!   report tagged with the tripped [`AbortReason`] instead of hanging, and
//!   a lying `TrafficSource` aborts as `stalled_source` rather than
//!   spinning.
//! * **Zero-cost when unarmed** — fault-free runs with the harness compiled
//!   in are bit-identical to runs without it: unlimited budgets delegate
//!   through the same loop bodies, and a `SlowdownUs` fault perturbs only
//!   wall-clock time, never simulated state.

use rome::engine::simulate::{run_with_budget, run_with_limit, run_with_source_budgeted};
use rome::engine::{
    AbortReason, EngineFault, HostCompletion, MemoryRequest, RunBudget, TrafficSource,
};
use rome::hbm::Cycle;
use rome::mc::controller::{ChannelController, ControllerConfig};
use rome::server::{
    parse_batch, serve_jsonl, EngineLimits, ErrorCode, FaultPlan, ResultPayload, ScenarioEngine,
    ScenarioSpec,
};

/// A cheap five-scenario batch covering every execution shape: analytic
/// sweep, analytic TPOT, inline queue-depth loop, sharded multi-cube run,
/// and a parallel closed-loop window sweep.
const BATCH: &str = concat!(
    "{\"scenario\":\"sweep\",\"name\":\"s0\",\"kind\":\"figure13\",\"seq_len\":4096}\n",
    "{\"scenario\":\"tpot\",\"name\":\"s1\",\"model\":\"grok-1\",\"batch\":8,\"seq_len\":4096}\n",
    "{\"scenario\":\"queue_depth\",\"name\":\"s2\",\"system\":\"hbm4\",\"depths\":[4],",
    "\"total_bytes\":65536,\"granularity\":4096}\n",
    "{\"scenario\":\"multi_cube\",\"name\":\"s3\",\"system\":\"rome\",\"cubes\":2,",
    "\"channels_per_cube\":2,\"bytes_per_cube\":65536,\"max_ns\":5000000}\n",
    "{\"scenario\":\"closed_loop\",\"name\":\"s4\",\"system\":\"rome\",\"channels\":2,",
    "\"windows\":[2],\"max_ns\":1000000,\"workload\":{\"type\":\"burst\",\"base\":0,",
    "\"span\":1048576,\"bytes_per_burst\":32768,\"granularity\":4096,\"period_ns\":0,",
    "\"bursts\":2,\"write_period\":0}}\n",
);

fn batch_specs() -> Vec<ScenarioSpec> {
    parse_batch(BATCH).expect("harness batch parses")
}

/// A runaway spec: 65536 streaming requests against one channel, far more
/// events than any of the budgets used below allow.
const RUNAWAY: &str = concat!(
    "{\"scenario\":\"queue_depth\",\"name\":\"runaway\",\"system\":\"hbm4\",\"depths\":[4],",
    "\"total_bytes\":4194304,\"granularity\":64}\n",
);

#[test]
fn injected_panic_in_scenario_k_is_isolated_from_its_batch() {
    let specs = batch_specs();
    let mut engine = ScenarioEngine::new();
    let baseline = engine.serve_batch(&specs);
    for r in &baseline {
        assert!(r.is_ok(), "baseline batch is healthy: {r:?}");
    }

    // Panic in scenario 2 (the inline queue-depth loop) at event 10.
    let k = 2;
    engine.set_fault_plan(Some(
        FaultPlan::new(1).with_fault(k, EngineFault::panic_at(10)),
    ));
    let injected = engine.serve_batch(&specs);
    assert_eq!(injected.len(), specs.len(), "N scenarios, N results");
    let err = injected[k].as_ref().expect_err("scenario k fails");
    assert_eq!(err.code, ErrorCode::Panicked);
    assert_eq!(err.scenario_index, k);
    assert!(!err.detail.is_empty());
    for (i, (inj, base)) in injected.iter().zip(&baseline).enumerate() {
        if i != k {
            assert_eq!(
                inj.as_ref().expect("healthy sibling"),
                base.as_ref().expect("baseline"),
                "scenario {i} must be bit-identical to the uninjected run"
            );
        }
    }

    // The warm engine survives the panic: with the plan cleared, the same
    // batch serves bit-identically to the baseline again.
    engine.set_fault_plan(None);
    let after = engine.serve_batch(&specs);
    for (a, b) in after.iter().zip(&baseline) {
        assert_eq!(
            a.as_ref().expect("still healthy"),
            b.as_ref().expect("baseline")
        );
    }
    assert_eq!(engine.in_flight(), 0, "no leaked admission slots");
}

#[test]
fn entry_faults_reach_analytic_loop_free_scenarios() {
    let specs = batch_specs();
    let mut engine = ScenarioEngine::new();
    // Scenario 1 is the analytic TPOT path: no run loop, so only an
    // entry fault (event 0) can fire there.
    engine.set_fault_plan(Some(
        FaultPlan::new(2).with_fault(1, EngineFault::panic_at(0)),
    ));
    let results = engine.serve_batch(&specs);
    let err = results[1].as_ref().expect_err("entry fault fires");
    assert_eq!(err.code, ErrorCode::Panicked);
    assert!(results[0].is_ok() && results[2].is_ok());
}

#[test]
fn event_budget_bounds_a_runaway_scenario() {
    let specs = parse_batch(RUNAWAY).expect("runaway batch parses");
    let limits = EngineLimits {
        budget: RunBudget::default().with_max_events(1_000),
        ..EngineLimits::default()
    };
    let engine = ScenarioEngine::with_limits(limits);
    let result = engine
        .serve_batch(&specs)
        .remove(0)
        .expect("partial result");
    let ResultPayload::QueueDepth(rows) = &result.payload else {
        panic!("wrong payload");
    };
    let report = &rows[0].report;
    assert_eq!(report.aborted, Some(AbortReason::EventBudget));
    assert!(
        report.requests_completed < 65_536,
        "partial: {} of 65536",
        report.requests_completed
    );
}

#[test]
fn event_budget_tags_a_bounded_multi_cube_run() {
    let specs = batch_specs();
    let limits = EngineLimits {
        budget: RunBudget::default().with_max_events(8),
        ..EngineLimits::default()
    };
    let engine = ScenarioEngine::with_limits(limits);
    let result = engine
        .serve_batch(&specs)
        .remove(3)
        .expect("partial result");
    let ResultPayload::MultiCube(report) = &result.payload else {
        panic!("wrong payload");
    };
    // Every channel of every cube metered out; merge propagates the tag.
    assert_eq!(report.per_cube[0].aborted, Some(AbortReason::EventBudget));
    assert_eq!(report.merged.aborted, Some(AbortReason::EventBudget));
}

#[test]
fn sim_time_budget_aborts_within_budget() {
    let reqs = rome::mc::workload::streaming_reads(0, 1 << 20, 64);
    let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
    let full = run_with_limit(&mut ctrl, reqs.clone(), 50_000_000);
    assert_eq!(full.aborted, None);

    let budget = RunBudget::default().with_max_sim_ns(1_000);
    let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
    let partial = run_with_budget(&mut ctrl, reqs, 50_000_000, &budget);
    assert_eq!(partial.aborted, Some(AbortReason::SimTimeBudget));
    assert!(partial.requests_completed < full.requests_completed);
    assert!(
        partial.finish_time <= 2_000,
        "aborted near the budget, not at max_ns: {}",
        partial.finish_time
    );
}

#[test]
fn exhaust_fault_forces_the_injected_fault_abort() {
    let specs = batch_specs();
    let mut engine = ScenarioEngine::new();
    engine.set_fault_plan(Some(
        FaultPlan::new(3).with_fault(2, EngineFault::exhaust_at(10)),
    ));
    let results = engine.serve_batch(&specs);
    let result = results[2].as_ref().expect("exhaustion is not an error");
    let ResultPayload::QueueDepth(rows) = &result.payload else {
        panic!("wrong payload");
    };
    assert_eq!(rows[0].report.aborted, Some(AbortReason::InjectedFault));
}

#[test]
fn slowdown_fault_never_perturbs_simulated_state() {
    let specs = batch_specs();
    let mut engine = ScenarioEngine::new();
    let baseline = engine.serve_batch(&specs);
    engine.set_fault_plan(Some(
        FaultPlan::new(4).with_fault(2, EngineFault::slowdown_at(10, 100)),
    ));
    let slowed = engine.serve_batch(&specs);
    for (s, b) in slowed.iter().zip(&baseline) {
        assert_eq!(
            s.as_ref().expect("slowdown is invisible"),
            b.as_ref().expect("baseline"),
            "a slowdown fault costs wall-clock time only"
        );
    }
}

/// A source that violates the `TrafficSource` contract in the worst
/// possible way: it forever promises an arrival at cycle 1 that never
/// becomes pullable and never reports exhaustion.
struct LyingSource;

impl TrafficSource for LyingSource {
    fn next_arrival_at(&self) -> Option<Cycle> {
        Some(1)
    }

    fn pull_into(&mut self, _now: Cycle, _out: &mut Vec<MemoryRequest>) {}

    fn on_completion(&mut self, _completion: &HostCompletion) {}

    fn is_exhausted(&self) -> bool {
        false
    }
}

/// A source that claims more work will come (`is_exhausted` false) while
/// never scheduling an arrival — the "waiting on a completion that can
/// never happen" deadlock shape.
struct DeadlockedSource;

impl TrafficSource for DeadlockedSource {
    fn next_arrival_at(&self) -> Option<Cycle> {
        None
    }

    fn pull_into(&mut self, _now: Cycle, _out: &mut Vec<MemoryRequest>) {}

    fn is_exhausted(&self) -> bool {
        false
    }
}

#[test]
fn stalled_sources_abort_instead_of_hanging() {
    // This test finishing at all is the point: a lying source used to spin
    // the driver until max_ns (here a simulated second) without making
    // progress. The stall detector turns both shapes into a tagged abort.
    let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
    let report = run_with_source_budgeted(
        &mut ctrl,
        &mut LyingSource,
        1_000_000_000,
        &RunBudget::unlimited(),
    );
    assert_eq!(report.aborted, Some(AbortReason::StalledSource));
    assert_eq!(report.requests_completed, 0);

    let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
    let report = run_with_source_budgeted(
        &mut ctrl,
        &mut DeadlockedSource,
        1_000_000_000,
        &RunBudget::unlimited(),
    );
    assert_eq!(report.aborted, Some(AbortReason::StalledSource));
}

#[test]
fn injected_faults_show_up_as_exact_counter_deltas() {
    // The telemetry registry must agree with the structured results: k
    // injected panics leave `serve.errors.panicked` at exactly k, with
    // every healthy sibling counted under `serve.ok` and every admitted
    // spec under `admission.accepted`.
    let specs = batch_specs();
    let mut engine = ScenarioEngine::new();
    engine.set_fault_plan(Some(
        FaultPlan::new(1).with_fault(2, EngineFault::panic_at(10)),
    ));
    let k = 3;
    for _ in 0..k {
        engine.serve_batch(&specs);
    }
    let registry = engine.registry();
    assert_eq!(registry.counter("serve.errors.panicked").get(), k);
    assert_eq!(
        registry.counter("serve.ok").get(),
        k * (specs.len() as u64 - 1)
    );
    assert_eq!(
        registry.counter("admission.accepted").get(),
        k * specs.len() as u64
    );
    assert_eq!(registry.counter("admission.rejected_transient").get(), 0);
    // The loop scenarios ran under sinking budgets: run-level engine
    // counters accumulated.
    assert!(registry.counter("engine.runs").get() > 0);
    assert!(registry.counter("engine.events").get() > 0);
    // The injected panics interrupt the queue-depth rows before their
    // reports fold in, but the healthy loop scenarios still feed the
    // aggregate sim-latency histogram.
    assert!(registry.histogram("engine.read_latency_ns").count() > 0);
    // Calibration cache classification: the first consult is a miss, every
    // repeat is a hit.
    let calib = parse_batch("{\"scenario\":\"calibration\",\"name\":\"c\",\"system\":\"hbm4\"}\n")
        .expect("calibration spec parses");
    engine.set_fault_plan(None);
    engine.serve_batch(&calib);
    engine.serve_batch(&calib);
    let (hits, misses) = engine.calibration().stats();
    assert_eq!(misses, 1, "first consult calibrates cold");
    assert_eq!(hits, 1, "repeat consult hits the warm cache");
}

#[test]
fn drained_batches_are_counted_per_spec() {
    let specs = batch_specs();
    let engine = ScenarioEngine::new();
    engine.start_drain(std::time::Duration::from_millis(1));
    let results = engine.serve_batch(&specs);
    assert!(results.iter().all(|r| r.is_err()));
    assert_eq!(
        engine
            .registry()
            .counter("admission.rejected_draining")
            .get(),
        specs.len() as u64
    );
    assert_eq!(engine.registry().counter("admission.accepted").get(), 0);
}

#[test]
fn fault_free_runs_are_bit_identical_with_the_harness_compiled_in() {
    // Engine level: the budgeted entry point with an unlimited budget must
    // be bit-identical to the legacy one (same loop body, no tag).
    let reqs = rome::mc::workload::streaming_reads(0, 1 << 18, 256);
    let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
    let legacy = run_with_limit(&mut ctrl, reqs.clone(), 50_000_000);
    let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
    let budgeted = run_with_budget(&mut ctrl, reqs, 50_000_000, &RunBudget::unlimited());
    assert_eq!(legacy, budgeted);
    assert_eq!(budgeted.aborted, None);

    // Serving level: a default engine and one with every limit explicitly
    // set to its permissive default render byte-identical JSONL.
    let default_engine = ScenarioEngine::new();
    let explicit_engine = ScenarioEngine::with_limits(EngineLimits::default());
    let a = serve_jsonl(&default_engine, BATCH).expect("batch serves");
    let b = serve_jsonl(&explicit_engine, BATCH).expect("batch serves");
    assert_eq!(a, b);
    assert!(
        !a.contains("\"aborted\""),
        "fault-free output carries no abort tags"
    );
}
