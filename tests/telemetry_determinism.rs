//! The telemetry determinism contract, pinned end to end.
//!
//! Simulated-time metrics are *derived observations*: recording a
//! completed request's latency never feeds back into the simulation. Two
//! consequences, both pinned here:
//!
//! * **Run-to-run bit-identity with sampling on** — same input, same
//!   report, histogram included.
//! * **Sampling off changes only the histograms** — every other report
//!   field, and every other output byte of the serving path, is identical
//!   with sampling on or off. The JSON encoding makes this literal: the
//!   `read_latency` object is the *only* thing that appears or disappears.
//!
//! This file owns the process-global [`rome::telemetry::set_sim_sampling`]
//! switch. It lives in its own integration-test binary (its own process)
//! so flipping the switch cannot race the other suites, and it keeps all
//! flipping inside one `#[test]` so its own tests cannot race either.

use rome::engine::simulate::run_with_budget;
use rome::engine::RunBudget;
use rome::mc::controller::{ChannelController, ControllerConfig};
use rome::server::json;
use rome::server::{serve_jsonl, Json, ScenarioEngine};
use rome::telemetry::{set_sim_sampling, LatencyHistogram};

/// Scenarios whose results carry unified reports (the shapes that gained
/// the `read_latency` percentile object).
const BATCH: &str = concat!(
    "{\"scenario\":\"queue_depth\",\"name\":\"q\",\"system\":\"hbm4\",\"depths\":[4],",
    "\"total_bytes\":65536,\"granularity\":4096}\n",
    "{\"scenario\":\"multi_cube\",\"name\":\"m\",\"system\":\"rome\",\"cubes\":2,",
    "\"channels_per_cube\":2,\"bytes_per_cube\":65536,\"max_ns\":5000000}\n",
);

/// Remove every `read_latency` member, recursively — the only delta the
/// sampling switch is allowed to produce in rendered output.
fn strip_read_latency(value: Json) -> Json {
    match value {
        Json::Obj(members) => Json::Obj(
            members
                .into_iter()
                .filter(|(k, _)| k != "read_latency")
                .map(|(k, v)| (k, strip_read_latency(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(strip_read_latency).collect()),
        other => other,
    }
}

#[test]
fn sampling_toggle_changes_only_the_latency_histograms() {
    // --- Engine level: the raw unified report. ---
    let reqs = rome::mc::workload::streaming_reads(0, 1 << 18, 256);
    let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
    let on_a = run_with_budget(&mut ctrl, reqs.clone(), 50_000_000, &RunBudget::unlimited());
    let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
    let on_b = run_with_budget(&mut ctrl, reqs.clone(), 50_000_000, &RunBudget::unlimited());
    // Run-to-run bit-identity, histogram included (PartialEq covers it).
    assert_eq!(on_a, on_b);
    assert!(!on_a.read_latency.is_empty());
    // A pure-read stream: one histogram sample per completed request, and
    // the histogram's mean agrees with the report's (up to f64 rounding —
    // both are sums of the same latencies).
    assert_eq!(on_a.read_latency.count(), on_a.requests_completed);
    assert!((on_a.read_latency.mean() - on_a.mean_read_latency).abs() < 1e-6);

    set_sim_sampling(false);
    let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
    let off = run_with_budget(&mut ctrl, reqs, 50_000_000, &RunBudget::unlimited());
    set_sim_sampling(true);
    assert!(off.read_latency.is_empty(), "sampling off records nothing");
    let mut on_stripped = on_a.clone();
    on_stripped.read_latency = LatencyHistogram::new();
    assert_eq!(
        on_stripped, off,
        "sampling must not perturb any other report field"
    );

    // --- Serving level: rendered JSONL bytes. ---
    let engine = ScenarioEngine::new();
    let on_out = serve_jsonl(&engine, BATCH).expect("batch serves");
    let on_again = serve_jsonl(&engine, BATCH).expect("batch serves");
    assert_eq!(on_out, on_again, "sampled output is deterministic");
    assert!(on_out.contains("\"read_latency\":{\"count\":"));

    set_sim_sampling(false);
    let off_out = serve_jsonl(&engine, BATCH).expect("batch serves");
    set_sim_sampling(true);
    assert!(!off_out.contains("\"read_latency\""));
    // Stripping the read_latency objects from the sampled output must
    // yield the unsampled output byte for byte — nothing else may move.
    let stripped: String = on_out
        .lines()
        .map(|line| {
            let value = json::parse(line).expect("output line parses");
            strip_read_latency(value).emit() + "\n"
        })
        .collect();
    assert_eq!(stripped, off_out);
}
