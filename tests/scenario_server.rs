//! Regression suite of the scenario-serving subsystem.
//!
//! Pins the two serving contracts:
//!
//! 1. **Front-end byte identity** — a JSONL batch through the CLI path
//!    (`serve_jsonl`: parse → serve → render) and the same specs through
//!    the in-process `serve_batch` produce byte-identical JSONL, run after
//!    run (the output is a deterministic function of the input bytes).
//! 2. **Direct-call bit identity** — every served payload is bit-for-bit
//!    the result of calling the pre-existing direct path yourself:
//!    `ScenarioSet::run_nominal`, `closed_loop_sweep`, `Calibrator`,
//!    `decode_tpot`, and the §V-A queue-depth runs.

use rome::server::{
    render_results, serve_jsonl, ResultPayload, ScenarioEngine, ScenarioSpec, WorkloadSpec,
};
use rome::sim::serving::closed_loop_sweep;
use rome::sim::sweep::{Scenario, SweepKind};
use rome::sim::{AcceleratorSpec, Calibrator, MemoryModel, MemorySystemKind, ScenarioSet};
use rome::workload::{MoeRoutingConfig, MoeRoutingSource};

fn moe_cfg() -> MoeRoutingConfig {
    MoeRoutingConfig {
        experts: 8,
        top_k: 2,
        expert_bytes: 4096,
        layers: 2,
        tokens_per_step: 8,
        steps: 2,
        step_period_ns: 0,
        granularity: 4096,
        base: 0,
        zipf_exponent: 1.0,
        seed: 11,
    }
}

/// The acceptance batch: at least one sweep, one closed-loop workload
/// scenario, and one calibration point (plus the other variants).
fn acceptance_batch() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::Sweep {
            name: "fig13-4k".into(),
            kind: SweepKind::Figure13,
            seq_len: 4096,
            calibrated: false,
        },
        ScenarioSpec::ClosedLoop {
            name: "moe-windows".into(),
            system: MemorySystemKind::Hbm4,
            channels: 4,
            windows: vec![1, 8],
            max_ns: 10_000_000,
            workload: WorkloadSpec::Moe(moe_cfg()),
        },
        ScenarioSpec::Calibration {
            name: "cal-hbm4".into(),
            system: MemorySystemKind::Hbm4,
        },
        ScenarioSpec::QueueDepth {
            name: "qd-rome".into(),
            system: MemorySystemKind::Rome,
            depths: vec![1, 2, 4],
            total_bytes: 256 * 1024,
            granularity: 4096,
        },
        ScenarioSpec::Tpot {
            name: "tpot-grok".into(),
            model: "grok-1".into(),
            batch: 64,
            seq_len: 8192,
            calibrated: false,
        },
        ScenarioSpec::MultiCube {
            name: "two-cubes".into(),
            system: MemorySystemKind::Rome,
            cubes: 2,
            channels_per_cube: 4,
            bytes_per_cube: 128 * 1024,
            max_ns: 5_000_000,
        },
    ]
}

fn batch_jsonl(specs: &[ScenarioSpec]) -> String {
    specs.iter().map(|s| s.to_json().emit() + "\n").collect()
}

#[test]
fn cli_and_serve_batch_are_byte_identical_and_deterministic() {
    let specs = acceptance_batch();
    let input = batch_jsonl(&specs);
    let engine = ScenarioEngine::new();

    // The CLI path: parse the JSONL, serve, render.
    let cli_out = serve_jsonl(&engine, &input).expect("batch parses");
    // The in-process path on the same (warm) engine, rendered identically.
    let in_process = render_results(&specs, &engine.serve_batch(&specs));
    assert_eq!(cli_out, in_process, "CLI and serve_batch diverged");

    // Deterministic run to run, warm or cold.
    assert_eq!(cli_out, serve_jsonl(&engine, &input).unwrap());
    let cold = ScenarioEngine::new();
    assert_eq!(cli_out, serve_jsonl(&cold, &input).unwrap());

    // One result line per spec, in input order, none of them errors.
    let lines: Vec<&str> = cli_out.lines().collect();
    assert_eq!(lines.len(), specs.len());
    for (line, spec) in lines.iter().zip(&specs) {
        assert!(
            line.starts_with(&format!(
                "{{\"name\":\"{}\",\"scenario\":\"{}\"",
                spec.name(),
                spec.tag()
            )),
            "out-of-order or failed line: {line}"
        );
    }
}

#[test]
fn served_sweep_matches_scenario_set_bit_for_bit() {
    let engine = ScenarioEngine::new();
    let spec = ScenarioSpec::Sweep {
        name: "fig13-4k".into(),
        kind: SweepKind::Figure13,
        seq_len: 4096,
        calibrated: false,
    };
    let served = engine.serve(&spec).unwrap();
    let direct = ScenarioSet::new(AcceleratorSpec::paper_default())
        .with(Scenario {
            name: "fig13-4k".into(),
            kind: SweepKind::Figure13,
            seq_len: 4096,
        })
        .run_nominal()
        .pop()
        .unwrap();
    assert_eq!(served.payload, ResultPayload::Sweep(direct));
}

#[test]
fn served_closed_loop_matches_the_direct_sweep_bit_for_bit() {
    let engine = ScenarioEngine::new();
    let spec = ScenarioSpec::ClosedLoop {
        name: "moe-windows".into(),
        system: MemorySystemKind::Hbm4,
        channels: 4,
        windows: vec![1, 8],
        max_ns: 10_000_000,
        workload: WorkloadSpec::Moe(moe_cfg()),
    };
    let served = engine.serve(&spec).unwrap();
    let direct = closed_loop_sweep(MemorySystemKind::Hbm4, 4, &[1, 8], 10_000_000, |_| {
        MoeRoutingSource::new(moe_cfg())
    });
    assert_eq!(served.payload, ResultPayload::ClosedLoop(direct));
}

#[test]
fn served_calibration_and_tpot_match_the_direct_paths_bit_for_bit() {
    let engine = ScenarioEngine::new();

    let served = engine
        .serve(&ScenarioSpec::Calibration {
            name: "cal".into(),
            system: MemorySystemKind::Hbm4,
        })
        .unwrap();
    assert_eq!(
        served.payload,
        ResultPayload::Calibration(Calibrator::new().hbm4())
    );
    // The engine's cache is now warm: calibrated scenarios reuse it.
    assert!(engine.calibration().is_warm(MemorySystemKind::Hbm4));

    let served = engine
        .serve(&ScenarioSpec::Tpot {
            name: "tpot".into(),
            model: "grok-1".into(),
            batch: 64,
            seq_len: 8192,
            calibrated: false,
        })
        .unwrap();
    let accel = AcceleratorSpec::paper_default();
    let model = rome::llm::ModelConfig::grok_1();
    let direct_hbm4 = rome::sim::decode_tpot(
        &model,
        64,
        8192,
        &accel,
        &MemoryModel::hbm4_baseline(&accel),
    );
    let direct_rome = rome::sim::decode_tpot(&model, 64, 8192, &accel, &MemoryModel::rome(&accel));
    assert_eq!(
        served.payload,
        ResultPayload::Tpot {
            hbm4: direct_hbm4,
            rome: direct_rome,
        }
    );
}

#[test]
fn served_queue_depth_matches_the_direct_runs_bit_for_bit() {
    let engine = ScenarioEngine::new();
    let served = engine
        .serve(&ScenarioSpec::QueueDepth {
            name: "qd".into(),
            system: MemorySystemKind::Rome,
            depths: vec![1, 4],
            total_bytes: 256 * 1024,
            granularity: 4096,
        })
        .unwrap();
    let ResultPayload::QueueDepth(rows) = &served.payload else {
        panic!("wrong payload");
    };
    for row in rows {
        let mut ctrl = rome::core::RomeController::new(
            rome::core::RomeControllerConfig::with_queue_depth(row.depth),
        );
        let direct = rome::core::simulate::run_to_completion(
            &mut ctrl,
            rome::mc::workload::streaming_reads(0, 256 * 1024, 4096),
        );
        assert_eq!(row.report, direct, "depth {} diverged", row.depth);
    }
}

#[test]
fn trace_workloads_serve_through_the_whole_stack() {
    // A recorded trace as an inline closed-loop workload: the spec
    // round-trips through JSONL and the served points match the direct
    // closed-loop run over the same trace.
    use rome::workload::{TraceRecord, TraceSource};

    let records: Vec<TraceRecord> = (0..24)
        .map(|i| TraceRecord {
            arrival: i * 100,
            kind: rome::engine::request::RequestKind::Read,
            addr: (i % 8) * 4096,
            bytes: 4096,
            tag: (i % 3) as u16,
        })
        .collect();
    let spec = ScenarioSpec::ClosedLoop {
        name: "trace".into(),
        system: MemorySystemKind::Rome,
        channels: 2,
        windows: vec![2],
        max_ns: 10_000_000,
        workload: WorkloadSpec::Trace(records.clone()),
    };
    let engine = ScenarioEngine::new();
    let input = batch_jsonl(std::slice::from_ref(&spec));
    let out = serve_jsonl(&engine, &input).unwrap();
    assert!(out.starts_with("{\"name\":\"trace\",\"scenario\":\"closed_loop\""));

    let served = engine.serve(&spec).unwrap();
    let direct = closed_loop_sweep(MemorySystemKind::Rome, 2, &[2], 10_000_000, |_| {
        TraceSource::from_records(&records)
    });
    assert_eq!(served.payload, ResultPayload::ClosedLoop(direct));
    let ResultPayload::ClosedLoop(points) = &served.payload else {
        panic!("wrong payload");
    };
    assert_eq!(points.len(), 1);
    assert_eq!(points[0].completed, 24);
}
