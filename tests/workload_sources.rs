//! Regression suite of the streaming workload subsystem.
//!
//! Pins three contracts:
//!
//! 1. **Replay equivalence** — `run_with_source(ReplaySource::from(vec))`
//!    produces a *bit-identical* `SimulationReport` to the materialized-vec
//!    drivers on the same vector, for both single-channel controllers, and
//!    bit-identical host completions on both multi-channel memory systems.
//!    Every existing experiment is therefore a special case of the
//!    streaming path.
//! 2. **Seed determinism** — every source is a pure function of its seed
//!    and pull schedule: the same seed yields the same stream however the
//!    driver slices time, and different seeds diverge.
//! 3. **Closed-loop discipline** — a `ClosedLoopHost` never exceeds its
//!    window, drains completely, and wider windows never lose bandwidth.

use proptest::prelude::*;

use rome::core::controller::{RomeController, RomeControllerConfig};
use rome::core::system::{RomeMemorySystem, RomeSystemConfig};
use rome::engine::simulate as engine_simulate;
use rome::engine::source::{ReplaySource, TrafficSource};
use rome::engine::system::HostCompletion;
use rome::mc::controller::{ChannelController, ControllerConfig};
use rome::mc::request::MemoryRequest;
use rome::mc::system::{MemorySystem, MemorySystemConfig};
use rome::mc::workload;
use rome::workload::{
    trace, BurstSource, ClosedLoopHost, MoeRoutingConfig, MoeRoutingSource, MultiTenantMixSource,
    PrefillDecodeConfig, PrefillDecodeInterleaveSource, SloPolicy, TenantSlo, TenantSpec,
    TraceRecord, TraceSource,
};

/// The workload set exercised on both systems.
fn workloads(total_bytes: u64, granularity: u64) -> Vec<(&'static str, Vec<MemoryRequest>)> {
    vec![
        (
            "streaming-read",
            workload::streaming_reads(0, total_bytes, granularity),
        ),
        (
            "streaming-write",
            workload::streaming_writes(0, total_bytes, granularity),
        ),
        (
            "random-read",
            workload::random_reads(0, 1 << 24, total_bytes / granularity, granularity, 7),
        ),
        (
            "mixed",
            workload::read_write_mix(0, total_bytes, granularity, 4),
        ),
        // A non-multiple total: exercises the partial-tail requests.
        (
            "partial-tail",
            workload::streaming_reads(0, total_bytes + granularity / 2, granularity),
        ),
    ]
}

#[test]
fn replay_source_is_bit_identical_on_the_hbm4_controller() {
    for (label, reqs) in workloads(32 * 1024, 32) {
        let mut a = ChannelController::new(ControllerConfig::hbm4_baseline());
        let mut b = ChannelController::new(ControllerConfig::hbm4_baseline());
        let mut source = ReplaySource::from(reqs.clone());
        let streamed = engine_simulate::run_with_source(&mut a, &mut source, 50_000_000);
        let materialized = engine_simulate::run_with_limit(&mut b, reqs, 50_000_000);
        assert_eq!(streamed, materialized, "hbm4 replay diverged on {label}");
        assert!(source.is_exhausted());
    }
}

#[test]
fn replay_source_is_bit_identical_on_the_rome_controller() {
    for (label, reqs) in workloads(256 * 1024, 4096) {
        let mut a = RomeController::new(RomeControllerConfig::paper_default());
        let mut b = RomeController::new(RomeControllerConfig::paper_default());
        let mut source = ReplaySource::from(reqs.clone());
        let streamed = engine_simulate::run_with_source(&mut a, &mut source, 50_000_000);
        let materialized = engine_simulate::run_with_limit(&mut b, reqs, 50_000_000);
        assert_eq!(streamed, materialized, "rome replay diverged on {label}");
    }
}

#[test]
fn replay_source_is_bit_identical_under_time_limits() {
    // Cutoffs landing mid-run must truncate both paths identically.
    for max_ns in [100u64, 5_000, 1_000_000] {
        for (label, reqs) in workloads(16 * 1024, 32) {
            let mut a = ChannelController::new(ControllerConfig::hbm4_baseline());
            let mut b = ChannelController::new(ControllerConfig::hbm4_baseline());
            let mut source = ReplaySource::from(reqs.clone());
            let streamed = engine_simulate::run_with_source(&mut a, &mut source, max_ns);
            let materialized = engine_simulate::run_with_limit(&mut b, reqs, max_ns);
            assert_eq!(streamed, materialized, "{label}@max{max_ns} diverged");
        }
    }
}

/// Host-request mix for the multi-channel comparisons.
fn host_requests() -> Vec<MemoryRequest> {
    vec![
        MemoryRequest::read(1, 0, 48 * 1024, 0),
        MemoryRequest::write(2, 1 << 20, 32 * 1024, 0),
        MemoryRequest::read(3, 2 << 20, 8 * 1024, 0),
        MemoryRequest::write(4, 3 << 20, 4 * 1024, 0),
    ]
}

/// Drive a system through the pre-existing materialized path: submit all,
/// then run the event loop.
fn run_materialized_mc(reqs: Vec<MemoryRequest>) -> (Vec<HostCompletion>, Vec<u64>) {
    let mut sys = MemorySystem::new(MemorySystemConfig::hbm4(4));
    for r in reqs {
        sys.submit(r);
    }
    let mut done = Vec::new();
    let mut now = 0u64;
    while !sys.is_idle() && now < 5_000_000 {
        let issued = sys.tick_into(now, &mut done);
        now = if issued {
            now + 1
        } else {
            sys.next_event_at(now).map_or(now + 1, |t| t.max(now + 1))
        };
    }
    (done, sys.bytes_per_channel())
}

#[test]
fn replay_source_is_bit_identical_on_the_mc_memory_system() {
    let (done_materialized, bytes_materialized) = run_materialized_mc(host_requests());
    let mut sys = MemorySystem::new(MemorySystemConfig::hbm4(4));
    let mut source = ReplaySource::from(host_requests());
    let (done_streamed, _) = sys.run_with_source(&mut source, 5_000_000);
    assert_eq!(done_streamed, done_materialized);
    assert_eq!(sys.bytes_per_channel(), bytes_materialized);
}

#[test]
fn replay_source_is_bit_identical_on_the_rome_memory_system() {
    let mut materialized = RomeMemorySystem::new(RomeSystemConfig::with_channels(4));
    for r in host_requests() {
        materialized.submit(r);
    }
    let mut done_materialized = Vec::new();
    let mut now = 0u64;
    while !materialized.is_idle() && now < 5_000_000 {
        let issued = materialized.tick_into(now, &mut done_materialized);
        now = if issued {
            now + 1
        } else {
            materialized
                .next_event_at(now)
                .map_or(now + 1, |t| t.max(now + 1))
        };
    }

    let mut sys = RomeMemorySystem::new(RomeSystemConfig::with_channels(4));
    let mut source = ReplaySource::from(host_requests());
    let (done_streamed, _) = sys.run_with_source(&mut source, 5_000_000);
    assert_eq!(done_streamed, done_materialized);
    assert_eq!(sys.bytes_per_channel(), materialized.bytes_per_channel());
}

#[test]
fn streaming_generators_emit_the_partial_tail() {
    // Regression for the silent truncation: a non-multiple total must be
    // fully covered, and the simulated run must move every byte.
    let reqs = workload::streaming_reads(0, 100, 32);
    assert_eq!(reqs.iter().map(|r| r.bytes).sum::<u64>(), 100);
    let mut ctrl = ChannelController::new(ControllerConfig::hbm4_baseline());
    let report = rome::mc::simulate::run_to_completion(&mut ctrl, reqs);
    assert_eq!(report.bytes_read, 100);
}

#[test]
fn closed_loop_host_respects_its_window_and_drains() {
    for window in [1usize, 2, 8, 64] {
        let inner = BurstSource::new(0, 1 << 20, 64 * 1024, 4096, 0, 2, 0);
        let total = inner.total_requests();
        let mut host = ClosedLoopHost::new(inner, window);
        let mut sys = RomeMemorySystem::new(RomeSystemConfig::with_channels(4));
        let (done, _) = sys.run_with_source(&mut host, 50_000_000);
        assert_eq!(done.len() as u64, total, "window {window} lost requests");
        assert_eq!(host.completed(), total);
        assert!(host.is_exhausted());
        assert!(
            host.peak_outstanding() <= window,
            "window {window} exceeded: peak {}",
            host.peak_outstanding()
        );
    }
}

#[test]
fn wider_closed_loop_windows_do_not_lose_bandwidth() {
    let run = |window| {
        let cfg = MoeRoutingConfig {
            experts: 8,
            top_k: 2,
            expert_bytes: 4096,
            layers: 2,
            tokens_per_step: 8,
            steps: 2,
            step_period_ns: 0,
            granularity: 4096,
            base: 0,
            zipf_exponent: 1.0,
            seed: 11,
        };
        let mut host = ClosedLoopHost::new(MoeRoutingSource::new(cfg), window);
        let mut sys = MemorySystem::new(MemorySystemConfig::hbm4(4));
        sys.run_with_source(&mut host, 50_000_000);
        (host.achieved_gbps(), host.mean_latency_ns())
    };
    let (bw1, lat1) = run(1);
    let (bw16, lat16) = run(16);
    assert!(
        bw16 > bw1,
        "closed-loop bandwidth must grow: {bw1} -> {bw16}"
    );
    assert!(lat1 > 0.0 && lat16 > 0.0);
}

#[test]
fn slo_host_respects_per_tenant_windows_end_to_end() {
    // A two-tenant mix through an SLO-aware closed loop on a real memory
    // system: per-tenant peaks never exceed the caps, the global window
    // holds, and everything still drains.
    let mix = MultiTenantMixSource::new()
        .with_tenant(
            "background",
            BurstSource::new(0, 1 << 20, 32 * 1024, 4096, 0, 2, 0),
        )
        .with_tenant(
            "interactive",
            BurstSource::new(1 << 30, 1 << 20, 16 * 1024, 4096, 500, 3, 0),
        );
    let policy = SloPolicy::new(
        vec![
            TenantSlo {
                window: 2,
                priority: 7,
            },
            TenantSlo {
                window: 4,
                priority: 0,
            },
        ],
        rome::workload::tenants::tenant_tag,
    );
    let mut host = ClosedLoopHost::with_slo(mix, 4, policy);
    let mut sys = RomeMemorySystem::new(RomeSystemConfig::with_channels(4));
    let (done, _) = sys.run_with_source(&mut host, 50_000_000);
    assert!(host.is_exhausted(), "SLO host must drain");
    assert_eq!(host.completed() as usize, done.len());
    assert_eq!(host.completed(), 16 + 12);
    assert!(host.peak_outstanding() <= 4);
    assert!(host.peak_tenant_outstanding(0) <= 2);
    assert!(host.peak_tenant_outstanding(1) <= 4);
    assert!(
        host.peak_tenant_outstanding(1) > host.peak_tenant_outstanding(0),
        "the high-priority tenant should win more window slots: {} vs {}",
        host.peak_tenant_outstanding(1),
        host.peak_tenant_outstanding(0)
    );
}

/// Drain a source by pulling along a schedule of time steps, then once more
/// far in the future.
fn drain_with_schedule<S: TrafficSource>(mut source: S, schedule: &[u64]) -> Vec<MemoryRequest> {
    let mut out = Vec::new();
    let mut now = 0u64;
    for gap in schedule {
        now += gap;
        source.pull_into(now, &mut out);
    }
    source.pull_into(u64::MAX, &mut out);
    assert!(source.is_exhausted());
    out
}

fn moe_cfg(seed: u64) -> MoeRoutingConfig {
    MoeRoutingConfig {
        experts: 16,
        top_k: 2,
        expert_bytes: 100,
        layers: 2,
        tokens_per_step: 8,
        steps: 4,
        step_period_ns: 700,
        granularity: 32,
        base: 0,
        zipf_exponent: 1.2,
        seed,
    }
}

fn phase_cfg(seed: u64) -> PrefillDecodeConfig {
    PrefillDecodeConfig {
        prefill_bytes: 4 * 4096,
        prefill_granularity: 4096,
        decode_bytes: 6 * 32,
        decode_granularity: 32,
        decode_steps_per_prefill: 3,
        rounds: 2,
        phase_period_ns: 900,
        weight_base: 0,
        weight_span: 8 * 4096,
        kv_base: 1 << 24,
        kv_span: 1 << 16,
        kv_write_period: 3,
        seed,
    }
}

fn tenant_mix(seed: u64) -> MultiTenantMixSource {
    MultiTenantMixSource::new()
        .with_tenant("moe", MoeRoutingSource::new(moe_cfg(seed)))
        .with_tenant(
            "phases",
            PrefillDecodeInterleaveSource::new(phase_cfg(seed ^ 0xABCD)),
        )
        .with_tenant(
            "burst",
            BurstSource::new(1 << 28, 1 << 20, 2048, 32, 333, 5, 4),
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every source is seed-deterministic: the same seed produces the same
    /// stream regardless of how the pull schedule slices time, and a
    /// different seed produces a different stream.
    #[test]
    fn sources_are_seed_deterministic(
        seed in 1u64..1_000,
        schedule_a in prop::collection::vec(0u64..1_500, 1..8),
        schedule_b in prop::collection::vec(0u64..1_500, 1..8),
    ) {
        // MoE routing skew.
        let a = drain_with_schedule(MoeRoutingSource::new(moe_cfg(seed)), &schedule_a);
        let b = drain_with_schedule(MoeRoutingSource::new(moe_cfg(seed)), &schedule_b);
        let c = drain_with_schedule(MoeRoutingSource::new(moe_cfg(seed + 1)), &schedule_a);
        prop_assert_eq!(&a, &b, "MoE stream depends on the pull schedule");
        prop_assert!(a != c, "MoE stream ignores its seed");

        // Prefill/decode interleave.
        let a = drain_with_schedule(PrefillDecodeInterleaveSource::new(phase_cfg(seed)), &schedule_a);
        let b = drain_with_schedule(PrefillDecodeInterleaveSource::new(phase_cfg(seed)), &schedule_b);
        let c = drain_with_schedule(PrefillDecodeInterleaveSource::new(phase_cfg(seed + 1)), &schedule_a);
        prop_assert_eq!(&a, &b, "phase stream depends on the pull schedule");
        prop_assert!(a != c, "phase stream ignores its seed");

        // Multi-tenant merge (deterministic merge order included).
        let a = drain_with_schedule(tenant_mix(seed), &schedule_a);
        let b = drain_with_schedule(tenant_mix(seed), &schedule_b);
        prop_assert_eq!(&a, &b, "tenant merge depends on the pull schedule");

        // Replay of a seeded vector.
        let reqs = workload::random_reads(0, 1 << 20, 64, 32, seed);
        let a = drain_with_schedule(ReplaySource::from(reqs.clone()), &schedule_a);
        prop_assert_eq!(a, reqs, "replay must reproduce its vector");
    }

    /// A trace replays deterministically (same records, same stream however
    /// the pull schedule slices time), releases in clamped arrival order,
    /// and survives a JSONL round-trip bit-for-bit.
    #[test]
    fn trace_replay_is_deterministic_and_ordered(
        records in prop::collection::vec(
            ((0u64..5_000, any::<bool>()), (0u64..(1 << 30), 1u64..8_192, 0u16..8)),
            1..40,
        ),
        schedule_a in prop::collection::vec(0u64..2_000, 1..8),
        schedule_b in prop::collection::vec(0u64..2_000, 1..8),
    ) {
        let records: Vec<TraceRecord> = records
            .into_iter()
            .map(|((arrival, write), (addr, bytes, tag))| TraceRecord {
                arrival,
                kind: if write {
                    rome::engine::request::RequestKind::Write
                } else {
                    rome::engine::request::RequestKind::Read
                },
                addr,
                bytes,
                tag,
            })
            .collect();
        let a = drain_with_schedule(TraceSource::from_records(&records), &schedule_a);
        let b = drain_with_schedule(TraceSource::from_records(&records), &schedule_b);
        prop_assert_eq!(&a, &b, "trace stream depends on the pull schedule");
        prop_assert_eq!(a.len(), records.len());

        // Release order is the record order with arrivals clamped
        // non-decreasing, ids non-zero, tags preserved.
        let mut watermark = 0u64;
        for (req, rec) in a.iter().zip(&records) {
            watermark = watermark.max(rec.arrival);
            prop_assert_eq!(req.arrival, rec.arrival);
            prop_assert_eq!(req.address.raw(), rec.addr);
            prop_assert_eq!(req.bytes, rec.bytes);
            prop_assert!(req.id.0 != 0);
            prop_assert_eq!(TraceSource::tag_of(req.id), rec.tag);
        }

        // JSONL round-trip: parse(render(records)) replays the same stream.
        let text: String = records.iter().map(|r| r.to_jsonl_line() + "\n").collect();
        let reparsed = trace::parse_jsonl(&text).unwrap();
        prop_assert_eq!(&reparsed, &records);
        let c = drain_with_schedule(TraceSource::from_jsonl(&text).unwrap(), &schedule_a);
        prop_assert_eq!(a, c, "JSONL round-trip changed the stream");
    }

    /// Arrivals released by any source are non-decreasing and never in the
    /// future of the pull.
    #[test]
    fn pulls_release_in_arrival_order(seed in 1u64..500, gaps in prop::collection::vec(0u64..1_000, 1..6)) {
        let mut source = tenant_mix(seed);
        let mut now = 0u64;
        let mut last_arrival = 0u64;
        let mut out = Vec::new();
        for gap in gaps {
            now += gap;
            out.clear();
            source.pull_into(now, &mut out);
            for r in &out {
                prop_assert!(r.arrival <= now, "released a future request");
                prop_assert!(r.arrival >= last_arrival, "merge broke arrival order");
                last_arrival = r.arrival;
            }
        }
    }
}

#[test]
fn multi_tenant_mix_runs_end_to_end_with_per_tenant_attribution() {
    let specs = vec![
        TenantSpec {
            name: "deepseek-small".into(),
            model: rome::llm::ModelConfig::deepseek_v3(),
            batch: 8,
            seq_len: 4096,
            period_ns: 2_000,
            steps: 3,
            scale: 1 << 16,
            granularity: 4096,
        },
        TenantSpec {
            name: "grok-large".into(),
            model: rome::llm::ModelConfig::grok_1(),
            batch: 64,
            seq_len: 4096,
            period_ns: 3_000,
            steps: 2,
            scale: 1 << 16,
            granularity: 4096,
        },
    ];
    let mut mix = MultiTenantMixSource::from_specs(&specs);
    let mut sys = RomeMemorySystem::new(RomeSystemConfig::with_channels(4));
    let (done, stop) = sys.run_with_source(&mut mix, 50_000_000);
    assert!(mix.is_exhausted());
    assert!(stop > 0);
    let mut per_tenant = vec![0u64; 2];
    for c in &done {
        per_tenant[mix.tenant_of(c.id).expect("mix id")] += c.bytes;
    }
    assert!(
        per_tenant.iter().all(|&b| b > 0),
        "both tenants must complete traffic: {per_tenant:?}"
    );
}
