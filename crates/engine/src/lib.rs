//! # rome-engine — the generic event-driven simulation engine
//!
//! This crate owns the event-driven simulation machinery shared by both
//! memory stacks of the RoMe reproduction — the conventional HBM4 controller
//! (`rome-mc`) and the RoMe row-granularity controller (`rome-core`):
//!
//! * **requests** — [`request::MemoryRequest`] and friends, the lifecycle
//!   vocabulary every controller speaks ([`request`]);
//! * the **[`MemoryController`] trait** — the contract (enqueue, tick,
//!   `next_event_at`, idleness, admission, stats snapshot) that lets one
//!   driver run any controller ([`controller`]);
//! * the generic **single-channel drivers** — event-driven
//!   [`simulate::run_with_limit`] and the cycle-stepped equivalence baseline
//!   [`simulate::run_with_limit_stepped`], producing one unified
//!   [`simulate::SimulationReport`] ([`simulate`]);
//! * the generic **[`MultiChannelSystem`]** — fragmentation, steering,
//!   backlog back-pressure, host-completion reassembly, a global-clock tick
//!   path, and a parallel per-channel [`MultiChannelSystem::run_until_idle`]
//!   ([`system`]);
//! * the **[`TrafficSource`] trait** and [`ReplaySource`] — lazily generated
//!   request streams whose arrivals merge into the event horizon, driven by
//!   [`simulate::run_with_source`] (single controller) and
//!   [`MultiChannelSystem::run_with_source`] (whole system), with
//!   completions fed back for closed-loop load generation ([`source`]). The
//!   scenario generators themselves (MoE routing skew, prefill/decode
//!   interleave, multi-tenant mixes) live in the `rome-workload` crate.
//! * the **[`RunBudget`] layer** — cooperative deadlines (simulated time,
//!   event count, wall clock) plus deterministic fault-injection hooks,
//!   threaded through every run loop; a bounded run returns its partial
//!   report tagged with an [`budget::AbortReason`] instead of hanging
//!   ([`budget`]).
//!
//! The engine is the plug-in point for scale-out work: a new memory system
//! only implements [`MemoryController`] and immediately inherits the
//! event-driven drivers, the parallel multi-channel runner, and every sweep
//! built on top of them.
//!
//! # Event-driven exactness
//!
//! `next_event_at` must *lower-bound* the next cycle at which state can
//! change. Drivers that tick at every reported cycle therefore execute the
//! exact command schedule of a cycle-by-cycle loop — spurious wake-ups are
//! harmless, missed events are impossible — which is what lets the
//! regression suite pin bit-identical simulation reports between the two
//! driving styles.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod budget;
pub mod controller;
pub mod events;
pub mod request;
pub mod simulate;
pub mod source;
pub mod system;

/// Sim-time flight-recorder vocabulary, re-exported from `rome-telemetry`
/// so controller crates (which depend on the engine, not on telemetry) can
/// record [`trace::TraceEvent`]s without a new dependency edge.
pub use rome_telemetry::trace;

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::budget::{
        AbortReason, BudgetMeter, DrainSignal, EngineFault, FaultAction, RunBudget, RunSink,
        TraceSink,
    };
    pub use crate::controller::{MemoryController, StatsSnapshot};
    pub use crate::events::EventHorizon;
    pub use crate::request::{CompletedRequest, MemoryRequest, RequestId, RequestKind};
    pub use crate::simulate::{
        merge_reports, report_from_host_completions, run_to_completion, run_with_budget,
        run_with_limit, run_with_limit_stepped, run_with_source, run_with_source_budgeted,
        SimulationReport,
    };
    pub use crate::source::{ReplaySource, TrafficSource};
    pub use crate::system::{run_cubes, HostCompletion, MultiChannelSystem};
}

pub use budget::{
    AbortReason, BudgetMeter, DrainSignal, EngineFault, FaultAction, RunBudget, RunSink, TraceSink,
};
pub use controller::{MemoryController, StatsSnapshot};
pub use events::EventHorizon;
pub use request::{CompletedRequest, MemoryRequest, RequestId, RequestKind};
pub use simulate::{merge_reports, report_from_host_completions, SimulationReport};
pub use source::{ReplaySource, TrafficSource};
pub use system::{run_cubes, HostCompletion, MultiChannelSystem};
