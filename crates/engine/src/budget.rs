//! Cooperative run budgets: bounded simulation with tagged partial results.
//!
//! Every driver in [`crate::simulate`] and [`crate::system`] historically ran
//! until its workload drained or a hard `max_ns` cutoff hit — and a runaway
//! scenario (a huge sweep, a stuck source) simply ran forever or silently
//! truncated. A [`RunBudget`] makes the bound explicit and *observable*: it
//! limits simulated time, event-loop iterations, and wall-clock time, and a
//! run that trips any limit returns its partial report tagged with an
//! [`AbortReason`] instead of hanging or pretending it finished.
//!
//! The budget is checked *cooperatively*: the run loop calls
//! [`BudgetMeter::on_step`] once per iteration. The hot path is exactly two
//! integer compares — the meter precomputes `next_slow`, the earliest event
//! ordinal at which *anything* (armed fault, event ceiling, wall-clock
//! probe) needs attention, and only an ordinal reaching it (or the simulated
//! clock reaching `max_sim_ns`) takes the out-of-line slow path, which
//! re-runs the original check sequence and recomputes `next_slow`. An
//! unlimited budget ([`RunBudget::unlimited`], also the `Default`) therefore
//! costs two always-false compares per event — no `Option` branching, no
//! per-event wall-clock probe — and keeps every legacy driver bit-identical:
//! no limit ever trips, no report is tagged, and the equivalence suites pin
//! that the meter's presence does not perturb a single cycle. Wall-clock
//! time is the only expensive probe (`Instant::now` is a syscall on some
//! platforms), so it is sampled every [`RunBudget::check_interval`] events
//! rather than every event.
//!
//! The same meter doubles as the deterministic fault-injection harness: an
//! [`EngineFault`] rides on the budget and fires at an exact event ordinal
//! (panic, artificial slowdown, or forced budget exhaustion), which is what
//! lets `tests/fault_injection.rs` prove panic isolation and abort semantics
//! without any nondeterministic scaffolding. The hooks are compiled in
//! unconditionally — the fault-free bit-identity guarantee above is exactly
//! the claim that this costs nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rome_telemetry::trace::{TraceBuffer, TraceConfig};

use rome_hbm::units::Cycle;

/// Why a budgeted run stopped before its workload drained.
///
/// Carried on `SimulationReport::aborted` (and the closed-loop point type);
/// serialized as the snake_case string from [`AbortReason::as_str`]. A report
/// with `aborted: None` ran to its natural end (or to a legacy untagged
/// `max_ns` cutoff, which predates budgets and keeps its old meaning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The simulated clock reached [`RunBudget::max_sim_ns`].
    SimTimeBudget,
    /// The run loop executed [`RunBudget::max_events`] iterations.
    EventBudget,
    /// The wall-clock deadline of [`RunBudget::wall_clock`] passed.
    WallClockDeadline,
    /// A [`crate::source::TrafficSource`] kept promising an arrival that
    /// never became pullable; the driver gave up instead of spinning.
    StalledSource,
    /// An [`EngineFault`] with [`FaultAction::ExhaustBudget`] fired.
    InjectedFault,
    /// A [`DrainSignal`] attached to the run's budget passed its drain
    /// deadline: the host is shutting down and in-flight work converts to
    /// partial results instead of being dropped.
    Drained,
}

impl AbortReason {
    /// Stable snake_case name, used verbatim in serialized reports.
    pub fn as_str(self) -> &'static str {
        match self {
            AbortReason::SimTimeBudget => "sim_time_budget",
            AbortReason::EventBudget => "event_budget",
            AbortReason::WallClockDeadline => "wall_clock_deadline",
            AbortReason::StalledSource => "stalled_source",
            AbortReason::InjectedFault => "injected_fault",
            AbortReason::Drained => "drained",
        }
    }
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic in the worker thread — the isolation case: the serving layer
    /// must convert this into one structured error without losing the batch.
    Panic,
    /// Sleep this many wall-clock microseconds, once, then continue. The
    /// simulated schedule is untouched, so results stay bit-identical — this
    /// models a slow worker, not a slow memory system.
    SlowdownUs(u64),
    /// Abort the run as if its budget were exhausted
    /// ([`AbortReason::InjectedFault`]).
    ExhaustBudget,
}

/// A deterministic fault armed at an exact event ordinal of a run loop.
///
/// `at_event == 0` fires before the first event, which is also how analytic
/// (loop-free) paths honor an entry fault via [`RunBudget::entry_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineFault {
    /// Event ordinal (0-based loop iteration) at which the fault fires.
    pub at_event: u64,
    /// What happens when it fires.
    pub action: FaultAction,
}

impl EngineFault {
    /// A panic armed at event `at_event`.
    pub fn panic_at(at_event: u64) -> Self {
        EngineFault {
            at_event,
            action: FaultAction::Panic,
        }
    }

    /// A one-shot wall-clock slowdown of `us` microseconds at `at_event`.
    pub fn slowdown_at(at_event: u64, us: u64) -> Self {
        EngineFault {
            at_event,
            action: FaultAction::SlowdownUs(us),
        }
    }

    /// Forced budget exhaustion at `at_event`.
    pub fn exhaust_at(at_event: u64) -> Self {
        EngineFault {
            at_event,
            action: FaultAction::ExhaustBudget,
        }
    }
}

/// Default number of events between wall-clock deadline probes.
pub const DEFAULT_CHECK_INTERVAL: u64 = 8192;

/// A shared, late-binding drain deadline: the graceful-shutdown half of the
/// budget layer.
///
/// A [`RunBudget`]'s other limits are fixed when the run starts; a drain
/// signal is the one that *arrives mid-run* — a serving front end hands every
/// admitted scenario a clone of its signal, and on shutdown calls
/// [`DrainSignal::start_drain`] with a grace period. Runs already in flight
/// keep going until the grace expires, then abort with
/// [`AbortReason::Drained`] and return their partial reports (PR 6 abort
/// semantics: work converts to tagged partials, never silent drops). A signal
/// that never starts draining costs one atomic load per deadline probe
/// (every [`RunBudget::check_interval`] events, on the metering slow path)
/// and perturbs nothing.
///
/// Clones share state; `start_drain` is idempotent and the earliest deadline
/// wins, so racing shutdown paths cannot extend the grace.
#[derive(Debug, Clone)]
pub struct DrainSignal {
    inner: Arc<DrainInner>,
}

#[derive(Debug)]
struct DrainInner {
    /// Anchor for the atomic deadline: deadlines are stored as nanoseconds
    /// after this instant (`u64::MAX` = not draining).
    epoch: Instant,
    deadline_ns: AtomicU64,
}

impl DrainSignal {
    /// A fresh signal, not draining.
    pub fn new() -> Self {
        DrainSignal {
            inner: Arc::new(DrainInner {
                epoch: Instant::now(),
                deadline_ns: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// Begin draining: in-flight runs metering against this signal abort
    /// with [`AbortReason::Drained`] once `grace` has elapsed. Idempotent;
    /// the earliest deadline across all callers wins.
    pub fn start_drain(&self, grace: Duration) {
        let now = self.inner.epoch.elapsed();
        let deadline = now.saturating_add(grace);
        let ns = u64::try_from(deadline.as_nanos()).unwrap_or(u64::MAX - 1);
        // Never store the MAX sentinel as a real deadline.
        self.inner
            .deadline_ns
            .fetch_min(ns.min(u64::MAX - 1), Ordering::AcqRel);
    }

    /// Whether [`DrainSignal::start_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.inner.deadline_ns.load(Ordering::Acquire) != u64::MAX
    }

    /// Whether the drain deadline has passed (always `false` while not
    /// draining).
    pub fn deadline_passed(&self) -> bool {
        let ns = self.inner.deadline_ns.load(Ordering::Acquire);
        ns != u64::MAX && self.inner.epoch.elapsed() >= Duration::from_nanos(ns)
    }

    /// Time until the drain deadline: `None` while not draining,
    /// `Some(ZERO)` once it has passed.
    pub fn remaining(&self) -> Option<Duration> {
        let ns = self.inner.deadline_ns.load(Ordering::Acquire);
        if ns == u64::MAX {
            return None;
        }
        Some(Duration::from_nanos(ns).saturating_sub(self.inner.epoch.elapsed()))
    }
}

impl Default for DrainSignal {
    fn default() -> Self {
        DrainSignal::new()
    }
}

impl PartialEq for DrainSignal {
    /// Signals compare by identity: two clones of one signal are equal, two
    /// independently created signals are not (matching the sharing
    /// semantics, which is what budget equality cares about).
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// A shared telemetry sink for run-level engine counters.
///
/// Attached to a [`RunBudget`] by a serving layer that wants aggregate ops
/// metrics; the drivers call [`RunSink::on_run_end`] exactly once per
/// finished run (never inside the event loop), so an attached sink costs a
/// handful of counter adds per *run*, not per event, and cannot perturb
/// simulated state. Budgets without a sink skip even that.
#[derive(Debug, Clone)]
pub struct RunSink {
    registry: Arc<rome_telemetry::Registry>,
}

impl RunSink {
    /// A sink recording into `registry` under the `engine.*` namespace.
    pub fn new(registry: Arc<rome_telemetry::Registry>) -> Self {
        RunSink { registry }
    }

    /// The registry this sink records into.
    pub fn registry(&self) -> &Arc<rome_telemetry::Registry> {
        &self.registry
    }

    /// Record one finished run: `events` metered loop iterations, of which
    /// `idle_wakeups` issued nothing (pure event-horizon jumps), plus the
    /// abort reason when the run was cut short (counted per
    /// [`AbortReason::as_str`] name).
    pub fn on_run_end(&self, events: u64, idle_wakeups: u64, aborted: Option<AbortReason>) {
        self.registry.counter("engine.runs").inc();
        self.registry.counter("engine.events").add(events);
        self.registry
            .counter("engine.idle_wakeups")
            .add(idle_wakeups);
        if let Some(reason) = aborted {
            self.registry
                .counter(&format!("engine.aborted.{}", reason.as_str()))
                .inc();
        }
    }
}

impl PartialEq for RunSink {
    /// Sinks compare by identity, like [`DrainSignal`]: what budget equality
    /// cares about is whether two budgets feed the same registry.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.registry, &other.registry)
    }
}

/// A shared sink for sim-time flight-recorder events, attached to a
/// [`RunBudget`] like [`RunSink`].
///
/// The sink carries the [`TraceConfig`] the drivers arm their controllers
/// with at run *start*, and accumulates the harvested [`TraceBuffer`]s at run
/// *end* — never inside the event loop, so an attached sink costs one
/// harvest-and-merge per run. The buffer is behind a mutex because the
/// sharded multi-cube path harvests from rayon workers; [`TraceBuffer::absorb`]
/// re-sorts on every merge, so the harvest order (and therefore thread
/// scheduling) cannot leak into the final event order.
#[derive(Debug, Clone)]
pub struct TraceSink {
    config: TraceConfig,
    buffer: Arc<Mutex<TraceBuffer>>,
}

impl TraceSink {
    /// A sink arming runs with `config` and collecting into a fresh buffer.
    pub fn new(config: TraceConfig) -> Self {
        TraceSink {
            config,
            buffer: Arc::new(Mutex::new(TraceBuffer::default())),
        }
    }

    /// The recorder configuration drivers arm controllers with.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Merge a harvested buffer into the sink (sorted canonically).
    pub fn absorb(&self, harvested: TraceBuffer) {
        let mut guard = self.buffer.lock().unwrap_or_else(|p| p.into_inner());
        guard.absorb(harvested);
    }

    /// Take the accumulated events, leaving the sink empty for reuse.
    pub fn take(&self) -> TraceBuffer {
        let mut guard = self.buffer.lock().unwrap_or_else(|p| p.into_inner());
        std::mem::take(&mut guard)
    }
}

impl PartialEq for TraceSink {
    /// Trace sinks compare by buffer identity, like [`RunSink`].
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.buffer, &other.buffer)
    }
}

/// Consecutive fully-idle driver wake-ups (nothing pulled, nothing issued,
/// nothing completed, controller idle, no pending requests, source not
/// exhausted) after which `run_with_source` declares the source stalled and
/// aborts with [`AbortReason::StalledSource`]. The `TrafficSource` contract
/// allows spuriously early `next_arrival_at` lower bounds, so a handful of
/// idle wake-ups is legal; tens of thousands in a row with no progress means
/// the source is promising an arrival it will never deliver.
pub const STALLED_SOURCE_WAKEUPS: u64 = 65_536;

/// Limits for one simulation run. All limits are optional; the default is
/// unlimited, which is guaranteed not to perturb or tag any run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunBudget {
    /// Abort once the simulated clock reaches this cycle.
    pub max_sim_ns: Option<Cycle>,
    /// Abort after this many run-loop iterations. In the sharded multi-cube
    /// path each channel worker meters independently, so this bounds events
    /// *per channel*, not per system.
    pub max_events: Option<u64>,
    /// Abort once this much wall-clock time has elapsed since the run
    /// started (probed every [`RunBudget::check_interval`] events).
    pub wall_clock: Option<Duration>,
    /// Events between wall-clock probes; `0` means
    /// [`DEFAULT_CHECK_INTERVAL`].
    pub check_interval: u64,
    /// Optional deterministic fault armed on this run's meter.
    pub fault: Option<EngineFault>,
    /// Optional shared drain signal: unlike the fixed limits above, its
    /// deadline can be set (once) *after* the run starts, which is how a
    /// serving front end converts in-flight work to tagged partials on
    /// graceful shutdown. Probed alongside the wall-clock deadline.
    pub drain: Option<DrainSignal>,
    /// Optional telemetry sink: drivers record run-level counters (events,
    /// idle wakeups, abort reasons) into it exactly once, at run end. Not a
    /// limit — it never trips, and a budget with only a sink is still
    /// [`RunBudget::is_unlimited`].
    pub sink: Option<RunSink>,
    /// Optional flight-recorder sink: drivers arm controllers with its
    /// [`TraceConfig`] at run start and absorb the harvested events at run
    /// end. Like `sink`, it is an observation, not a limit — a budget with
    /// only a trace sink is still [`RunBudget::is_unlimited`].
    pub trace: Option<TraceSink>,
}

impl Default for RunBudget {
    fn default() -> Self {
        RunBudget::unlimited()
    }
}

impl RunBudget {
    /// No limits, no fault: bit-identical to the pre-budget drivers.
    pub const fn unlimited() -> Self {
        RunBudget {
            max_sim_ns: None,
            max_events: None,
            wall_clock: None,
            check_interval: DEFAULT_CHECK_INTERVAL,
            fault: None,
            drain: None,
            sink: None,
            trace: None,
        }
    }

    /// Limit simulated time.
    pub fn with_max_sim_ns(mut self, ns: Cycle) -> Self {
        self.max_sim_ns = Some(ns);
        self
    }

    /// Limit run-loop iterations (per channel in sharded runs).
    pub fn with_max_events(mut self, events: u64) -> Self {
        self.max_events = Some(events);
        self
    }

    /// Limit wall-clock time.
    pub fn with_wall_clock(mut self, deadline: Duration) -> Self {
        self.wall_clock = Some(deadline);
        self
    }

    /// Probe the wall clock every `events` events instead of the default.
    pub fn with_check_interval(mut self, events: u64) -> Self {
        self.check_interval = events;
        self
    }

    /// Arm a deterministic fault on this budget's meter.
    pub fn with_fault(mut self, fault: EngineFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Attach a shared drain signal to this budget's meters.
    pub fn with_drain(mut self, drain: DrainSignal) -> Self {
        self.drain = Some(drain);
        self
    }

    /// Attach a telemetry sink recording run-level counters at run end.
    pub fn with_sink(mut self, sink: RunSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attach a flight-recorder sink collecting sim-time trace events.
    pub fn with_trace(mut self, trace: TraceSink) -> Self {
        self.trace = Some(trace);
        self
    }

    /// `true` when no limit and no fault is set (a never-started drain
    /// signal is not a limit: it cannot trip unless the host starts
    /// draining).
    pub fn is_unlimited(&self) -> bool {
        self.max_sim_ns.is_none()
            && self.max_events.is_none()
            && self.wall_clock.is_none()
            && self.fault.is_none()
            && self.drain.as_ref().is_none_or(|d| !d.is_draining())
    }

    /// Start metering one run against this budget. Each run (each channel
    /// worker, in sharded paths) gets its own meter; the wall-clock deadline
    /// is anchored at this call.
    pub fn meter(&self) -> BudgetMeter {
        let interval = if self.check_interval == 0 {
            DEFAULT_CHECK_INTERVAL
        } else {
            self.check_interval
        };
        let mut meter = BudgetMeter {
            max_sim_ns: self.max_sim_ns.unwrap_or(Cycle::MAX),
            max_events: self.max_events.unwrap_or(u64::MAX),
            deadline: self.wall_clock.map(|d| Instant::now() + d),
            drain: self.drain.clone(),
            interval,
            next_check: interval,
            events: 0,
            fault: self.fault,
            next_slow: u64::MAX,
        };
        meter.recompute_next_slow();
        meter
    }

    /// Fire an entry fault (`at_event == 0`) for analytic paths that have no
    /// run loop to meter. [`FaultAction::ExhaustBudget`] is meaningless
    /// without a loop to abort and is ignored here.
    pub fn entry_fault(&self) {
        if let Some(fault) = self.fault {
            if fault.at_event == 0 {
                match fault.action {
                    FaultAction::Panic => {
                        panic!("injected fault: panic at entry")
                    }
                    FaultAction::SlowdownUs(us) => std::thread::sleep(Duration::from_micros(us)),
                    FaultAction::ExhaustBudget => {}
                }
            }
        }
    }
}

/// Per-run metering state for one [`RunBudget`]. Created by
/// [`RunBudget::meter`]; the run loop calls [`BudgetMeter::on_step`] once
/// per iteration and aborts on `Some(reason)`.
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    max_sim_ns: Cycle,
    max_events: u64,
    deadline: Option<Instant>,
    drain: Option<DrainSignal>,
    interval: u64,
    next_check: u64,
    events: u64,
    fault: Option<EngineFault>,
    /// Earliest event ordinal at which the slow path must run: the minimum
    /// of the armed fault ordinal, the event ceiling, and (when a wall-clock
    /// deadline is set) the next deadline probe. `u64::MAX` when nothing is
    /// pending, which is the unlimited case.
    next_slow: u64,
}

impl BudgetMeter {
    /// Meter one run-loop iteration at simulated time `now`. Returns the
    /// abort reason when a limit trips or an armed fault fires; the caller
    /// stops *before* processing the iteration, so the partial report
    /// reflects only fully processed events.
    ///
    /// Hot path: two integer compares. Everything that can trip or fire is
    /// folded into `next_slow` (recomputed whenever the slow path runs), so
    /// the unlimited meter never branches on `Option`s or probes the wall
    /// clock per event.
    #[inline]
    pub fn on_step(&mut self, now: Cycle) -> Option<AbortReason> {
        let event = self.events;
        self.events += 1;
        if event < self.next_slow && now < self.max_sim_ns {
            return None;
        }
        self.on_step_slow(event, now)
    }

    /// Fold every event-ordinal trigger into `next_slow`. Must be called
    /// after anything that changes `fault` or `next_check`.
    fn recompute_next_slow(&mut self) {
        let fault_at = self.fault.map_or(u64::MAX, |f| f.at_event);
        let probe_at = if self.deadline.is_some() || self.drain.is_some() {
            self.next_check
        } else {
            u64::MAX
        };
        self.next_slow = fault_at.min(self.max_events).min(probe_at);
    }

    /// Out-of-line slow path: the original check sequence, verbatim — fault
    /// fire/disarm, simulated-time ceiling, event ceiling, deadline probe —
    /// followed by a `next_slow` refresh. Order matters: the fault and probe
    /// ordinals are pinned by the fault-injection suite.
    #[cold]
    fn on_step_slow(&mut self, event: u64, now: Cycle) -> Option<AbortReason> {
        let result = self.slow_checks(event, now);
        self.recompute_next_slow();
        result
    }

    fn slow_checks(&mut self, event: u64, now: Cycle) -> Option<AbortReason> {
        if let Some(fault) = self.fault {
            if event >= fault.at_event {
                self.fault = None;
                match fault.action {
                    FaultAction::Panic => {
                        panic!("injected fault: panic at event {event}")
                    }
                    FaultAction::SlowdownUs(us) => std::thread::sleep(Duration::from_micros(us)),
                    FaultAction::ExhaustBudget => return Some(AbortReason::InjectedFault),
                }
            }
        }
        if now >= self.max_sim_ns {
            return Some(AbortReason::SimTimeBudget);
        }
        if event >= self.max_events {
            return Some(AbortReason::EventBudget);
        }
        if (self.deadline.is_some() || self.drain.is_some()) && event >= self.next_check {
            self.next_check = event + self.interval;
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return Some(AbortReason::WallClockDeadline);
                }
            }
            if let Some(drain) = &self.drain {
                if drain.deadline_passed() {
                    return Some(AbortReason::Drained);
                }
            }
        }
        None
    }

    /// Iterations metered so far.
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_meter_never_trips() {
        let mut meter = RunBudget::unlimited().meter();
        for now in 0..100_000u64 {
            assert_eq!(meter.on_step(now), None);
        }
        assert_eq!(meter.events(), 100_000);
        assert!(RunBudget::unlimited().is_unlimited());
        assert!(RunBudget::default().is_unlimited());
    }

    #[test]
    fn event_budget_trips_at_the_exact_ordinal() {
        let mut meter = RunBudget::unlimited().with_max_events(3).meter();
        assert_eq!(meter.on_step(0), None);
        assert_eq!(meter.on_step(1), None);
        assert_eq!(meter.on_step(2), None);
        assert_eq!(meter.on_step(3), Some(AbortReason::EventBudget));
    }

    #[test]
    fn sim_time_budget_trips_when_now_reaches_the_limit() {
        let mut meter = RunBudget::unlimited().with_max_sim_ns(10).meter();
        assert_eq!(meter.on_step(9), None);
        assert_eq!(meter.on_step(10), Some(AbortReason::SimTimeBudget));
    }

    #[test]
    fn zero_wall_clock_deadline_trips_at_the_first_probe() {
        let mut meter = RunBudget::unlimited()
            .with_wall_clock(Duration::from_secs(0))
            .with_check_interval(4)
            .meter();
        // Probes happen every 4 events starting at event 4.
        assert_eq!(meter.on_step(0), None);
        assert_eq!(meter.on_step(1), None);
        assert_eq!(meter.on_step(2), None);
        assert_eq!(meter.on_step(3), None);
        assert_eq!(meter.on_step(4), Some(AbortReason::WallClockDeadline));
    }

    #[test]
    fn generous_wall_clock_deadline_does_not_trip() {
        let mut meter = RunBudget::unlimited()
            .with_wall_clock(Duration::from_secs(3600))
            .with_check_interval(1)
            .meter();
        for now in 0..64u64 {
            assert_eq!(meter.on_step(now), None);
        }
    }

    #[test]
    fn exhaust_fault_aborts_and_disarms() {
        let mut meter = RunBudget::unlimited()
            .with_fault(EngineFault::exhaust_at(2))
            .meter();
        assert_eq!(meter.on_step(0), None);
        assert_eq!(meter.on_step(1), None);
        assert_eq!(meter.on_step(2), Some(AbortReason::InjectedFault));
        // One-shot: a caller that chooses to continue is not re-aborted.
        assert_eq!(meter.on_step(3), None);
    }

    #[test]
    #[should_panic(expected = "injected fault: panic at event 1")]
    fn panic_fault_panics_at_its_ordinal() {
        let mut meter = RunBudget::unlimited()
            .with_fault(EngineFault::panic_at(1))
            .meter();
        assert_eq!(meter.on_step(0), None);
        let _ = meter.on_step(1);
    }

    #[test]
    #[should_panic(expected = "injected fault: panic at entry")]
    fn entry_fault_fires_only_at_event_zero() {
        // A fault armed past entry is a no-op for analytic paths…
        RunBudget::unlimited()
            .with_fault(EngineFault::panic_at(5))
            .entry_fault();
        // …but an entry fault fires.
        RunBudget::unlimited()
            .with_fault(EngineFault::panic_at(0))
            .entry_fault();
    }

    #[test]
    fn slowdown_fault_continues_without_aborting() {
        let mut meter = RunBudget::unlimited()
            .with_fault(EngineFault::slowdown_at(1, 1))
            .meter();
        assert_eq!(meter.on_step(0), None);
        assert_eq!(meter.on_step(1), None);
        assert_eq!(meter.on_step(2), None);
        RunBudget::unlimited()
            .with_fault(EngineFault::slowdown_at(0, 1))
            .entry_fault();
    }

    #[test]
    fn fast_path_does_not_skip_a_fault_at_a_large_ordinal() {
        // 10_000 fast-path steps must still land the fault on its exact
        // ordinal — the `next_slow` precomputation may defer checks, never
        // drop them.
        let mut meter = RunBudget::unlimited()
            .with_fault(EngineFault::exhaust_at(10_000))
            .meter();
        for now in 0..10_000u64 {
            assert_eq!(meter.on_step(now), None);
        }
        assert_eq!(meter.on_step(10_000), Some(AbortReason::InjectedFault));
        assert_eq!(meter.on_step(10_001), None);
        assert_eq!(meter.events(), 10_002);
    }

    #[test]
    fn deadline_probes_advance_across_many_intervals() {
        // A generous deadline with a small interval must take the slow path
        // exactly at each probe ordinal and nowhere else; `next_check`
        // re-arming has to keep feeding `next_slow`.
        let mut meter = RunBudget::unlimited()
            .with_wall_clock(Duration::from_secs(3600))
            .with_check_interval(3)
            .meter();
        for now in 0..20u64 {
            assert_eq!(meter.on_step(now), None);
        }
        assert_eq!(meter.events(), 20);
    }

    #[test]
    fn event_budget_still_trips_after_an_earlier_fault_disarms() {
        // Fault at 1, event budget at 4: the disarm must not leave
        // `next_slow` pointing at the dead fault and the budget must trip on
        // its own ordinal.
        let mut meter = RunBudget::unlimited()
            .with_max_events(4)
            .with_fault(EngineFault::slowdown_at(1, 1))
            .meter();
        assert_eq!(meter.on_step(0), None);
        assert_eq!(meter.on_step(1), None); // slowdown fires, run continues
        assert_eq!(meter.on_step(2), None);
        assert_eq!(meter.on_step(3), None);
        assert_eq!(meter.on_step(4), Some(AbortReason::EventBudget));
    }

    #[test]
    fn drain_signal_aborts_in_flight_meters_after_the_grace() {
        let signal = DrainSignal::new();
        let mut meter = RunBudget::unlimited()
            .with_drain(signal.clone())
            .with_check_interval(2)
            .meter();
        assert!(!signal.is_draining());
        assert!(signal.remaining().is_none());
        // Not draining: probes pass.
        for now in 0..10u64 {
            assert_eq!(meter.on_step(now), None);
        }
        // Drain with zero grace: the deadline has already passed, so the
        // next probe ordinal aborts. Probes land every 2 events.
        signal.start_drain(Duration::from_secs(0));
        assert!(signal.is_draining());
        assert!(signal.deadline_passed());
        assert_eq!(signal.remaining(), Some(Duration::ZERO));
        let mut aborted = None;
        for now in 10..14u64 {
            if let Some(reason) = meter.on_step(now) {
                aborted = Some(reason);
                break;
            }
        }
        assert_eq!(aborted, Some(AbortReason::Drained));
    }

    #[test]
    fn drain_signal_with_generous_grace_does_not_trip() {
        let signal = DrainSignal::new();
        signal.start_drain(Duration::from_secs(3600));
        assert!(signal.is_draining());
        assert!(!signal.deadline_passed());
        let mut meter = RunBudget::unlimited()
            .with_drain(signal.clone())
            .with_check_interval(1)
            .meter();
        for now in 0..64u64 {
            assert_eq!(meter.on_step(now), None);
        }
        // A budget with a never-started signal still counts as unlimited; a
        // draining one does not.
        assert!(RunBudget::unlimited()
            .with_drain(DrainSignal::new())
            .is_unlimited());
        assert!(!RunBudget::unlimited().with_drain(signal).is_unlimited());
    }

    #[test]
    fn earliest_drain_deadline_wins() {
        let signal = DrainSignal::new();
        signal.start_drain(Duration::from_secs(0));
        // A later, longer grace must not extend the already-passed deadline.
        signal.start_drain(Duration::from_secs(3600));
        assert!(signal.deadline_passed());
    }

    #[test]
    fn drain_signal_clones_share_state_and_compare_by_identity() {
        let a = DrainSignal::new();
        let b = a.clone();
        let c = DrainSignal::new();
        assert_eq!(a, b);
        assert_ne!(a, c);
        b.start_drain(Duration::from_secs(0));
        assert!(a.is_draining(), "clones share the drain state");
        assert!(!c.is_draining());
    }

    #[test]
    fn abort_reasons_have_stable_snake_case_names() {
        assert_eq!(AbortReason::SimTimeBudget.as_str(), "sim_time_budget");
        assert_eq!(AbortReason::EventBudget.as_str(), "event_budget");
        assert_eq!(
            AbortReason::WallClockDeadline.as_str(),
            "wall_clock_deadline"
        );
        assert_eq!(AbortReason::StalledSource.as_str(), "stalled_source");
        assert_eq!(AbortReason::InjectedFault.as_str(), "injected_fault");
        assert_eq!(AbortReason::Drained.as_str(), "drained");
        assert_eq!(AbortReason::StalledSource.to_string(), "stalled_source");
    }
}
