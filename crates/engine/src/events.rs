//! Event-horizon accumulation shared by every `next_event_at`
//! implementation.
//!
//! All of the event-driven `next_event_at` queries — on the per-channel
//! controllers and on the generic multi-channel system — reduce to the same
//! fold: collect candidate future cycles from several sources, clamp each to
//! be *strictly after* `now`, and keep the minimum. [`EventHorizon`] is that
//! fold, extracted so the clamp semantics live in exactly one place (they
//! used to be re-implemented as a local closure at every call site, and a
//! divergence in any copy would silently break the event-driven exactness
//! contract).

use rome_hbm::units::Cycle;

/// Accumulates the earliest future event cycle from a stream of candidates.
///
/// Construct it at the query's `now`, feed every candidate wakeup cycle to
/// [`EventHorizon::consider`], and read the result with
/// [`EventHorizon::earliest`]. Candidates at or before `now` are clamped to
/// `now + 1`: a state change the caller knows about but that has not been
/// consumed yet must wake the driver on the very next cycle, never in the
/// past — this is what keeps `next_event_at` a *lower bound* and therefore
/// keeps event-driven runs bit-identical to cycle-stepped ones.
#[derive(Debug, Clone, Copy)]
pub struct EventHorizon {
    /// The earliest cycle any event may be reported at (`now + 1`).
    horizon: Cycle,
    /// The earliest candidate seen so far.
    next: Option<Cycle>,
}

impl EventHorizon {
    /// Start a query at `now`: every considered candidate is clamped to be
    /// strictly after it.
    pub fn new(now: Cycle) -> Self {
        EventHorizon {
            horizon: now + 1,
            next: None,
        }
    }

    /// Fold one candidate wakeup cycle into the horizon.
    pub fn consider(&mut self, t: Cycle) {
        let t = t.max(self.horizon);
        self.next = Some(self.next.map_or(t, |n| n.min(t)));
    }

    /// Fold an optional candidate (convenience for sources that may be
    /// quiescent).
    pub fn consider_opt(&mut self, t: Option<Cycle>) {
        if let Some(t) = t {
            self.consider(t);
        }
    }

    /// The earliest candidate considered (clamped to `now + 1`), or `None`
    /// when no source reported a pending event.
    pub fn earliest(self) -> Option<Cycle> {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_horizon_reports_none() {
        assert_eq!(EventHorizon::new(100).earliest(), None);
    }

    #[test]
    fn keeps_the_minimum_candidate() {
        let mut h = EventHorizon::new(10);
        h.consider(50);
        h.consider(20);
        h.consider(80);
        assert_eq!(h.earliest(), Some(20));
    }

    #[test]
    fn clamps_past_candidates_to_now_plus_one() {
        let mut h = EventHorizon::new(10);
        h.consider(3);
        assert_eq!(h.earliest(), Some(11));
        // A clamped candidate still competes with genuine future ones.
        h.consider(15);
        assert_eq!(h.earliest(), Some(11));
    }

    #[test]
    fn optional_candidates_fold_only_when_present() {
        let mut h = EventHorizon::new(0);
        h.consider_opt(None);
        assert_eq!(h.earliest(), None);
        h.consider_opt(Some(7));
        assert_eq!(h.earliest(), Some(7));
    }
}
