//! Generic simulation drivers for a single channel controller.
//!
//! These helpers feed a request stream into any [`MemoryController`] as fast
//! as its queues accept it and summarize the outcome in one unified
//! [`SimulationReport`]. They are used directly by the queue-depth and VBA
//! design-space experiments and as calibration kernels by `rome-sim`, for
//! both the conventional HBM4 controller and the RoMe controller.
//!
//! # Event-driven time skipping
//!
//! The default driver ([`run_to_completion`] / [`run_with_limit`]) is
//! *event-driven*: after a tick in which the controller issued nothing and no
//! new request can arrive, it asks [`MemoryController::next_event_at`] for
//! the next cycle at which any state can change (a data burst completing, a
//! timing constraint expiring, a refresh coming due) and jumps straight
//! there, instead of burning one no-op `tick` per nanosecond. Because
//! `next_event_at` lower-bounds the next state change, the event-driven
//! driver executes the exact command schedule of the cycle-stepped loop and
//! produces bit-identical [`SimulationReport`]s — the regression suite in
//! `tests/event_driven_equivalence.rs` pins this.
//!
//! The original cycle-by-cycle loop is kept as [`run_with_limit_stepped`];
//! it is the equivalence baseline and the reference point for the wall-clock
//! speedup tracked by the `event_driven_speedup` bench.
//!
//! # Bounded runs
//!
//! Every driver also comes in a budgeted flavor ([`run_with_budget`],
//! [`run_with_source_budgeted`]) that meters the loop against a
//! [`RunBudget`] — simulated-time, event-count, and wall-clock limits plus
//! the deterministic fault-injection hooks. A tripped limit stops the loop
//! and tags the partial report via [`SimulationReport::aborted`]; the
//! unbudgeted entry points delegate with [`RunBudget::unlimited`], which is
//! pinned to be bit-identical to the pre-budget drivers (no limit trips, no
//! report is tagged, the legacy `max_ns` cutoff stays untagged).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use rome_hbm::units::{bytes_per_ns_to_gbps, Cycle};
use rome_telemetry::trace::{FlightRecorder, TraceEvent, TraceEventKind};
use rome_telemetry::LatencyHistogram;

use crate::budget::{AbortReason, RunBudget, STALLED_SOURCE_WAKEUPS};
use crate::controller::MemoryController;
use crate::request::{MemoryRequest, RequestKind};
use crate::source::TrafficSource;
use crate::system::HostCompletion;

/// Summary of one single-channel run, identical in shape for every
/// controller (fields a controller does not model report their neutral
/// value: `bytes_transferred == bytes_read + bytes_written` for a controller
/// without overfetch, `row_hit_rate == 0` for one without a row buffer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Total requests completed.
    pub requests_completed: u64,
    /// Useful bytes read.
    pub bytes_read: u64,
    /// Useful bytes written.
    pub bytes_written: u64,
    /// Bytes moved over the DRAM interface (≥ useful bytes; the difference
    /// is overfetch).
    pub bytes_transferred: u64,
    /// Cycle at which the last request completed.
    pub finish_time: Cycle,
    /// Achieved useful bandwidth over the whole run in decimal GB/s
    /// (1 byte/ns = 1 GB/s), via [`rome_hbm::units::bytes_per_ns_to_gbps`] —
    /// the same definition for every memory system.
    pub achieved_bandwidth_gbps: f64,
    /// Mean read latency in ns.
    pub mean_read_latency: f64,
    /// Row-buffer hit rate (0 for controllers without a row buffer).
    pub row_hit_rate: f64,
    /// Activations issued per KiB of useful data transferred.
    pub activates_per_kib: f64,
    /// `Some(reason)` when the run stopped early because a [`RunBudget`]
    /// limit tripped (or the source stalled); `None` for a run that drained
    /// naturally or hit only the legacy untagged `max_ns` cutoff. An aborted
    /// report is a valid *partial* summary of the work completed before the
    /// abort.
    pub aborted: Option<AbortReason>,
    /// Distribution of per-request end-to-end read latencies in simulated ns
    /// (enqueue to completion), as a mergeable log₂-bucket histogram —
    /// p50/p95/p99/max alongside the `mean_read_latency` mean. Sim-time data
    /// only, so it is deterministic: bit-identical run-to-run and across the
    /// event-driven/stepped drivers. Empty when
    /// [`rome_telemetry::sim_sampling`] is off (the default stays on), which
    /// is pinned to leave every other field untouched.
    pub read_latency: LatencyHistogram,
}

impl SimulationReport {
    /// Tag this report with an abort reason (`None` clears the tag).
    pub fn with_abort(mut self, aborted: Option<AbortReason>) -> Self {
        self.aborted = aborted;
        self
    }

    /// Attach a read-latency histogram to this report.
    pub fn with_read_latency(mut self, read_latency: LatencyHistogram) -> Self {
        self.read_latency = read_latency;
        self
    }
}

/// Drive `controller` with `requests`, enqueueing as fast as the queues
/// accept, until every request has completed or an internal safety limit of
/// 50 ms elapses.
///
/// Requests are offered in order; a request whose queue is full simply waits
/// (back-pressure), which is how a DMA engine behaves.
pub fn run_to_completion<C: MemoryController>(
    controller: &mut C,
    requests: Vec<MemoryRequest>,
) -> SimulationReport {
    run_with_limit(controller, requests, 50_000_000)
}

/// Like [`run_to_completion`] but with an explicit time limit in ns.
/// Event-driven: skips directly between cycles where state can change.
pub fn run_with_limit<C: MemoryController>(
    controller: &mut C,
    requests: Vec<MemoryRequest>,
    max_ns: Cycle,
) -> SimulationReport {
    drive(controller, requests, max_ns, false, &RunBudget::unlimited())
}

/// Like [`run_with_limit`] but metered against a [`RunBudget`]: the run
/// stops as soon as a budget limit trips (or an armed fault fires) and the
/// partial report is tagged via [`SimulationReport::aborted`]. With
/// [`RunBudget::unlimited`] this is bit-identical to [`run_with_limit`].
pub fn run_with_budget<C: MemoryController>(
    controller: &mut C,
    requests: Vec<MemoryRequest>,
    max_ns: Cycle,
    budget: &RunBudget,
) -> SimulationReport {
    drive(controller, requests, max_ns, false, budget)
}

/// The original cycle-by-cycle driver: identical behaviour to
/// [`run_with_limit`], advancing time one nanosecond per iteration. Kept as
/// the equivalence baseline and for wall-clock comparison benches.
pub fn run_with_limit_stepped<C: MemoryController>(
    controller: &mut C,
    requests: Vec<MemoryRequest>,
    max_ns: Cycle,
) -> SimulationReport {
    drive(controller, requests, max_ns, true, &RunBudget::unlimited())
}

/// Arm `controller`'s flight recorder from the budget's trace sink (when one
/// is attached) and return the driver-side recorder for host-edge events
/// (arrival, backlog). Without a sink both stay disarmed no-ops.
fn arm_trace<C: MemoryController>(controller: &mut C, budget: &RunBudget) -> FlightRecorder {
    match &budget.trace {
        Some(sink) => {
            let config = sink.config();
            controller.set_trace(config);
            FlightRecorder::new(config)
        }
        None => FlightRecorder::disabled(),
    }
}

/// Record the host-side arrival of `req` (offered at `arrived`, admitted at
/// `now`), plus a backlog span when admission waited on queue space.
fn record_arrival(recorder: &mut FlightRecorder, req: &MemoryRequest, arrived: Cycle, now: Cycle) {
    let base = TraceEvent {
        id: req.id.0,
        bytes: req.bytes,
        write: !req.kind.is_read(),
        ..TraceEvent::at(TraceEventKind::Arrival, arrived)
    };
    recorder.record(base);
    if now > arrived {
        recorder.record(TraceEvent {
            kind: TraceEventKind::Backlog,
            dur: now - arrived,
            ..base
        });
    }
}

/// Harvest the controller's and the driver's recorders into the budget's
/// trace sink (no-op without one). Called once, at run end.
fn harvest_trace<C: MemoryController>(
    controller: &mut C,
    budget: &RunBudget,
    mut driver: FlightRecorder,
) {
    if let Some(sink) = &budget.trace {
        let mut buffer = controller.take_trace();
        buffer.absorb(driver.harvest());
        sink.absorb(buffer);
    }
}

fn drive<C: MemoryController>(
    controller: &mut C,
    requests: Vec<MemoryRequest>,
    max_ns: Cycle,
    stepped: bool,
    budget: &RunBudget,
) -> SimulationReport {
    let total = requests.len() as u64;
    let mut pending = requests.into_iter().peekable();
    let mut now: Cycle = 0;
    let mut completed = 0u64;
    let mut bytes_read = 0u64;
    let mut bytes_written = 0u64;
    let mut finish_time = 0;
    let mut completions = Vec::new();
    let mut meter = budget.meter();
    let mut aborted = None;
    // Sampling is latched once per run: toggling it mid-run must not produce
    // a half-populated histogram.
    let sampling = rome_telemetry::sim_sampling();
    let mut read_latency = LatencyHistogram::new();
    let mut idle_steps: u64 = 0;
    let mut recorder = arm_trace(controller, budget);

    while (completed < total || !controller.is_idle()) && now < max_ns {
        if let Some(reason) = meter.on_step(now) {
            aborted = Some(reason);
            break;
        }
        // Offer as many pending requests as the queues accept this cycle.
        while let Some(next) = pending.peek() {
            if controller.slots_free_for(next.kind) == 0 {
                break;
            }
            let mut req = *next;
            req.arrival = now;
            if recorder.enabled() {
                record_arrival(&mut recorder, &req, next.arrival, now);
            }
            let ok = controller.enqueue(req);
            debug_assert!(ok, "enqueue must succeed when a slot is free");
            pending.next();
        }
        let issued = controller.tick_into(now, &mut completions);
        for done in completions.drain(..) {
            completed += 1;
            finish_time = finish_time.max(done.completed);
            match done.kind {
                RequestKind::Read => {
                    bytes_read += done.bytes;
                    if sampling {
                        read_latency.record(done.completed.saturating_sub(done.arrival));
                    }
                }
                RequestKind::Write => bytes_written += done.bytes,
            }
        }
        // A request can arrive at now + 1 only if the head of the pending
        // stream already has a free slot (back-pressure is in order).
        let arrival_next = pending
            .peek()
            .is_some_and(|next| controller.slots_free_for(next.kind) > 0);
        idle_steps += (!issued) as u64;
        now = if stepped || issued || arrival_next {
            now + 1
        } else {
            controller
                .next_event_at(now)
                .map_or(now + 1, |t| t.max(now + 1))
        };
    }

    if let Some(sink) = &budget.sink {
        sink.on_run_end(meter.events(), idle_steps, aborted);
    }
    harvest_trace(controller, budget, recorder);
    assemble_report(
        controller,
        completed,
        bytes_read,
        bytes_written,
        finish_time,
    )
    .with_abort(aborted)
    .with_read_latency(read_latency)
}

/// Drive `controller` from a lazy [`TrafficSource`] instead of a
/// materialized request vector, until the source is exhausted and every
/// pulled request has completed, or `max_ns` elapses.
///
/// The driver merges the source into the event horizon: after a tick in
/// which nothing was issued and no pulled request can enqueue, it jumps to
/// the earlier of [`MemoryController::next_event_at`] and
/// [`TrafficSource::next_arrival_at`]. Completions are fed back to the
/// source via [`TrafficSource::on_completion`] (as single-fragment
/// [`HostCompletion`]s), which is what closed-loop sources key their next
/// release on.
///
/// For `ReplaySource::from(vec)` over a vector whose arrivals are all at
/// cycle 0 — the shape every synthetic generator produces — this executes
/// the exact schedule of [`run_with_limit`] on the same vector and returns a
/// bit-identical [`SimulationReport`]; the regression suite pins this for
/// both memory systems.
pub fn run_with_source<C: MemoryController, S: TrafficSource>(
    controller: &mut C,
    source: &mut S,
    max_ns: Cycle,
) -> SimulationReport {
    run_with_source_budgeted(controller, source, max_ns, &RunBudget::unlimited())
}

/// Like [`run_with_source`] but metered against a [`RunBudget`], and with
/// stall detection that is active even under an unlimited budget: a source
/// that keeps promising an arrival which never becomes pullable (or that
/// waits on a completion no in-flight work can deliver) aborts the run with
/// [`AbortReason::StalledSource`] instead of spinning to `max_ns`. Spurious
/// early wake-ups are legal under the [`TrafficSource`] contract, so the
/// stall verdict needs [`STALLED_SOURCE_WAKEUPS`] consecutive fully idle
/// wake-ups — no pull, no issue, no completion, empty queues — before it
/// fires.
pub fn run_with_source_budgeted<C: MemoryController, S: TrafficSource>(
    controller: &mut C,
    source: &mut S,
    max_ns: Cycle,
    budget: &RunBudget,
) -> SimulationReport {
    let mut pending: VecDeque<MemoryRequest> = VecDeque::new();
    let mut pulled: Vec<MemoryRequest> = Vec::new();
    let mut now: Cycle = 0;
    let mut completed = 0u64;
    let mut bytes_read = 0u64;
    let mut bytes_written = 0u64;
    let mut finish_time = 0;
    let mut completions = Vec::new();
    let mut meter = budget.meter();
    let mut aborted = None;
    let mut idle_wakeups: u64 = 0;
    let sampling = rome_telemetry::sim_sampling();
    let mut read_latency = LatencyHistogram::new();
    let mut idle_steps: u64 = 0;
    let mut recorder = arm_trace(controller, budget);

    loop {
        if let Some(reason) = meter.on_step(now) {
            aborted = Some(reason);
            break;
        }
        let backlog_before = pending.len();
        source.pull_into(now, &mut pulled);
        pending.extend(pulled.drain(..));
        let pulled_any = pending.len() > backlog_before;
        if (pending.is_empty() && source.is_exhausted() && controller.is_idle()) || now >= max_ns {
            break;
        }
        // Offer as many pulled requests as the queues accept this cycle, in
        // order (back-pressure, exactly as the materialized-vec driver).
        while let Some(next) = pending.front() {
            if controller.slots_free_for(next.kind) == 0 {
                break;
            }
            let mut req = *next;
            req.arrival = now;
            if recorder.enabled() {
                record_arrival(&mut recorder, &req, next.arrival, now);
            }
            let ok = controller.enqueue(req);
            debug_assert!(ok, "enqueue must succeed when a slot is free");
            pending.pop_front();
        }
        let issued = controller.tick_into(now, &mut completions);
        let completed_any = !completions.is_empty();
        for done in completions.drain(..) {
            completed += 1;
            finish_time = finish_time.max(done.completed);
            match done.kind {
                RequestKind::Read => {
                    bytes_read += done.bytes;
                    if sampling {
                        read_latency.record(done.completed.saturating_sub(done.arrival));
                    }
                }
                RequestKind::Write => bytes_written += done.bytes,
            }
            source.on_completion(&HostCompletion {
                id: done.id,
                kind: done.kind,
                bytes: done.bytes,
                arrival: done.arrival,
                completed: done.completed,
            });
        }
        // Stall detection: a wake-up in which no *data* moved. A live run
        // resets the streak on any request progress; only a source that
        // keeps scheduling wake-ups without ever delivering can accumulate
        // STALLED_SOURCE_WAKEUPS of them. `issued` deliberately does not
        // reset the streak: autonomous upkeep (refresh) issues commands
        // forever on an otherwise empty controller and must not mask a
        // stuck source.
        if pulled_any || completed_any || !pending.is_empty() || !controller.is_idle() {
            idle_wakeups = 0;
        } else {
            idle_wakeups += 1;
            if idle_wakeups >= STALLED_SOURCE_WAKEUPS {
                aborted = Some(AbortReason::StalledSource);
                break;
            }
        }
        let arrival_next = pending
            .front()
            .is_some_and(|next| controller.slots_free_for(next.kind) > 0);
        idle_steps += (!issued) as u64;
        now = if issued || arrival_next {
            now + 1
        } else {
            let mut horizon = controller.next_event_at(now);
            if let Some(at) = source.next_arrival_at() {
                let at = at.max(now + 1);
                horizon = Some(horizon.map_or(at, |h| h.min(at)));
            }
            match horizon {
                Some(t) => t.max(now + 1),
                // No controller event and no scheduled arrival: if the
                // controller is idle and nothing waits to enqueue, nothing
                // can ever change (completions only come from in-flight
                // work), so a source gated on one is stuck — abort with a
                // tagged reason instead of crawling one cycle per
                // iteration to max_ns.
                None if controller.is_idle() && pending.is_empty() => {
                    if !source.is_exhausted() {
                        aborted = Some(AbortReason::StalledSource);
                    }
                    break;
                }
                None => now + 1,
            }
        };
    }

    if let Some(sink) = &budget.sink {
        sink.on_run_end(meter.events(), idle_steps, aborted);
    }
    harvest_trace(controller, budget, recorder);
    assemble_report(
        controller,
        completed,
        bytes_read,
        bytes_written,
        finish_time,
    )
    .with_abort(aborted)
    .with_read_latency(read_latency)
}

/// Fold the driver-side counters and the controller's statistics snapshot
/// into the unified report (shared by every driving style).
fn assemble_report<C: MemoryController>(
    controller: &C,
    completed: u64,
    bytes_read: u64,
    bytes_written: u64,
    finish_time: Cycle,
) -> SimulationReport {
    report_from_stats(
        &controller.stats_snapshot(),
        completed,
        bytes_read,
        bytes_written,
        finish_time,
    )
}

/// Fold driver-side counters and a (possibly channel-merged)
/// [`crate::controller::StatsSnapshot`] into the unified report. This is the one place the
/// derived report fields (bandwidth, activates/KiB) are defined, shared by
/// the single-channel drivers and the system/multi-cube reporters.
pub fn report_from_stats(
    stats: &crate::controller::StatsSnapshot,
    completed: u64,
    bytes_read: u64,
    bytes_written: u64,
    finish_time: Cycle,
) -> SimulationReport {
    let elapsed = finish_time.max(1);
    let useful = bytes_read + bytes_written;
    SimulationReport {
        requests_completed: completed,
        bytes_read,
        bytes_written,
        bytes_transferred: stats.bytes_transferred,
        finish_time,
        achieved_bandwidth_gbps: bytes_per_ns_to_gbps(useful, elapsed),
        mean_read_latency: stats.mean_read_latency,
        row_hit_rate: stats.row_hit_rate,
        activates_per_kib: if useful == 0 {
            0.0
        } else {
            stats.activates as f64 / (useful as f64 / 1024.0)
        },
        aborted: None,
        read_latency: LatencyHistogram::new(),
    }
}

/// Summarize a system-level run — host completions plus the system's merged
/// statistics snapshot — as the same unified [`SimulationReport`] the
/// single-channel drivers produce, so multi-channel and multi-cube results
/// are directly comparable (and mergeable via [`merge_reports`]).
pub fn report_from_host_completions(
    stats: &crate::controller::StatsSnapshot,
    completions: &[HostCompletion],
) -> SimulationReport {
    let mut bytes_read = 0u64;
    let mut bytes_written = 0u64;
    let mut finish_time = 0;
    let sampling = rome_telemetry::sim_sampling();
    let mut read_latency = LatencyHistogram::new();
    for c in completions {
        match c.kind {
            RequestKind::Read => {
                bytes_read += c.bytes;
                if sampling {
                    read_latency.record(c.completed.saturating_sub(c.arrival));
                }
            }
            RequestKind::Write => bytes_written += c.bytes,
        }
        finish_time = finish_time.max(c.completed);
    }
    report_from_stats(
        stats,
        completions.len() as u64,
        bytes_read,
        bytes_written,
        finish_time,
    )
    .with_read_latency(read_latency)
}

/// Merge per-shard [`SimulationReport`]s (one per cube of a multi-cube
/// system, or any set of independent runs that executed concurrently) into
/// one summary report:
///
/// * counts and byte totals are summed;
/// * `finish_time` is the maximum (the shards ran in parallel);
/// * `achieved_bandwidth_gbps` is recomputed from the merged totals over the
///   merged finish time — *not* the sum of per-shard bandwidths, which would
///   overstate a straggling shard;
/// * `mean_read_latency` is weighted by per-shard read bytes and
///   `row_hit_rate` by per-shard interface bytes (the per-request counts are
///   not in the report, so bytes are the closest available weights);
/// * `activates_per_kib` is recomputed from the implied per-shard activation
///   counts over the merged useful bytes;
/// * `aborted` is the first shard's abort reason, if any shard aborted (a
///   merged report over partial shards is itself partial).
pub fn merge_reports(reports: &[SimulationReport]) -> SimulationReport {
    let mut merged = SimulationReport {
        requests_completed: 0,
        bytes_read: 0,
        bytes_written: 0,
        bytes_transferred: 0,
        finish_time: 0,
        achieved_bandwidth_gbps: 0.0,
        mean_read_latency: 0.0,
        row_hit_rate: 0.0,
        activates_per_kib: 0.0,
        aborted: None,
        read_latency: LatencyHistogram::new(),
    };
    let mut latency_weight = 0.0;
    let mut latency_sum = 0.0;
    let mut hit_weight = 0.0;
    let mut hit_sum = 0.0;
    let mut activates = 0.0;
    for r in reports {
        merged.requests_completed += r.requests_completed;
        merged.bytes_read += r.bytes_read;
        merged.bytes_written += r.bytes_written;
        merged.bytes_transferred += r.bytes_transferred;
        merged.finish_time = merged.finish_time.max(r.finish_time);
        merged.aborted = merged.aborted.or(r.aborted);
        merged.read_latency.merge(&r.read_latency);
        latency_sum += r.mean_read_latency * r.bytes_read as f64;
        latency_weight += r.bytes_read as f64;
        hit_sum += r.row_hit_rate * r.bytes_transferred as f64;
        hit_weight += r.bytes_transferred as f64;
        activates += r.activates_per_kib * (r.bytes_read + r.bytes_written) as f64 / 1024.0;
    }
    let useful = merged.bytes_read + merged.bytes_written;
    merged.achieved_bandwidth_gbps = bytes_per_ns_to_gbps(useful, merged.finish_time.max(1));
    if latency_weight > 0.0 {
        merged.mean_read_latency = latency_sum / latency_weight;
    }
    if hit_weight > 0.0 {
        merged.row_hit_rate = hit_sum / hit_weight;
    }
    if useful > 0 {
        merged.activates_per_kib = activates / (useful as f64 / 1024.0);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::StatsSnapshot;
    use crate::request::RequestId;

    fn shard(reads: u64, latency: f64, finish: Cycle) -> SimulationReport {
        SimulationReport {
            requests_completed: reads / 32,
            bytes_read: reads,
            bytes_written: 0,
            bytes_transferred: reads,
            finish_time: finish,
            achieved_bandwidth_gbps: reads as f64 / finish as f64,
            mean_read_latency: latency,
            row_hit_rate: 0.5,
            activates_per_kib: 1.0,
            aborted: None,
            read_latency: LatencyHistogram::new(),
        }
    }

    #[test]
    fn merge_reports_sums_totals_and_recomputes_rates() {
        let merged = merge_reports(&[shard(1024, 100.0, 1000), shard(3072, 200.0, 2000)]);
        assert_eq!(merged.requests_completed, 128);
        assert_eq!(merged.bytes_read, 4096);
        assert_eq!(merged.finish_time, 2000, "parallel shards: max, not sum");
        // Bandwidth over the merged totals, not the sum of shard bandwidths.
        assert_eq!(merged.achieved_bandwidth_gbps, 4096.0 / 2000.0);
        // Read-byte-weighted mean latency: (100*1 + 200*3) / 4 = 175.
        assert_eq!(merged.mean_read_latency, 175.0);
        assert_eq!(merged.row_hit_rate, 0.5);
        assert!((merged.activates_per_kib - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_propagates_any_shard_abort_tag() {
        let healthy = shard(1024, 100.0, 1000);
        let partial = shard(512, 50.0, 500).with_abort(Some(AbortReason::EventBudget));
        assert_eq!(
            merge_reports(&[healthy.clone(), partial]).aborted,
            Some(AbortReason::EventBudget),
            "a merge over a partial shard is itself partial"
        );
        assert_eq!(merge_reports(&[healthy]).aborted, None);
    }

    #[test]
    fn merge_of_empty_and_single_is_neutral() {
        let empty = merge_reports(&[]);
        assert_eq!(empty.requests_completed, 0);
        assert_eq!(empty.achieved_bandwidth_gbps, 0.0);
        let one = shard(2048, 150.0, 500);
        assert_eq!(merge_reports(std::slice::from_ref(&one)), one);
    }

    #[test]
    fn report_from_host_completions_folds_kinds_and_finish() {
        let stats = StatsSnapshot {
            bytes_read: 64,
            bytes_written: 32,
            bytes_transferred: 96,
            mean_read_latency: 40.0,
            row_hit_rate: 0.25,
            activates: 3,
        };
        let completions = vec![
            HostCompletion {
                id: RequestId(1),
                kind: RequestKind::Read,
                bytes: 64,
                arrival: 0,
                completed: 80,
            },
            HostCompletion {
                id: RequestId(2),
                kind: RequestKind::Write,
                bytes: 32,
                arrival: 0,
                completed: 40,
            },
        ];
        let report = report_from_host_completions(&stats, &completions);
        assert_eq!(report.requests_completed, 2);
        assert_eq!(report.bytes_read, 64);
        assert_eq!(report.bytes_written, 32);
        assert_eq!(report.finish_time, 80);
        assert_eq!(report.achieved_bandwidth_gbps, 96.0 / 80.0);
        assert_eq!(report.row_hit_rate, 0.25);
        assert!((report.activates_per_kib - 32.0).abs() < 1e-12);
    }
}
