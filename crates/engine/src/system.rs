//! The generic multi-channel memory system.
//!
//! [`MultiChannelSystem`] models the memory side of one accelerator for *any*
//! controller implementing [`MemoryController`]: host requests of arbitrary
//! size are fragmented at the system's access granularity, steered to their
//! channel by a caller-provided decode function, executed by the per-channel
//! controllers, and reassembled into [`HostCompletion`]s when the last
//! fragment finishes. Both the conventional HBM4 system (`rome-mc`) and the
//! RoMe system (`rome-core`) are thin wrappers around this type — the wrapper
//! owns the address decode and the domain-specific statistics, this type owns
//! all of the event-driven plumbing.
//!
//! # The event calendar
//!
//! With the calendar enabled (the default), the system maintains the next
//! wakeup cycle of every channel incrementally instead of recomputing it
//! from scratch on every event step:
//!
//! * each channel's wakeup is cached in a per-channel slot, refreshed only
//!   when the channel is actually ticked (a channel that issued wakes at
//!   `now + 1`; one that did not reports its own
//!   [`MemoryController::next_event_at`]) or when new work is steered to it;
//! * a lazy min-heap indexes those slots, so the global
//!   [`MultiChannelSystem::next_event_at`] is a heap peek (stale heap
//!   entries are discarded when encountered, and the heap is compacted from
//!   the slots when it grows past a small multiple of the channel count);
//! * [`MultiChannelSystem::tick_into`] *skips* every channel whose cached
//!   wakeup lies beyond `now` — by the `next_event_at` lower-bound contract
//!   nothing the skipped channel's scheduler consults can have changed, so
//!   the tick would have been a no-op;
//! * backlogged fragments live in per-channel queues with per-kind pending
//!   counts, so draining admissible fragments and probing for
//!   admission-at-`now + 1` both cost O(channels), not O(backlog).
//!
//! With the calendar disabled ([`MultiChannelSystem::set_calendar`]), the
//! system keeps the pre-calendar behaviour — one global arrival-ordered
//! backlog scanned in full on every drain, every channel ticked on every
//! step, and `next_event_at` re-polling every controller. That path is the
//! equivalence oracle (the regression suite pins bit-identical results
//! between a cycle-stepped calendar-off run and an event-driven calendar-on
//! run) and the baseline the `event_driven_speedup` bench reports the
//! calendar's speedup against.
//!
//! # Drivers
//!
//! Two driving styles are provided:
//!
//! * the per-cycle path — [`MultiChannelSystem::tick_into`] +
//!   [`MultiChannelSystem::next_event_at`] — advances every channel under one
//!   global clock and may skip provably idle cycles;
//! * [`MultiChannelSystem::run_until_idle`] exploits that channels share no
//!   state once fragments are steered: every channel runs its own
//!   event-driven loop to completion, in parallel across cores (rayon), and
//!   fragment completions are merged into host completions afterwards.
//!
//! Backlogged fragments waiting for a queue slot drain in arrival order,
//! skipping only entries whose request kind cannot currently be admitted (a
//! write whose queue has space enqueues even while an older read waits for a
//! read slot, and vice versa); order within each kind is always preserved.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use rome_hbm::units::Cycle;
use rome_telemetry::trace::TraceBuffer;

use crate::budget::{AbortReason, RunBudget, STALLED_SOURCE_WAKEUPS};
use crate::controller::MemoryController;
use crate::events::EventHorizon;
use crate::request::{CompletedRequest, MemoryRequest, RequestId, RequestKind};
use crate::source::TrafficSource;

/// A completed host-level request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostCompletion {
    /// The host request id.
    pub id: RequestId,
    /// Read or write.
    pub kind: RequestKind,
    /// Total bytes of the host request.
    pub bytes: u64,
    /// Arrival cycle of the host request.
    pub arrival: Cycle,
    /// Cycle at which the last fragment completed.
    pub completed: Cycle,
}

#[derive(Debug, Clone)]
struct HostTracker {
    kind: RequestKind,
    bytes: u64,
    arrival: Cycle,
    fragments_outstanding: u64,
    last_completion: Cycle,
}

/// Where pending fragments wait for a queue slot. The representation is
/// chosen by the calendar flag; both admit exactly the same fragments at
/// exactly the same cycles (admission to different channels is independent,
/// so only *cost* differs).
#[derive(Debug, Clone)]
enum BacklogStore<C: MemoryController> {
    /// Pre-calendar representation: one global arrival-ordered queue,
    /// scanned in full on every drain, plus per-channel pending-kind counts
    /// for the admission probe. Kept as the calendar-off oracle and bench
    /// baseline.
    Global {
        entries: VecDeque<(u16, C::Entry)>,
        /// Pending fragments per channel, indexed `[reads, writes]`.
        pending: Vec<[usize; 2]>,
    },
    /// Calendar representation: per-channel kind-counted queues, so draining
    /// and probing cost O(channels).
    PerChannel(Vec<ChannelBacklog<C>>),
}

impl<C: MemoryController> BacklogStore<C> {
    fn kind_index(kind: RequestKind) -> usize {
        match kind {
            RequestKind::Read => 0,
            RequestKind::Write => 1,
        }
    }

    fn push(&mut self, channel: u16, entry: C::Entry) {
        match self {
            BacklogStore::Global { entries, pending } => {
                let ch = channel as usize % pending.len();
                pending[ch][Self::kind_index(C::entry_kind(&entry))] += 1;
                entries.push_back((channel, entry));
            }
            BacklogStore::PerChannel(queues) => {
                let ch = channel as usize % queues.len();
                queues[ch].push(entry);
            }
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            BacklogStore::Global { entries, .. } => entries.is_empty(),
            BacklogStore::PerChannel(queues) => queues.iter().all(ChannelBacklog::is_empty),
        }
    }

    /// Whether channel `ch` holds a pending fragment a free `kind` slot
    /// could admit.
    fn has_pending(&self, ch: usize, kind: RequestKind) -> bool {
        match self {
            BacklogStore::Global { pending, .. } => pending[ch][Self::kind_index(kind)] > 0,
            BacklogStore::PerChannel(queues) => match kind {
                RequestKind::Read => queues[ch].pending_reads > 0,
                RequestKind::Write => queues[ch].pending_writes > 0,
            },
        }
    }

    /// Decompose into per-channel queues (the working form of
    /// `run_until_idle` and the pivot of every representation change),
    /// preserving arrival order within each channel.
    fn into_channel_queues(self, channels: usize) -> Vec<ChannelBacklog<C>> {
        match self {
            BacklogStore::PerChannel(queues) => queues,
            BacklogStore::Global { entries, .. } => {
                let mut queues: Vec<ChannelBacklog<C>> =
                    (0..channels).map(|_| ChannelBacklog::new()).collect();
                for (channel, entry) in entries {
                    queues[channel as usize % channels].push(entry);
                }
                queues
            }
        }
    }

    /// Rebuild the representation matching `calendar` from per-channel
    /// queues (the single place the Global pending counts are derived).
    fn from_channel_queues(queues: Vec<ChannelBacklog<C>>, calendar: bool) -> Self {
        if calendar {
            return BacklogStore::PerChannel(queues);
        }
        let mut entries = VecDeque::new();
        let mut pending = vec![[0usize; 2]; queues.len()];
        for (ch, queue) in queues.into_iter().enumerate() {
            pending[ch] = [queue.pending_reads, queue.pending_writes];
            for entry in queue.entries {
                entries.push_back((ch as u16, entry));
            }
        }
        BacklogStore::Global { entries, pending }
    }
}

/// A multi-channel memory system generic over its per-channel controller.
#[derive(Debug, Clone)]
pub struct MultiChannelSystem<C: MemoryController> {
    controllers: Vec<C>,
    backlog: BacklogStore<C>,
    host_requests: HashMap<RequestId, HostTracker>,
    next_auto_id: u64,
    /// Reused per-tick completion buffer (avoids an allocation per channel
    /// per cycle).
    scratch: Vec<CompletedRequest>,
    /// Whether the incremental event calendar is enabled (see the module
    /// docs). Disabled only to serve as the equivalence oracle / bench
    /// baseline.
    calendar: bool,
    /// Per-channel cached wakeup cycle (calendar mode): the next cycle at
    /// which the channel must be ticked. `Cycle::MAX` marks a quiescent
    /// channel; `0` marks a dirty one that must be ticked on the next call.
    wakeups: Vec<Cycle>,
    /// Lazy min-heap over `(wakeup, channel)` pairs. May hold stale entries
    /// (a channel whose slot has since changed); they are discarded when
    /// encountered, and the whole heap is rebuilt from the slots when it
    /// grows past a small multiple of the channel count.
    heap: BinaryHeap<Reverse<(Cycle, u16)>>,
}

impl<C: MemoryController> MultiChannelSystem<C> {
    /// Build a system from its per-channel controllers. The event calendar
    /// starts enabled.
    pub fn new(controllers: Vec<C>) -> Self {
        let channels = controllers.len();
        let mut sys = MultiChannelSystem {
            backlog: BacklogStore::PerChannel(
                (0..channels).map(|_| ChannelBacklog::new()).collect(),
            ),
            host_requests: HashMap::new(),
            next_auto_id: 1 << 48,
            scratch: Vec::new(),
            calendar: true,
            wakeups: vec![0; channels],
            heap: BinaryHeap::new(),
            controllers,
        };
        sys.reset_calendar();
        sys
    }

    /// Enable or disable the incremental event calendar.
    ///
    /// Disabling reverts to the pre-calendar behaviour (full backlog scans,
    /// every channel ticked every step, `next_event_at` polling every
    /// controller); results are bit-identical either way, only cost differs.
    /// Pending fragments are migrated between representations preserving
    /// per-channel arrival order (cross-channel interleaving is not
    /// observable: admission to different channels is independent).
    pub fn set_calendar(&mut self, enabled: bool) {
        if self.calendar == enabled {
            return;
        }
        self.calendar = enabled;
        let channels = self.controllers.len();
        let queues = std::mem::replace(&mut self.backlog, BacklogStore::PerChannel(Vec::new()))
            .into_channel_queues(channels);
        self.backlog = BacklogStore::from_channel_queues(queues, enabled);
        self.reset_calendar();
    }

    /// Whether the incremental event calendar is enabled.
    pub fn calendar(&self) -> bool {
        self.calendar
    }

    /// Mark every channel dirty: each must be ticked (and its wakeup
    /// recomputed) on the next `tick_into`. Used at construction, after a
    /// calendar toggle, and after `run_until_idle` advanced the controllers
    /// outside the calendar's bookkeeping.
    fn reset_calendar(&mut self) {
        self.heap.clear();
        for (ch, slot) in self.wakeups.iter_mut().enumerate() {
            *slot = 0;
            self.heap.push(Reverse((0, ch as u16)));
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.controllers.len()
    }

    /// The per-channel controllers (for aggregating domain-specific stats).
    pub fn controllers(&self) -> &[C] {
        &self.controllers
    }

    /// Mutable access to the per-channel controllers (for toggling
    /// controller-internal oracles like the data-oriented scan). Callers
    /// must not perturb scheduling state mid-run.
    pub fn controllers_mut(&mut self) -> &mut [C] {
        &mut self.controllers
    }

    /// The engine-level statistics of the whole system: per-channel
    /// [`crate::controller::StatsSnapshot`]s merged into one (counts and bytes summed,
    /// `mean_read_latency` weighted by per-channel read bytes,
    /// `row_hit_rate` by per-channel interface bytes). Feed the result to
    /// [`crate::simulate::report_from_host_completions`] to summarize a
    /// system run as a unified [`crate::simulate::SimulationReport`].
    pub fn stats_merged(&self) -> crate::controller::StatsSnapshot {
        let mut merged = crate::controller::StatsSnapshot::default();
        let mut latency_sum = 0.0;
        let mut latency_weight = 0.0;
        let mut hit_sum = 0.0;
        let mut hit_weight = 0.0;
        for c in &self.controllers {
            let s = c.stats_snapshot();
            merged.bytes_read += s.bytes_read;
            merged.bytes_written += s.bytes_written;
            merged.bytes_transferred += s.bytes_transferred;
            merged.activates += s.activates;
            latency_sum += s.mean_read_latency * s.bytes_read as f64;
            latency_weight += s.bytes_read as f64;
            hit_sum += s.row_hit_rate * s.bytes_transferred as f64;
            hit_weight += s.bytes_transferred as f64;
        }
        if latency_weight > 0.0 {
            merged.mean_read_latency = latency_sum / latency_weight;
        }
        if hit_weight > 0.0 {
            merged.row_hit_rate = hit_sum / hit_weight;
        }
        merged
    }

    /// Per-channel useful bytes transferred so far (reads + writes), used
    /// for the channel-load-balance analysis.
    pub fn bytes_per_channel(&self) -> Vec<u64> {
        self.controllers
            .iter()
            .map(|c| {
                let s = c.stats_snapshot();
                s.bytes_read + s.bytes_written
            })
            .collect()
    }

    /// Whether every queue, backlog entry, and in-flight transfer has
    /// drained.
    pub fn is_idle(&self) -> bool {
        self.backlog.is_empty() && self.controllers.iter().all(|c| c.is_idle())
    }

    /// Submit a host request: fragment it at `granularity` bytes and steer
    /// every fragment with `decode`, which maps a fragment to its channel
    /// and the channel-local decoded entry. Returns the id under which the
    /// completion will be reported (auto-assigned when the request's id is
    /// zero).
    pub fn submit_with(
        &mut self,
        mut request: MemoryRequest,
        granularity: u64,
        mut decode: impl FnMut(MemoryRequest) -> (u16, C::Entry),
    ) -> RequestId {
        if request.id.0 == 0 {
            request.id = RequestId(self.next_auto_id);
            self.next_auto_id += 1;
        }
        let fragments = request.fragments(granularity);
        self.host_requests.insert(
            request.id,
            HostTracker {
                kind: request.kind,
                bytes: request.bytes,
                arrival: request.arrival,
                fragments_outstanding: fragments.len() as u64,
                last_completion: 0,
            },
        );
        for frag in fragments {
            let (channel, entry) = decode(frag);
            self.backlog.push(channel, entry);
        }
        request.id
    }

    /// Advance the whole system by one nanosecond.
    ///
    /// Allocates a fresh completion vector per call; hot loops should prefer
    /// [`MultiChannelSystem::tick_into`] with a reused buffer.
    pub fn tick(&mut self, now: Cycle) -> Vec<HostCompletion> {
        let mut completions = Vec::new();
        self.tick_into(now, &mut completions);
        completions
    }

    /// Drain every currently admissible backlogged fragment into its
    /// channel's queues, marking channels that received work dirty so the
    /// tick loop visits them.
    /// Drain every currently admissible backlogged fragment, marking each
    /// channel that received work dirty (`wakeups[ch] = 0`): new work
    /// invalidates the cached wakeup, so the channel must be ticked this
    /// very cycle. (The mark is meaningful only in calendar mode but is
    /// written unconditionally — the slots are simply unused otherwise.)
    fn drain_backlog(&mut self) {
        let channels = self.controllers.len();
        match &mut self.backlog {
            BacklogStore::Global { entries, pending } => {
                // Pre-calendar drain: one order-preserving retain pass over
                // the whole backlog, O(backlog) per call.
                let controllers = &mut self.controllers;
                let wakeups = &mut self.wakeups;
                entries.retain(|(channel, entry)| {
                    let ch = *channel as usize % channels;
                    let ctrl = &mut controllers[ch];
                    let kind = C::entry_kind(entry);
                    if ctrl.slots_free_for(kind) > 0 {
                        let ok = ctrl.enqueue_entry(*entry);
                        debug_assert!(ok, "enqueue must succeed when a slot is free");
                        pending[ch][BacklogStore::<C>::kind_index(kind)] -= 1;
                        wakeups[ch] = 0;
                        false
                    } else {
                        true
                    }
                });
            }
            BacklogStore::PerChannel(queues) => {
                // Calendar drain: consult per-channel pending counts and
                // queue space first, so channels with nothing to admit cost
                // one comparison each.
                for (ch, queue) in queues.iter_mut().enumerate() {
                    let ctrl = &mut self.controllers[ch];
                    if queue.can_enqueue(ctrl) {
                        queue.drain_into(ctrl);
                        self.wakeups[ch] = 0;
                    }
                }
            }
        }
    }

    /// Advance the whole system by one nanosecond, appending completed host
    /// requests to `completions`. Returns `true` if any channel issued a
    /// command.
    ///
    /// In calendar mode, channels whose cached wakeup lies beyond `now` are
    /// skipped entirely: by the [`MemoryController::next_event_at`] lower-
    /// bound contract nothing their scheduler consults has changed, so the
    /// tick would provably have been a no-op. (Per-controller bookkeeping
    /// statistics such as `total_cycles` count only the cycles the channel
    /// was actually ticked; the simulation results are unaffected.)
    pub fn tick_into(&mut self, now: Cycle, completions: &mut Vec<HostCompletion>) -> bool {
        let calendar = self.calendar;
        self.drain_backlog();

        let before = completions.len();
        let mut issued = false;
        let MultiChannelSystem {
            controllers,
            scratch,
            host_requests,
            wakeups,
            heap,
            ..
        } = self;
        for (ch, ctrl) in controllers.iter_mut().enumerate() {
            if calendar && wakeups[ch] > now {
                continue;
            }
            let issued_ch = ctrl.tick_into(now, scratch);
            for done in scratch.drain(..) {
                absorb_fragment(host_requests, done, completions);
            }
            issued |= issued_ch;
            if calendar {
                // A channel that issued may issue again next cycle; one that
                // did not reports its own next event (its hint is complete
                // exactly because the tick issued nothing).
                let wakeup = if issued_ch {
                    now + 1
                } else {
                    ctrl.next_event_at(now)
                        .map_or(Cycle::MAX, |t| t.max(now + 1))
                };
                if wakeup != wakeups[ch] {
                    wakeups[ch] = wakeup;
                    if wakeup != Cycle::MAX {
                        heap.push(Reverse((wakeup, ch as u16)));
                    }
                }
            }
        }
        if calendar && heap.len() > (4 * controllers.len()).max(64) {
            // Compact the lazy heap: rebuild it from the authoritative
            // per-channel slots (amortized O(1) per push).
            heap.clear();
            for (ch, &w) in wakeups.iter().enumerate() {
                if w != Cycle::MAX {
                    heap.push(Reverse((w, ch as u16)));
                }
            }
        }
        for c in &completions[before..] {
            self.host_requests.remove(&c.id);
        }
        issued
    }

    /// The next cycle strictly after `now` at which any channel's state can
    /// change (see [`MemoryController::next_event_at`]), or at which a
    /// backlogged fragment could enter a queue. `None` when the whole system
    /// is quiescent.
    ///
    /// In calendar mode this is a heap peek plus an O(channels) admission
    /// probe; stale heap entries encountered on the way are discarded
    /// (`&mut self` exists for exactly that lazy maintenance). Each distinct
    /// channel is probed for admission at most once, however long its
    /// backlog is.
    pub fn next_event_at(&mut self, now: Cycle) -> Option<Cycle> {
        let mut horizon = EventHorizon::new(now);

        // Admission probe: a backlogged fragment whose channel has a free
        // slot of its kind can enqueue on the next cycle.
        let channels = self.controllers.len();
        for ch in 0..channels {
            let ctrl = &self.controllers[ch];
            if (self.backlog.has_pending(ch, RequestKind::Read)
                && ctrl.slots_free_for(RequestKind::Read) > 0)
                || (self.backlog.has_pending(ch, RequestKind::Write)
                    && ctrl.slots_free_for(RequestKind::Write) > 0)
            {
                horizon.consider(now + 1);
                break;
            }
        }

        if self.calendar {
            // Discard stale heap tops until one matches its channel's
            // current slot; that entry is the true minimum wakeup.
            while let Some(&Reverse((w, ch))) = self.heap.peek() {
                if self.wakeups[ch as usize] == w {
                    horizon.consider(w);
                    break;
                }
                self.heap.pop();
            }
        } else {
            for ctrl in &self.controllers {
                horizon.consider_opt(ctrl.next_event_at(now));
            }
        }
        horizon.earliest()
    }

    /// From-scratch recompute of [`MultiChannelSystem::next_event_at`],
    /// bypassing the lazy heap and the pending counts: the admission probe
    /// re-derives pending kinds from the raw backlog entries and the channel
    /// minimum is a linear scan of the wakeup slots. Used by the property
    /// tests as the oracle the incremental answer must always match.
    #[cfg(test)]
    fn next_event_at_oracle(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon = EventHorizon::new(now);
        let channels = self.controllers.len();
        let mut pending = vec![[false; 2]; channels];
        match &self.backlog {
            BacklogStore::Global { entries, .. } => {
                for (channel, entry) in entries {
                    let idx = BacklogStore::<C>::kind_index(C::entry_kind(entry));
                    pending[*channel as usize % channels][idx] = true;
                }
            }
            BacklogStore::PerChannel(queues) => {
                for (ch, queue) in queues.iter().enumerate() {
                    for entry in &queue.entries {
                        pending[ch][BacklogStore::<C>::kind_index(C::entry_kind(entry))] = true;
                    }
                }
            }
        }
        for (ch, ctrl) in self.controllers.iter().enumerate() {
            if (pending[ch][0] && ctrl.slots_free_for(RequestKind::Read) > 0)
                || (pending[ch][1] && ctrl.slots_free_for(RequestKind::Write) > 0)
            {
                horizon.consider(now + 1);
            }
        }
        if self.calendar {
            for &w in &self.wakeups {
                if w != Cycle::MAX {
                    horizon.consider(w);
                }
            }
        } else {
            for ctrl in &self.controllers {
                horizon.consider_opt(ctrl.next_event_at(now));
            }
        }
        horizon.earliest()
    }

    /// Drive the system from a lazy [`TrafficSource`] under the global event
    /// loop until the source is exhausted and every submitted request has
    /// completed, or `max_ns` elapses. Returns the host completions in
    /// completion order and the cycle the run stopped at.
    ///
    /// Pulled requests are fragmented at `granularity` and steered with
    /// `decode` exactly like [`MultiChannelSystem::submit_with`]; host
    /// completions are fed back to the source
    /// ([`TrafficSource::on_completion`]), which is what closed-loop sources
    /// key their next release on. The event horizon merges the system's
    /// [`MultiChannelSystem::next_event_at`] with the source's
    /// [`TrafficSource::next_arrival_at`], so idle gaps between arrivals are
    /// skipped, not ticked through.
    ///
    /// For a `ReplaySource` over a vector whose arrivals are all at cycle 0,
    /// this executes the exact schedule of submitting the whole vector up
    /// front and running the event loop — the regression suite pins
    /// bit-identical completions for both memory systems.
    pub fn run_with_source<S: TrafficSource>(
        &mut self,
        source: &mut S,
        granularity: u64,
        max_ns: Cycle,
        decode: impl FnMut(MemoryRequest) -> (u16, C::Entry),
    ) -> (Vec<HostCompletion>, Cycle) {
        let (completions, stop, _) = self.run_with_source_budgeted(
            source,
            granularity,
            max_ns,
            decode,
            &RunBudget::unlimited(),
        );
        (completions, stop)
    }

    /// Like [`MultiChannelSystem::run_with_source`] but metered against a
    /// [`RunBudget`], returning the abort reason (if any) alongside the
    /// completions. Stall detection is active even under an unlimited
    /// budget: a source that keeps promising an arrival which never becomes
    /// pullable, or that waits on a completion no in-flight work can
    /// deliver, aborts with [`AbortReason::StalledSource`] after
    /// [`STALLED_SOURCE_WAKEUPS`] consecutive fully idle wake-ups instead of
    /// spinning to `max_ns`. With [`RunBudget::unlimited`] and a live source
    /// the completions and stop cycle are bit-identical to
    /// [`MultiChannelSystem::run_with_source`].
    pub fn run_with_source_budgeted<S: TrafficSource>(
        &mut self,
        source: &mut S,
        granularity: u64,
        max_ns: Cycle,
        mut decode: impl FnMut(MemoryRequest) -> (u16, C::Entry),
        budget: &RunBudget,
    ) -> (Vec<HostCompletion>, Cycle, Option<AbortReason>) {
        let mut completions = Vec::new();
        let mut pulled: Vec<MemoryRequest> = Vec::new();
        let mut now: Cycle = 0;
        let mut meter = budget.meter();
        let mut aborted = None;
        let mut idle_wakeups: u64 = 0;
        let mut idle_steps: u64 = 0;
        self.arm_trace(budget);
        loop {
            if let Some(reason) = meter.on_step(now) {
                aborted = Some(reason);
                break;
            }
            source.pull_into(now, &mut pulled);
            let pulled_any = !pulled.is_empty();
            for req in pulled.drain(..) {
                self.submit_with(req, granularity, &mut decode);
            }
            if (source.is_exhausted() && self.is_idle()) || now >= max_ns {
                break;
            }
            let before = completions.len();
            let issued = self.tick_into(now, &mut completions);
            let completed_any = completions.len() > before;
            for c in &completions[before..] {
                source.on_completion(c);
            }
            // Stall detection: see `simulate::run_with_source_budgeted` — a
            // live run resets the streak on any *data* progress; only a
            // source that keeps scheduling wake-ups without ever delivering
            // accumulates STALLED_SOURCE_WAKEUPS fully idle ones. `issued`
            // does not reset the streak (autonomous refresh upkeep must not
            // mask a stuck source).
            if pulled_any || completed_any || !self.is_idle() {
                idle_wakeups = 0;
            } else {
                idle_wakeups += 1;
                if idle_wakeups >= STALLED_SOURCE_WAKEUPS {
                    aborted = Some(AbortReason::StalledSource);
                    break;
                }
            }
            idle_steps += (!issued) as u64;
            now = if issued {
                now + 1
            } else {
                let mut horizon = self.next_event_at(now);
                if let Some(at) = source.next_arrival_at() {
                    let at = at.max(now + 1);
                    horizon = Some(horizon.map_or(at, |h| h.min(at)));
                }
                match horizon {
                    Some(t) => t.max(now + 1),
                    // No system event and no scheduled arrival: if the system
                    // is idle nothing can ever change (completions only come
                    // from in-flight work), so a source waiting on one is
                    // stuck — abort with a tagged reason instead of crawling
                    // to max_ns.
                    None if self.is_idle() => {
                        if !source.is_exhausted() {
                            aborted = Some(AbortReason::StalledSource);
                        }
                        break;
                    }
                    None => now + 1,
                }
            };
        }
        if let Some(sink) = &budget.sink {
            sink.on_run_end(meter.events(), idle_steps, aborted);
        }
        self.harvest_trace(budget);
        (completions, now, aborted)
    }

    /// Arm every channel controller's flight recorder from the budget's
    /// trace sink, each stamped with its channel id (Chrome `pid` track);
    /// no-op without an attached sink.
    fn arm_trace(&mut self, budget: &RunBudget) {
        if let Some(trace) = &budget.trace {
            let config = trace.config();
            for (ch, ctrl) in self.controllers.iter_mut().enumerate() {
                ctrl.set_trace(config.for_channel(ch as u16));
            }
        }
    }

    /// Harvest every channel's recorder into the budget's trace sink. The
    /// per-channel buffers merge through [`TraceBuffer::absorb`], whose full
    /// `Ord` sort makes the result independent of harvest order — the
    /// parallel runner can hand buffers back in any thread order without
    /// perturbing the trace bytes.
    fn harvest_trace(&mut self, budget: &RunBudget) {
        if let Some(trace) = &budget.trace {
            let mut merged = TraceBuffer::default();
            for ctrl in self.controllers.iter_mut() {
                merged.absorb(ctrl.take_trace());
            }
            trace.absorb(merged);
        }
    }

    /// Run until all submitted requests complete or `max_ns` elapses;
    /// returns the completions (sorted by completion time, then id) and the
    /// cycle the run stopped at.
    ///
    /// Channels share no state once fragments are steered, so each channel
    /// runs its own event-driven loop to completion — in parallel across
    /// channels — and the fragment completions are merged into host
    /// completions afterwards. Totals (completion counts, bytes, per-channel
    /// byte distribution) match the per-cycle [`MultiChannelSystem::tick`]
    /// path exactly; per-request completion *times* may differ slightly
    /// because each channel admits its own backlog as fast as its queues
    /// allow instead of once per global cycle. The equivalence suite pins
    /// the invariants.
    pub fn run_until_idle(&mut self, max_ns: Cycle) -> (Vec<HostCompletion>, Cycle)
    where
        C: Send,
    {
        let (completions, stop, _) = self.run_until_idle_budgeted(max_ns, &RunBudget::unlimited());
        (completions, stop)
    }

    /// Like [`MultiChannelSystem::run_until_idle`] but metered against a
    /// [`RunBudget`], returning the abort reason (if any) alongside the
    /// completions. Each channel worker meters independently against its own
    /// [`crate::budget::BudgetMeter`] (the channels share no state), so
    /// [`RunBudget::max_events`] bounds events *per channel*; the returned
    /// reason is the first aborting channel's, in channel order. Channels
    /// that aborted park their unfinished work in the backlog exactly like a
    /// `max_ns` cutoff, so a later run can resume it. With
    /// [`RunBudget::unlimited`] this is bit-identical to
    /// [`MultiChannelSystem::run_until_idle`].
    pub fn run_until_idle_budgeted(
        &mut self,
        max_ns: Cycle,
        budget: &RunBudget,
    ) -> (Vec<HostCompletion>, Cycle, Option<AbortReason>)
    where
        C: Send,
    {
        self.arm_trace(budget);
        let channels = self.controllers.len();
        let mut backlogs: Vec<ChannelBacklog<C>> =
            std::mem::replace(&mut self.backlog, BacklogStore::PerChannel(Vec::new()))
                .into_channel_queues(channels);

        let tasks: Vec<(&mut C, &mut ChannelBacklog<C>)> = self
            .controllers
            .iter_mut()
            .zip(backlogs.iter_mut())
            .collect();
        let per_channel: Vec<(
            Vec<CompletedRequest>,
            Cycle,
            Option<AbortReason>,
            ChannelMeterStats,
        )> = tasks
            .into_par_iter()
            .map(|(ctrl, backlog)| run_channel_until_idle(ctrl, backlog, max_ns, budget))
            .collect();

        // Fragments still waiting when max_ns cut the run short go back to
        // the system backlog: they stay visible to is_idle() and to a later
        // run_until_idle / tick_into, exactly like the per-cycle path.
        self.backlog = BacklogStore::from_channel_queues(backlogs, self.calendar);
        // The controllers advanced outside the calendar's bookkeeping; every
        // cached wakeup is stale.
        self.reset_calendar();

        let mut stop = 0;
        let mut aborted = None;
        let mut fragments = Vec::new();
        let mut meter_total = ChannelMeterStats::default();
        for (done, t, channel_abort, meter_stats) in per_channel {
            stop = stop.max(t);
            aborted = aborted.or(channel_abort);
            fragments.extend(done);
            meter_total.events += meter_stats.events;
            meter_total.idle_steps += meter_stats.idle_steps;
        }
        // One aggregate record for the sharded run (events summed across
        // channel workers), mirroring the single-loop drivers.
        if let Some(sink) = &budget.sink {
            sink.on_run_end(meter_total.events, meter_total.idle_steps, aborted);
        }
        self.harvest_trace(budget);
        fragments.sort_unstable_by_key(|c| (c.completed, c.id.0));

        let mut completions = Vec::new();
        for done in fragments {
            absorb_fragment(&mut self.host_requests, done, &mut completions);
        }
        for c in &completions {
            self.host_requests.remove(&c.id);
        }
        (completions, stop, aborted)
    }
}

/// Shard a multi-cube memory system across threads: run `run` on every cube
/// in parallel (rayon) and collect the results back in cube order — the same
/// share-nothing decomposition [`MultiChannelSystem::run_until_idle`]
/// applies one level down to channels. `Cube` is any system type (the
/// domain wrappers around [`MultiChannelSystem`] included); traffic must
/// already be steered per cube, exactly as fragments are steered per channel
/// before the channels run.
pub fn run_cubes<Cube, R>(cubes: &mut [Cube], run: impl Fn(usize, &mut Cube) -> R + Sync) -> Vec<R>
where
    Cube: Send,
    R: Send,
{
    let tasks: Vec<(usize, &mut Cube)> = cubes.iter_mut().enumerate().collect();
    tasks
        .into_par_iter()
        .map(|(i, cube)| run(i, cube))
        .collect()
}

/// Fold one completed fragment into its host tracker, emitting a
/// [`HostCompletion`] when the last fragment of the host request finishes.
fn absorb_fragment(
    host_requests: &mut HashMap<RequestId, HostTracker>,
    done: CompletedRequest,
    completions: &mut Vec<HostCompletion>,
) {
    if let Some(tracker) = host_requests.get_mut(&done.id) {
        tracker.fragments_outstanding -= 1;
        tracker.last_completion = tracker.last_completion.max(done.completed);
        if tracker.fragments_outstanding == 0 {
            completions.push(HostCompletion {
                id: done.id,
                kind: tracker.kind,
                bytes: tracker.bytes,
                arrival: tracker.arrival,
                completed: tracker.last_completion,
            });
        }
    }
}

/// One channel's share of the pending fragments, in arrival order, with
/// per-kind counts so the drain can stop as soon as nothing can be admitted.
#[derive(Debug, Clone)]
struct ChannelBacklog<C: MemoryController> {
    entries: VecDeque<C::Entry>,
    pending_reads: usize,
    pending_writes: usize,
}

impl<C: MemoryController> ChannelBacklog<C> {
    fn new() -> Self {
        ChannelBacklog {
            entries: VecDeque::new(),
            pending_reads: 0,
            pending_writes: 0,
        }
    }

    fn push(&mut self, entry: C::Entry) {
        match C::entry_kind(&entry) {
            RequestKind::Read => self.pending_reads += 1,
            RequestKind::Write => self.pending_writes += 1,
        }
        self.entries.push_back(entry);
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Move every currently admissible fragment into the controller's
    /// queues, preserving arrival order within each kind.
    fn drain_into(&mut self, ctrl: &mut C) {
        let mut read_ok = ctrl.slots_free_for(RequestKind::Read) > 0;
        let mut write_ok = ctrl.slots_free_for(RequestKind::Write) > 0;
        let mut i = 0;
        while i < self.entries.len() {
            let admissible_reads = read_ok && self.pending_reads > 0;
            let admissible_writes = write_ok && self.pending_writes > 0;
            if !admissible_reads && !admissible_writes {
                break;
            }
            let kind = C::entry_kind(&self.entries[i]);
            let ok = match kind {
                RequestKind::Read => read_ok,
                RequestKind::Write => write_ok,
            };
            if ok {
                let entry = self.entries.remove(i).expect("index in bounds");
                match kind {
                    RequestKind::Read => self.pending_reads -= 1,
                    RequestKind::Write => self.pending_writes -= 1,
                }
                let accepted = ctrl.enqueue_entry(entry);
                debug_assert!(accepted, "enqueue must succeed when a slot is free");
                read_ok = ctrl.slots_free_for(RequestKind::Read) > 0;
                write_ok = ctrl.slots_free_for(RequestKind::Write) > 0;
            } else {
                i += 1;
            }
        }
    }

    /// Whether any held fragment could enqueue right now.
    fn can_enqueue(&self, ctrl: &C) -> bool {
        (self.pending_reads > 0 && ctrl.slots_free_for(RequestKind::Read) > 0)
            || (self.pending_writes > 0 && ctrl.slots_free_for(RequestKind::Write) > 0)
    }
}

/// Event-driven loop for one channel: feed it its share of the backlog,
/// jump to the next event after every no-op tick, and return the fragment
/// completions plus the cycle the channel went idle (or `max_ns`), plus the
/// abort reason if the channel's budget meter tripped. Each channel meters
/// independently (channels share no state once fragments are steered).
fn run_channel_until_idle<C: MemoryController>(
    ctrl: &mut C,
    backlog: &mut ChannelBacklog<C>,
    max_ns: Cycle,
    budget: &RunBudget,
) -> (
    Vec<CompletedRequest>,
    Cycle,
    Option<AbortReason>,
    ChannelMeterStats,
) {
    let mut done = Vec::new();
    let mut now = 0;
    let mut stop = 0;
    let mut meter = budget.meter();
    let mut aborted = None;
    let mut idle_steps: u64 = 0;
    while (!backlog.is_empty() || !ctrl.is_idle()) && now < max_ns {
        if let Some(reason) = meter.on_step(now) {
            aborted = Some(reason);
            break;
        }
        backlog.drain_into(ctrl);
        let issued = ctrl.tick_into(now, &mut done);
        stop = now + 1;
        let arrival_next = backlog.can_enqueue(ctrl);
        idle_steps += (!issued) as u64;
        now = if issued || arrival_next {
            now + 1
        } else {
            ctrl.next_event_at(now).map_or(now + 1, |t| t.max(now + 1))
        };
    }
    let finished = backlog.is_empty() && ctrl.is_idle() && aborted.is_none();
    let stop = if finished {
        stop
    } else if aborted.is_some() {
        // An aborted channel stopped at the cycle its meter tripped, not at
        // the time limit.
        now
    } else {
        max_ns
    };
    let meter_stats = ChannelMeterStats {
        events: meter.events(),
        idle_steps,
    };
    (done, stop, aborted, meter_stats)
}

/// Per-channel loop-meter counters surfaced by [`run_channel_until_idle`] so
/// the system-level driver can record one aggregate [`crate::budget::RunSink`] entry for
/// the whole sharded run instead of one per channel worker.
#[derive(Debug, Clone, Copy, Default)]
struct ChannelMeterStats {
    events: u64,
    idle_steps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::StatsSnapshot;
    use proptest::prelude::*;

    /// A deterministic toy controller for exercising the system layer in
    /// isolation: split read/write queues of `cap` entries and a single
    /// service unit with a per-request latency derived from the request
    /// itself. It satisfies the `next_event_at` lower-bound contract
    /// exactly: after a tick that issued nothing, either the service unit
    /// is busy (next event = its completion) or the controller is empty
    /// (no event).
    #[derive(Debug, Clone)]
    struct MockController {
        reads: VecDeque<MemoryRequest>,
        writes: VecDeque<MemoryRequest>,
        cap: usize,
        in_flight: Option<(MemoryRequest, Cycle)>,
        stats: StatsSnapshot,
    }

    impl MockController {
        fn new(cap: usize) -> Self {
            MockController {
                reads: VecDeque::new(),
                writes: VecDeque::new(),
                cap,
                in_flight: None,
                stats: StatsSnapshot::default(),
            }
        }

        fn service_latency(req: &MemoryRequest) -> Cycle {
            let kind_extra = if req.kind.is_read() { 0 } else { 2 };
            3 + req.bytes % 7 + kind_extra
        }
    }

    impl MemoryController for MockController {
        type Entry = MemoryRequest;

        fn enqueue(&mut self, request: MemoryRequest) -> bool {
            self.enqueue_entry(request)
        }

        fn enqueue_entry(&mut self, entry: MemoryRequest) -> bool {
            let queue = match entry.kind {
                RequestKind::Read => &mut self.reads,
                RequestKind::Write => &mut self.writes,
            };
            if queue.len() >= self.cap {
                return false;
            }
            queue.push_back(entry);
            true
        }

        fn entry_kind(entry: &MemoryRequest) -> RequestKind {
            entry.kind
        }

        fn tick_into(&mut self, now: Cycle, completed: &mut Vec<CompletedRequest>) -> bool {
            if let Some((req, at)) = self.in_flight {
                if at <= now {
                    completed.push(CompletedRequest {
                        id: req.id,
                        kind: req.kind,
                        bytes: req.bytes,
                        arrival: req.arrival,
                        completed: at,
                    });
                    match req.kind {
                        RequestKind::Read => self.stats.bytes_read += req.bytes,
                        RequestKind::Write => self.stats.bytes_written += req.bytes,
                    }
                    self.stats.bytes_transferred += req.bytes;
                    self.in_flight = None;
                }
            }
            if self.in_flight.is_none() {
                // Reads have priority; order within each kind is FIFO.
                if let Some(req) = self.reads.pop_front().or_else(|| self.writes.pop_front()) {
                    self.in_flight = Some((req, now + Self::service_latency(&req)));
                    return true;
                }
            }
            false
        }

        fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
            self.in_flight.map(|(_, at)| at.max(now + 1))
        }

        fn is_idle(&self) -> bool {
            self.reads.is_empty() && self.writes.is_empty() && self.in_flight.is_none()
        }

        fn slots_free(&self) -> usize {
            2 * self.cap - self.reads.len() - self.writes.len()
        }

        fn slots_free_for(&self, kind: RequestKind) -> usize {
            match kind {
                RequestKind::Read => self.cap - self.reads.len(),
                RequestKind::Write => self.cap - self.writes.len(),
            }
        }

        fn stats_snapshot(&self) -> StatsSnapshot {
            self.stats
        }
    }

    const CHANNELS: usize = 3;
    const GRANULARITY: u64 = 64;

    fn mock_system(calendar: bool) -> MultiChannelSystem<MockController> {
        let mut sys =
            MultiChannelSystem::new((0..CHANNELS).map(|_| MockController::new(2)).collect());
        sys.set_calendar(calendar);
        sys
    }

    fn submit(sys: &mut MultiChannelSystem<MockController>, req: MemoryRequest) {
        sys.submit_with(req, GRANULARITY, |frag| {
            let ch = (frag.address.raw() / GRANULARITY) % CHANNELS as u64;
            (ch as u16, frag)
        });
    }

    /// Drive the event loop up to (exactly) `until`, so interleaved
    /// submissions land at identical cycles in every compared system. With
    /// `check_oracle`, the incremental `next_event_at` is compared against
    /// the from-scratch recompute after every tick.
    fn advance(
        sys: &mut MultiChannelSystem<MockController>,
        mut now: Cycle,
        until: Cycle,
        done: &mut Vec<HostCompletion>,
        check_oracle: bool,
    ) -> Cycle {
        while now < until {
            let issued = sys.tick_into(now, done);
            if check_oracle {
                let oracle = sys.next_event_at_oracle(now);
                assert_eq!(sys.next_event_at(now), oracle, "calendar diverged at {now}");
            }
            let next = if issued {
                now + 1
            } else {
                sys.next_event_at(now).map_or(until, |t| t.max(now + 1))
            };
            now = next.min(until);
        }
        now
    }

    /// Drive the event loop until the system is idle.
    fn drain(
        sys: &mut MultiChannelSystem<MockController>,
        mut now: Cycle,
        done: &mut Vec<HostCompletion>,
        check_oracle: bool,
    ) -> Cycle {
        let mut steps = 0u64;
        while !sys.is_idle() {
            let issued = sys.tick_into(now, done);
            if check_oracle {
                let oracle = sys.next_event_at_oracle(now);
                assert_eq!(sys.next_event_at(now), oracle, "calendar diverged at {now}");
            }
            now = if issued {
                now + 1
            } else {
                sys.next_event_at(now).map_or(now + 1, |t| t.max(now + 1))
            };
            steps += 1;
            assert!(steps < 1_000_000, "event loop failed to converge");
        }
        now
    }

    fn request(id: u64, seed: u64, write: bool, chunks: u64, arrival: Cycle) -> MemoryRequest {
        let bytes = chunks * GRANULARITY;
        let addr = seed * GRANULARITY;
        if write {
            MemoryRequest::write(id, addr, bytes, arrival)
        } else {
            MemoryRequest::read(id, addr, bytes, arrival)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The tentpole invariant: over random interleavings of submissions
        /// and event-driven time, the incrementally maintained
        /// `next_event_at` (cached wakeups + lazy heap + pending counts)
        /// always equals a from-scratch recompute, and the calendar run
        /// produces exactly the completions of the pre-calendar loop.
        #[test]
        fn incremental_next_event_matches_from_scratch_recompute(
            ops in prop::collection::vec((0u64..6, 0u64..2, 1u64..5, 0u64..30), 1..24)
        ) {
            let mut cal = mock_system(true);
            let mut plain = mock_system(false);
            let mut done_cal = Vec::new();
            let mut done_plain = Vec::new();
            let (mut now_cal, mut now_plain) = (0u64, 0u64);
            let mut t = 0u64;
            for (i, &(seed, kind, chunks, gap)) in ops.iter().enumerate() {
                let req = request(i as u64 + 1, seed, kind == 1, chunks, t);
                submit(&mut cal, req);
                submit(&mut plain, req);
                t += gap;
                now_cal = advance(&mut cal, now_cal, t, &mut done_cal, true);
                now_plain = advance(&mut plain, now_plain, t, &mut done_plain, false);
            }
            now_cal = drain(&mut cal, now_cal, &mut done_cal, true);
            now_plain = drain(&mut plain, now_plain, &mut done_plain, false);
            prop_assert_eq!(done_cal, done_plain);
            prop_assert_eq!(now_cal, now_plain);
            prop_assert_eq!(cal.bytes_per_channel(), plain.bytes_per_channel());
        }
    }

    #[test]
    fn lazy_heap_compaction_preserves_results() {
        // Enough sequential traffic to push the heap past its compaction
        // threshold (max(64, 4 × channels)) several times over; the oracle
        // check inside drain() pins every step.
        let mut sys = mock_system(true);
        for i in 0..96u64 {
            submit(&mut sys, request(i + 1, i, i % 3 == 0, 2, 0));
        }
        let mut done = Vec::new();
        drain(&mut sys, 0, &mut done, true);
        assert_eq!(done.len(), 96);
        assert!(sys.is_idle());
    }

    #[test]
    fn set_calendar_migrates_pending_fragments() {
        // Fill a deep backlog, flip representations mid-flight both ways,
        // and verify nothing is lost or reordered within a channel.
        let mut sys = mock_system(true);
        for i in 0..32u64 {
            submit(&mut sys, request(i + 1, i, i % 2 == 0, 3, 0));
        }
        sys.set_calendar(false);
        assert!(!sys.is_idle());
        let mut done = Vec::new();
        let now = advance(&mut sys, 0, 40, &mut done, false);
        sys.set_calendar(true);
        drain(&mut sys, now, &mut done, true);
        assert_eq!(done.len(), 32);
        let total: u64 = sys.bytes_per_channel().iter().sum();
        assert_eq!(total, 32 * 3 * GRANULARITY);
    }

    #[test]
    fn quiescent_system_reports_no_events() {
        let mut sys = mock_system(true);
        // A fresh (or reset) calendar marks every channel dirty, so the
        // first query conservatively wakes on the next cycle — a harmless
        // spurious event, never a missed one.
        assert_eq!(sys.next_event_at(0), Some(1));
        let mut done = Vec::new();
        sys.tick_into(0, &mut done);
        assert_eq!(sys.next_event_at(0), None);
        submit(&mut sys, request(1, 0, false, 1, 0));
        // Pending backlog with free slots: admission possible next cycle.
        assert_eq!(sys.next_event_at(5), Some(6));
        drain(&mut sys, 0, &mut done, true);
        assert_eq!(done.len(), 1);
        assert_eq!(sys.next_event_at(10_000), None);
    }
}
