//! The generic multi-channel memory system.
//!
//! [`MultiChannelSystem`] models the memory side of one accelerator for *any*
//! controller implementing [`MemoryController`]: host requests of arbitrary
//! size are fragmented at the system's access granularity, steered to their
//! channel by a caller-provided decode function, executed by the per-channel
//! controllers, and reassembled into [`HostCompletion`]s when the last
//! fragment finishes. Both the conventional HBM4 system (`rome-mc`) and the
//! RoMe system (`rome-core`) are thin wrappers around this type — the wrapper
//! owns the address decode and the domain-specific statistics, this type owns
//! all of the event-driven plumbing.
//!
//! # Drivers
//!
//! Two driving styles are provided:
//!
//! * the per-cycle path — [`MultiChannelSystem::tick_into`] +
//!   [`MultiChannelSystem::next_event_at`] — advances every channel under one
//!   global clock and may skip provably idle cycles;
//! * [`MultiChannelSystem::run_until_idle`] exploits that channels share no
//!   state once fragments are steered: every channel runs its own
//!   event-driven loop to completion, in parallel across cores (rayon), and
//!   fragment completions are merged into host completions afterwards.
//!
//! Backlogged fragments waiting for a queue slot drain in arrival order,
//! skipping only entries whose request kind cannot currently be admitted (a
//! write whose queue has space enqueues even while an older read waits for a
//! read slot, and vice versa); order within each kind is always preserved.

use std::collections::{HashMap, VecDeque};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use rome_hbm::units::Cycle;

use crate::controller::MemoryController;
use crate::request::{CompletedRequest, MemoryRequest, RequestId, RequestKind};

/// A completed host-level request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostCompletion {
    /// The host request id.
    pub id: RequestId,
    /// Read or write.
    pub kind: RequestKind,
    /// Total bytes of the host request.
    pub bytes: u64,
    /// Arrival cycle of the host request.
    pub arrival: Cycle,
    /// Cycle at which the last fragment completed.
    pub completed: Cycle,
}

#[derive(Debug, Clone)]
struct HostTracker {
    kind: RequestKind,
    bytes: u64,
    arrival: Cycle,
    fragments_outstanding: u64,
    last_completion: Cycle,
}

/// A multi-channel memory system generic over its per-channel controller.
#[derive(Debug, Clone)]
pub struct MultiChannelSystem<C: MemoryController> {
    controllers: Vec<C>,
    /// Fragments waiting for a free slot in their channel's queue, in
    /// arrival order: `(channel, decoded entry)`.
    backlog: VecDeque<(u16, C::Entry)>,
    host_requests: HashMap<RequestId, HostTracker>,
    next_auto_id: u64,
    /// Reused per-tick completion buffer (avoids an allocation per channel
    /// per cycle).
    scratch: Vec<CompletedRequest>,
}

impl<C: MemoryController> MultiChannelSystem<C> {
    /// Build a system from its per-channel controllers.
    pub fn new(controllers: Vec<C>) -> Self {
        MultiChannelSystem {
            controllers,
            backlog: VecDeque::new(),
            host_requests: HashMap::new(),
            next_auto_id: 1 << 48,
            scratch: Vec::new(),
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.controllers.len()
    }

    /// The per-channel controllers (for aggregating domain-specific stats).
    pub fn controllers(&self) -> &[C] {
        &self.controllers
    }

    /// Per-channel useful bytes transferred so far (reads + writes), used
    /// for the channel-load-balance analysis.
    pub fn bytes_per_channel(&self) -> Vec<u64> {
        self.controllers
            .iter()
            .map(|c| {
                let s = c.stats_snapshot();
                s.bytes_read + s.bytes_written
            })
            .collect()
    }

    /// Whether every queue, backlog entry, and in-flight transfer has
    /// drained.
    pub fn is_idle(&self) -> bool {
        self.backlog.is_empty() && self.controllers.iter().all(|c| c.is_idle())
    }

    /// Submit a host request: fragment it at `granularity` bytes and steer
    /// every fragment with `decode`, which maps a fragment to its channel
    /// and the channel-local decoded entry. Returns the id under which the
    /// completion will be reported (auto-assigned when the request's id is
    /// zero).
    pub fn submit_with(
        &mut self,
        mut request: MemoryRequest,
        granularity: u64,
        mut decode: impl FnMut(MemoryRequest) -> (u16, C::Entry),
    ) -> RequestId {
        if request.id.0 == 0 {
            request.id = RequestId(self.next_auto_id);
            self.next_auto_id += 1;
        }
        let fragments = request.fragments(granularity);
        self.host_requests.insert(
            request.id,
            HostTracker {
                kind: request.kind,
                bytes: request.bytes,
                arrival: request.arrival,
                fragments_outstanding: fragments.len() as u64,
                last_completion: 0,
            },
        );
        for frag in fragments {
            self.backlog.push_back(decode(frag));
        }
        request.id
    }

    /// Advance the whole system by one nanosecond.
    ///
    /// Allocates a fresh completion vector per call; hot loops should prefer
    /// [`MultiChannelSystem::tick_into`] with a reused buffer.
    pub fn tick(&mut self, now: Cycle) -> Vec<HostCompletion> {
        let mut completions = Vec::new();
        self.tick_into(now, &mut completions);
        completions
    }

    /// Advance the whole system by one nanosecond, appending completed host
    /// requests to `completions`. Returns `true` if any channel issued a
    /// command.
    pub fn tick_into(&mut self, now: Cycle, completions: &mut Vec<HostCompletion>) -> bool {
        // Drain the backlog into per-channel queues in arrival order,
        // skipping entries whose kind cannot currently be admitted. One
        // order-preserving retain pass keeps the whole drain O(backlog).
        let channels = self.controllers.len();
        let controllers = &mut self.controllers;
        self.backlog.retain(|(channel, entry)| {
            let ctrl = &mut controllers[*channel as usize % channels];
            if ctrl.slots_free_for(C::entry_kind(entry)) > 0 {
                let ok = ctrl.enqueue_entry(*entry);
                debug_assert!(ok, "enqueue must succeed when a slot is free");
                false
            } else {
                true
            }
        });

        let before = completions.len();
        let mut issued = false;
        let MultiChannelSystem {
            controllers,
            scratch,
            host_requests,
            ..
        } = self;
        for ctrl in controllers.iter_mut() {
            issued |= ctrl.tick_into(now, scratch);
            for done in scratch.drain(..) {
                absorb_fragment(host_requests, done, completions);
            }
        }
        for c in &completions[before..] {
            self.host_requests.remove(&c.id);
        }
        issued
    }

    /// The next cycle strictly after `now` at which any channel's state can
    /// change (see [`MemoryController::next_event_at`]), or at which a
    /// backlogged fragment could enter a queue. `None` when the whole system
    /// is quiescent.
    pub fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut consider = |t: Cycle| {
            let t = t.max(now + 1);
            next = Some(next.map_or(t, |n: Cycle| n.min(t)));
        };
        let channels = self.controllers.len();
        for (channel, entry) in &self.backlog {
            let ctrl = &self.controllers[*channel as usize % channels];
            if ctrl.slots_free_for(C::entry_kind(entry)) > 0 {
                consider(now + 1);
                break;
            }
        }
        for ctrl in &self.controllers {
            if let Some(t) = ctrl.next_event_at(now) {
                consider(t);
            }
        }
        next
    }

    /// Run until all submitted requests complete or `max_ns` elapses;
    /// returns the completions (sorted by completion time, then id) and the
    /// cycle the run stopped at.
    ///
    /// Channels share no state once fragments are steered, so each channel
    /// runs its own event-driven loop to completion — in parallel across
    /// channels — and the fragment completions are merged into host
    /// completions afterwards. Totals (completion counts, bytes, per-channel
    /// byte distribution) match the per-cycle [`MultiChannelSystem::tick`]
    /// path exactly; per-request completion *times* may differ slightly
    /// because each channel admits its own backlog as fast as its queues
    /// allow instead of once per global cycle. The equivalence suite pins
    /// the invariants.
    pub fn run_until_idle(&mut self, max_ns: Cycle) -> (Vec<HostCompletion>, Cycle)
    where
        C: Send,
    {
        let channels = self.controllers.len();
        let mut backlogs: Vec<ChannelBacklog<C>> =
            (0..channels).map(|_| ChannelBacklog::new()).collect();
        for (channel, entry) in self.backlog.drain(..) {
            backlogs[channel as usize % channels].push(entry);
        }

        let tasks: Vec<(&mut C, &mut ChannelBacklog<C>)> = self
            .controllers
            .iter_mut()
            .zip(backlogs.iter_mut())
            .collect();
        let per_channel: Vec<(Vec<CompletedRequest>, Cycle)> = tasks
            .into_par_iter()
            .map(|(ctrl, backlog)| run_channel_until_idle(ctrl, backlog, max_ns))
            .collect();

        // Fragments still waiting when max_ns cut the run short go back to
        // the system backlog: they stay visible to is_idle() and to a later
        // run_until_idle / tick_into, exactly like the per-cycle path.
        for (channel, backlog) in backlogs.into_iter().enumerate() {
            for entry in backlog.entries {
                self.backlog.push_back((channel as u16, entry));
            }
        }

        let mut stop = 0;
        let mut fragments = Vec::new();
        for (done, t) in per_channel {
            stop = stop.max(t);
            fragments.extend(done);
        }
        fragments.sort_unstable_by_key(|c| (c.completed, c.id.0));

        let mut completions = Vec::new();
        for done in fragments {
            absorb_fragment(&mut self.host_requests, done, &mut completions);
        }
        for c in &completions {
            self.host_requests.remove(&c.id);
        }
        (completions, stop)
    }
}

/// Fold one completed fragment into its host tracker, emitting a
/// [`HostCompletion`] when the last fragment of the host request finishes.
fn absorb_fragment(
    host_requests: &mut HashMap<RequestId, HostTracker>,
    done: CompletedRequest,
    completions: &mut Vec<HostCompletion>,
) {
    if let Some(tracker) = host_requests.get_mut(&done.id) {
        tracker.fragments_outstanding -= 1;
        tracker.last_completion = tracker.last_completion.max(done.completed);
        if tracker.fragments_outstanding == 0 {
            completions.push(HostCompletion {
                id: done.id,
                kind: tracker.kind,
                bytes: tracker.bytes,
                arrival: tracker.arrival,
                completed: tracker.last_completion,
            });
        }
    }
}

/// One channel's share of the pending fragments, in arrival order, with
/// per-kind counts so the drain can stop as soon as nothing can be admitted.
#[derive(Debug)]
struct ChannelBacklog<C: MemoryController> {
    entries: VecDeque<C::Entry>,
    pending_reads: usize,
    pending_writes: usize,
}

impl<C: MemoryController> ChannelBacklog<C> {
    fn new() -> Self {
        ChannelBacklog {
            entries: VecDeque::new(),
            pending_reads: 0,
            pending_writes: 0,
        }
    }

    fn push(&mut self, entry: C::Entry) {
        match C::entry_kind(&entry) {
            RequestKind::Read => self.pending_reads += 1,
            RequestKind::Write => self.pending_writes += 1,
        }
        self.entries.push_back(entry);
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Move every currently admissible fragment into the controller's
    /// queues, preserving arrival order within each kind.
    fn drain_into(&mut self, ctrl: &mut C) {
        let mut read_ok = ctrl.slots_free_for(RequestKind::Read) > 0;
        let mut write_ok = ctrl.slots_free_for(RequestKind::Write) > 0;
        let mut i = 0;
        while i < self.entries.len() {
            let admissible_reads = read_ok && self.pending_reads > 0;
            let admissible_writes = write_ok && self.pending_writes > 0;
            if !admissible_reads && !admissible_writes {
                break;
            }
            let kind = C::entry_kind(&self.entries[i]);
            let ok = match kind {
                RequestKind::Read => read_ok,
                RequestKind::Write => write_ok,
            };
            if ok {
                let entry = self.entries.remove(i).expect("index in bounds");
                match kind {
                    RequestKind::Read => self.pending_reads -= 1,
                    RequestKind::Write => self.pending_writes -= 1,
                }
                let accepted = ctrl.enqueue_entry(entry);
                debug_assert!(accepted, "enqueue must succeed when a slot is free");
                read_ok = ctrl.slots_free_for(RequestKind::Read) > 0;
                write_ok = ctrl.slots_free_for(RequestKind::Write) > 0;
            } else {
                i += 1;
            }
        }
    }

    /// Whether any held fragment could enqueue right now.
    fn can_enqueue(&self, ctrl: &C) -> bool {
        (self.pending_reads > 0 && ctrl.slots_free_for(RequestKind::Read) > 0)
            || (self.pending_writes > 0 && ctrl.slots_free_for(RequestKind::Write) > 0)
    }
}

/// Event-driven loop for one channel: feed it its share of the backlog,
/// jump to the next event after every no-op tick, and return the fragment
/// completions plus the cycle the channel went idle (or `max_ns`).
fn run_channel_until_idle<C: MemoryController>(
    ctrl: &mut C,
    backlog: &mut ChannelBacklog<C>,
    max_ns: Cycle,
) -> (Vec<CompletedRequest>, Cycle) {
    let mut done = Vec::new();
    let mut now = 0;
    let mut stop = 0;
    while (!backlog.is_empty() || !ctrl.is_idle()) && now < max_ns {
        backlog.drain_into(ctrl);
        let issued = ctrl.tick_into(now, &mut done);
        stop = now + 1;
        let arrival_next = backlog.can_enqueue(ctrl);
        now = if issued || arrival_next {
            now + 1
        } else {
            ctrl.next_event_at(now).map_or(now + 1, |t| t.max(now + 1))
        };
    }
    let finished = backlog.is_empty() && ctrl.is_idle();
    (done, if finished { stop } else { max_ns })
}
