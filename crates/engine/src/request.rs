//! Memory requests as seen by a memory controller.
//!
//! Host-side agents (DMA engines, caches) present read/write requests of a
//! given size and physical address. The conventional controller operates on
//! cache-line-sized (32 B) fragments; RoMe operates on row-sized (4 KB)
//! fragments. Both are represented by [`MemoryRequest`] — the `bytes` field
//! carries the fragment size.

use serde::{Deserialize, Serialize};

use rome_hbm::address::PhysicalAddress;
use rome_hbm::units::Cycle;

/// Unique identifier of a request within one simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Whether a request reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// Read request: data must be returned to the host.
    Read,
    /// Write request: data is absorbed by the memory system.
    Write,
}

impl RequestKind {
    /// `true` for reads.
    pub fn is_read(self) -> bool {
        matches!(self, RequestKind::Read)
    }
}

impl std::fmt::Display for RequestKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestKind::Read => f.write_str("RD"),
            RequestKind::Write => f.write_str("WR"),
        }
    }
}

/// A memory request presented to a memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryRequest {
    /// Unique request identifier.
    pub id: RequestId,
    /// Read or write.
    pub kind: RequestKind,
    /// Starting physical address of the request.
    pub address: PhysicalAddress,
    /// Size of the request in bytes.
    pub bytes: u64,
    /// Cycle at which the request arrived at the controller.
    pub arrival: Cycle,
}

impl MemoryRequest {
    /// Create a read request.
    pub fn read(id: u64, address: u64, bytes: u64, arrival: Cycle) -> Self {
        MemoryRequest {
            id: RequestId(id),
            kind: RequestKind::Read,
            address: PhysicalAddress::new(address),
            bytes,
            arrival,
        }
    }

    /// Create a write request.
    pub fn write(id: u64, address: u64, bytes: u64, arrival: Cycle) -> Self {
        MemoryRequest {
            id: RequestId(id),
            kind: RequestKind::Write,
            address: PhysicalAddress::new(address),
            bytes,
            arrival,
        }
    }

    /// Split this request into `granularity`-byte fragments (the last
    /// fragment may be shorter if the size is not a multiple).
    ///
    /// Fragment IDs reuse the parent ID; the memory system tracks fragment
    /// completion separately.
    pub fn fragments(&self, granularity: u64) -> Vec<MemoryRequest> {
        assert!(granularity > 0, "fragment granularity must be non-zero");
        let mut out = Vec::with_capacity(self.bytes.div_ceil(granularity) as usize);
        let mut offset = 0;
        while offset < self.bytes {
            let len = granularity.min(self.bytes - offset);
            out.push(MemoryRequest {
                id: self.id,
                kind: self.kind,
                address: self.address.offset(offset),
                bytes: len,
                arrival: self.arrival,
            });
            offset += len;
        }
        out
    }
}

/// A completed request as reported by a controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletedRequest {
    /// The identifier of the completed request (fragment).
    pub id: RequestId,
    /// Read or write.
    pub kind: RequestKind,
    /// Bytes transferred.
    pub bytes: u64,
    /// Cycle the request arrived at the controller.
    pub arrival: Cycle,
    /// Cycle the request's data transfer completed.
    pub completed: Cycle,
}

impl CompletedRequest {
    /// End-to-end latency of the request in nanoseconds.
    pub fn latency(&self) -> Cycle {
        self.completed.saturating_sub(self.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind_and_fields() {
        let r = MemoryRequest::read(1, 0x1000, 64, 5);
        assert_eq!(r.kind, RequestKind::Read);
        assert!(r.kind.is_read());
        assert_eq!(r.address.raw(), 0x1000);
        assert_eq!(r.bytes, 64);
        assert_eq!(r.arrival, 5);
        let w = MemoryRequest::write(2, 0x2000, 32, 9);
        assert_eq!(w.kind, RequestKind::Write);
        assert!(!w.kind.is_read());
        assert_eq!(w.id, RequestId(2));
    }

    #[test]
    fn fragmentation_covers_the_full_request() {
        let r = MemoryRequest::read(7, 0x100, 100, 0);
        let frags = r.fragments(32);
        assert_eq!(frags.len(), 4);
        assert_eq!(frags[0].bytes, 32);
        assert_eq!(frags[3].bytes, 4);
        let total: u64 = frags.iter().map(|f| f.bytes).sum();
        assert_eq!(total, 100);
        assert_eq!(frags[1].address.raw(), 0x120);
        assert!(frags.iter().all(|f| f.id == r.id && f.kind == r.kind));
    }

    #[test]
    fn fragmentation_exact_multiple() {
        let r = MemoryRequest::write(3, 0, 4096, 0);
        let frags = r.fragments(4096);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].bytes, 4096);
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn zero_granularity_panics() {
        MemoryRequest::read(0, 0, 32, 0).fragments(0);
    }

    #[test]
    fn completion_latency() {
        let c = CompletedRequest {
            id: RequestId(1),
            kind: RequestKind::Read,
            bytes: 32,
            arrival: 10,
            completed: 75,
        };
        assert_eq!(c.latency(), 65);
        assert_eq!(RequestId(1).to_string(), "req#1");
        assert_eq!(RequestKind::Read.to_string(), "RD");
        assert_eq!(RequestKind::Write.to_string(), "WR");
    }
}
