//! Streaming traffic sources: requests generated as simulated time advances.
//!
//! Every experiment used to materialize its whole request stream up front as
//! a `Vec<MemoryRequest>` with all arrivals at cycle 0, which can only model
//! open-loop bursts. A [`TrafficSource`] instead *releases* requests lazily:
//! the driver asks [`TrafficSource::next_arrival_at`] when the next request
//! can become available, pulls everything due with
//! [`TrafficSource::pull_into`], and feeds completions back through
//! [`TrafficSource::on_completion`] — which is what lets a source react to
//! the memory system (closed-loop load generation) instead of merely playing
//! a schedule at it.
//!
//! The contract mirrors the [`crate::MemoryController::next_event_at`]
//! event-driven contract on the controller side:
//!
//! * `next_arrival_at` must **lower-bound** the next cycle at which a
//!   not-yet-pulled request can become available *without further
//!   completions*. Returning a too-early cycle merely costs a spurious
//!   wake-up; returning a too-late cycle would make the driver skip an
//!   arrival and perturb the schedule.
//! * A source whose next release is gated on a completion (a closed-loop
//!   host with a full window) returns `None`: the completion itself is a
//!   controller event, so the driver is guaranteed to wake for it and call
//!   `on_completion`, after which `next_arrival_at` may report the unblocked
//!   arrival.
//! * `pull_into(now, …)` appends every request whose arrival is at or before
//!   `now`, in arrival order; requests are handed over exactly once.
//! * [`TrafficSource::is_exhausted`] is `true` only when no request can ever
//!   become available again (not even via future completions).
//!
//! [`ReplaySource`] adapts any materialized `Vec<MemoryRequest>` to this
//! trait, which makes every existing experiment a special case of the
//! streaming path — the regression suite pins that
//! `run_with_source(ReplaySource::from(vec))` is bit-identical to the
//! materialized-vec drivers.

use std::collections::VecDeque;

use rome_hbm::units::Cycle;

use crate::request::MemoryRequest;
use crate::system::HostCompletion;

/// A lazy stream of memory requests, generated as simulated time advances
/// and (optionally) in reaction to completions. See the module docs for the
/// exactness contract.
pub trait TrafficSource {
    /// The earliest cycle at which a not-yet-pulled request can become
    /// available without further completions, or `None` when no arrival is
    /// currently scheduled (the stream is exhausted, or the next release
    /// waits on a completion). Must lower-bound the true next arrival.
    fn next_arrival_at(&self) -> Option<Cycle>;

    /// Append every request whose arrival is at or before `now` to `out`, in
    /// arrival order. Each request is handed over exactly once.
    fn pull_into(&mut self, now: Cycle, out: &mut Vec<MemoryRequest>);

    /// Observe the completion of a previously pulled request. Open-loop
    /// sources ignore this; closed-loop sources use it to release the next
    /// batch. The default does nothing.
    fn on_completion(&mut self, completion: &HostCompletion) {
        let _ = completion;
    }

    /// `true` when no request will ever become available again — neither by
    /// time advancing nor by further completions.
    fn is_exhausted(&self) -> bool;
}

impl<S: TrafficSource + ?Sized> TrafficSource for Box<S> {
    fn next_arrival_at(&self) -> Option<Cycle> {
        (**self).next_arrival_at()
    }

    fn pull_into(&mut self, now: Cycle, out: &mut Vec<MemoryRequest>) {
        (**self).pull_into(now, out)
    }

    fn on_completion(&mut self, completion: &HostCompletion) {
        (**self).on_completion(completion)
    }

    fn is_exhausted(&self) -> bool {
        (**self).is_exhausted()
    }
}

/// Streams a materialized request vector through the [`TrafficSource`]
/// interface: each request becomes available at its recorded `arrival` cycle
/// (clamped so availability is non-decreasing in submission order, matching
/// the in-order back-pressure of the materialized-vec drivers).
///
/// `ReplaySource::from(vec)` makes every existing experiment a special case
/// of the streaming path; for the all-arrivals-at-0 vectors the synthetic
/// generators produce, `run_with_source` is bit-identical to
/// `run_to_completion` on the same vector.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    /// Remaining requests with their effective (order-clamped) arrivals.
    queue: VecDeque<(Cycle, MemoryRequest)>,
}

impl ReplaySource {
    /// Build a replay over `requests`, preserving their order. A request
    /// becomes available at its `arrival` cycle, or at its predecessor's
    /// availability if that is later (order is never violated).
    pub fn new(requests: Vec<MemoryRequest>) -> Self {
        let mut watermark: Cycle = 0;
        let queue = requests
            .into_iter()
            .map(|r| {
                watermark = watermark.max(r.arrival);
                (watermark, r)
            })
            .collect();
        ReplaySource { queue }
    }

    /// Requests not yet pulled.
    pub fn remaining(&self) -> usize {
        self.queue.len()
    }
}

impl From<Vec<MemoryRequest>> for ReplaySource {
    fn from(requests: Vec<MemoryRequest>) -> Self {
        ReplaySource::new(requests)
    }
}

impl TrafficSource for ReplaySource {
    fn next_arrival_at(&self) -> Option<Cycle> {
        self.queue.front().map(|(at, _)| *at)
    }

    fn pull_into(&mut self, now: Cycle, out: &mut Vec<MemoryRequest>) {
        while let Some((at, _)) = self.queue.front() {
            if *at > now {
                break;
            }
            let (_, req) = self.queue.pop_front().expect("front exists");
            out.push(req);
        }
    }

    fn is_exhausted(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_releases_in_order_at_recorded_arrivals() {
        let reqs = vec![
            MemoryRequest::read(1, 0, 32, 0),
            MemoryRequest::read(2, 32, 32, 10),
            MemoryRequest::read(3, 64, 32, 5), // out-of-order arrival: clamped to 10
        ];
        let mut src = ReplaySource::from(reqs);
        assert_eq!(src.next_arrival_at(), Some(0));
        let mut out = Vec::new();
        src.pull_into(0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(src.next_arrival_at(), Some(10));
        src.pull_into(9, &mut out);
        assert_eq!(out.len(), 1, "nothing due before cycle 10");
        src.pull_into(10, &mut out);
        assert_eq!(out.len(), 3, "clamped request released with predecessor");
        assert!(src.is_exhausted());
        assert_eq!(src.next_arrival_at(), None);
    }

    #[test]
    fn empty_replay_is_exhausted_immediately() {
        let src = ReplaySource::new(Vec::new());
        assert!(src.is_exhausted());
        assert_eq!(src.next_arrival_at(), None);
        assert_eq!(src.remaining(), 0);
    }
}
