//! The [`MemoryController`] trait: the contract every per-channel memory
//! controller satisfies so the generic drivers ([`crate::simulate`]) and the
//! generic multi-channel system ([`crate::system`]) can run it.
//!
//! The trait captures exactly the surface the event-driven engine needs:
//!
//! * admission — [`MemoryController::enqueue`] for raw physical addresses,
//!   [`MemoryController::enqueue_entry`] for pre-decoded entries, gated by
//!   [`MemoryController::slots_free_for`];
//! * time — [`MemoryController::tick_into`] advances one nanosecond and
//!   [`MemoryController::next_event_at`] lower-bounds the next cycle at
//!   which any internal state can change, which is what lets a driver skip
//!   provably idle nanoseconds without perturbing the command schedule;
//! * observation — [`MemoryController::is_idle`] and
//!   [`MemoryController::stats_snapshot`].

use rome_hbm::units::Cycle;
use rome_telemetry::trace::{TraceBuffer, TraceConfig};

use crate::request::{CompletedRequest, MemoryRequest, RequestKind};

/// The controller-agnostic statistics the generic drivers fold into a
/// [`crate::simulate::SimulationReport`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Useful bytes returned by completed reads.
    pub bytes_read: u64,
    /// Useful bytes absorbed by completed writes.
    pub bytes_written: u64,
    /// Bytes actually moved over the DRAM interface (≥ useful bytes; the
    /// difference is overfetch — zero for a cache-line-granularity
    /// controller).
    pub bytes_transferred: u64,
    /// Mean read latency in ns (0 when no reads completed).
    pub mean_read_latency: f64,
    /// Row-buffer hit rate over all column accesses (0 for controllers
    /// without a row buffer at the interface, such as RoMe).
    pub row_hit_rate: f64,
    /// Row activations performed (directly, or implied via command-generator
    /// expansion).
    pub activates: u64,
}

/// A per-channel memory controller drivable by the event-driven engine.
///
/// # Event-driven contract
///
/// [`MemoryController::next_event_at`] must be called immediately after a
/// [`MemoryController::tick_into`] at the same `now` that issued nothing,
/// and must return a *lower bound* on the next cycle at which the
/// controller's state can change on its own. A driver that ticks at every
/// reported cycle then executes the exact command schedule of a
/// cycle-by-cycle driver — nothing the scheduler consults changes between
/// reported cycles, and spurious events (a reported cycle where the
/// scheduler still issues nothing) are harmless.
pub trait MemoryController {
    /// A queued request whose channel-local coordinates were already decoded
    /// (the multi-channel system decodes once, at steering time).
    type Entry: Copy + Send + Sync + std::fmt::Debug;

    /// Enqueue a request given as a raw physical address, using the
    /// controller's own address decoding. Returns `false` if the relevant
    /// queue is full.
    fn enqueue(&mut self, request: MemoryRequest) -> bool;

    /// Enqueue a pre-decoded entry. Returns `false` if the queue is full.
    fn enqueue_entry(&mut self, entry: Self::Entry) -> bool;

    /// The request kind of a pre-decoded entry (used by backlog draining to
    /// respect per-kind admission).
    fn entry_kind(entry: &Self::Entry) -> RequestKind;

    /// Advance the controller by one nanosecond, appending any requests whose
    /// data transfer completed at or before `now` to `completed`. Returns
    /// `true` if any command was issued.
    fn tick_into(&mut self, now: Cycle, completed: &mut Vec<CompletedRequest>) -> bool;

    /// The next cycle strictly after `now` at which this controller's state
    /// can change on its own, or `None` when fully quiescent. See the trait
    /// docs for the exactness contract.
    fn next_event_at(&self, now: Cycle) -> Option<Cycle>;

    /// Whether the controller has no pending or in-flight work.
    fn is_idle(&self) -> bool;

    /// Total free request-queue slots (all kinds combined).
    fn slots_free(&self) -> usize;

    /// Free slots able to admit a request of `kind`. Defaults to
    /// [`MemoryController::slots_free`] for controllers with one shared
    /// queue; controllers with split read/write queues override it.
    fn slots_free_for(&self, kind: RequestKind) -> usize {
        let _ = kind;
        self.slots_free()
    }

    /// A snapshot of the statistics the generic drivers report.
    fn stats_snapshot(&self) -> StatsSnapshot;

    /// Arm (or disarm, with [`rome_telemetry::trace::TraceLevel::Off`]) this
    /// controller's flight recorder. Controllers without one ignore the call;
    /// the drivers arm at run start, before the first tick, so an armed
    /// recorder observes the full request lifecycle.
    fn set_trace(&mut self, config: TraceConfig) {
        let _ = config;
    }

    /// Harvest and disarm this controller's flight recorder, returning every
    /// event recorded since [`MemoryController::set_trace`]. Controllers
    /// without a recorder return an empty buffer. Called once per run, at run
    /// end — never inside the event loop.
    fn take_trace(&mut self) -> TraceBuffer {
        TraceBuffer::default()
    }
}
