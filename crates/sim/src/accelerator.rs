//! The AI accelerator and server model of §VI-A.
//!
//! The paper's target accelerator sustains 280 Op/B for BF16, attaches eight
//! HBM4 cubes (256 GB, 16 TB/s per accelerator), and is deployed as an
//! eight-accelerator server to hold the full models.

use serde::{Deserialize, Serialize};

/// One AI accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorSpec {
    /// Peak BF16 throughput in TFLOP/s.
    pub bf16_tflops: f64,
    /// Number of HBM cubes attached.
    pub hbm_cubes: u32,
    /// Memory capacity in bytes.
    pub memory_capacity_bytes: u64,
    /// Peak memory bandwidth in GB/s (with the baseline HBM4 cubes).
    pub peak_memory_bw_gbps: f64,
    /// Sustained fraction of peak compute achievable on large GEMM/GEMV
    /// kernels.
    pub compute_efficiency: f64,
}

impl AcceleratorSpec {
    /// The paper's accelerator: 280 Op/B at 16 TB/s ⇒ 4480 TFLOPS BF16,
    /// eight 32 GB HBM4 cubes.
    pub fn paper_default() -> Self {
        AcceleratorSpec {
            bf16_tflops: 4480.0,
            hbm_cubes: 8,
            memory_capacity_bytes: 256 * (1u64 << 30),
            peak_memory_bw_gbps: 16_384.0,
            compute_efficiency: 0.85,
        }
    }

    /// Arithmetic intensity (Op/B) at which the accelerator transitions from
    /// memory-bound to compute-bound.
    pub fn machine_balance(&self) -> f64 {
        self.bf16_tflops * 1e12 / (self.peak_memory_bw_gbps * 1e9)
    }

    /// Time in nanoseconds to execute `flops` floating-point operations at
    /// the sustained compute rate.
    pub fn compute_time_ns(&self, flops: u64) -> f64 {
        flops as f64 / (self.bf16_tflops * 1e12 * self.compute_efficiency) * 1e9
    }
}

impl Default for AcceleratorSpec {
    fn default() -> Self {
        AcceleratorSpec::paper_default()
    }
}

/// A multi-accelerator server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// The accelerator type.
    pub accelerator: AcceleratorSpec,
    /// Number of accelerators.
    pub accelerators: u32,
    /// Per-direction inter-accelerator interconnect bandwidth in GB/s.
    pub interconnect_gbps: f64,
}

impl ServerSpec {
    /// The paper's eight-accelerator server.
    pub fn paper_default() -> Self {
        ServerSpec {
            accelerator: AcceleratorSpec::paper_default(),
            accelerators: 8,
            interconnect_gbps: 900.0,
        }
    }

    /// Total memory capacity of the server in bytes.
    pub fn total_capacity_bytes(&self) -> u64 {
        self.accelerator.memory_capacity_bytes * self.accelerators as u64
    }

    /// Time in nanoseconds for an all-reduce of `bytes` across the tensor-
    /// parallel group of size `tp` (ring all-reduce: `2·(tp−1)/tp` traversals
    /// of the payload over the interconnect).
    pub fn allreduce_time_ns(&self, bytes: u64, tp: u32) -> f64 {
        if tp <= 1 {
            return 0.0;
        }
        let traversals = 2.0 * (tp as f64 - 1.0) / tp as f64;
        bytes as f64 * traversals / self.interconnect_gbps
    }
}

impl Default for ServerSpec {
    fn default() -> Self {
        ServerSpec::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_balance_is_280_op_per_byte() {
        let a = AcceleratorSpec::paper_default();
        let b = a.machine_balance();
        assert!((b - 273.4).abs() < 10.0, "balance {b}");
        assert_eq!(a.hbm_cubes, 8);
        assert_eq!(a.memory_capacity_bytes, 256 * (1 << 30));
    }

    #[test]
    fn compute_time_scales_linearly() {
        let a = AcceleratorSpec::paper_default();
        let t1 = a.compute_time_ns(1_000_000_000);
        let t2 = a.compute_time_ns(2_000_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        assert!(t1 > 0.0);
    }

    #[test]
    fn server_capacity_and_allreduce() {
        let s = ServerSpec::paper_default();
        assert_eq!(s.total_capacity_bytes(), 2048 * (1u64 << 30));
        assert_eq!(s.allreduce_time_ns(1 << 20, 1), 0.0);
        let t8 = s.allreduce_time_ns(1 << 20, 8);
        assert!(t8 > 0.0);
        // Larger TP groups move (slightly) more data per byte of payload.
        assert!(s.allreduce_time_ns(1 << 20, 2) < t8);
    }

    #[test]
    fn defaults_are_paper_defaults() {
        assert_eq!(AcceleratorSpec::default(), AcceleratorSpec::paper_default());
        assert_eq!(ServerSpec::default(), ServerSpec::paper_default());
    }
}
