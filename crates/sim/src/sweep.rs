//! Batch-size sweeps producing the paper's Figure 12 and Figure 13 series,
//! and the batched [`ScenarioSet`] runner.
//!
//! Every (model, batch) point of a sweep is independent of every other, so
//! the sweeps fan the points out across all cores with rayon and collect the
//! rows back in deterministic sweep order.
//!
//! [`ScenarioSet`] batches *multiple* sweep scenarios behind one warm
//! process: the expensive shared state — the cycle-accurate calibration of
//! both memory systems — is computed once and reused by every scenario,
//! instead of one process (and one calibration) per experiment. This is the
//! serving-style API the ROADMAP's scale-out items build on.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use rome_llm::model::ModelConfig;
use rome_llm::ops::decode_step;
use rome_llm::parallelism::Parallelism;

use crate::accelerator::{AcceleratorSpec, ServerSpec};
use crate::calibration::{CalibrationCache, Calibrator};
use crate::lbr::channel_load_balance;
use crate::memory_model::MemoryModel;
use crate::tpot::decode_tpot;

/// One point of Figure 12: TPOT of both systems at one (model, batch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure12Row {
    /// Model name.
    pub model: String,
    /// Batch size.
    pub batch: u64,
    /// HBM4 TPOT in ms.
    pub tpot_hbm4_ms: f64,
    /// RoMe TPOT in ms.
    pub tpot_rome_ms: f64,
    /// Normalized RoMe execution time (RoMe / HBM4, the y-axis of Fig. 12).
    pub normalized_rome: f64,
}

/// One point of Figure 13: RoMe's channel load-balance rates at one
/// (model, batch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure13Row {
    /// Model name.
    pub model: String,
    /// Batch size.
    pub batch: u64,
    /// LBR over attention layers.
    pub lbr_attention: f64,
    /// LBR over FFN layers.
    pub lbr_ffn: f64,
}

/// The batch sizes swept for `model` (powers of two from 8 up to the largest
/// batch that fits in the eight-accelerator server at 8K context — 1024 for
/// DeepSeek-V3, 512 for Grok-1, 256 for Llama-3, as in Fig. 12).
pub fn paper_batch_sweep(model: &ModelConfig, seq_len: u64) -> Vec<u64> {
    let capacity = ServerSpec::paper_default().total_capacity_bytes();
    let max = model.max_batch_for_capacity(capacity, seq_len).max(8);
    let mut out = Vec::new();
    let mut b = 8u64;
    while b <= max {
        out.push(b);
        b *= 2;
    }
    out
}

/// Produce the Figure 12 series for all three models.
pub fn figure12_sweep(
    accel: &AcceleratorSpec,
    hbm4: &MemoryModel,
    rome: &MemoryModel,
    seq_len: u64,
) -> Vec<Figure12Row> {
    sweep_points(seq_len)
        .into_par_iter()
        .map(|(model, batch)| {
            let h = decode_tpot(&model, batch, seq_len, accel, hbm4);
            let r = decode_tpot(&model, batch, seq_len, accel, rome);
            Figure12Row {
                model: model.name.clone(),
                batch,
                tpot_hbm4_ms: h.tpot_ms,
                tpot_rome_ms: r.tpot_ms,
                normalized_rome: r.tpot_ms / h.tpot_ms,
            }
        })
        .collect()
}

/// All (model, batch) points of the paper sweeps, in sweep order.
fn sweep_points(seq_len: u64) -> Vec<(ModelConfig, u64)> {
    let mut points = Vec::new();
    for model in ModelConfig::paper_models() {
        for batch in paper_batch_sweep(&model, seq_len) {
            points.push((model.clone(), batch));
        }
    }
    points
}

/// Mean TPOT reduction of RoMe over the whole sweep of one model (the paper
/// reports 10.4 % / 10.2 % / 9.0 %).
pub fn mean_reduction(rows: &[Figure12Row], model: &str) -> f64 {
    let selected: Vec<&Figure12Row> = rows.iter().filter(|r| r.model == model).collect();
    if selected.is_empty() {
        return 0.0;
    }
    let sum: f64 = selected.iter().map(|r| 1.0 - r.normalized_rome).sum();
    sum / selected.len() as f64
}

/// Produce the Figure 13 series (RoMe LBR) for all three models.
pub fn figure13_sweep(rome: &MemoryModel, seq_len: u64) -> Vec<Figure13Row> {
    sweep_points(seq_len)
        .into_par_iter()
        .map(|(model, batch)| {
            let par = Parallelism::paper_decode(&model);
            let step = decode_step(&model, &par, batch, seq_len);
            let lbr = channel_load_balance(&step, rome.channels, rome.access_granularity);
            Figure13Row {
                model: model.name.clone(),
                batch,
                lbr_attention: lbr.attention,
                lbr_ffn: lbr.ffn,
            }
        })
        .collect()
}

/// Which figure series a [`Scenario`] produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SweepKind {
    /// The Figure 12 TPOT comparison (both memory systems).
    Figure12,
    /// The Figure 13 channel load-balance rates (RoMe).
    Figure13,
}

/// One batched sweep scenario: a named figure series at one context length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (carried into the report).
    pub name: String,
    /// Which series to produce.
    pub kind: SweepKind,
    /// Sequence length (context) of the sweep.
    pub seq_len: u64,
}

/// The result of one [`Scenario`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Which series was produced.
    pub kind: SweepKind,
    /// Sequence length of the sweep.
    pub seq_len: u64,
    /// Figure 12 rows (for [`SweepKind::Figure12`] scenarios).
    pub figure12: Option<Vec<Figure12Row>>,
    /// Figure 13 rows (for [`SweepKind::Figure13`] scenarios).
    pub figure13: Option<Vec<Figure13Row>>,
}

/// A batch of sweep scenarios sharing one warm process.
///
/// The cycle-accurate calibration of both memory systems dominates the cost
/// of a sweep run; a `ScenarioSet` pays it once (in
/// [`ScenarioSet::run_calibrated`]) and reuses the calibrated
/// [`MemoryModel`]s for every scenario. Each scenario's (model, batch)
/// points fan out across all cores with rayon, so scenarios execute one
/// after the other without leaving cores idle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSet {
    /// The accelerator the sweeps model.
    pub accel: AcceleratorSpec,
    /// The scenarios to run, in order.
    pub scenarios: Vec<Scenario>,
}

impl ScenarioSet {
    /// An empty set for `accel`.
    pub fn new(accel: AcceleratorSpec) -> Self {
        ScenarioSet {
            accel,
            scenarios: Vec::new(),
        }
    }

    /// The paper's evaluation batch: Figure 12 and Figure 13 at the 8K
    /// context used throughout §VI.
    pub fn paper_default() -> Self {
        ScenarioSet::new(AcceleratorSpec::paper_default())
            .with(Scenario {
                name: "fig12-decode-8k".into(),
                kind: SweepKind::Figure12,
                seq_len: 8192,
            })
            .with(Scenario {
                name: "fig13-lbr-8k".into(),
                kind: SweepKind::Figure13,
                seq_len: 8192,
            })
    }

    /// Append a scenario (builder style).
    pub fn with(mut self, scenario: Scenario) -> Self {
        self.scenarios.push(scenario);
        self
    }

    /// Number of scenarios queued.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Run every scenario against the given memory models, in order.
    pub fn run_with_models(&self, hbm4: &MemoryModel, rome: &MemoryModel) -> Vec<ScenarioReport> {
        self.scenarios
            .iter()
            .map(|s| {
                let (figure12, figure13) = match s.kind {
                    SweepKind::Figure12 => (
                        Some(figure12_sweep(&self.accel, hbm4, rome, s.seq_len)),
                        None,
                    ),
                    SweepKind::Figure13 => (None, Some(figure13_sweep(rome, s.seq_len))),
                };
                ScenarioReport {
                    name: s.name.clone(),
                    kind: s.kind,
                    seq_len: s.seq_len,
                    figure12,
                    figure13,
                }
            })
            .collect()
    }

    /// Run every scenario with nominal (published-order) calibration values
    /// — no cycle simulation.
    pub fn run_nominal(&self) -> Vec<ScenarioReport> {
        let hbm4 = MemoryModel::hbm4_baseline(&self.accel);
        let rome = MemoryModel::rome(&self.accel);
        self.run_with_models(&hbm4, &rome)
    }

    /// Calibrate both memory systems once by sampled cycle-accurate
    /// simulation (the expensive part), then run every scenario against the
    /// warm calibrated models.
    pub fn run_calibrated(&self, calibrator: &mut Calibrator) -> Vec<ScenarioReport> {
        let (hbm4, rome) = MemoryModel::calibrated_pair(&self.accel, calibrator);
        self.run_with_models(&hbm4, &rome)
    }

    /// Run every scenario against a shared [`CalibrationCache`] — the
    /// serving form of [`ScenarioSet::run_calibrated`]. The cache outlives
    /// the set and is safely shared across threads, so many sets (or many
    /// batches arriving at a scenario server) reuse one pair of measured
    /// calibrations; `rome-server` routes its sweep scenarios through
    /// exactly this path, which is what keeps the served results
    /// bit-identical to the direct calls.
    pub fn run_cached(&self, cache: &CalibrationCache) -> Vec<ScenarioReport> {
        let (hbm4, rome) = MemoryModel::calibrated_pair_cached(&self.accel, cache);
        self.run_with_models(&hbm4, &rome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_batch_sweeps_match_figure12_ranges() {
        assert_eq!(
            *paper_batch_sweep(&ModelConfig::deepseek_v3(), 8192)
                .last()
                .unwrap(),
            1024
        );
        assert_eq!(
            *paper_batch_sweep(&ModelConfig::grok_1(), 8192)
                .last()
                .unwrap(),
            512
        );
        assert_eq!(
            *paper_batch_sweep(&ModelConfig::llama3_405b(), 8192)
                .last()
                .unwrap(),
            256
        );
        assert_eq!(paper_batch_sweep(&ModelConfig::llama3_405b(), 8192)[0], 8);
    }

    #[test]
    fn figure12_shows_rome_winning_everywhere() {
        let accel = AcceleratorSpec::paper_default();
        let hbm4 = MemoryModel::hbm4_baseline(&accel);
        let rome = MemoryModel::rome(&accel);
        let rows = figure12_sweep(&accel, &hbm4, &rome, 8192);
        assert!(rows.len() >= 18);
        assert!(rows.iter().all(|r| r.normalized_rome < 1.0));
        for model in ["DeepSeek-V3", "Grok 1", "Llama 3"] {
            let red = mean_reduction(&rows, model);
            assert!(
                red > 0.04 && red < 0.25,
                "{model}: mean reduction {:.1}% out of band",
                red * 100.0
            );
        }
    }

    #[test]
    fn figure13_lbr_trends_upward_with_batch() {
        let accel = AcceleratorSpec::paper_default();
        let rome = MemoryModel::rome(&accel);
        let rows = figure13_sweep(&rome, 8192);
        for model in ["DeepSeek-V3", "Grok 1", "Llama 3"] {
            let series: Vec<&Figure13Row> = rows.iter().filter(|r| r.model == model).collect();
            assert!(series.len() >= 6);
            let first = series.first().unwrap();
            let last = series.last().unwrap();
            assert!(
                last.lbr_attention >= first.lbr_attention - 0.02,
                "{model} attention"
            );
            assert!(last.lbr_ffn >= first.lbr_ffn - 0.02, "{model} ffn");
            assert!(series
                .iter()
                .all(|r| r.lbr_attention <= 1.0 + 1e-9 && r.lbr_ffn <= 1.0 + 1e-9));
        }
    }

    #[test]
    fn mean_reduction_of_unknown_model_is_zero() {
        assert_eq!(mean_reduction(&[], "nope"), 0.0);
    }

    #[test]
    fn scenario_set_batches_multiple_sweeps_in_one_run() {
        let set = ScenarioSet::paper_default().with(Scenario {
            name: "fig13-lbr-4k".into(),
            kind: SweepKind::Figure13,
            seq_len: 4096,
        });
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        let reports = set.run_nominal();
        assert_eq!(reports.len(), 3);

        let fig12 = reports[0].figure12.as_ref().expect("figure12 scenario");
        assert!(reports[0].figure13.is_none());
        assert!(fig12.len() >= 18);
        assert!(fig12.iter().all(|r| r.normalized_rome < 1.0));

        let fig13 = reports[1].figure13.as_ref().expect("figure13 scenario");
        assert!(reports[1].figure12.is_none());
        assert!(fig13
            .iter()
            .all(|r| r.lbr_attention <= 1.0 + 1e-9 && r.lbr_ffn <= 1.0 + 1e-9));

        // The extra 4K scenario produces its own series at its own context.
        assert_eq!(reports[2].seq_len, 4096);
        assert!(reports[2].figure13.is_some());
    }

    #[test]
    fn scenario_set_reports_match_direct_sweeps() {
        // Batching must not change any row: a ScenarioSet run is exactly the
        // direct sweep calls sharing one pair of memory models.
        let set = ScenarioSet::paper_default();
        let hbm4 = MemoryModel::hbm4_baseline(&set.accel);
        let rome = MemoryModel::rome(&set.accel);
        let reports = set.run_with_models(&hbm4, &rome);
        assert_eq!(
            reports[0].figure12.as_ref().unwrap(),
            &figure12_sweep(&set.accel, &hbm4, &rome, 8192)
        );
        assert_eq!(
            reports[1].figure13.as_ref().unwrap(),
            &figure13_sweep(&rome, 8192)
        );
    }
}
