//! Time per output token (TPOT, Figure 12) and prefill timing.
//!
//! Each operator of a decode step contributes
//! `max(compute time, memory time)` — the accelerator overlaps compute with
//! memory fetch, so whichever resource the operator saturates determines its
//! duration. Memory time uses the memory system's calibrated effective
//! bandwidth scaled by the operator's channel load-balance rate. Tensor- and
//! expert-parallel layers additionally pay an interconnect collective per
//! layer, identical for both memory systems.

use serde::{Deserialize, Serialize};

use rome_llm::model::ModelConfig;
use rome_llm::ops::{decode_step, prefill_step};
use rome_llm::parallelism::Parallelism;
use rome_llm::traffic::StepTraffic;
use rome_llm::types::Stage;

use crate::accelerator::{AcceleratorSpec, ServerSpec};
use crate::lbr::{channel_load_balance, operator_lbr, LbrReport};
use crate::memory_model::MemoryModel;

/// The timing result of one decode step (or prefill pass).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpotReport {
    /// Model name.
    pub model: String,
    /// Stage simulated.
    pub stage: Stage,
    /// Batch size.
    pub batch: u64,
    /// Sequence length.
    pub seq_len: u64,
    /// Which memory system was used (display name).
    pub memory_system: String,
    /// Total time per output token (or per prefill pass) in milliseconds.
    pub tpot_ms: f64,
    /// Portion of the total spent in memory-bound operators, ms.
    pub memory_bound_ms: f64,
    /// Portion of the total spent in compute-bound operators, ms.
    pub compute_bound_ms: f64,
    /// Interconnect collective time, ms.
    pub communication_ms: f64,
    /// Channel load-balance rates of the step on this memory system.
    pub lbr: LbrReport,
}

fn step_time(
    step: &StepTraffic,
    accel: &AcceleratorSpec,
    server: &ServerSpec,
    mem: &MemoryModel,
    par: &Parallelism,
    model: &ModelConfig,
) -> TpotReport {
    let mut memory_bound_ns = 0.0;
    let mut compute_bound_ns = 0.0;
    for op in &step.operators {
        let lbr = operator_lbr(op, mem.channels, mem.access_granularity);
        let bw = mem.effective_bandwidth_gbps(lbr);
        let mem_ns = op.bytes() as f64 / bw;
        let comp_ns = accel.compute_time_ns(op.flops);
        let total = mem_ns.max(comp_ns) * op.repeat as f64;
        if mem_ns >= comp_ns {
            memory_bound_ns += total;
        } else {
            compute_bound_ns += total;
        }
    }

    // Collectives: one attention all-reduce per layer under tensor
    // parallelism, and one FFN all-reduce (dense TP) or dispatch/combine
    // exchange (expert parallelism) per layer. Identical for both memory
    // systems.
    let tokens = match step.stage {
        Stage::Decode => step.batch,
        Stage::Prefill => step.batch * step.seq_len,
    };
    let payload = tokens * model.hidden as u64 * model.dtype.bytes();
    let mut comm_ns = 0.0;
    if par.attention_tp > 1 {
        comm_ns += model.layers as f64 * server.allreduce_time_ns(payload, par.attention_tp);
    }
    let ffn_group = if model.ffn.is_moe() {
        par.expert_parallel
    } else {
        par.ffn_tp
    };
    if ffn_group > 1 {
        comm_ns += model.layers as f64 * server.allreduce_time_ns(payload, ffn_group);
    }

    let total_ns = memory_bound_ns + compute_bound_ns + comm_ns;
    TpotReport {
        model: step.model.clone(),
        stage: step.stage,
        batch: step.batch,
        seq_len: step.seq_len,
        memory_system: mem.kind.to_string(),
        tpot_ms: total_ns / 1e6,
        memory_bound_ms: memory_bound_ns / 1e6,
        compute_bound_ms: compute_bound_ns / 1e6,
        communication_ms: comm_ns / 1e6,
        lbr: channel_load_balance(step, mem.channels, mem.access_granularity),
    }
}

/// Time per output token of one decode step of `model` at the given batch and
/// sequence length on `mem`.
pub fn decode_tpot(
    model: &ModelConfig,
    batch: u64,
    seq_len: u64,
    accel: &AcceleratorSpec,
    mem: &MemoryModel,
) -> TpotReport {
    let par = Parallelism::paper_decode(model);
    let step = decode_step(model, &par, batch, seq_len);
    step_time(&step, accel, &ServerSpec::paper_default(), mem, &par, model)
}

/// Wall-clock time of one prefill pass.
pub fn prefill_time(
    model: &ModelConfig,
    batch: u64,
    seq_len: u64,
    accel: &AcceleratorSpec,
    mem: &MemoryModel,
) -> TpotReport {
    let par = Parallelism::paper_prefill(model);
    let step = prefill_step(model, &par, batch, seq_len);
    step_time(&step, accel, &ServerSpec::paper_default(), mem, &par, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> Vec<ModelConfig> {
        ModelConfig::paper_models()
    }

    #[test]
    fn rome_reduces_decode_tpot_for_every_model() {
        let accel = AcceleratorSpec::paper_default();
        let hbm4 = MemoryModel::hbm4_baseline(&accel);
        let rome = MemoryModel::rome(&accel);
        for model in models() {
            let t_hbm4 = decode_tpot(&model, 64, 8192, &accel, &hbm4);
            let t_rome = decode_tpot(&model, 64, 8192, &accel, &rome);
            let reduction = 1.0 - t_rome.tpot_ms / t_hbm4.tpot_ms;
            assert!(
                reduction > 0.03 && reduction < 0.30,
                "{}: TPOT reduction {:.1}% outside the expected band",
                model.name,
                reduction * 100.0
            );
        }
    }

    #[test]
    fn decode_is_dominated_by_memory_time() {
        let accel = AcceleratorSpec::paper_default();
        let hbm4 = MemoryModel::hbm4_baseline(&accel);
        for model in models() {
            let t = decode_tpot(&model, 64, 8192, &accel, &hbm4);
            assert!(
                t.memory_bound_ms > t.compute_bound_ms,
                "{}: memory {} vs compute {}",
                model.name,
                t.memory_bound_ms,
                t.compute_bound_ms
            );
            assert!(
                t.tpot_ms > 0.5 && t.tpot_ms < 100.0,
                "{}: {} ms",
                model.name,
                t.tpot_ms
            );
        }
    }

    #[test]
    fn decode_tpot_magnitude_matches_the_paper_order() {
        // Fig. 12 annotates HBM4 TPOTs in the 5–20 ms range across the batch
        // sweep; check the same order of magnitude at batch 256.
        let accel = AcceleratorSpec::paper_default();
        let hbm4 = MemoryModel::hbm4_baseline(&accel);
        for model in models() {
            let t = decode_tpot(&model, 256, 8192, &accel, &hbm4);
            assert!(
                t.tpot_ms > 2.0 && t.tpot_ms < 60.0,
                "{}: TPOT {} ms at batch 256",
                model.name,
                t.tpot_ms
            );
        }
    }

    #[test]
    fn prefill_is_insensitive_to_the_memory_system() {
        let accel = AcceleratorSpec::paper_default();
        let hbm4 = MemoryModel::hbm4_baseline(&accel);
        let rome = MemoryModel::rome(&accel);
        for model in models() {
            let p_hbm4 = prefill_time(&model, 16, 8192, &accel, &hbm4);
            let p_rome = prefill_time(&model, 16, 8192, &accel, &rome);
            let diff = (p_hbm4.tpot_ms - p_rome.tpot_ms).abs() / p_hbm4.tpot_ms;
            assert!(
                diff < 0.02,
                "{}: prefill difference {:.3}%",
                model.name,
                diff * 100.0
            );
            assert!(
                p_hbm4.compute_bound_ms > p_hbm4.memory_bound_ms,
                "{}",
                model.name
            );
        }
    }

    #[test]
    fn tpot_grows_with_batch_size() {
        let accel = AcceleratorSpec::paper_default();
        let rome = MemoryModel::rome(&accel);
        let model = ModelConfig::grok_1();
        let small = decode_tpot(&model, 8, 8192, &accel, &rome);
        let large = decode_tpot(&model, 256, 8192, &accel, &rome);
        assert!(large.tpot_ms > small.tpot_ms);
    }

    #[test]
    fn iso_bandwidth_rome_sits_between_hbm4_and_full_rome() {
        let accel = AcceleratorSpec::paper_default();
        let hbm4 = MemoryModel::hbm4_baseline(&accel);
        let rome = MemoryModel::rome(&accel);
        let iso = MemoryModel::rome_iso_bandwidth(&accel);
        let model = ModelConfig::llama3_405b();
        let t_hbm4 = decode_tpot(&model, 64, 8192, &accel, &hbm4).tpot_ms;
        let t_iso = decode_tpot(&model, 64, 8192, &accel, &iso).tpot_ms;
        let t_rome = decode_tpot(&model, 64, 8192, &accel, &rome).tpot_ms;
        assert!(
            t_rome < t_iso,
            "extra channels must help: {t_rome} vs {t_iso}"
        );
        assert!(
            t_iso <= t_hbm4 * 1.02,
            "iso-bandwidth RoMe should not be slower: {t_iso} vs {t_hbm4}"
        );
    }
}
