//! Calibration of effective memory-system behaviour by sampled
//! cycle-accurate simulation.
//!
//! Replaying a full multi-gigabyte decode step through the cycle-accurate
//! models would take hours without changing the outcome: what the end-to-end
//! model needs from the detailed simulation is (a) the *effective bandwidth
//! utilization* each memory system achieves on LLM-like traffic and (b) the
//! number of row activations each performs per kilobyte moved (which drives
//! the ACT energy difference of Figure 14). Both are measured here by running
//! a sampled window — a few megabytes of interleaved streams standing in for
//! the concurrent tensors of a decode step — through the real controllers.
//!
//! Mirroring the paper's methodology (§VI-A), the conventional controller is
//! calibrated over a sweep of candidate address mappings and the
//! best-performing one is used.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use rome_core::controller::{RomeController, RomeControllerConfig};
use rome_core::simulate as rome_simulate;
use rome_mc::controller::{ChannelController, ControllerConfig};
use rome_mc::mapping::MappingScheme;
use rome_mc::request::MemoryRequest;
use rome_mc::simulate as mc_simulate;

use crate::memory_model::MemorySystemKind;

/// The measured behaviour of one memory system on LLM-like streaming traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationResult {
    /// Fraction of the channel's peak bandwidth achieved (0..1].
    pub bandwidth_utilization: f64,
    /// Row activations per KiB of useful data moved.
    pub activates_per_kib: f64,
    /// Mean read latency observed, in ns.
    pub mean_read_latency_ns: f64,
}

/// Runs the sampled calibrations and caches their results.
#[derive(Debug, Clone, Default)]
pub struct Calibrator {
    hbm4: Option<CalibrationResult>,
    rome: Option<CalibrationResult>,
}

/// Number of interleaved request streams used to emulate the concurrent
/// tensors (weights, KV cache of many sequences, activations) that a decode
/// step keeps in flight.
const CALIBRATION_STREAMS: u64 = 8;
/// Bytes per stream in the sampled window.
const CALIBRATION_BYTES_PER_STREAM: u64 = 128 * 1024;
/// Seed for the stream base addresses (4 KiB-aligned, as a real allocator
/// would place tensors).
const CALIBRATION_SEED: u64 = 0x0520_2026;

/// Build the interleaved multi-stream request trace used for calibration:
/// `streams` sequential streams at independent (seeded-random, 4 KiB-aligned)
/// base addresses whose granules are interleaved round-robin — the arrival
/// order a DMA engine serving several tensors produces.
pub fn interleaved_streams(
    streams: u64,
    bytes_per_stream: u64,
    granularity: u64,
    seed: u64,
) -> Vec<MemoryRequest> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let bases: Vec<u64> = (0..streams)
        .map(|_| rng.gen_range(0..(1u64 << 22)) * 4096)
        .collect();
    let chunks_per_stream = bytes_per_stream / granularity;
    let mut out = Vec::with_capacity((streams * chunks_per_stream) as usize);
    let mut id = 0u64;
    for chunk in 0..chunks_per_stream {
        for base in &bases {
            out.push(MemoryRequest::read(
                id,
                base + chunk * granularity,
                granularity,
                0,
            ));
            id += 1;
        }
    }
    out
}

impl Calibrator {
    /// Create an empty calibrator (results are computed lazily).
    pub fn new() -> Self {
        Calibrator::default()
    }

    /// Calibrate the conventional HBM4 channel controller, sweeping the
    /// candidate address mappings and keeping the best (the paper's
    /// methodology).
    pub fn hbm4(&mut self) -> CalibrationResult {
        if let Some(r) = self.hbm4 {
            return r;
        }
        let reqs = interleaved_streams(
            CALIBRATION_STREAMS,
            CALIBRATION_BYTES_PER_STREAM,
            32,
            CALIBRATION_SEED,
        );
        let base_cfg = ControllerConfig::hbm4_baseline();
        let mut best: Option<CalibrationResult> = None;
        for mapping in MappingScheme::sweep_candidates(base_cfg.organization, 1) {
            let mut cfg = base_cfg.clone();
            cfg.mapping = mapping;
            let mut ctrl = ChannelController::new(cfg);
            let report = mc_simulate::run_to_completion(&mut ctrl, reqs.clone());
            let peak = ctrl.config().organization.channel_bandwidth_gbps();
            let candidate = CalibrationResult {
                bandwidth_utilization: (report.achieved_bandwidth_gbps / peak).min(1.0),
                activates_per_kib: report.activates_per_kib,
                mean_read_latency_ns: report.mean_read_latency,
            };
            if best
                .map(|b| candidate.bandwidth_utilization > b.bandwidth_utilization)
                .unwrap_or(true)
            {
                best = Some(candidate);
            }
        }
        let result = best.expect("at least one mapping candidate");
        self.hbm4 = Some(result);
        result
    }

    /// Calibrate the RoMe channel controller.
    pub fn rome(&mut self) -> CalibrationResult {
        if let Some(r) = self.rome {
            return r;
        }
        let mut ctrl = RomeController::new(RomeControllerConfig::paper_default());
        let row = ctrl.config().row_bytes();
        let reqs = interleaved_streams(
            CALIBRATION_STREAMS,
            CALIBRATION_BYTES_PER_STREAM,
            row,
            CALIBRATION_SEED,
        );
        let report = rome_simulate::run_to_completion(&mut ctrl, reqs);
        let peak = ctrl.config().organization.channel_bandwidth_gbps();
        let result = CalibrationResult {
            bandwidth_utilization: (report.achieved_bandwidth_gbps / peak).min(1.0),
            activates_per_kib: report.activates_per_kib,
            mean_read_latency_ns: report.mean_read_latency,
        };
        self.rome = Some(result);
        result
    }

    /// Published-order fallback values, for callers that need a result
    /// without paying for the cycle simulation (documentation examples,
    /// smoke tests). The measured values are used by the benches.
    pub fn nominal_hbm4() -> CalibrationResult {
        CalibrationResult {
            bandwidth_utilization: 0.88,
            activates_per_kib: 1.55,
            mean_read_latency_ns: 250.0,
        }
    }

    /// Nominal RoMe calibration (see [`Calibrator::nominal_hbm4`]).
    pub fn nominal_rome() -> CalibrationResult {
        CalibrationResult {
            bandwidth_utilization: 0.96,
            activates_per_kib: 1.0,
            mean_read_latency_ns: 160.0,
        }
    }
}

/// A persistent, concurrent calibration cache — the warm state a
/// scenario-serving process keeps across batches.
///
/// [`Calibrator`] memoizes within one `&mut` borrow; a `CalibrationCache` is
/// the sharable form: keyed by [`MemorySystemKind`] (the system config that
/// determines the sampled run — the iso-bandwidth RoMe ablation shares the
/// RoMe entry, since calibration is per-channel), callable concurrently from
/// a worker pool, and long-lived. Each key is computed at most once: workers
/// racing on a cold key block on a per-key [`OnceLock`] while exactly one of
/// them runs the sampled simulation; different keys calibrate in parallel.
#[derive(Debug, Default)]
pub struct CalibrationCache {
    entries: Mutex<HashMap<MemorySystemKind, Arc<OnceLock<CalibrationResult>>>>,
    /// Lookups answered from an already-computed slot.
    hits: AtomicU64,
    /// Lookups that found the slot cold and (raced to) run the calibration.
    misses: AtomicU64,
}

impl CalibrationCache {
    /// An empty (cold) cache.
    pub fn new() -> Self {
        CalibrationCache::default()
    }

    /// The cache key of a kind: the iso-bandwidth ablation runs the same
    /// per-channel RoMe controller, so it shares RoMe's entry.
    fn key(kind: MemorySystemKind) -> MemorySystemKind {
        match kind {
            MemorySystemKind::RomeIsoBandwidth => MemorySystemKind::Rome,
            k => k,
        }
    }

    /// Whether `kind` is already calibrated (without triggering a run).
    pub fn is_warm(&self, kind: MemorySystemKind) -> bool {
        // A panic while the map lock was held (a worker dying mid-insert)
        // poisons the mutex but cannot leave the map itself inconsistent —
        // the critical sections only clone/insert Arc slots — so recover the
        // guard instead of propagating the poison to every later scenario.
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&Self::key(kind))
            .is_some_and(|slot| slot.get().is_some())
    }

    /// The measured calibration of `kind`, running the sampled
    /// cycle-accurate simulation on the first request and reusing the result
    /// for every later one.
    pub fn get_or_calibrate(&self, kind: MemorySystemKind) -> CalibrationResult {
        let key = Self::key(kind);
        let slot = {
            // See `is_warm` for why poisoning is recoverable here. A panic
            // *inside* a calibration run leaves the OnceLock slot empty, so
            // the next request simply retries the calibration.
            let mut entries = self
                .entries
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            Arc::clone(entries.entry(key).or_default())
        };
        // Classify before initializing: a cold slot counts as a miss for
        // every worker that raced on it (they all paid the wait), a warm one
        // as a hit.
        if slot.get().is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        *slot.get_or_init(|| match key {
            MemorySystemKind::Hbm4 => Calibrator::new().hbm4(),
            MemorySystemKind::Rome | MemorySystemKind::RomeIsoBandwidth => Calibrator::new().rome(),
        })
    }

    /// Lifetime `(hits, misses)` counters of [`CalibrationCache::get_or_calibrate`]:
    /// the cache's ops metrics, snapshotted atomically mid-run.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_streams_round_robin_across_streams() {
        let reqs = interleaved_streams(4, 1024, 32, 1);
        assert_eq!(reqs.len(), 4 * 32);
        // The same four base addresses repeat every four requests, advancing
        // by one granule per round.
        let first: Vec<u64> = reqs.iter().take(4).map(|r| r.address.raw()).collect();
        let second: Vec<u64> = reqs
            .iter()
            .skip(4)
            .take(4)
            .map(|r| r.address.raw())
            .collect();
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(b - a, 32);
        }
        // All bases are 4 KiB aligned and distinct.
        assert!(first.iter().all(|a| a % 4096 == 0));
        let dedup: std::collections::HashSet<u64> = first.iter().copied().collect();
        assert_eq!(dedup.len(), 4);
        // Deterministic for a given seed, different across seeds.
        assert_eq!(reqs, interleaved_streams(4, 1024, 32, 1));
        assert_ne!(reqs, interleaved_streams(4, 1024, 32, 2));
    }

    #[test]
    fn hbm4_calibration_is_reasonable_and_cached() {
        let mut cal = Calibrator::new();
        let a = cal.hbm4();
        let b = cal.hbm4();
        assert_eq!(a, b);
        assert!(
            a.bandwidth_utilization > 0.5 && a.bandwidth_utilization <= 1.0,
            "utilization {}",
            a.bandwidth_utilization
        );
        assert!(
            a.activates_per_kib >= 0.9,
            "acts/KiB {}",
            a.activates_per_kib
        );
        assert!(a.mean_read_latency_ns > 0.0);
    }

    #[test]
    fn rome_calibration_beats_hbm4_on_activates_and_utilization() {
        let mut cal = Calibrator::new();
        let hbm4 = cal.hbm4();
        let rome = cal.rome();
        assert!(
            rome.bandwidth_utilization >= hbm4.bandwidth_utilization - 0.05,
            "rome {} vs hbm4 {}",
            rome.bandwidth_utilization,
            hbm4.bandwidth_utilization
        );
        assert!(
            rome.activates_per_kib <= hbm4.activates_per_kib + 0.01,
            "rome {} vs hbm4 {}",
            rome.activates_per_kib,
            hbm4.activates_per_kib
        );
        assert!(rome.bandwidth_utilization > 0.85);
        assert!((rome.activates_per_kib - 1.0).abs() < 0.05);
    }

    #[test]
    fn calibration_cache_is_warm_after_first_use_and_matches_the_calibrator() {
        let cache = CalibrationCache::new();
        assert!(!cache.is_warm(MemorySystemKind::Hbm4));
        let a = cache.get_or_calibrate(MemorySystemKind::Hbm4);
        assert!(cache.is_warm(MemorySystemKind::Hbm4));
        assert_eq!(
            a,
            Calibrator::new().hbm4(),
            "cache must match the direct path"
        );
        assert_eq!(a, cache.get_or_calibrate(MemorySystemKind::Hbm4));
        // The iso-bandwidth ablation shares RoMe's entry (same per-channel
        // controller).
        assert!(!cache.is_warm(MemorySystemKind::Rome));
        let iso = cache.get_or_calibrate(MemorySystemKind::RomeIsoBandwidth);
        assert!(cache.is_warm(MemorySystemKind::Rome));
        assert_eq!(iso, cache.get_or_calibrate(MemorySystemKind::Rome));
    }

    #[test]
    fn nominal_values_are_sane() {
        let h = Calibrator::nominal_hbm4();
        let r = Calibrator::nominal_rome();
        assert!(r.bandwidth_utilization > h.bandwidth_utilization);
        assert!(r.activates_per_kib < h.activates_per_kib);
    }
}
