//! The memory-system configurations compared in the evaluation.

use serde::{Deserialize, Serialize};

use rome_core::channel_plan::ChannelPlan;
use rome_hbm::organization::Organization;

use crate::accelerator::AcceleratorSpec;
use crate::calibration::{CalibrationCache, CalibrationResult, Calibrator};
use crate::serving::{knee_point, ClosedLoopPoint};

/// Which memory system an accelerator is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemorySystemKind {
    /// Conventional HBM4 (32 channels per cube, 32 B access granularity).
    Hbm4,
    /// RoMe with the expanded 36-channel cubes (4 KB access granularity).
    Rome,
    /// RoMe limited to 32 channels per cube — the iso-bandwidth ablation that
    /// isolates the scheduler simplification from the bandwidth gain.
    RomeIsoBandwidth,
}

impl std::fmt::Display for MemorySystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemorySystemKind::Hbm4 => f.write_str("HBM4"),
            MemorySystemKind::Rome => f.write_str("RoMe"),
            MemorySystemKind::RomeIsoBandwidth => f.write_str("RoMe (32 ch)"),
        }
    }
}

/// An accelerator-level view of one memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Which system this is.
    pub kind: MemorySystemKind,
    /// Total channels across the accelerator's cubes.
    pub channels: u32,
    /// Peak bandwidth in GB/s.
    pub peak_bw_gbps: f64,
    /// Access granularity in bytes (32 B or the 4 KB effective row).
    pub access_granularity: u64,
    /// Calibrated utilization / activation behaviour.
    pub calibration: CalibrationResult,
}

impl MemoryModel {
    /// The conventional HBM4 memory system of `accel`, with nominal
    /// calibration values.
    pub fn hbm4_baseline(accel: &AcceleratorSpec) -> Self {
        let org = Organization::hbm4();
        let channels = accel.hbm_cubes * org.channels_per_cube as u32;
        MemoryModel {
            kind: MemorySystemKind::Hbm4,
            channels,
            peak_bw_gbps: org.channel_bandwidth_gbps() * channels as f64,
            access_granularity: org.access_granularity as u64,
            calibration: Calibrator::nominal_hbm4(),
        }
    }

    /// The RoMe memory system of `accel` (36 channels per cube), with nominal
    /// calibration values.
    pub fn rome(accel: &AcceleratorSpec) -> Self {
        let org = Organization::hbm4();
        let plan = ChannelPlan::paper_default();
        let channels = accel.hbm_cubes * plan.rome_channels;
        MemoryModel {
            kind: MemorySystemKind::Rome,
            channels,
            peak_bw_gbps: org.channel_bandwidth_gbps() * channels as f64,
            access_granularity: 4096,
            calibration: Calibrator::nominal_rome(),
        }
    }

    /// RoMe restricted to the baseline's 32 channels per cube (ablation).
    pub fn rome_iso_bandwidth(accel: &AcceleratorSpec) -> Self {
        let org = Organization::hbm4();
        let channels = accel.hbm_cubes * org.channels_per_cube as u32;
        MemoryModel {
            kind: MemorySystemKind::RomeIsoBandwidth,
            channels,
            peak_bw_gbps: org.channel_bandwidth_gbps() * channels as f64,
            access_granularity: 4096,
            calibration: Calibrator::nominal_rome(),
        }
    }

    /// Replace the nominal calibration with a measured one.
    pub fn with_calibration(mut self, calibration: CalibrationResult) -> Self {
        self.calibration = calibration;
        self
    }

    /// Build both systems with measured (cycle-simulated) calibration.
    pub fn calibrated_pair(
        accel: &AcceleratorSpec,
        calibrator: &mut Calibrator,
    ) -> (MemoryModel, MemoryModel) {
        let hbm4 = MemoryModel::hbm4_baseline(accel).with_calibration(calibrator.hbm4());
        let rome = MemoryModel::rome(accel).with_calibration(calibrator.rome());
        (hbm4, rome)
    }

    /// Build both systems against a shared (possibly already warm)
    /// [`CalibrationCache`] — the serving-style counterpart of
    /// [`MemoryModel::calibrated_pair`], usable concurrently from a worker
    /// pool and across batches.
    pub fn calibrated_pair_cached(
        accel: &AcceleratorSpec,
        cache: &CalibrationCache,
    ) -> (MemoryModel, MemoryModel) {
        let hbm4 = MemoryModel::hbm4_baseline(accel)
            .with_calibration(cache.get_or_calibrate(MemorySystemKind::Hbm4));
        let rome = MemoryModel::rome(accel)
            .with_calibration(cache.get_or_calibrate(MemorySystemKind::Rome));
        (hbm4, rome)
    }

    /// Replace the open-loop calibrated bandwidth point with the knee of a
    /// measured closed-loop window sweep (see
    /// [`crate::serving::knee_point`]): the achieved utilization becomes the
    /// knee's bandwidth over the sampled system's peak
    /// (`sampled_peak_gbps`), and the calibrated read latency becomes the
    /// knee's measured mean. The open-loop calibration assumes a saturated
    /// burst; a closed-loop host with a finite window achieves less, and
    /// this hook feeds that difference back into the TPOT model. Returns
    /// `self` unchanged when the sweep is empty or the peak is non-positive.
    pub fn with_closed_loop_knee(
        mut self,
        points: &[ClosedLoopPoint],
        sampled_peak_gbps: f64,
    ) -> Self {
        let Some(knee) = knee_point(points) else {
            return self;
        };
        if sampled_peak_gbps <= 0.0 {
            return self;
        }
        self.calibration.bandwidth_utilization =
            (knee.achieved_gbps / sampled_peak_gbps).clamp(0.0, 1.0);
        self.calibration.mean_read_latency_ns = knee.mean_latency_ns;
        self
    }

    /// Effective bandwidth in GB/s for traffic with channel load-balance rate
    /// `lbr` (1.0 = perfectly balanced).
    pub fn effective_bandwidth_gbps(&self, lbr: f64) -> f64 {
        self.peak_bw_gbps * self.calibration.bandwidth_utilization * lbr.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm4_and_rome_bandwidths_match_the_paper() {
        let accel = AcceleratorSpec::paper_default();
        let hbm4 = MemoryModel::hbm4_baseline(&accel);
        let rome = MemoryModel::rome(&accel);
        assert_eq!(hbm4.channels, 256);
        assert_eq!(rome.channels, 288);
        assert_eq!(hbm4.peak_bw_gbps, 16_384.0);
        assert_eq!(rome.peak_bw_gbps, 18_432.0);
        assert!((rome.peak_bw_gbps / hbm4.peak_bw_gbps - 1.125).abs() < 1e-9);
        assert_eq!(hbm4.access_granularity, 32);
        assert_eq!(rome.access_granularity, 4096);
    }

    #[test]
    fn iso_bandwidth_ablation_matches_baseline_bandwidth() {
        let accel = AcceleratorSpec::paper_default();
        let iso = MemoryModel::rome_iso_bandwidth(&accel);
        let hbm4 = MemoryModel::hbm4_baseline(&accel);
        assert_eq!(iso.peak_bw_gbps, hbm4.peak_bw_gbps);
        assert_eq!(iso.access_granularity, 4096);
        assert_eq!(iso.kind.to_string(), "RoMe (32 ch)");
    }

    #[test]
    fn effective_bandwidth_scales_with_lbr_and_clamps() {
        let accel = AcceleratorSpec::paper_default();
        let rome = MemoryModel::rome(&accel);
        let full = rome.effective_bandwidth_gbps(1.0);
        let half = rome.effective_bandwidth_gbps(0.5);
        assert!((half * 2.0 - full).abs() < 1e-6);
        assert_eq!(rome.effective_bandwidth_gbps(2.0), full);
        assert!(full < rome.peak_bw_gbps);
    }

    #[test]
    fn with_calibration_overrides_nominal() {
        let accel = AcceleratorSpec::paper_default();
        let custom = CalibrationResult {
            bandwidth_utilization: 0.5,
            activates_per_kib: 2.0,
            mean_read_latency_ns: 100.0,
        };
        let m = MemoryModel::hbm4_baseline(&accel).with_calibration(custom);
        assert_eq!(m.calibration, custom);
        assert_eq!(m.effective_bandwidth_gbps(1.0), 16_384.0 * 0.5);
    }
}
