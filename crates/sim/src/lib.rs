//! # rome-sim — system-level co-simulation of AI accelerators and memory
//!
//! This crate reproduces the paper's evaluation methodology (§VI-A): an AI
//! accelerator with a fixed arithmetic intensity (280 Op/B) attached to eight
//! HBM4 cubes, serving LLM decode/prefill steps whose memory traffic comes
//! from `rome-llm`, over either the conventional HBM4 memory system
//! (`rome-mc`) or the RoMe memory system (`rome-core`).
//!
//! * [`accelerator`] — the accelerator and 8-device server model;
//! * [`memory_model`] — the two memory-system configurations (plus an
//!   iso-bandwidth RoMe ablation);
//! * [`calibration`] — sampled cycle-accurate runs that measure each memory
//!   system's effective bandwidth utilization and activation overhead on
//!   LLM-like traffic;
//! * [`lbr`] — the channel load-balance rate of Figure 13;
//! * [`tpot`] — time-per-output-token (Figure 12) and prefill timing;
//! * [`energy_rollup`] — the DRAM energy comparison of Figure 14;
//! * [`sweep`] — batch-size sweeps producing whole figures at once, plus the
//!   batched [`ScenarioSet`] runner that executes many sweep scenarios
//!   behind one warm (calibrate-once) process;
//! * [`serving`] — closed-loop window sweeps driving sampled memory systems
//!   from the streaming `rome-workload` sources (MoE routing skew,
//!   prefill/decode interleave, multi-tenant mixes);
//! * [`overfetch`] — the fine-grained-access ablation of §VII.
//!
//! # Example
//!
//! ```
//! use rome_sim::prelude::*;
//! use rome_llm::prelude::*;
//!
//! let accel = AcceleratorSpec::paper_default();
//! let model = ModelConfig::grok_1();
//! let hbm4 = MemoryModel::hbm4_baseline(&accel);
//! let rome = MemoryModel::rome(&accel);
//! let tpot_hbm4 = decode_tpot(&model, 64, 8192, &accel, &hbm4);
//! let tpot_rome = decode_tpot(&model, 64, 8192, &accel, &rome);
//! assert!(tpot_rome.tpot_ms < tpot_hbm4.tpot_ms);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accelerator;
pub mod calibration;
pub mod energy_rollup;
pub mod lbr;
pub mod memory_model;
pub mod overfetch;
pub mod serving;
pub mod sweep;
pub mod tpot;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::accelerator::{AcceleratorSpec, ServerSpec};
    pub use crate::calibration::{CalibrationCache, CalibrationResult, Calibrator};
    pub use crate::energy_rollup::{decode_energy, EnergyComparison};
    pub use crate::lbr::{channel_load_balance, LbrReport};
    pub use crate::memory_model::{MemoryModel, MemorySystemKind};
    pub use crate::overfetch::{overfetch_sweep, OverfetchRow};
    pub use crate::serving::{closed_loop_point, closed_loop_sweep, knee_point, ClosedLoopPoint};
    pub use crate::sweep::{
        figure12_sweep, figure13_sweep, Figure12Row, Figure13Row, Scenario, ScenarioReport,
        ScenarioSet, SweepKind,
    };
    pub use crate::tpot::{decode_tpot, prefill_time, TpotReport};
}

pub use accelerator::{AcceleratorSpec, ServerSpec};
pub use calibration::{CalibrationCache, CalibrationResult, Calibrator};
pub use energy_rollup::{decode_energy, EnergyComparison};
pub use lbr::{channel_load_balance, LbrReport};
pub use memory_model::{MemoryModel, MemorySystemKind};
pub use serving::{closed_loop_point, closed_loop_sweep, knee_point, ClosedLoopPoint};
pub use sweep::{Scenario, ScenarioReport, ScenarioSet, SweepKind};
pub use tpot::{decode_tpot, prefill_time, TpotReport};
