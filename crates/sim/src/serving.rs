//! Closed-loop serving sweeps over the streaming workload sources.
//!
//! The cycle-accurate counterpart of the analytic sweeps: a
//! [`rome_workload::TrafficSource`] drives a sampled memory system through a
//! [`ClosedLoopHost`] at a range of window sizes, tracing the true
//! latency/bandwidth curve — throughput saturates with the window while
//! latency keeps climbing, the knee the analytic model cannot show. Points
//! of a sweep are independent, so they fan out across cores with rayon like
//! every other sweep in this crate.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use rome_core::system::{RomeMemorySystem, RomeSystemConfig};
use rome_hbm::units::Cycle;
use rome_mc::system::{MemorySystem, MemorySystemConfig};
use rome_workload::{ClosedLoopHost, TrafficSource};

use crate::memory_model::MemorySystemKind;

/// One point of a closed-loop window sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopPoint {
    /// Outstanding-request window of this point.
    pub window: usize,
    /// Requests injected.
    pub injected: u64,
    /// Requests completed.
    pub completed: u64,
    /// Useful bytes completed.
    pub bytes: u64,
    /// Achieved useful bandwidth in decimal GB/s (bytes over the last
    /// completion cycle).
    pub achieved_gbps: f64,
    /// Mean injection-to-completion latency in ns.
    pub mean_latency_ns: f64,
    /// Worst injection-to-completion latency in ns.
    pub max_latency_ns: u64,
    /// Cycle the run stopped at.
    pub stop_ns: Cycle,
}

/// Drive `source` through a [`ClosedLoopHost`] with the given `window` on a
/// fresh sampled memory system of `kind` with `channels` channels, until the
/// source drains or `max_ns` elapses.
pub fn closed_loop_point<S: TrafficSource>(
    kind: MemorySystemKind,
    channels: u16,
    source: S,
    window: usize,
    max_ns: Cycle,
) -> ClosedLoopPoint {
    let mut host = ClosedLoopHost::new(source, window);
    let stop = match kind {
        MemorySystemKind::Hbm4 => {
            let mut sys = MemorySystem::new(MemorySystemConfig::hbm4(channels));
            let (_, stop) = sys.run_with_source(&mut host, max_ns);
            stop
        }
        MemorySystemKind::Rome | MemorySystemKind::RomeIsoBandwidth => {
            let mut sys = RomeMemorySystem::new(RomeSystemConfig::with_channels(channels));
            let (_, stop) = sys.run_with_source(&mut host, max_ns);
            stop
        }
    };
    ClosedLoopPoint {
        window,
        injected: host.injected(),
        completed: host.completed(),
        bytes: host.completed_bytes(),
        achieved_gbps: host.achieved_gbps(),
        mean_latency_ns: host.mean_latency_ns(),
        max_latency_ns: host.max_latency_ns(),
        stop_ns: stop,
    }
}

/// Sweep closed-loop windows over fresh copies of a source: `make_source(w)`
/// builds the (identically seeded) source for each window, so every point
/// sees the same traffic and only the window differs. Points run in
/// parallel.
pub fn closed_loop_sweep<S, F>(
    kind: MemorySystemKind,
    channels: u16,
    windows: &[usize],
    max_ns: Cycle,
    make_source: F,
) -> Vec<ClosedLoopPoint>
where
    S: TrafficSource + Send,
    F: Fn(usize) -> S + Sync,
{
    windows
        .to_vec()
        .into_par_iter()
        .map(|w| closed_loop_point(kind, channels, make_source(w), w, max_ns))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rome_workload::{MoeRoutingConfig, MoeRoutingSource};

    fn tiny_moe() -> MoeRoutingConfig {
        MoeRoutingConfig {
            experts: 8,
            top_k: 2,
            expert_bytes: 4096,
            layers: 2,
            tokens_per_step: 8,
            steps: 2,
            step_period_ns: 0,
            granularity: 4096,
            base: 0,
            zipf_exponent: 1.0,
            seed: 11,
        }
    }

    #[test]
    fn windows_trade_latency_for_bandwidth_on_both_systems() {
        for kind in [MemorySystemKind::Hbm4, MemorySystemKind::Rome] {
            let points = closed_loop_sweep(kind, 4, &[1, 8], 10_000_000, |_| {
                MoeRoutingSource::new(tiny_moe())
            });
            assert_eq!(points.len(), 2);
            for p in &points {
                assert_eq!(p.injected, p.completed, "{kind}: run must drain");
                assert!(p.completed > 0 && p.bytes > 0);
                assert!(p.achieved_gbps > 0.0 && p.mean_latency_ns > 0.0);
                assert!(p.max_latency_ns as f64 >= p.mean_latency_ns);
            }
            // A wider window keeps more channels busy: bandwidth must not
            // drop, and the single-request window must be strictly slower.
            assert!(
                points[1].achieved_gbps > points[0].achieved_gbps,
                "{kind}: w=8 {} <= w=1 {}",
                points[1].achieved_gbps,
                points[0].achieved_gbps
            );
        }
    }

    #[test]
    fn same_source_same_window_is_deterministic() {
        let run = || {
            closed_loop_point(
                MemorySystemKind::Hbm4,
                2,
                MoeRoutingSource::new(tiny_moe()),
                4,
                10_000_000,
            )
        };
        assert_eq!(run(), run());
    }
}
