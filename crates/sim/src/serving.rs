//! Closed-loop serving sweeps over the streaming workload sources.
//!
//! The cycle-accurate counterpart of the analytic sweeps: a
//! [`rome_workload::TrafficSource`] drives a sampled memory system through a
//! [`ClosedLoopHost`] at a range of window sizes, tracing the true
//! latency/bandwidth curve — throughput saturates with the window while
//! latency keeps climbing, the knee the analytic model cannot show. Points
//! of a sweep are independent, so they fan out across cores with rayon like
//! every other sweep in this crate.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use rome_core::system::{RomeMemorySystem, RomeSystemConfig};
use rome_engine::budget::{AbortReason, RunBudget};
use rome_hbm::units::Cycle;
use rome_mc::system::{MemorySystem, MemorySystemConfig};
use rome_workload::{ClosedLoopHost, TrafficSource};

use crate::memory_model::MemorySystemKind;

/// One point of a closed-loop window sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopPoint {
    /// Outstanding-request window of this point.
    pub window: usize,
    /// Requests injected.
    pub injected: u64,
    /// Requests completed.
    pub completed: u64,
    /// Useful bytes completed.
    pub bytes: u64,
    /// Achieved useful bandwidth in decimal GB/s (bytes over the last
    /// completion cycle).
    pub achieved_gbps: f64,
    /// Mean injection-to-completion latency in ns.
    pub mean_latency_ns: f64,
    /// Worst injection-to-completion latency in ns.
    pub max_latency_ns: u64,
    /// Cycle the run stopped at.
    pub stop_ns: Cycle,
    /// `Some(reason)` when the run was cut short by a tripped
    /// [`RunBudget`] limit or a stalled source; `None` for a run that
    /// drained naturally (or hit only the legacy untagged `max_ns` cutoff).
    pub aborted: Option<AbortReason>,
}

/// Drive `source` through a [`ClosedLoopHost`] with the given `window` on a
/// fresh sampled memory system of `kind` with `channels` channels, until the
/// source drains or `max_ns` elapses.
pub fn closed_loop_point<S: TrafficSource>(
    kind: MemorySystemKind,
    channels: u16,
    source: S,
    window: usize,
    max_ns: Cycle,
) -> ClosedLoopPoint {
    closed_loop_point_budgeted(
        kind,
        channels,
        source,
        window,
        max_ns,
        &RunBudget::unlimited(),
    )
}

/// Like [`closed_loop_point`] but metered against a [`RunBudget`]: a tripped
/// limit (or a stalled source) stops the run and tags the point via
/// [`ClosedLoopPoint::aborted`]. With [`RunBudget::unlimited`] this is
/// bit-identical to [`closed_loop_point`].
pub fn closed_loop_point_budgeted<S: TrafficSource>(
    kind: MemorySystemKind,
    channels: u16,
    source: S,
    window: usize,
    max_ns: Cycle,
    budget: &RunBudget,
) -> ClosedLoopPoint {
    let mut host = ClosedLoopHost::new(source, window);
    let (stop, aborted) = match kind {
        MemorySystemKind::Hbm4 => {
            let mut sys = MemorySystem::new(MemorySystemConfig::hbm4(channels));
            let (_, stop, aborted) = sys.run_with_source_budgeted(&mut host, max_ns, budget);
            (stop, aborted)
        }
        MemorySystemKind::Rome | MemorySystemKind::RomeIsoBandwidth => {
            let mut sys = RomeMemorySystem::new(RomeSystemConfig::with_channels(channels));
            let (_, stop, aborted) = sys.run_with_source_budgeted(&mut host, max_ns, budget);
            (stop, aborted)
        }
    };
    ClosedLoopPoint {
        window,
        injected: host.injected(),
        completed: host.completed(),
        bytes: host.completed_bytes(),
        achieved_gbps: host.achieved_gbps(),
        mean_latency_ns: host.mean_latency_ns(),
        max_latency_ns: host.max_latency_ns(),
        stop_ns: stop,
        aborted,
    }
}

/// Run pre-built `(window, source)` pairs as closed-loop points under one
/// shared [`RunBudget`], in parallel. This is the serving-path entry: the
/// caller validates and builds every source *before* any simulation runs
/// (so a bad workload spec is a structured error, not a mid-sweep panic),
/// and each point's run is individually bounded by the budget.
pub fn closed_loop_points<S: TrafficSource + Send>(
    kind: MemorySystemKind,
    channels: u16,
    sources: Vec<(usize, S)>,
    max_ns: Cycle,
    budget: &RunBudget,
) -> Vec<ClosedLoopPoint> {
    sources
        .into_par_iter()
        .map(|(window, source)| {
            closed_loop_point_budgeted(kind, channels, source, window, max_ns, budget)
        })
        .collect()
}

/// Sweep closed-loop windows over fresh copies of a source: `make_source(w)`
/// builds the (identically seeded) source for each window, so every point
/// sees the same traffic and only the window differs. Points run in
/// parallel.
pub fn closed_loop_sweep<S, F>(
    kind: MemorySystemKind,
    channels: u16,
    windows: &[usize],
    max_ns: Cycle,
    make_source: F,
) -> Vec<ClosedLoopPoint>
where
    S: TrafficSource + Send,
    F: Fn(usize) -> S + Sync,
{
    windows
        .to_vec()
        .into_par_iter()
        .map(|w| closed_loop_point(kind, channels, make_source(w), w, max_ns))
        .collect()
}

/// Fraction of a sweep's peak bandwidth a point must achieve to count as
/// saturated: the knee is the *first* (smallest-window) such point.
pub const KNEE_FRACTION: f64 = 0.95;

/// The knee of a closed-loop window sweep: the smallest-window point whose
/// bandwidth reaches [`KNEE_FRACTION`] of the sweep's best — past it the
/// window only buys latency, the saturation knee of the latency/bandwidth
/// curve. `None` for an empty sweep. Feed the knee to
/// [`crate::memory_model::MemoryModel::with_closed_loop_knee`] to replace
/// the open-loop calibration assumption with the achieved closed-loop
/// bandwidth point.
pub fn knee_point(points: &[ClosedLoopPoint]) -> Option<&ClosedLoopPoint> {
    let best = points
        .iter()
        .map(|p| p.achieved_gbps)
        .fold(f64::NEG_INFINITY, f64::max);
    points
        .iter()
        .find(|p| p.achieved_gbps >= best * KNEE_FRACTION)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rome_workload::{MoeRoutingConfig, MoeRoutingSource};

    fn tiny_moe() -> MoeRoutingConfig {
        MoeRoutingConfig {
            experts: 8,
            top_k: 2,
            expert_bytes: 4096,
            layers: 2,
            tokens_per_step: 8,
            steps: 2,
            step_period_ns: 0,
            granularity: 4096,
            base: 0,
            zipf_exponent: 1.0,
            seed: 11,
        }
    }

    #[test]
    fn windows_trade_latency_for_bandwidth_on_both_systems() {
        for kind in [MemorySystemKind::Hbm4, MemorySystemKind::Rome] {
            let points = closed_loop_sweep(kind, 4, &[1, 8], 10_000_000, |_| {
                MoeRoutingSource::new(tiny_moe())
            });
            assert_eq!(points.len(), 2);
            for p in &points {
                assert_eq!(p.injected, p.completed, "{kind}: run must drain");
                assert!(p.completed > 0 && p.bytes > 0);
                assert!(p.achieved_gbps > 0.0 && p.mean_latency_ns > 0.0);
                assert!(p.max_latency_ns as f64 >= p.mean_latency_ns);
            }
            // A wider window keeps more channels busy: bandwidth must not
            // drop, and the single-request window must be strictly slower.
            assert!(
                points[1].achieved_gbps > points[0].achieved_gbps,
                "{kind}: w=8 {} <= w=1 {}",
                points[1].achieved_gbps,
                points[0].achieved_gbps
            );
        }
    }

    #[test]
    fn knee_is_the_smallest_window_reaching_saturation() {
        let point = |window, achieved_gbps, mean_latency_ns| ClosedLoopPoint {
            window,
            injected: 10,
            completed: 10,
            bytes: 1000,
            achieved_gbps,
            mean_latency_ns,
            max_latency_ns: 500,
            stop_ns: 1000,
            aborted: None,
        };
        // Bandwidth saturates at w=8; w=16 only adds latency.
        let points = vec![
            point(1, 10.0, 100.0),
            point(4, 60.0, 150.0),
            point(8, 97.0, 300.0),
            point(16, 100.0, 900.0),
        ];
        let knee = knee_point(&points).expect("non-empty sweep");
        assert_eq!(knee.window, 8, "97 >= 0.95 * 100: w=8 is the knee");
        assert!(knee_point(&[]).is_none());
        // A flat sweep knees at its first point.
        let flat = vec![point(1, 50.0, 100.0), point(4, 50.0, 400.0)];
        assert_eq!(knee_point(&flat).unwrap().window, 1);
    }

    #[test]
    fn closed_loop_knee_feeds_back_into_the_tpot_model() {
        use crate::accelerator::AcceleratorSpec;
        use crate::memory_model::MemoryModel;
        use crate::tpot::decode_tpot;
        use rome_llm::model::ModelConfig;
        use rome_mc::system::MemorySystemConfig;

        // Measure a real closed-loop sweep on a sampled 4-channel HBM4
        // system, then pin the derived calibration point.
        let channels = 4u16;
        let points = closed_loop_sweep(
            MemorySystemKind::Hbm4,
            channels,
            &[1, 4, 16],
            10_000_000,
            |_| MoeRoutingSource::new(tiny_moe()),
        );
        let knee = knee_point(&points).expect("sweep is non-empty").clone();
        let sampled_peak = MemorySystemConfig::hbm4(channels).peak_bandwidth_gbps();

        let accel = AcceleratorSpec::paper_default();
        let open_loop = MemoryModel::hbm4_baseline(&accel);
        let fed_back = open_loop.with_closed_loop_knee(&points, sampled_peak);
        // Pin the derivation: utilization is exactly the knee's achieved
        // bandwidth over the sampled system's peak, latency the knee's mean.
        assert_eq!(
            fed_back.calibration.bandwidth_utilization,
            (knee.achieved_gbps / sampled_peak).clamp(0.0, 1.0)
        );
        assert_eq!(
            fed_back.calibration.mean_read_latency_ns,
            knee.mean_latency_ns
        );
        assert!(
            fed_back.calibration.bandwidth_utilization > 0.0
                && fed_back.calibration.bandwidth_utilization <= 1.0
        );
        // A knee below the open-loop assumption must slow the TPOT model
        // down (deterministic synthetic sweep: half the sampled peak).
        let half_knee = vec![ClosedLoopPoint {
            window: 8,
            injected: 100,
            completed: 100,
            bytes: 1 << 20,
            achieved_gbps: sampled_peak * 0.5,
            mean_latency_ns: 400.0,
            max_latency_ns: 900,
            stop_ns: 10_000,
            aborted: None,
        }];
        let slowed = open_loop.with_closed_loop_knee(&half_knee, sampled_peak);
        assert_eq!(slowed.calibration.bandwidth_utilization, 0.5);
        let model = ModelConfig::grok_1();
        let t_open = decode_tpot(&model, 64, 8192, &accel, &open_loop);
        let t_fed = decode_tpot(&model, 64, 8192, &accel, &slowed);
        assert!(
            t_fed.tpot_ms > t_open.tpot_ms,
            "a sub-saturation knee must not speed decode up: {} vs {}",
            t_fed.tpot_ms,
            t_open.tpot_ms
        );
        // An empty sweep or a bogus peak leaves the model unchanged.
        assert_eq!(
            open_loop.with_closed_loop_knee(&[], sampled_peak),
            open_loop
        );
        assert_eq!(open_loop.with_closed_loop_knee(&points, 0.0), open_loop);
    }

    #[test]
    fn same_source_same_window_is_deterministic() {
        let run = || {
            closed_loop_point(
                MemorySystemKind::Hbm4,
                2,
                MoeRoutingSource::new(tiny_moe()),
                4,
                10_000_000,
            )
        };
        assert_eq!(run(), run());
    }
}
