//! DRAM energy comparison for a decode step (Figure 14).
//!
//! The conventional system's command counts follow from its 32 B access
//! granularity and the calibrated activations-per-KiB of the cycle-accurate
//! controller; RoMe's counts follow exactly from the command-generator
//! expansion (4 ACTs, 128 column commands, 4 PREs per 4 KB row command) plus
//! the per-object overfetch of rounding every tensor up to whole rows.

use serde::{Deserialize, Serialize};

use rome_energy::dram_energy::{CommandCounts, EnergyBreakdown, EnergyParams};
use rome_llm::model::ModelConfig;
use rome_llm::ops::decode_step;
use rome_llm::parallelism::Parallelism;
use rome_llm::traffic::StepTraffic;

use crate::memory_model::MemoryModel;

/// Energy of one decode step on both memory systems.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyComparison {
    /// Model name.
    pub model: String,
    /// Batch size.
    pub batch: u64,
    /// Command counts attributed to the HBM4 baseline.
    pub hbm4_counts: CommandCounts,
    /// Command counts attributed to RoMe.
    pub rome_counts: CommandCounts,
    /// Energy breakdown of the HBM4 baseline.
    pub hbm4: EnergyBreakdown,
    /// Energy breakdown of RoMe.
    pub rome: EnergyBreakdown,
}

impl EnergyComparison {
    /// RoMe ACT energy relative to HBM4 (the paper reports 55.5 % / 86.0 % /
    /// 84.4 % for the three models).
    pub fn act_energy_ratio(&self) -> f64 {
        if self.hbm4.act_pj == 0.0 {
            1.0
        } else {
            self.rome.act_pj / self.hbm4.act_pj
        }
    }

    /// RoMe total energy relative to HBM4 (the paper reports reductions of
    /// 1.9 % / 0.7 % / 0.7 %).
    pub fn total_energy_ratio(&self) -> f64 {
        if self.hbm4.total_pj() == 0.0 {
            1.0
        } else {
            self.rome.total_pj() / self.hbm4.total_pj()
        }
    }

    /// Command-generator energy as a fraction of RoMe's total.
    pub fn command_generator_fraction(&self) -> f64 {
        if self.rome.total_pj() == 0.0 {
            0.0
        } else {
            self.rome.command_generator_pj / self.rome.total_pj()
        }
    }
}

fn hbm4_counts(step: &StepTraffic, mem: &MemoryModel) -> CommandCounts {
    let bytes = step.total_bytes();
    let columns = bytes / 32;
    let activates = (bytes as f64 / 1024.0 * mem.calibration.activates_per_kib).round() as u64;
    CommandCounts {
        activates,
        reads: columns,
        writes: 0,
        precharges: activates,
        refreshes: 0,
        data_bytes: bytes,
        interface_commands: columns + 2 * activates,
        generated_commands: 0,
    }
}

fn rome_counts(step: &StepTraffic, row_bytes: u64) -> CommandCounts {
    // Every independently-allocated object is rounded up to whole rows.
    let mut row_commands = 0u64;
    for op in &step.operators {
        let per_exec: u64 = op
            .tensor_units()
            .iter()
            .map(|(_, b)| b.div_ceil(row_bytes))
            .sum();
        row_commands += per_exec * op.repeat as u64;
    }
    let acts_per_row = 4;
    let columns_per_row = row_bytes / 32;
    CommandCounts {
        activates: row_commands * acts_per_row,
        reads: row_commands * columns_per_row,
        writes: 0,
        precharges: row_commands * acts_per_row,
        refreshes: 0,
        data_bytes: row_commands * row_bytes,
        interface_commands: row_commands,
        generated_commands: row_commands * (columns_per_row + 2 * acts_per_row),
    }
}

/// Compute the Figure 14 comparison for one decode step.
pub fn decode_energy(
    model: &ModelConfig,
    batch: u64,
    seq_len: u64,
    hbm4: &MemoryModel,
    rome: &MemoryModel,
    params: &EnergyParams,
) -> EnergyComparison {
    let par = Parallelism::paper_decode(model);
    let step = decode_step(model, &par, batch, seq_len);
    let h = hbm4_counts(&step, hbm4);
    let r = rome_counts(&step, rome.access_granularity);
    EnergyComparison {
        model: model.name.clone(),
        batch,
        hbm4: EnergyBreakdown::from_counts(&h, params),
        rome: EnergyBreakdown::from_counts(&r, params),
        hbm4_counts: h,
        rome_counts: r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::AcceleratorSpec;

    fn systems() -> (MemoryModel, MemoryModel) {
        let accel = AcceleratorSpec::paper_default();
        (
            MemoryModel::hbm4_baseline(&accel),
            MemoryModel::rome(&accel),
        )
    }

    #[test]
    fn rome_reduces_act_energy_for_every_model() {
        let (hbm4, rome) = systems();
        let params = EnergyParams::hbm4();
        for model in ModelConfig::paper_models() {
            let cmp = decode_energy(&model, 256, 8192, &hbm4, &rome, &params);
            let ratio = cmp.act_energy_ratio();
            assert!(
                ratio > 0.4 && ratio < 1.0,
                "{}: ACT ratio {ratio:.2} outside (0.4, 1.0)",
                model.name
            );
        }
    }

    #[test]
    fn rome_total_energy_is_slightly_lower() {
        let (hbm4, rome) = systems();
        let params = EnergyParams::hbm4();
        for model in ModelConfig::paper_models() {
            let cmp = decode_energy(&model, 256, 8192, &hbm4, &rome, &params);
            let ratio = cmp.total_energy_ratio();
            assert!(
                ratio > 0.85 && ratio < 1.0,
                "{}: total ratio {ratio:.3} should be a modest reduction",
                model.name
            );
        }
    }

    #[test]
    fn command_generator_energy_is_negligible() {
        let (hbm4, rome) = systems();
        let params = EnergyParams::hbm4();
        let cmp = decode_energy(&ModelConfig::grok_1(), 256, 8192, &hbm4, &rome, &params);
        assert!(cmp.command_generator_fraction() < 0.005);
        assert!(cmp.command_generator_fraction() > 0.0);
    }

    #[test]
    fn rome_interface_commands_are_orders_of_magnitude_fewer() {
        let (hbm4, rome) = systems();
        let params = EnergyParams::hbm4();
        let cmp = decode_energy(&ModelConfig::llama3_405b(), 64, 8192, &hbm4, &rome, &params);
        assert!(cmp.hbm4_counts.interface_commands > 50 * cmp.rome_counts.interface_commands);
        // Overfetch exists but is small relative to total traffic.
        let overfetch = cmp.rome_counts.data_bytes as f64 / cmp.hbm4_counts.data_bytes as f64;
        assert!(
            (1.0..1.1).contains(&overfetch),
            "overfetch factor {overfetch}"
        );
    }
}
