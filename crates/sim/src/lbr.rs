//! Channel load-balance rate (LBR, Figure 13).
//!
//! Under RoMe's 4 KB access granularity each independently-allocated memory
//! object (a projection matrix, one expert's weights, one sequence's
//! per-layer KV cache) is distributed across the memory channels in 4 KB
//! chunks. An operator whose objects are small relative to
//! `channels × 4 KB` loads some channels more than others, and the
//! most-loaded channel bounds the bandwidth that operator can draw. The LBR
//! of an operator is the ratio of the mean to the maximum per-channel load;
//! the LBR of a step is the traffic-weighted average over its operators
//! (attention and FFN reported separately, as in the paper).

use serde::{Deserialize, Serialize};

use rome_llm::ops::{Operator, OperatorKind};
use rome_llm::traffic::StepTraffic;

/// The per-kind LBR of one inference step on one memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LbrReport {
    /// Traffic-weighted LBR over attention operators.
    pub attention: f64,
    /// Traffic-weighted LBR over FFN operators.
    pub ffn: f64,
    /// Traffic-weighted LBR over the whole step.
    pub overall: f64,
}

/// Distribute one object of `bytes` bytes over `loads.len()` channels in
/// `granularity`-byte chunks, starting at channel `start`.
fn distribute(loads: &mut [f64], bytes: u64, granularity: u64, start: usize) {
    let channels = loads.len();
    if bytes == 0 || channels == 0 {
        return;
    }
    let channels_u64 = channels as u64;
    let full_chunks = bytes / granularity;
    let tail = bytes % granularity;
    for (c, load) in loads.iter_mut().enumerate() {
        let offset = ((c + channels - start) % channels) as u64;
        if full_chunks > offset {
            let count = (full_chunks - offset - 1) / channels_u64 + 1;
            *load += (count * granularity) as f64;
        }
    }
    if tail > 0 {
        let c = (start + (full_chunks % channels_u64) as usize) % channels;
        loads[c] += tail as f64;
    }
}

fn lbr_of(loads: &[f64]) -> f64 {
    let max = loads.iter().cloned().fold(0.0f64, f64::max);
    if max == 0.0 {
        return 1.0;
    }
    let mean = loads.iter().sum::<f64>() / loads.len() as f64;
    mean / max
}

/// The LBR of a single operator execution on a `channels`-channel system with
/// `granularity`-byte interleaving.
pub fn operator_lbr(op: &Operator, channels: u32, granularity: u64) -> f64 {
    let mut loads = vec![0.0; channels as usize];
    let mut start = 0usize;
    for (_, bytes) in op.tensor_units() {
        distribute(&mut loads, bytes, granularity, start);
        start = (start + 1) % channels as usize;
    }
    lbr_of(&loads)
}

/// Compute the traffic-weighted channel load-balance rates of `step`.
pub fn channel_load_balance(step: &StepTraffic, channels: u32, granularity: u64) -> LbrReport {
    let mut sums = [(0.0f64, 0.0f64); 3]; // (weighted lbr, weight) for attn / ffn / all
    for op in &step.operators {
        let weight = (op.bytes() * op.repeat as u64) as f64;
        if weight == 0.0 {
            continue;
        }
        let lbr = operator_lbr(op, channels, granularity);
        match op.kind {
            OperatorKind::Attention => {
                sums[0].0 += lbr * weight;
                sums[0].1 += weight;
            }
            OperatorKind::Ffn => {
                sums[1].0 += lbr * weight;
                sums[1].1 += weight;
            }
            _ => {}
        }
        sums[2].0 += lbr * weight;
        sums[2].1 += weight;
    }
    let avg = |(num, den): (f64, f64)| if den == 0.0 { 1.0 } else { num / den };
    LbrReport {
        attention: avg(sums[0]),
        ffn: avg(sums[1]),
        overall: avg(sums[2]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rome_llm::model::ModelConfig;
    use rome_llm::ops::decode_step;
    use rome_llm::parallelism::Parallelism;

    fn step(model: &ModelConfig, batch: u64) -> StepTraffic {
        let par = Parallelism::paper_decode(model);
        decode_step(model, &par, batch, 8192)
    }

    #[test]
    fn cache_line_granularity_is_essentially_balanced() {
        for model in ModelConfig::paper_models() {
            let s = step(&model, 64);
            let report = channel_load_balance(&s, 256, 32);
            assert!(
                report.overall > 0.97,
                "{}: overall {}",
                model.name,
                report.overall
            );
            assert!(
                report.attention > 0.95,
                "{}: attn {}",
                model.name,
                report.attention
            );
            assert!(report.ffn > 0.95, "{}: ffn {}", model.name, report.ffn);
        }
    }

    #[test]
    fn row_granularity_lbr_is_at_most_one_and_improves_with_batch() {
        for model in ModelConfig::paper_models() {
            let small = channel_load_balance(&step(&model, 8), 288, 4096);
            let large = channel_load_balance(&step(&model, 256), 288, 4096);
            assert!(small.attention <= 1.0 + 1e-9 && small.ffn <= 1.0 + 1e-9);
            assert!(
                large.attention >= small.attention - 0.02,
                "{}: attention LBR degraded {} -> {}",
                model.name,
                small.attention,
                large.attention
            );
            assert!(
                small.overall > 0.5,
                "{}: overall {}",
                model.name,
                small.overall
            );
        }
    }

    #[test]
    fn llama_attention_lbr_stays_high_due_to_large_hidden_dim() {
        // The paper: Llama-3 keeps high LBR_Attn even under TP because its
        // hidden dimension (16,384) keeps the per-device weight slices large.
        let llama = channel_load_balance(&step(&ModelConfig::llama3_405b(), 8), 288, 4096);
        let grok = channel_load_balance(&step(&ModelConfig::grok_1(), 8), 288, 4096);
        assert!(
            llama.attention > 0.85,
            "Llama attention LBR {}",
            llama.attention
        );
        assert!(
            llama.attention >= grok.attention - 0.02,
            "Llama ({}) should not trail Grok ({})",
            llama.attention,
            grok.attention
        );
    }

    #[test]
    fn deepseek_attention_lbr_is_high_under_data_parallelism() {
        let ds = channel_load_balance(&step(&ModelConfig::deepseek_v3(), 8), 288, 4096);
        assert!(
            ds.attention > 0.9,
            "DeepSeek attention LBR {}",
            ds.attention
        );
    }

    #[test]
    fn distribute_handles_exact_and_partial_chunks() {
        let mut loads = vec![0.0; 4];
        distribute(&mut loads, 4 * 4096, 4096, 0);
        assert_eq!(loads, vec![4096.0; 4]);
        let mut loads = vec![0.0; 4];
        distribute(&mut loads, 4096 + 100, 4096, 1);
        assert_eq!(loads[1], 4096.0);
        assert_eq!(loads[2], 100.0);
        assert_eq!(loads[0], 0.0);
        let mut loads = vec![0.0; 4];
        distribute(&mut loads, 0, 4096, 0);
        assert_eq!(loads, vec![0.0; 4]);
    }

    #[test]
    fn lbr_of_uniform_loads_is_one_and_empty_is_one() {
        assert_eq!(lbr_of(&[5.0, 5.0, 5.0]), 1.0);
        assert_eq!(lbr_of(&[]), 1.0);
        assert_eq!(lbr_of(&[0.0, 0.0]), 1.0);
        assert!((lbr_of(&[1.0, 3.0]) - (2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn operator_lbr_penalizes_objects_smaller_than_the_channel_stripe() {
        use rome_llm::ops::Operator;
        // 64 objects of 8 KiB over 288 channels at 4 KiB granularity: only
        // 128 of 288 channels receive anything.
        let op = Operator {
            name: "small".to_string(),
            kind: OperatorKind::Ffn,
            repeat: 1,
            weight_bytes: 64 * 8192,
            activation_bytes: 0,
            kv_bytes: 0,
            flops: 0,
            weight_unit_bytes: 8192,
            kv_unit_bytes: 0,
        };
        let coarse = operator_lbr(&op, 288, 4096);
        let fine = operator_lbr(&op, 288, 32);
        assert!(coarse < 0.7, "coarse {coarse}");
        assert!(fine > 0.85, "fine {fine}");
        assert!(
            fine > coarse,
            "finer interleaving must balance better ({fine} vs {coarse})"
        );
    }
}
