//! Fine-grained-access (overfetch) ablation (§VII).
//!
//! RoMe moves whole 4 KB rows; a workload issuing requests smaller than a row
//! wastes the difference. This module quantifies the effective-bandwidth loss
//! as a function of request size, both analytically and by running the actual
//! RoMe controller on a fine-grained request stream, and contrasts it with
//! the conventional 32 B-granularity system (which only overfetches below
//! 32 B).

use serde::{Deserialize, Serialize};

use rome_core::controller::{RomeController, RomeControllerConfig};
use rome_core::simulate as rome_simulate;
use rome_mc::request::MemoryRequest;

/// One row of the overfetch sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverfetchRow {
    /// Request size in bytes.
    pub request_bytes: u64,
    /// Fraction of RoMe's transferred data that is useful (request / row).
    pub rome_useful_fraction: f64,
    /// Fraction of HBM4's transferred data that is useful (request /
    /// 32 B-rounded transfer).
    pub hbm4_useful_fraction: f64,
    /// RoMe useful bandwidth measured by the cycle-level controller on a
    /// random stream of this request size, in GB/s (single channel).
    pub rome_measured_useful_gbps: f64,
}

/// Sweep request sizes from 32 B to the full 4 KB row.
pub fn overfetch_sweep() -> Vec<OverfetchRow> {
    let row_bytes = 4096u64;
    let sizes = [32u64, 64, 128, 256, 512, 1024, 2048, 4096];
    sizes
        .iter()
        .map(|&size| {
            let rome_useful = size as f64 / row_bytes as f64;
            let hbm4_transfer = size.div_ceil(32) * 32;
            let hbm4_useful = size as f64 / hbm4_transfer as f64;
            OverfetchRow {
                request_bytes: size,
                rome_useful_fraction: rome_useful,
                hbm4_useful_fraction: hbm4_useful,
                rome_measured_useful_gbps: measure_rome_useful_bandwidth(size),
            }
        })
        .collect()
}

/// Run a short stream of `size`-byte requests at row-stride addresses through
/// one RoMe channel and report the useful bandwidth achieved.
pub fn measure_rome_useful_bandwidth(size: u64) -> f64 {
    let mut ctrl = RomeController::new(RomeControllerConfig::paper_default());
    let row = ctrl.config().row_bytes();
    let count = 128u64;
    let requests: Vec<MemoryRequest> = (0..count)
        .map(|i| MemoryRequest::read(i, i * row, size.min(row), 0))
        .collect();
    let report = rome_simulate::run_to_completion(&mut ctrl, requests);
    report.achieved_bandwidth_gbps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn useful_fraction_grows_with_request_size() {
        let rows = overfetch_sweep();
        assert_eq!(rows.len(), 8);
        for pair in rows.windows(2) {
            assert!(pair[1].rome_useful_fraction >= pair[0].rome_useful_fraction);
        }
        assert_eq!(rows.last().unwrap().rome_useful_fraction, 1.0);
        assert!((rows[0].rome_useful_fraction - 32.0 / 4096.0).abs() < 1e-12);
        // The conventional system never overfetches for aligned ≥32 B requests.
        assert!(rows
            .iter()
            .all(|r| (r.hbm4_useful_fraction - 1.0).abs() < 1e-12));
    }

    #[test]
    fn measured_rome_bandwidth_tracks_the_useful_fraction() {
        let full = measure_rome_useful_bandwidth(4096);
        let half = measure_rome_useful_bandwidth(2048);
        let tiny = measure_rome_useful_bandwidth(64);
        assert!(full > 50.0, "full-row useful bandwidth {full}");
        assert!(half < full && half > full * 0.4);
        assert!(
            tiny < full * 0.05,
            "64 B requests should waste almost the entire row: {tiny}"
        );
    }
}
