//! Per-event DRAM energy model.
//!
//! Energy is attributed to five places, mirroring the paper's Figure 14
//! breakdown: row activation (ACT), column access (CAS, i.e. the array and
//! datapath energy of RD/WR), the I/O path through the stack (TSVs + PHY),
//! the interposer link between the processor and the cube (data and C/A),
//! refresh, and — for RoMe — the logic-die command generator.

use serde::{Deserialize, Serialize};

use rome_hbm::counters::ChannelCounters;

/// DRAM command/data counts the energy model consumes.
///
/// Both the conventional system (via [`ChannelCounters`]) and RoMe (via the
/// command-generator expansion counts) convert into this common form.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandCounts {
    /// Row activations.
    pub activates: u64,
    /// Column reads.
    pub reads: u64,
    /// Column writes.
    pub writes: u64,
    /// Precharges (single-bank or all-bank).
    pub precharges: u64,
    /// Per-bank refresh commands.
    pub refreshes: u64,
    /// Bytes transferred over the interposer (reads + writes).
    pub data_bytes: u64,
    /// Commands sent over the processor↔cube C/A interface. For HBM4 this is
    /// every RD/WR/ACT/PRE/REF; for RoMe it is one row-level command per
    /// `RD_row`/`WR_row`/refresh.
    pub interface_commands: u64,
    /// Conventional commands generated *inside* the stack by the RoMe
    /// command generator (zero for the baseline).
    pub generated_commands: u64,
}

impl CommandCounts {
    /// Build counts for the conventional system from channel counters.
    pub fn from_channel_counters(c: &ChannelCounters) -> Self {
        CommandCounts {
            activates: c.activates,
            reads: c.reads,
            writes: c.writes,
            precharges: c.precharges + c.precharge_alls,
            refreshes: c.refreshes_per_bank + c.refreshes_all_bank,
            data_bytes: c.bytes_total(),
            interface_commands: c.row_ca_commands + c.col_ca_commands,
            generated_commands: 0,
        }
    }

    /// Merge another set of counts into this one.
    pub fn merge(&mut self, other: &CommandCounts) {
        self.activates += other.activates;
        self.reads += other.reads;
        self.writes += other.writes;
        self.precharges += other.precharges;
        self.refreshes += other.refreshes;
        self.data_bytes += other.data_bytes;
        self.interface_commands += other.interface_commands;
        self.generated_commands += other.generated_commands;
    }

    /// Scale every counter by `factor` (used to extrapolate sampled windows).
    pub fn scaled(&self, factor: f64) -> CommandCounts {
        let s = |v: u64| (v as f64 * factor).round() as u64;
        CommandCounts {
            activates: s(self.activates),
            reads: s(self.reads),
            writes: s(self.writes),
            precharges: s(self.precharges),
            refreshes: s(self.refreshes),
            data_bytes: s(self.data_bytes),
            interface_commands: s(self.interface_commands),
            generated_commands: s(self.generated_commands),
        }
    }
}

/// Energy coefficients, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Energy of one activation + implicit restore of a 1 KB row.
    pub act_pj: f64,
    /// Array + on-die datapath energy per bit of column access.
    pub cas_pj_per_bit: f64,
    /// TSV + PHY energy per bit moved through the stack.
    pub io_pj_per_bit: f64,
    /// Interposer link energy per bit between processor and cube.
    pub interposer_pj_per_bit: f64,
    /// Energy per command word crossing the interposer C/A interface.
    pub ca_pj_per_command: f64,
    /// Energy per per-bank refresh command.
    pub refresh_pj: f64,
    /// Energy per conventional command issued by the on-stack command
    /// generator (RoMe only).
    pub command_generator_pj: f64,
}

impl EnergyParams {
    /// HBM4-class coefficients (order-of-magnitude values from the
    /// literature; see the crate docs).
    pub fn hbm4() -> Self {
        EnergyParams {
            act_pj: 1600.0,
            cas_pj_per_bit: 0.55,
            io_pj_per_bit: 0.45,
            interposer_pj_per_bit: 0.35,
            ca_pj_per_command: 18.0,
            refresh_pj: 12_000.0,
            command_generator_pj: 1.5,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams::hbm4()
    }
}

/// Energy attributed to each component, in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Activation energy.
    pub act_pj: f64,
    /// Column-access (CAS) energy.
    pub cas_pj: f64,
    /// Stack I/O energy.
    pub io_pj: f64,
    /// Interposer data energy.
    pub interposer_pj: f64,
    /// Interposer C/A energy.
    pub ca_pj: f64,
    /// Refresh energy.
    pub refresh_pj: f64,
    /// Command-generator energy.
    pub command_generator_pj: f64,
}

impl EnergyBreakdown {
    /// Compute the breakdown for a set of command counts.
    pub fn from_counts(counts: &CommandCounts, params: &EnergyParams) -> Self {
        let bits = counts.data_bytes as f64 * 8.0;
        EnergyBreakdown {
            act_pj: counts.activates as f64 * params.act_pj,
            cas_pj: bits * params.cas_pj_per_bit,
            io_pj: bits * params.io_pj_per_bit,
            interposer_pj: bits * params.interposer_pj_per_bit,
            ca_pj: counts.interface_commands as f64 * params.ca_pj_per_command,
            refresh_pj: counts.refreshes as f64 * params.refresh_pj,
            command_generator_pj: counts.generated_commands as f64 * params.command_generator_pj,
        }
    }

    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.act_pj
            + self.cas_pj
            + self.io_pj
            + self.interposer_pj
            + self.ca_pj
            + self.refresh_pj
            + self.command_generator_pj
    }

    /// Total energy in joules.
    pub fn total_joules(&self) -> f64 {
        self.total_pj() * 1e-12
    }

    /// Energy per byte moved, in pJ/B (0 when nothing moved).
    pub fn pj_per_byte(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            0.0
        } else {
            self.total_pj() / bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streaming_counts(bytes: u64, acts_per_kib: f64) -> CommandCounts {
        let reads = bytes / 32;
        CommandCounts {
            activates: (bytes as f64 / 1024.0 * acts_per_kib) as u64,
            reads,
            writes: 0,
            precharges: (bytes as f64 / 1024.0 * acts_per_kib) as u64,
            refreshes: 0,
            data_bytes: bytes,
            interface_commands: reads,
            generated_commands: 0,
        }
    }

    #[test]
    fn breakdown_totals_are_sums_of_components() {
        let c = streaming_counts(1 << 20, 1.0);
        let b = EnergyBreakdown::from_counts(&c, &EnergyParams::hbm4());
        let sum = b.act_pj
            + b.cas_pj
            + b.io_pj
            + b.interposer_pj
            + b.ca_pj
            + b.refresh_pj
            + b.command_generator_pj;
        assert!((b.total_pj() - sum).abs() < 1e-6);
        assert!(b.total_joules() > 0.0);
        assert!(b.pj_per_byte(1 << 20) > 1.0 && b.pj_per_byte(1 << 20) < 30.0);
        assert_eq!(b.pj_per_byte(0), 0.0);
    }

    #[test]
    fn fewer_activations_reduce_act_energy_proportionally() {
        let params = EnergyParams::hbm4();
        let many = EnergyBreakdown::from_counts(&streaming_counts(1 << 20, 1.8), &params);
        let few = EnergyBreakdown::from_counts(&streaming_counts(1 << 20, 1.0), &params);
        let ratio = few.act_pj / many.act_pj;
        assert!((ratio - 1.0 / 1.8).abs() < 0.01);
        assert!(few.total_pj() < many.total_pj());
    }

    #[test]
    fn rome_interface_command_energy_is_much_smaller() {
        // RoMe sends one interface command per 4 KiB instead of one per 32 B.
        let params = EnergyParams::hbm4();
        let bytes = 1u64 << 20;
        let mut rome = streaming_counts(bytes, 1.0);
        rome.interface_commands = bytes / 4096;
        rome.generated_commands = bytes / 4096 * 136;
        let hbm4 = streaming_counts(bytes, 1.0);
        let e_rome = EnergyBreakdown::from_counts(&rome, &params);
        let e_hbm4 = EnergyBreakdown::from_counts(&hbm4, &params);
        assert!(e_rome.ca_pj < e_hbm4.ca_pj / 50.0);
        // The command generator adds only a tiny amount back.
        assert!(e_rome.command_generator_pj < e_hbm4.total_pj() * 0.01);
        assert!(e_rome.total_pj() < e_hbm4.total_pj());
    }

    #[test]
    fn counts_conversion_merge_and_scaling() {
        let counters = ChannelCounters {
            activates: 10,
            reads: 100,
            writes: 20,
            precharges: 9,
            precharge_alls: 1,
            refreshes_per_bank: 3,
            bytes_read: 3200,
            bytes_written: 640,
            row_ca_commands: 23,
            col_ca_commands: 120,
            ..ChannelCounters::default()
        };
        let mut c = CommandCounts::from_channel_counters(&counters);
        assert_eq!(c.activates, 10);
        assert_eq!(c.precharges, 10);
        assert_eq!(c.data_bytes, 3840);
        assert_eq!(c.interface_commands, 143);
        let d = c;
        c.merge(&d);
        assert_eq!(c.reads, 200);
        let half = d.scaled(0.5);
        assert_eq!(half.reads, 50);
        assert_eq!(half.data_bytes, 1920);
    }
}
