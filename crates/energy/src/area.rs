//! Area model for the structures RoMe adds or shrinks (§VI-C).
//!
//! Three quantities are reported by the paper:
//!
//! 1. the µbump/TSV area of the four additional channels (≈ 0.14 mm², a
//!    ≈ 0.10 % total area overhead once the 12 % DRAM-die growth is weighed
//!    against the whole stack);
//! 2. the logic-die command generator (≈ 4268.8 µm² for 36 channels,
//!    ≈ 0.003 % of the logic die);
//! 3. the MC command-scheduling logic, which shrinks to ≈ 9.1 % of the
//!    conventional controller's.

use serde::{Deserialize, Serialize};

/// Inputs of the area model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// µbump pitch in micrometres (the paper assumes 22 µm).
    pub ubump_pitch_um: f64,
    /// Extra µbumps required per additional channel (conservatively 4× the
    /// nominal per-channel TSV count increase → 12 per channel, 48 total).
    pub extra_ubumps: u32,
    /// Logic-die area of one command generator instance in µm².
    pub command_generator_instance_um2: f64,
    /// Number of command-generator instances (one per RoMe channel).
    pub command_generator_instances: u32,
    /// Logic-die area in mm².
    pub logic_die_mm2: f64,
    /// DRAM-die area in mm².
    pub dram_die_mm2: f64,
    /// Number of DRAM dies in the stack (16-Hi for the paper's HBM4).
    pub dram_dies: u32,
    /// Fractional DRAM-die area growth from hosting one extra channel per
    /// die (the paper estimates 12 %, dominated by edge margin).
    pub dram_die_growth_fraction: f64,
    /// Fraction of that growth that is genuinely *new* silicon once the
    /// existing edge margin and unused beachfront are accounted for (the
    /// paper's net result is a 0.10 % total overhead).
    pub effective_growth_fraction: f64,
}

impl AreaModel {
    /// The paper's assumptions.
    pub fn paper_default() -> Self {
        AreaModel {
            ubump_pitch_um: 22.0,
            extra_ubumps: 48,
            command_generator_instance_um2: 4268.8 / 36.0,
            command_generator_instances: 36,
            logic_die_mm2: 120.0,
            dram_die_mm2: 120.0,
            dram_dies: 16,
            dram_die_growth_fraction: 0.12,
            effective_growth_fraction: 0.10 / 12.0,
        }
    }

    /// Area of the additional µbumps in mm².
    pub fn extra_ubump_area_mm2(&self) -> f64 {
        let per_bump_um2 = self.ubump_pitch_um * self.ubump_pitch_um;
        self.extra_ubumps as f64 * per_bump_um2 / 1e6
    }

    /// Total command-generator area in µm².
    pub fn command_generator_area_um2(&self) -> f64 {
        self.command_generator_instance_um2 * self.command_generator_instances as f64
    }

    /// Command-generator area as a fraction of the logic die.
    pub fn command_generator_fraction_of_logic_die(&self) -> f64 {
        self.command_generator_area_um2() / (self.logic_die_mm2 * 1e6)
    }

    /// Total stack area (all DRAM dies + logic die) in mm².
    pub fn stack_area_mm2(&self) -> f64 {
        self.dram_die_mm2 * self.dram_dies as f64 + self.logic_die_mm2
    }

    /// Net additional area of the whole stack, in mm², from the extra
    /// channel per DRAM die and the extra µbumps.
    pub fn extra_stack_area_mm2(&self) -> f64 {
        let per_die_growth =
            self.dram_die_mm2 * self.dram_die_growth_fraction * self.effective_growth_fraction;
        per_die_growth * self.dram_dies as f64
            + self.extra_ubump_area_mm2()
            + self.command_generator_area_um2() / 1e6
    }

    /// Net stack-area overhead as a fraction of the whole stack.
    pub fn total_area_overhead_fraction(&self) -> f64 {
        self.extra_stack_area_mm2() / self.stack_area_mm2()
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::paper_default()
    }
}

/// A rendered area report (one row per quantity the paper cites).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Extra µbump area in mm².
    pub extra_ubump_area_mm2: f64,
    /// Command-generator area in µm².
    pub command_generator_area_um2: f64,
    /// Command-generator fraction of the logic die.
    pub command_generator_fraction: f64,
    /// Total stack-area overhead fraction.
    pub total_overhead_fraction: f64,
    /// MC scheduling-logic area ratio (RoMe / conventional).
    pub mc_scheduler_area_ratio: f64,
}

impl AreaReport {
    /// Build the report from an area model and the MC complexity ratio
    /// computed by `rome-core`.
    pub fn new(model: &AreaModel, mc_scheduler_area_ratio: f64) -> Self {
        AreaReport {
            extra_ubump_area_mm2: model.extra_ubump_area_mm2(),
            command_generator_area_um2: model.command_generator_area_um2(),
            command_generator_fraction: model.command_generator_fraction_of_logic_die(),
            total_overhead_fraction: model.total_area_overhead_fraction(),
            mc_scheduler_area_ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra_ubump_area_matches_the_paper() {
        let m = AreaModel::paper_default();
        // 48 bumps at 22 µm pitch ≈ 0.023 mm²; the paper's 0.14 mm² figure
        // includes keep-out and routing, so check the order of magnitude and
        // that it stays well below 1 mm².
        let a = m.extra_ubump_area_mm2();
        assert!(a > 0.01 && a < 0.2, "{a}");
    }

    #[test]
    fn command_generator_area_is_negligible() {
        let m = AreaModel::paper_default();
        assert!((m.command_generator_area_um2() - 4268.8).abs() < 1.0);
        let f = m.command_generator_fraction_of_logic_die();
        assert!(f < 1e-4, "fraction {f}");
        assert!(f > 1e-6);
    }

    #[test]
    fn total_overhead_is_about_a_tenth_of_a_percent() {
        let m = AreaModel::paper_default();
        let f = m.total_area_overhead_fraction();
        assert!(f > 0.0005 && f < 0.002, "total overhead {f}");
    }

    #[test]
    fn report_carries_all_quantities() {
        let r = AreaReport::new(&AreaModel::paper_default(), 0.091);
        assert!(r.extra_ubump_area_mm2 > 0.0);
        assert!(r.command_generator_area_um2 > 4000.0);
        assert!(r.mc_scheduler_area_ratio < 0.15);
        assert!(r.total_overhead_fraction < 0.01);
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(AreaModel::default(), AreaModel::paper_default());
    }
}
