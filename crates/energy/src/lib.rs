//! # rome-energy — DRAM energy and area models
//!
//! Reproduces the §VI-C analysis of the RoMe paper:
//!
//! * a per-event **DRAM energy model** (activation, column access, I/O,
//!   interposer, command bus, refresh, command generator) applied to the
//!   command counts produced by the cycle-accurate simulation or by the RoMe
//!   command-generator expansion ([`dram_energy`]);
//! * an **area model** for the pieces RoMe adds or shrinks: the logic-die
//!   command generator, the µbump/TSV cost of the four extra channels, and
//!   the memory-controller scheduling logic ([`area`]).
//!
//! Energy coefficients follow the published orders of magnitude for HBM-class
//! devices (O'Connor et al., MICRO'17; Adhinarayanan et al., ISCA'25). The
//! absolute joules are not the reproduction target — the HBM4-vs-RoMe ratios
//! of Figure 14 are.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod area;
pub mod dram_energy;

pub use area::{AreaModel, AreaReport};
pub use dram_energy::{CommandCounts, EnergyBreakdown, EnergyParams};
