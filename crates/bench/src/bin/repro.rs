//! Prints every reproduced table and figure of the RoMe paper.
//!
//! Run with `cargo run -p rome-bench --bin repro --release`.

fn main() {
    let calibrated = std::env::args().any(|a| a == "--calibrated");
    println!("{}", rome_bench::figure01_table());
    println!("{}", rome_bench::figure02_table());
    println!("{}", rome_bench::figure10_table());
    println!("{}", rome_bench::table04());
    println!("{}", rome_bench::table05());
    println!("{}", rome_bench::vba_design_space_table());
    println!("{}", rome_bench::queue_depth_table());
    println!("{}", rome_bench::refresh_table());
    println!("{}", rome_bench::area_table());
    println!("{}", rome_bench::figure12_table(calibrated));
    println!("{}", rome_bench::figure13_table());
    println!("{}", rome_bench::figure14_table(calibrated));
    println!("{}", rome_bench::prefill_table());
    println!("{}", rome_bench::ablation_channels_table());
    println!("{}", rome_bench::ablation_overfetch_table());
}
