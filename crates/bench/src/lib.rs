//! # rome-bench — experiment harness for the RoMe reproduction
//!
//! One function per table/figure of the paper. Each returns the reproduced
//! rows as a formatted text table; the Criterion benches under `benches/`
//! print these tables and time the underlying simulation kernels, and the
//! `repro` binary prints every table at once (`cargo run -p rome-bench --bin
//! repro --release`).

#![warn(missing_docs)]

use rome_core::prelude::*;
use rome_energy::dram_energy::EnergyParams;
use rome_energy::{AreaModel, AreaReport};
use rome_hbm::specs::generation_trends;
use rome_llm::prelude::*;
use rome_sim::prelude::*;

/// Figure 1: weight / activation / KV-cache size distribution per model and
/// stage.
pub fn figure01_table() -> String {
    let mut out = String::from(
        "Fig. 1 — data-object sizes per operator (per device)\nmodel        stage    kind        operator              min          median       max\n",
    );
    for model in ModelConfig::paper_models() {
        for stage in [Stage::Prefill, Stage::Decode] {
            let rows = footprint_rows(&model, stage, 256, 8192);
            for s in rome_llm::footprint::summarize(&rows) {
                out.push_str(&format!(
                    "{:<12} {:<8} {:<11} {:<20} {:>12} {:>12} {:>12}\n",
                    s.model,
                    s.stage.to_string(),
                    s.kind.to_string(),
                    "-",
                    human(s.min_bytes),
                    human(s.median_bytes),
                    human(s.max_bytes),
                ));
            }
        }
    }
    out
}

/// Figure 2: HBM generation trends.
pub fn figure02_table() -> String {
    let mut out = String::from(
        "Fig. 2 — HBM generation trends\ngen     rate(Gb/s)  core(MHz)  width(b)  C/A:DQ   C/A BW (GB/s)\n",
    );
    for r in generation_trends() {
        out.push_str(&format!(
            "{:<7} {:>9.1} {:>10} {:>9} {:>8.3} {:>14.1}\n",
            r.generation.name(),
            r.data_rate_gbps,
            r.core_frequency_mhz,
            r.channel_width_bits,
            r.ca_to_dq_ratio,
            r.ca_bandwidth_gbs
        ));
    }
    out
}

/// Figure 10: command-issue latency vs number of C/A pins.
pub fn figure10_table() -> String {
    let model = CaPinModel::rome_default();
    let mut out = String::from(
        "Fig. 10 — RD_row/WR_row→REF issue latency vs C/A pins (budget = 2×tRRDS)\npins  access(ns)  access+REF(ns)  budget(ns)  ok\n",
    );
    for r in model.figure10_sweep(5..=10).iter().rev() {
        out.push_str(&format!(
            "{:>4} {:>11.2} {:>15.2} {:>11.2}  {}\n",
            r.pins,
            r.access_latency_ns,
            r.access_then_refresh_latency_ns,
            r.budget_ns,
            if r.access_then_refresh_latency_ns <= r.budget_ns {
                "yes"
            } else {
                "no"
            }
        ));
    }
    out.push_str(&format!(
        "minimum pins = {}, pins saved per channel = {} (of {})\n",
        model.min_pins(),
        model.pins_saved_per_channel(),
        CaPinModel::conventional_ca_pins()
    ));
    out
}

/// Figure 12: TPOT of HBM4 vs RoMe across batch sizes.
pub fn figure12_table(calibrated: bool) -> String {
    let accel = AcceleratorSpec::paper_default();
    let (hbm4, rome) = memory_models(&accel, calibrated);
    let rows = figure12_sweep(&accel, &hbm4, &rome, 8192);
    let mut out = String::from(
        "Fig. 12 — decode TPOT, HBM4 vs RoMe (seq len 8K)\nmodel        batch   HBM4(ms)   RoMe(ms)   normalized RoMe\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "{:<12} {:>6} {:>10.2} {:>10.2} {:>17.3}\n",
            r.model, r.batch, r.tpot_hbm4_ms, r.tpot_rome_ms, r.normalized_rome
        ));
    }
    for model in ["DeepSeek-V3", "Grok 1", "Llama 3"] {
        out.push_str(&format!(
            "mean TPOT reduction {model}: {:.1} % (paper: 10.4 / 10.2 / 9.0 %)\n",
            rome_sim::sweep::mean_reduction(&rows, model) * 100.0
        ));
    }
    out
}

/// Figure 13: RoMe channel load-balance rate across batch sizes.
pub fn figure13_table() -> String {
    let accel = AcceleratorSpec::paper_default();
    let rome = MemoryModel::rome(&accel);
    let rows = rome_sim::sweep::figure13_sweep(&rome, 8192);
    let mut out = String::from(
        "Fig. 13 — RoMe channel load balance rate (seq len 8K)\nmodel        batch   LBR_attention   LBR_ffn\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "{:<12} {:>6} {:>15.3} {:>9.3}\n",
            r.model, r.batch, r.lbr_attention, r.lbr_ffn
        ));
    }
    out
}

/// Figure 14: DRAM energy of HBM4 vs RoMe at batch 256.
pub fn figure14_table(calibrated: bool) -> String {
    let accel = AcceleratorSpec::paper_default();
    let (hbm4, rome) = memory_models(&accel, calibrated);
    let params = EnergyParams::hbm4();
    let mut out = String::from(
        "Fig. 14 — DRAM energy per decode step at batch 256 (normalized to HBM4)\nmodel        ACT ratio   total ratio   cmd-gen share   (paper ACT: .555/.860/.844, total: .981/.993/.993)\n",
    );
    for model in ModelConfig::paper_models() {
        let cmp = decode_energy(&model, 256, 8192, &hbm4, &rome, &params);
        out.push_str(&format!(
            "{:<12} {:>9.3} {:>13.3} {:>15.4}\n",
            cmp.model,
            cmp.act_energy_ratio(),
            cmp.total_energy_ratio(),
            cmp.command_generator_fraction()
        ));
    }
    out
}

/// Table IV: simplified MC components.
pub fn table04() -> String {
    let cmp = ComplexityComparison::paper_default();
    let mut out = String::from("Table IV — MC complexity\ncomponent                                conventional             RoMe\n");
    for (label, conv, rome) in cmp.rows() {
        out.push_str(&format!("{:<40} {:<24} {}\n", label, conv, rome));
    }
    out.push_str(&format!(
        "scheduling-logic area ratio (RoMe / conventional): {:.3} (paper ≈ 0.091)\n",
        cmp.scheduling_area_ratio()
    ));
    out
}

/// Table V: timing parameters of HBM4 and RoMe, plus the derivation check.
pub fn table05() -> String {
    let hbm4 = rome_hbm::TimingParams::hbm4();
    let paper = RomeTimingParams::paper_table_v();
    let derived = RomeTimingParams::derive(
        &hbm4,
        &rome_hbm::Organization::hbm4(),
        &VbaConfig::rome_default(),
    );
    let mut out = String::from("Table V — timing parameters (ns)\n");
    out.push_str(&format!(
        "HBM4: tRC={} tRP={} tRAS={} tCL={} tRCD={} tWR={} tFAW={} tCCDL={} tCCDS={} tRRD={}\n",
        hbm4.t_rc,
        hbm4.t_rp,
        hbm4.t_ras,
        hbm4.t_cl,
        hbm4.t_rcd_rd,
        hbm4.t_wr,
        hbm4.t_faw,
        hbm4.t_ccd_l,
        hbm4.t_ccd_s,
        hbm4.t_rrd_s
    ));
    out.push_str("RoMe                paper   derived-from-Fig.9\n");
    for (name, p, d) in [
        ("tR2RS", paper.t_r2r_s, derived.t_r2r_s),
        ("tR2RR", paper.t_r2r_r, derived.t_r2r_r),
        ("tR2WS", paper.t_r2w_s, derived.t_r2w_s),
        ("tR2WR", paper.t_r2w_r, derived.t_r2w_r),
        ("tW2RS", paper.t_w2r_s, derived.t_w2r_s),
        ("tW2RR", paper.t_w2r_r, derived.t_w2r_r),
        ("tW2WS", paper.t_w2w_s, derived.t_w2w_s),
        ("tW2WR", paper.t_w2w_r, derived.t_w2w_r),
        ("tRD_row", paper.t_rd_row, derived.t_rd_row),
        ("tWR_row", paper.t_wr_row, derived.t_wr_row),
    ] {
        out.push_str(&format!("{:<18} {:>6} {:>10}\n", name, p, d));
    }
    let plan = ChannelPlan::paper_default();
    out.push_str(&format!(
        "channels/cube: HBM4 {} → RoMe {} ({:+.1} % bandwidth), row size 1 KB → 4 KB, AG_MC 32 B → 4 KB\n",
        plan.baseline_channels,
        plan.rome_channels,
        plan.bandwidth_gain() * 100.0
    ));
    out
}

/// §IV-B: the six-point VBA design-space exploration.
pub fn vba_design_space_table() -> String {
    let org = rome_hbm::Organization::hbm4();
    let mut out = String::from(
        "§IV-B — VBA design space (streaming read bandwidth, single channel)\nconfiguration                                          row(B)  VBAs  bw(GB/s)  dev-from-best  area-ovh  DRAM-mod\n",
    );
    let mut results = Vec::new();
    for cfg in VbaConfig::design_space() {
        let ctrl_cfg = RomeControllerConfig::with_vba(cfg);
        let row = ctrl_cfg.row_bytes();
        let mut ctrl = RomeController::new(ctrl_cfg);
        let reqs = rome_mc::workload::streaming_reads(0, 2 * 1024 * 1024, row);
        let report = rome_core::simulate::run_to_completion(&mut ctrl, reqs);
        results.push((cfg, row, report.achieved_bandwidth_gbps));
    }
    let best = results.iter().map(|r| r.2).fold(0.0f64, f64::max);
    for (cfg, row, bw) in &results {
        out.push_str(&format!(
            "{:<54} {:>6} {:>5} {:>9.1} {:>13.1}% {:>8.0}% {:>9}\n",
            cfg.label(),
            row,
            cfg.vbas_per_channel(&org),
            bw,
            (1.0 - bw / best) * 100.0,
            cfg.area_overhead_fraction() * 100.0,
            if cfg.requires_dram_modification() {
                "yes"
            } else {
                "no"
            }
        ));
    }
    out.push_str("paper: performance deviation across all six points ≤ 3.6 %\n");
    out
}

/// §V-A: request-queue depth vs achievable bandwidth.
pub fn queue_depth_table() -> String {
    let mut out = String::from(
        "§V-A — streaming read bandwidth vs request-queue depth (single channel, GB/s)\ndepth   HBM4    RoMe\n",
    );
    for depth in [1usize, 2, 4, 8, 16, 32, 45, 64] {
        let mut hbm4 = rome_mc::ChannelController::new(
            rome_mc::ControllerConfig::hbm4_with_queue_depth(depth),
        );
        let hbm4_bw = rome_mc::simulate::run_to_completion(
            &mut hbm4,
            rome_mc::workload::streaming_reads(0, 512 * 1024, 32),
        )
        .achieved_bandwidth_gbps;
        let mut rome = RomeController::new(RomeControllerConfig::with_queue_depth(depth));
        let rome_bw = rome_core::simulate::run_to_completion(
            &mut rome,
            rome_mc::workload::streaming_reads(0, 2 * 1024 * 1024, 4096),
        )
        .achieved_bandwidth_gbps;
        out.push_str(&format!("{:>5} {:>7.1} {:>7.1}\n", depth, hbm4_bw, rome_bw));
    }
    out.push_str("paper: HBM4 needs ≥45 entries for peak; RoMe saturates with 2\n");
    out
}

/// §VI-C: area overheads.
pub fn area_table() -> String {
    let report = AreaReport::new(
        &AreaModel::paper_default(),
        ComplexityComparison::paper_default().scheduling_area_ratio(),
    );
    format!(
        "§VI-C — area overheads\nextra µbump area:              {:.3} mm²\ncommand generator:             {:.1} µm² ({:.4} % of logic die; paper 4268.8 µm² / 0.003 %)\ntotal stack area overhead:     {:.3} % (paper ≈ 0.10 %)\nMC scheduling-logic area:      {:.1} % of conventional (paper ≈ 9.1 %)\n",
        report.extra_ubump_area_mm2,
        report.command_generator_area_um2,
        report.command_generator_fraction * 100.0,
        report.total_overhead_fraction * 100.0,
        report.mc_scheduler_area_ratio * 100.0,
    )
}

/// §VI-B: prefill sensitivity.
pub fn prefill_table() -> String {
    let accel = AcceleratorSpec::paper_default();
    let hbm4 = MemoryModel::hbm4_baseline(&accel);
    let rome = MemoryModel::rome(&accel);
    let mut out = String::from(
        "§VI-B — prefill time, HBM4 vs RoMe (batch 16, seq 8K)\nmodel        HBM4(ms)   RoMe(ms)   difference\n",
    );
    for model in ModelConfig::paper_models() {
        let h = prefill_time(&model, 16, 8192, &accel, &hbm4);
        let r = prefill_time(&model, 16, 8192, &accel, &rome);
        out.push_str(&format!(
            "{:<12} {:>9.2} {:>10.2} {:>10.3} %\n",
            model.name,
            h.tpot_ms,
            r.tpot_ms,
            (h.tpot_ms - r.tpot_ms).abs() / h.tpot_ms * 100.0
        ));
    }
    out.push_str("paper: prefill difference ≤ 0.1 % (compute-bound)\n");
    out
}

/// §V-B: refresh optimization.
pub fn refresh_table() -> String {
    let timing = rome_hbm::TimingParams::hbm4();
    let cmp = rome_core::refresh::RefreshStallComparison::from_timing(&timing);
    format!(
        "§V-B — VBA refresh stall\nnaive (2×tRFCpb):   {} ns\npooled (tRFCpb+tRREFD): {} ns\nreduction: {:.1} %, steady-state VBA unavailability: {:.2} %\n",
        cmp.naive_stall_ns,
        cmp.pooled_stall_ns,
        cmp.reduction() * 100.0,
        cmp.pooled_unavailability(&timing, 8) * 100.0
    )
}

/// Ablation: RoMe without the four extra channels (iso-bandwidth).
pub fn ablation_channels_table() -> String {
    let accel = AcceleratorSpec::paper_default();
    let hbm4 = MemoryModel::hbm4_baseline(&accel);
    let rome = MemoryModel::rome(&accel);
    let iso = MemoryModel::rome_iso_bandwidth(&accel);
    let mut out = String::from(
        "Ablation — TPOT at batch 64: HBM4 vs RoMe(32ch) vs RoMe(36ch)\nmodel        HBM4(ms)   RoMe-32ch(ms)   RoMe-36ch(ms)\n",
    );
    for model in ModelConfig::paper_models() {
        let a = decode_tpot(&model, 64, 8192, &accel, &hbm4).tpot_ms;
        let b = decode_tpot(&model, 64, 8192, &accel, &iso).tpot_ms;
        let c = decode_tpot(&model, 64, 8192, &accel, &rome).tpot_ms;
        out.push_str(&format!(
            "{:<12} {:>9.2} {:>15.2} {:>15.2}\n",
            model.name, a, b, c
        ));
    }
    out
}

/// Ablation: overfetch of fine-grained requests (§VII).
pub fn ablation_overfetch_table() -> String {
    let mut out = String::from(
        "Ablation — fine-grained requests on RoMe (§VII)\nreq(B)   RoMe useful frac   HBM4 useful frac   RoMe measured useful GB/s (1 channel)\n",
    );
    for r in overfetch_sweep() {
        out.push_str(&format!(
            "{:>6} {:>18.3} {:>18.3} {:>24.1}\n",
            r.request_bytes,
            r.rome_useful_fraction,
            r.hbm4_useful_fraction,
            r.rome_measured_useful_gbps
        ));
    }
    out
}

fn memory_models(accel: &AcceleratorSpec, calibrated: bool) -> (MemoryModel, MemoryModel) {
    if calibrated {
        let mut cal = Calibrator::new();
        MemoryModel::calibrated_pair(accel, &mut cal)
    } else {
        (MemoryModel::hbm4_baseline(accel), MemoryModel::rome(accel))
    }
}

fn human(bytes: u64) -> String {
    rome_hbm::units::DataSize::from_bytes(bytes).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_renders_nonempty() {
        for (name, table) in [
            ("fig01", figure01_table()),
            ("fig02", figure02_table()),
            ("fig10", figure10_table()),
            ("fig13", figure13_table()),
            ("tab04", table04()),
            ("tab05", table05()),
            ("area", area_table()),
            ("refresh", refresh_table()),
        ] {
            assert!(
                table.lines().count() > 3,
                "{name} table too short:\n{table}"
            );
        }
    }

    #[test]
    fn figure12_table_reports_reductions() {
        let t = figure12_table(false);
        assert!(t.contains("mean TPOT reduction"));
        assert!(t.contains("DeepSeek-V3"));
    }
}
