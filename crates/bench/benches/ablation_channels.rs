//! Reproduces ablation_channels of the RoMe paper. The table is printed once, then the
//! underlying simulation kernel is timed by Criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", rome_bench::ablation_channels_table());
    c.bench_function("ablation_channels", |b| {
        b.iter(|| {
            black_box(rome_sim::decode_tpot(
                &rome_llm::ModelConfig::llama3_405b(),
                64,
                8192,
                &rome_sim::AcceleratorSpec::paper_default(),
                &rome_sim::MemoryModel::rome_iso_bandwidth(
                    &rome_sim::AcceleratorSpec::paper_default(),
                ),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
