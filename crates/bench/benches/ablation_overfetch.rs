//! Reproduces ablation_overfetch of the RoMe paper. The table is printed once, then the
//! underlying simulation kernel is timed by Criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", rome_bench::ablation_overfetch_table());
    c.bench_function("ablation_overfetch", |b| {
        b.iter(|| black_box(rome_sim::overfetch::measure_rome_useful_bandwidth(512)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
