//! Reproduces vba_design_space of the RoMe paper. The table is printed once, then the
//! underlying simulation kernel is timed by Criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", rome_bench::vba_design_space_table());
    c.bench_function("vba_design_space", |b| {
        b.iter(|| {
            black_box({
                let mut c = rome_core::RomeController::new(
                    rome_core::RomeControllerConfig::paper_default(),
                );
                rome_core::simulate::run_to_completion(
                    &mut c,
                    rome_mc::workload::streaming_reads(0, 256 * 1024, 4096),
                )
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
