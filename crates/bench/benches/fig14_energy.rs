//! Reproduces fig14_energy of the RoMe paper. The table is printed once, then the
//! underlying simulation kernel is timed by Criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", rome_bench::figure14_table(true));
    c.bench_function("fig14_energy", |b| {
        b.iter(|| {
            black_box({
                let a = rome_sim::AcceleratorSpec::paper_default();
                rome_sim::decode_energy(
                    &rome_llm::ModelConfig::grok_1(),
                    256,
                    8192,
                    &rome_sim::MemoryModel::hbm4_baseline(&a),
                    &rome_sim::MemoryModel::rome(&a),
                    &rome_energy::EnergyParams::hbm4(),
                )
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
