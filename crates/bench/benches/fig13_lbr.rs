//! Reproduces fig13_lbr of the RoMe paper. The table is printed once, then the
//! underlying simulation kernel is timed by Criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", rome_bench::figure13_table());
    c.bench_function("fig13_lbr", |b| {
        b.iter(|| {
            black_box({
                let m = rome_llm::ModelConfig::deepseek_v3();
                let p = rome_llm::Parallelism::paper_decode(&m);
                let s = rome_llm::decode_step(&m, &p, 64, 8192);
                rome_sim::channel_load_balance(&s, 288, 4096)
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
