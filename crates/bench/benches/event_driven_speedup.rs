//! Wall-clock smoke benchmark: event-driven vs cycle-stepped drivers on the
//! queue-depth experiment (§V-A), for both memory systems.
//!
//! Besides the Criterion timings, the bench writes the measured speedups to
//! `BENCH_event_driven.json` in the repository root so the numbers are
//! tracked across PRs. Expected shape of the result: the RoMe sweep speeds
//! up by an order of magnitude (a RoMe row command occupies the interface
//! for ~64 ns, so the stepped loop is almost entirely no-op ticks), while
//! the conventional 32 B-granularity sweep improves modestly at streaming
//! saturation (it issues ~2 genuine commands per nanosecond, leaving no idle
//! time to skip; its wins come from the shallow-queue, low-utilization
//! points).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

const DEPTHS: [usize; 8] = [1, 2, 4, 8, 16, 32, 45, 64];
const MC_BYTES: u64 = 512 * 1024;
const ROME_BYTES: u64 = 2 * 1024 * 1024;
const CAL_CHANNELS: u16 = 32;
const CAL_BYTES: u64 = 2 * 1024 * 1024;

fn mc_sweep(stepped: bool) -> f64 {
    let mut bw = 0.0;
    for &depth in &DEPTHS {
        // SoA off: this key predates the data-oriented scans and tracks the
        // event-vs-stepped driver win alone, so it stays comparable across
        // PRs. The SoA win has its own soa_dense* keys below.
        let mut cfg = rome_mc::ControllerConfig::hbm4_with_queue_depth(depth);
        cfg.soa = false;
        let mut ctrl = rome_mc::ChannelController::new(cfg);
        let reqs = rome_mc::workload::streaming_reads(0, MC_BYTES, 32);
        let report = if stepped {
            rome_mc::simulate::run_with_limit_stepped(&mut ctrl, reqs, 50_000_000)
        } else {
            rome_mc::simulate::run_with_limit(&mut ctrl, reqs, 50_000_000)
        };
        bw += report.achieved_bandwidth_gbps;
    }
    bw
}

/// Dense-phase ready-cache case: the 64-entry conventional queue kept
/// saturated by the §V-A streaming read phase — the workload whose FR-FCFS
/// candidate scans (tens of timing-blocked entries per tick, on both the
/// column and the ACT side) the ready cache targets. Event-driven driver in
/// both arms; only the cache flag differs.
fn mc_dense64(ready_cache: bool) -> f64 {
    let mut cfg = rome_mc::ControllerConfig::hbm4_with_queue_depth(64);
    cfg.ready_cache = ready_cache;
    // SoA off in both arms: this key isolates the ready cache, pre-SoA.
    cfg.soa = false;
    let mut ctrl = rome_mc::ChannelController::new(cfg);
    let reqs = rome_mc::workload::streaming_reads(0, MC_BYTES, 32);
    let report = rome_mc::simulate::run_with_limit(&mut ctrl, reqs, 50_000_000);
    report.achieved_bandwidth_gbps
}

/// Saturated many-channel event-calendar scenario: a 32-channel HBM4 system
/// fed one dense streaming read up front (DMA-style back-pressure, so tens
/// of thousands of fragments wait in the backlog while every channel stays
/// saturated), driven through the global event loop. Baseline = calendar
/// off, i.e. the pre-calendar loop that rescans the whole backlog and
/// re-polls every controller on every step; measured = the incremental
/// calendar (per-channel wakeups, lazy min-heap, O(channels) backlog
/// bookkeeping). Results are bit-identical (the equivalence suite pins
/// this); only wall-clock differs.
fn mc_calendar32(calendar: bool) -> f64 {
    let mut sys = rome_mc::MemorySystem::new(rome_mc::MemorySystemConfig::hbm4(CAL_CHANNELS));
    sys.set_calendar(calendar);
    // SoA off in both arms: this key isolates the event calendar, pre-SoA.
    sys.set_soa(false);
    sys.submit(rome_mc::MemoryRequest::read(1, 0, CAL_BYTES, 0));
    let mut done = Vec::new();
    let mut now = 0u64;
    while !sys.is_idle() && now < 50_000_000 {
        let issued = sys.tick_into(now, &mut done);
        now = if issued {
            now + 1
        } else {
            sys.next_event_at(now).map_or(now + 1, |t| t.max(now + 1))
        };
    }
    assert_eq!(done.len(), 1, "transfer must complete");
    // Aggregate useful bandwidth in GB/s; also the cross-arm checksum.
    CAL_BYTES as f64 / done[0].completed as f64
}

/// Data-oriented hot path, single dense controller: a 64-entry queue kept
/// saturated by bank-conflicting random reads (16 Ki requests over a 16 MiB
/// window), event-driven driver and ready cache on in both arms — only the
/// scan representation differs. Random addressing is the scan-bound regime:
/// nearly every entry misses the open row, so the FR-FCFS row scan walks
/// the whole queue on most ticks and the representation dominates the
/// wall-clock (a streaming workload would retire from the queue head and
/// barely exercise the scan). Plain = the oracle per-entry scan over boxed
/// `QueueEntry`s and `Option<u32>` open rows (the pre-SoA scheduler); SoA =
/// packed ready/bank/row arrays, the row-open bitmask, and the
/// position-indexed park/row-match/keep-open pre-pass. Bit-identical
/// results (the equivalence suite pins this, and the checksum re-checks it
/// here); only wall-clock differs.
fn mc_soa_dense64(soa: bool) -> f64 {
    let mut cfg = rome_mc::ControllerConfig::hbm4_with_queue_depth(64);
    cfg.soa = soa;
    let mut ctrl = rome_mc::ChannelController::new(cfg);
    let reqs = rome_mc::workload::random_reads(0, 1 << 24, 16384, 32, 7);
    let report = rome_mc::simulate::run_with_limit(&mut ctrl, reqs, 50_000_000);
    report.achieved_bandwidth_gbps
}

/// Data-oriented hot path at system scale: a saturated 32-channel HBM4
/// system with deep (64-entry) per-channel queues fed one dense streaming
/// read, so every channel's FR-FCFS scan walks a full queue every tick.
/// Same event-driven global loop in both arms; only `soa` differs.
fn mc_soa_dense32(soa: bool) -> f64 {
    let mut cfg = rome_mc::MemorySystemConfig::hbm4(CAL_CHANNELS);
    cfg.controller.read_queue_capacity = 64;
    cfg.controller.write_queue_capacity = 64;
    let mut sys = rome_mc::MemorySystem::new(cfg);
    sys.set_soa(soa);
    sys.submit(rome_mc::MemoryRequest::read(1, 0, CAL_BYTES, 0));
    let mut done = Vec::new();
    let mut now = 0u64;
    while !sys.is_idle() && now < 50_000_000 {
        let issued = sys.tick_into(now, &mut done);
        now = if issued {
            now + 1
        } else {
            sys.next_event_at(now).map_or(now + 1, |t| t.max(now + 1))
        };
    }
    assert_eq!(done.len(), 1, "transfer must complete");
    CAL_BYTES as f64 / done[0].completed as f64
}

/// Robustness-layer overhead probe: the dense 64-entry streaming run driven
/// by the legacy unchecked loop vs the budget-metered loop with an *active*
/// but never-tripping budget (wall-clock deadline an hour out, event ceiling
/// far above the run), so the meter — including its periodic wall-clock
/// probes — runs on every event. Reports must come back bit-identical and
/// untagged; the expected wall-clock overhead is ≤ ~2%.
fn mc_dense64_budget_checked(checked: bool) -> f64 {
    let mut ctrl =
        rome_mc::ChannelController::new(rome_mc::ControllerConfig::hbm4_with_queue_depth(64));
    let reqs = rome_mc::workload::streaming_reads(0, MC_BYTES, 32);
    let report = if checked {
        let budget = rome_engine::RunBudget::default()
            .with_wall_clock(std::time::Duration::from_secs(3600))
            .with_max_events(u64::MAX);
        rome_mc::simulate::run_with_budget(&mut ctrl, reqs, 50_000_000, &budget)
    } else {
        rome_mc::simulate::run_with_limit(&mut ctrl, reqs, 50_000_000)
    };
    assert!(
        report.aborted.is_none(),
        "the never-tripping budget must not tag the run"
    );
    report.achieved_bandwidth_gbps
}

/// Closed-loop MoE-skew serving scenario on the streaming workload
/// subsystem: a Zipf-skewed expert-routing source (DeepSeek-V3-shaped, 32
/// experts sampled) drives a 4-channel system through a `ClosedLoopHost` at
/// the given window. Returns the achieved closed-loop bandwidth in GB/s —
/// also the cross-run checksum (the whole path is seed-deterministic).
fn workload_moe_closed_loop(window: usize, rome: bool) -> f64 {
    let cfg = rome_workload::MoeRoutingConfig {
        experts: 32,
        top_k: 4,
        expert_bytes: 16 * 1024,
        layers: 2,
        tokens_per_step: 16,
        steps: 2,
        step_period_ns: 0,
        granularity: 4096,
        base: 0,
        zipf_exponent: 1.2,
        seed: 42,
    };
    let mut host =
        rome_workload::ClosedLoopHost::new(rome_workload::MoeRoutingSource::new(cfg), window);
    if rome {
        let mut sys = rome_core::system::RomeMemorySystem::new(
            rome_core::system::RomeSystemConfig::with_channels(4),
        );
        sys.run_with_source(&mut host, 50_000_000);
    } else {
        let mut sys = rome_mc::MemorySystem::new(rome_mc::MemorySystemConfig::hbm4(4));
        sys.run_with_source(&mut host, 50_000_000);
    }
    host.achieved_gbps()
}

/// The scenario-server batch: the calibration-heavy serving shape (both
/// calibration points, two calibrated TPOT points, one closed-loop MoE
/// point). Warm = one long-lived `ScenarioEngine` whose calibration cache
/// is already hot, the way a scenario server runs batch after batch. Cold =
/// a fresh engine per scenario, the way one process per experiment used to
/// run — every calibrated scenario pays the cycle-accurate calibration
/// again. Results are identical either way (the scenario_server suite pins
/// this); only wall-clock differs.
fn server_batch_specs() -> Vec<rome_server::ScenarioSpec> {
    use rome_server::{ScenarioSpec, WorkloadSpec};
    use rome_sim::MemorySystemKind;
    vec![
        ScenarioSpec::Calibration {
            name: "cal-hbm4".into(),
            system: MemorySystemKind::Hbm4,
        },
        ScenarioSpec::Calibration {
            name: "cal-rome".into(),
            system: MemorySystemKind::Rome,
        },
        ScenarioSpec::Tpot {
            name: "tpot-grok".into(),
            model: "grok-1".into(),
            batch: 64,
            seq_len: 8192,
            calibrated: true,
        },
        ScenarioSpec::Tpot {
            name: "tpot-deepseek".into(),
            model: "deepseek-v3".into(),
            batch: 64,
            seq_len: 8192,
            calibrated: true,
        },
        ScenarioSpec::ClosedLoop {
            name: "moe-w16".into(),
            system: MemorySystemKind::Rome,
            channels: 4,
            windows: vec![16],
            max_ns: 50_000_000,
            workload: WorkloadSpec::Moe(rome_workload::MoeRoutingConfig {
                experts: 32,
                top_k: 4,
                expert_bytes: 16 * 1024,
                layers: 2,
                tokens_per_step: 16,
                steps: 2,
                step_period_ns: 0,
                granularity: 4096,
                base: 0,
                zipf_exponent: 1.2,
                seed: 42,
            }),
        },
    ]
}

/// Serve the batch on `engine`, returning a bandwidth checksum.
fn serve_server_batch(engine: &rome_server::ScenarioEngine) -> f64 {
    let results = engine.serve_batch(&server_batch_specs());
    results
        .iter()
        .map(
            |r| match &r.as_ref().expect("batch is well-formed").payload {
                rome_server::ResultPayload::Calibration(c) => c.bandwidth_utilization,
                rome_server::ResultPayload::Tpot { hbm4, rome } => hbm4.tpot_ms + rome.tpot_ms,
                rome_server::ResultPayload::ClosedLoop(points) => points[0].achieved_gbps,
                _ => 0.0,
            },
        )
        .sum()
}

/// Cold per-scenario serving: a fresh engine (cold calibration cache) per
/// spec, like one process per experiment.
fn serve_server_batch_cold() -> f64 {
    server_batch_specs()
        .iter()
        .map(|spec| {
            let engine = rome_server::ScenarioEngine::new();
            let result = engine.serve(spec).expect("batch is well-formed");
            match &result.payload {
                rome_server::ResultPayload::Calibration(c) => c.bandwidth_utilization,
                rome_server::ResultPayload::Tpot { hbm4, rome } => hbm4.tpot_ms + rome.tpot_ms,
                rome_server::ResultPayload::ClosedLoop(points) => points[0].achieved_gbps,
                _ => 0.0,
            }
        })
        .sum()
}

/// The socket front end over the same warm batch: bind an ephemeral
/// loopback service on a pre-warmed engine, then measure (a) the round
/// trip of one small request — the protocol, framing, and scheduling cost
/// — (b) the round trip of an `{"op":"stats"}` metrics frame — snapshot,
/// render, and wire cost with a populated registry — and (c) the whole
/// warm batch served over the wire, byte-checked against the in-process
/// render (the byte-identity pin, re-asserted here so the bench can never
/// time a divergent path). Returns
/// `(rtt_seconds, stats_rtt_seconds, batch_seconds)`.
fn server_socket_times(repeats: u32) -> (f64, f64, f64) {
    use std::io::{BufRead, BufReader, Write};

    let engine = std::sync::Arc::new(rome_server::ScenarioEngine::new());
    serve_server_batch(&engine); // warm the calibration cache, untimed
    let server = rome_server::net::SocketServer::bind(
        "127.0.0.1:0",
        std::sync::Arc::clone(&engine),
        rome_server::net::NetConfig::default(),
    )
    .expect("bind loopback service");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    let stream = std::net::TcpStream::connect(handle.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(300)))
        .expect("read timeout");
    let mut conn = BufReader::new(stream);

    let specs = server_batch_specs();
    let lines: Vec<String> = specs.iter().map(|s| s.to_json().emit()).collect();
    let expected = rome_server::render_results(&specs, &engine.serve_batch(&specs));

    fn read_line(conn: &mut BufReader<std::net::TcpStream>) -> String {
        let mut line = String::new();
        conn.read_line(&mut line).expect("response line");
        line
    }

    let quick = "{\"scenario\":\"sweep\",\"name\":\"rtt\",\"kind\":\"figure13\",\"seq_len\":4096}";
    let mut rtt = f64::INFINITY;
    for _ in 0..20 {
        let t0 = Instant::now();
        conn.get_mut()
            .write_all(format!("{quick}\n").as_bytes())
            .expect("request");
        let response = read_line(&mut conn);
        rtt = rtt.min(t0.elapsed().as_secs_f64());
        assert!(response.starts_with("{\"name\":\"rtt\""), "{response}");
    }

    // Stats frame round trip: the registry is populated (warm batch plus
    // the RTT probes above), so this times a realistic snapshot render.
    let mut stats_rtt = f64::INFINITY;
    for _ in 0..20 {
        let t0 = Instant::now();
        conn.get_mut()
            .write_all(b"{\"op\":\"stats\"}\n")
            .expect("stats request");
        let response = read_line(&mut conn);
        stats_rtt = stats_rtt.min(t0.elapsed().as_secs_f64());
        assert!(
            response.starts_with("{\"scenario\":\"stats\""),
            "{response}"
        );
    }

    let mut batch = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        for line in &lines {
            conn.get_mut()
                .write_all(format!("{line}\n").as_bytes())
                .expect("batch request");
        }
        let mut got = String::new();
        for _ in 0..lines.len() {
            got.push_str(&read_line(&mut conn));
        }
        batch = batch.min(t0.elapsed().as_secs_f64());
        assert_eq!(got, expected, "socket batch diverged from serve_batch");
    }

    handle.drain(std::time::Duration::from_millis(50));
    drop(conn);
    join.join().expect("server thread");
    (rtt, stats_rtt, batch)
}

/// Telemetry overhead probe: a dense saturated ready-cache run with
/// sim-time latency sampling toggled. Sampling on is the default; the
/// recording cost is one bucket increment per completed request, folded
/// into the report at run end — the dense phase (every request sampled,
/// no idle time to hide in) is the worst case. Results are bit-identical
/// either way (the determinism suite pins this; the checksum re-checks it
/// here); only wall-clock may differ, and by less than 1%.
fn mc_dense64_sampled(sampling: bool) -> f64 {
    rome_telemetry::set_sim_sampling(sampling);
    let bw = mc_dense64(true);
    rome_telemetry::set_sim_sampling(true);
    bw
}

/// Flight-recorder probe: the same dense ready-cache phase run through
/// `run_with_budget` with a recorder armed on the budget. `None` attaches
/// no sink at all; `Some(TraceLevel::Off)` is the "compiled in but
/// disabled" configuration — the sink is plumbed through the run loop and
/// every emission site pays its one cold level check, but nothing records.
/// `Some(TraceLevel::Commands)` records the full per-request lifecycle
/// plus bank activity, costing real work; only the disabled arm carries an
/// overhead bar, because only it taxes users who never asked for a trace.
/// Results are bit-identical across all three arms (the recorder is pure
/// observation; the checksum asserts below re-check it).
fn mc_dense64_traced(level: Option<rome_engine::trace::TraceLevel>) -> f64 {
    use rome_engine::trace::TraceConfig;
    use rome_engine::{RunBudget, TraceSink};
    let mut cfg = rome_mc::ControllerConfig::hbm4_with_queue_depth(64);
    cfg.ready_cache = true;
    cfg.soa = false;
    let mut ctrl = rome_mc::ChannelController::new(cfg);
    let reqs = rome_mc::workload::streaming_reads(0, MC_BYTES, 32);
    let budget = match level {
        Some(level) => {
            RunBudget::unlimited().with_trace(TraceSink::new(TraceConfig::with_level(level)))
        }
        None => RunBudget::unlimited(),
    };
    let report = rome_mc::simulate::run_with_budget(&mut ctrl, reqs, 50_000_000, &budget);
    report.achieved_bandwidth_gbps
}

fn rome_sweep(stepped: bool) -> f64 {
    let mut bw = 0.0;
    for &depth in &DEPTHS {
        let mut ctrl = rome_core::RomeController::new(
            rome_core::RomeControllerConfig::with_queue_depth(depth),
        );
        // SoA off: pre-SoA key, driver win only (see mc_sweep).
        ctrl.set_soa(false);
        let reqs = rome_mc::workload::streaming_reads(0, ROME_BYTES, 4096);
        let report = if stepped {
            rome_core::simulate::run_with_limit_stepped(&mut ctrl, reqs, 50_000_000)
        } else {
            rome_core::simulate::run_with_limit(&mut ctrl, reqs, 50_000_000)
        };
        bw += report.achieved_bandwidth_gbps;
    }
    bw
}

/// Time `f` over `repeats` runs, returning seconds per run (min of runs).
fn time_it(repeats: u32, mut f: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn write_json(path: &std::path::Path, entries: &[(&str, f64)]) {
    let body: Vec<String> = entries
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v:.4}"))
        .collect();
    let json = format!("{{\n{}\n}}\n", body.join(",\n"));
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {}: {e}", path.display());
    }
}

fn bench(c: &mut Criterion) {
    // Checked comparison: both drivers must report the same aggregate
    // bandwidth (the equivalence suite pins full bit-identity).
    let repeats = 3;
    let mc_event = time_it(repeats, || mc_sweep(false));
    let mc_stepped = time_it(repeats, || mc_sweep(true));
    let rome_event = time_it(repeats, || rome_sweep(false));
    let rome_stepped = time_it(repeats, || rome_sweep(true));
    assert_eq!(
        mc_sweep(false),
        mc_sweep(true),
        "drivers diverged on the HBM4 sweep"
    );
    assert_eq!(
        rome_sweep(false),
        rome_sweep(true),
        "drivers diverged on the RoMe sweep"
    );

    // FR-FCFS ready cache on the dense 64-entry phase (equivalence suite
    // pins bit-identity; here only wall-clock differs).
    let dense_cached = time_it(repeats, || mc_dense64(true));
    let dense_plain = time_it(repeats, || mc_dense64(false));
    assert_eq!(
        mc_dense64(true),
        mc_dense64(false),
        "ready cache changed the dense-phase schedule"
    );

    // Incremental event calendar on the saturated 32-channel system
    // (calendar off = the pre-calendar event loop).
    let cal32_on = time_it(repeats, || mc_calendar32(true));
    let cal32_off = time_it(repeats, || mc_calendar32(false));
    assert_eq!(
        mc_calendar32(true),
        mc_calendar32(false),
        "event calendar changed the 32-channel schedule"
    );

    // Data-oriented (SoA) hot path: packed scans vs the oracle per-entry
    // scan on the dense single-controller and saturated 32-channel shapes.
    let soa64_on = time_it(repeats, || mc_soa_dense64(true));
    let soa64_off = time_it(repeats, || mc_soa_dense64(false));
    assert_eq!(
        mc_soa_dense64(true),
        mc_soa_dense64(false),
        "SoA scan changed the dense-phase schedule"
    );
    let soa32_on = time_it(repeats, || mc_soa_dense32(true));
    let soa32_off = time_it(repeats, || mc_soa_dense32(false));
    assert_eq!(
        mc_soa_dense32(true),
        mc_soa_dense32(false),
        "SoA scan changed the 32-channel schedule"
    );

    // Robustness overhead: budget-metered vs unchecked dense streaming run
    // (bit-identical results; only the meter's wall-clock differs).
    let robust_unchecked = time_it(repeats, || mc_dense64_budget_checked(false));
    let robust_checked = time_it(repeats, || mc_dense64_budget_checked(true));
    assert_eq!(
        mc_dense64_budget_checked(true),
        mc_dense64_budget_checked(false),
        "budget metering changed the dense-phase schedule"
    );

    // Closed-loop MoE-skew serving scenario (streaming workload subsystem):
    // wall-clock of one narrow-window and one wide-window run per system,
    // plus the achieved closed-loop bandwidths (seed-deterministic).
    let wl_hbm4_ms = time_it(repeats, || workload_moe_closed_loop(16, false));
    let wl_rome_ms = time_it(repeats, || workload_moe_closed_loop(16, true));
    let wl_hbm4_w1 = workload_moe_closed_loop(1, false);
    let wl_hbm4_w16 = workload_moe_closed_loop(16, false);
    let wl_rome_w1 = workload_moe_closed_loop(1, true);
    let wl_rome_w16 = workload_moe_closed_loop(16, true);
    assert_eq!(
        wl_hbm4_w16,
        workload_moe_closed_loop(16, false),
        "closed-loop MoE scenario must be deterministic"
    );
    assert!(
        wl_rome_w16 > wl_rome_w1,
        "RoMe closed-loop bandwidth must grow with the window"
    );

    // Scenario-server batch: warm engine (calibration cached across
    // batches) vs a cold engine per scenario. The warm engine is warmed
    // once outside the timed region — that first batch is exactly the cold
    // cost, which the cold arm measures.
    let warm_engine = rome_server::ScenarioEngine::new();
    let warm_checksum = serve_server_batch(&warm_engine);
    let server_warm = time_it(repeats, || serve_server_batch(&warm_engine));
    let server_cold = time_it(1, serve_server_batch_cold);
    assert_eq!(
        warm_checksum,
        serve_server_batch_cold(),
        "warm and cold scenario serving diverged"
    );

    // Socket front end on the same warm batch: per-request round trip,
    // the stats-frame round trip, and the over-the-wire warm batch vs
    // cold per-scenario serving.
    let (socket_rtt, socket_stats_rtt, socket_batch) = server_socket_times(repeats);

    // Telemetry overhead on the dense saturated phase. Scheduler noise on a
    // shared box is several percent per run — far above the effect being
    // measured — but it is strictly additive, so the min over repeated runs
    // converges to each arm's true floor; the ~10 ms run length keeps the
    // odds high that some run gets a whole unpreempted quantum. Pairs
    // alternate which arm runs first (cancelling order bias) and sampling
    // stops early once the floor estimate settles under the bar (at least
    // six pairs, up to thirty). A genuine >1% recording cost can never
    // sneak through early stopping — its floor ratio stays above the bar
    // no matter how many pairs run.
    mc_dense64_sampled(false);
    mc_dense64_sampled(true);
    let mut telem_off = f64::INFINITY;
    let mut telem_on = f64::INFINITY;
    let mut telemetry_overhead_pct = f64::INFINITY;
    for pair in 0..30 {
        if pair % 2 == 0 {
            telem_off = telem_off.min(time_it(1, || mc_dense64_sampled(false)));
            telem_on = telem_on.min(time_it(1, || mc_dense64_sampled(true)));
        } else {
            telem_on = telem_on.min(time_it(1, || mc_dense64_sampled(true)));
            telem_off = telem_off.min(time_it(1, || mc_dense64_sampled(false)));
        }
        telemetry_overhead_pct = (telem_on / telem_off - 1.0) * 100.0;
        if pair >= 5 && telemetry_overhead_pct < 0.75 {
            break;
        }
    }
    assert_eq!(
        mc_dense64_sampled(true),
        mc_dense64_sampled(false),
        "latency sampling changed the simulated schedule"
    );
    assert!(
        telemetry_overhead_pct < 1.0,
        "telemetry sampling overhead must stay under 1% on the dense phase, \
         got {telemetry_overhead_pct:.2}%"
    );

    // Flight-recorder overhead on the same dense phase: recorder compiled
    // in and armed on the run budget, but left at `TraceLevel::Off` — the
    // configuration every untraced request runs through. Same
    // alternating-pairs min-floor protocol as the telemetry probe above.
    use rome_engine::trace::TraceLevel;
    mc_dense64_traced(None);
    mc_dense64_traced(Some(TraceLevel::Off));
    let mut trace_none = f64::INFINITY;
    let mut trace_off = f64::INFINITY;
    let mut trace_overhead_pct = f64::INFINITY;
    for pair in 0..30 {
        if pair % 2 == 0 {
            trace_none = trace_none.min(time_it(1, || mc_dense64_traced(None)));
            trace_off = trace_off.min(time_it(1, || mc_dense64_traced(Some(TraceLevel::Off))));
        } else {
            trace_off = trace_off.min(time_it(1, || mc_dense64_traced(Some(TraceLevel::Off))));
            trace_none = trace_none.min(time_it(1, || mc_dense64_traced(None)));
        }
        trace_overhead_pct = (trace_off / trace_none - 1.0) * 100.0;
        if pair >= 5 && trace_overhead_pct < 0.75 {
            break;
        }
    }
    assert_eq!(
        mc_dense64_traced(Some(TraceLevel::Off)),
        mc_dense64_traced(None),
        "a disabled flight recorder changed the simulated schedule"
    );
    assert_eq!(
        mc_dense64_traced(Some(TraceLevel::Commands)),
        mc_dense64_traced(None),
        "command-level recording changed the simulated schedule"
    );
    assert!(
        trace_overhead_pct < 1.0,
        "disabled flight recorder must stay under 1% on the dense phase, \
         got {trace_overhead_pct:.2}%"
    );
    // Absolute cost of full command-level recording on the dense phase —
    // tracked across PRs, not barred: recording is opt-in per request.
    let trace_record = time_it(repeats, || mc_dense64_traced(Some(TraceLevel::Commands)));

    let total_event = mc_event + rome_event;
    let total_stepped = mc_stepped + rome_stepped;
    println!("\nqueue-depth sweep, event-driven vs cycle-stepped (wall-clock):");
    println!(
        "  HBM4:  {:8.2} ms -> {:8.2} ms  ({:5.2}x)",
        mc_stepped * 1e3,
        mc_event * 1e3,
        mc_stepped / mc_event
    );
    println!(
        "  RoMe:  {:8.2} ms -> {:8.2} ms  ({:5.2}x)",
        rome_stepped * 1e3,
        rome_event * 1e3,
        rome_stepped / rome_event
    );
    println!(
        "  total: {:8.2} ms -> {:8.2} ms  ({:5.2}x)",
        total_stepped * 1e3,
        total_event * 1e3,
        total_stepped / total_event
    );
    println!(
        "  ready cache, dense 64-entry HBM4 phase: {:8.2} ms -> {:8.2} ms  ({:5.2}x)",
        dense_plain * 1e3,
        dense_cached * 1e3,
        dense_plain / dense_cached
    );
    println!(
        "  event calendar, saturated 32-channel HBM4 streaming: {:8.2} ms -> {:8.2} ms  ({:5.2}x)",
        cal32_off * 1e3,
        cal32_on * 1e3,
        cal32_off / cal32_on
    );
    println!(
        "  SoA hot path, dense 64-entry HBM4 phase: {:8.2} ms -> {:8.2} ms  ({:5.2}x)",
        soa64_off * 1e3,
        soa64_on * 1e3,
        soa64_off / soa64_on
    );
    println!(
        "  SoA hot path, saturated 32-channel deep-queue streaming: {:8.2} ms -> {:8.2} ms  ({:5.2}x)",
        soa32_off * 1e3,
        soa32_on * 1e3,
        soa32_off / soa32_on
    );
    println!(
        "  budget metering, dense 64-entry HBM4 phase: {:8.2} ms -> {:8.2} ms  ({:+5.2}% overhead)",
        robust_unchecked * 1e3,
        robust_checked * 1e3,
        (robust_checked / robust_unchecked - 1.0) * 100.0
    );
    println!(
        "  closed-loop MoE skew (w=1 -> w=16): HBM4 {:6.2} -> {:6.2} GB/s, RoMe {:6.2} -> {:6.2} GB/s",
        wl_hbm4_w1, wl_hbm4_w16, wl_rome_w1, wl_rome_w16
    );
    println!(
        "  scenario-server batch ({} scenarios): cold per-scenario {:8.2} ms -> warm engine {:8.2} ms  ({:5.2}x)",
        server_batch_specs().len(),
        server_cold * 1e3,
        server_warm * 1e3,
        server_cold / server_warm
    );
    println!(
        "  socket service: {:6.3} ms request round trip; warm batch over the wire {:8.2} ms  ({:5.2}x vs cold)",
        socket_rtt * 1e3,
        socket_batch * 1e3,
        server_cold / socket_batch
    );
    println!(
        "  stats frame round trip: {:6.3} ms",
        socket_stats_rtt * 1e3
    );
    println!(
        "  telemetry sampling, dense 64-entry HBM4 phase: {:8.2} ms -> {:8.2} ms  ({:+5.2}% overhead)",
        telem_off * 1e3,
        telem_on * 1e3,
        telemetry_overhead_pct
    );
    println!(
        "  flight recorder, same phase: disabled {:+5.2}% overhead; command-level recording {:8.2} ms",
        trace_overhead_pct,
        trace_record * 1e3
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    write_json(
        &root.join("BENCH_event_driven.json"),
        &[
            ("hbm4_sweep_stepped_ms", mc_stepped * 1e3),
            ("hbm4_sweep_event_ms", mc_event * 1e3),
            ("hbm4_speedup", mc_stepped / mc_event),
            ("rome_sweep_stepped_ms", rome_stepped * 1e3),
            ("rome_sweep_event_ms", rome_event * 1e3),
            ("rome_speedup", rome_stepped / rome_event),
            ("total_stepped_ms", total_stepped * 1e3),
            ("total_event_ms", total_event * 1e3),
            ("total_speedup", total_stepped / total_event),
            ("ready_cache_dense64_plain_ms", dense_plain * 1e3),
            ("ready_cache_dense64_cached_ms", dense_cached * 1e3),
            ("ready_cache_dense64_speedup", dense_plain / dense_cached),
            ("calendar_dense32_plain_ms", cal32_off * 1e3),
            ("calendar_dense32_cached_ms", cal32_on * 1e3),
            ("calendar_dense32_speedup", cal32_off / cal32_on),
            ("soa_dense64_plain_ms", soa64_off * 1e3),
            ("soa_dense64_soa_ms", soa64_on * 1e3),
            ("soa_dense64_speedup", soa64_off / soa64_on),
            ("soa_dense32_plain_ms", soa32_off * 1e3),
            ("soa_dense32_soa_ms", soa32_on * 1e3),
            ("soa_dense32_speedup", soa32_off / soa32_on),
            ("robustness_unchecked_ms", robust_unchecked * 1e3),
            ("robustness_checked_ms", robust_checked * 1e3),
            (
                "robustness_overhead_pct",
                (robust_checked / robust_unchecked - 1.0) * 100.0,
            ),
            ("workload_moe_hbm4_ms", wl_hbm4_ms * 1e3),
            ("workload_moe_rome_ms", wl_rome_ms * 1e3),
            ("workload_moe_hbm4_w1_gbps", wl_hbm4_w1),
            ("workload_moe_hbm4_w16_gbps", wl_hbm4_w16),
            ("workload_moe_rome_w1_gbps", wl_rome_w1),
            ("workload_moe_rome_w16_gbps", wl_rome_w16),
            ("server_batch_cold_ms", server_cold * 1e3),
            ("server_batch_warm_ms", server_warm * 1e3),
            ("server_batch_speedup", server_cold / server_warm),
            ("server_socket_rtt_ms", socket_rtt * 1e3),
            ("server_socket_warm_speedup", server_cold / socket_batch),
            ("server_stats_rtt_ms", socket_stats_rtt * 1e3),
            ("telemetry_unsampled_ms", telem_off * 1e3),
            ("telemetry_sampled_ms", telem_on * 1e3),
            ("telemetry_overhead_pct", telemetry_overhead_pct),
            ("trace_overhead_pct", trace_overhead_pct),
            ("trace_record_dense64_ms", trace_record * 1e3),
        ],
    );

    c.bench_function("server_batch_warm", |b| {
        b.iter(|| black_box(serve_server_batch(&warm_engine)))
    });

    c.bench_function("workload_moe_closed_loop", |b| {
        b.iter(|| black_box(workload_moe_closed_loop(16, false)))
    });

    c.bench_function("dense32_event_calendar", |b| {
        b.iter(|| black_box(mc_calendar32(true)))
    });

    c.bench_function("dense64_soa", |b| {
        b.iter(|| black_box(mc_soa_dense64(true)))
    });
    c.bench_function("dense64_plain_scan", |b| {
        b.iter(|| black_box(mc_soa_dense64(false)))
    });

    c.bench_function("dense64_ready_cache", |b| {
        b.iter(|| black_box(mc_dense64(true)))
    });
    c.bench_function("dense64_no_ready_cache", |b| {
        b.iter(|| black_box(mc_dense64(false)))
    });

    c.bench_function("queue_depth_event_driven", |b| {
        b.iter(|| black_box(mc_sweep(false) + rome_sweep(false)))
    });
    c.bench_function("queue_depth_cycle_stepped", |b| {
        b.iter(|| black_box(mc_sweep(true) + rome_sweep(true)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
