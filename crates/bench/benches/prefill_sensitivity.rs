//! Reproduces prefill_sensitivity of the RoMe paper. The table is printed once, then the
//! underlying simulation kernel is timed by Criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", rome_bench::prefill_table());
    c.bench_function("prefill_sensitivity", |b| {
        b.iter(|| {
            black_box(rome_sim::prefill_time(
                &rome_llm::ModelConfig::grok_1(),
                16,
                8192,
                &rome_sim::AcceleratorSpec::paper_default(),
                &rome_sim::MemoryModel::rome(&rome_sim::AcceleratorSpec::paper_default()),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
