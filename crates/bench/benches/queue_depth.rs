//! Reproduces queue_depth of the RoMe paper. The table is printed once, then the
//! underlying simulation kernel is timed by Criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", rome_bench::queue_depth_table());
    c.bench_function("queue_depth", |b| {
        b.iter(|| {
            black_box({
                let mut c = rome_mc::ChannelController::new(
                    rome_mc::ControllerConfig::hbm4_with_queue_depth(16),
                );
                rome_mc::simulate::run_to_completion(
                    &mut c,
                    rome_mc::workload::streaming_reads(0, 64 * 1024, 32),
                )
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
