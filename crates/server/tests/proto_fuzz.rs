//! Never-panic and chunking-invariance properties of the wire protocol,
//! mirroring the `parse_batch` never-panic suite in `cli_binary.rs`: the
//! frame splitter and request parser face raw network bytes, so arbitrary
//! malformed, truncated, and interleaved input must yield structured
//! events and errors — never a panic. (A panic aborts the test process, so
//! these tests passing IS the no-panic proof.)

use proptest::prelude::*;

use rome_server::proto::{parse_frame, parse_request, FrameEvent, FrameReader};

/// Request-shaped template lines: valid bare specs, valid envelopes, and
/// every malformation class the parser distinguishes.
fn request_line_templates() -> Vec<&'static str> {
    vec![
        "{\"scenario\":\"sweep\",\"name\":\"s\",\"kind\":\"figure13\",\"seq_len\":4096}",
        "{\"scenario\":\"calibration\",\"name\":\"c\",\"system\":\"hbm4\"}",
        "{\"id\":1,\"spec\":{\"scenario\":\"sweep\",\"name\":\"s\",\"kind\":\"figure13\",\"seq_len\":4096}}",
        "{\"id\":18446744073709551615,\"spec\":{}}",
        "{\"id\":-3,\"spec\":{\"scenario\":\"sweep\"}}",
        "{\"id\":2.5,\"spec\":{}}",
        "{\"spec\":{\"scenario\":\"calibration\",\"name\":\"c\",\"system\":\"rome\"}}",
        "{\"id\":\"seven\",\"spec\":{}}",
        "{\"scenario\":\"nope\",\"name\":\"x\"}",
        "{\"scenario\":\"sweep\",\"name\":\"s\"",
        "{\"scenario\":\"sweep\",,}",
        "[1,2,3]",
        "\"just a string\"",
        "42",
        "null",
        "not json at all",
        "{\"k\":\"bad unicode \\u12\"}",
        "}",
        "",
        "   ",
        "{\"op\":\"flight\"}",
        "{\"op\":\"flight\",\"id\":4}",
        "{\"id\":3,\"record\":{\"level\":\"requests\"},\"spec\":{\"scenario\":\"calibration\",\"name\":\"c\",\"system\":\"hbm4\"}}",
        "{\"record\":{\"level\":\"commands\",\"limit\":8},\"spec\":{\"scenario\":\"sweep\",\"name\":\"s\",\"kind\":\"figure13\",\"seq_len\":4096}}",
        "{\"record\":{\"level\":\"nope\"},\"spec\":{\"scenario\":\"sweep\",\"name\":\"s\",\"kind\":\"figure13\",\"seq_len\":4096}}",
        "{\"record\":7,\"spec\":{\"scenario\":\"calibration\",\"name\":\"c\",\"system\":\"rome\"}}",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The parser property: any template line, truncated anywhere, either
    // parses to a request or yields a non-empty protocol error string.
    #[test]
    fn arbitrary_request_lines_never_panic(
        pick in 0usize..26,
        cut in 0usize..256,
        truncate in any::<bool>(),
    ) {
        let templates = request_line_templates();
        let mut line = templates[pick].to_string();
        if truncate {
            // Truncate on a char boundary (templates are ASCII, but stay
            // defensive).
            let mut cut = cut.min(line.len());
            while !line.is_char_boundary(cut) {
                cut -= 1;
            }
            line.truncate(cut);
        }
        match parse_request(&line) {
            Ok(req) => prop_assert!(req.id.is_none() || req.id.is_some()),
            Err(message) => prop_assert!(!message.is_empty()),
        }
        // The same lines through the frame dispatcher (which additionally
        // understands control ops like {"op":"flight"}): a frame or a
        // structured error, never a panic.
        match parse_frame(&line) {
            Ok(_) => {}
            Err(message) => prop_assert!(!message.is_empty()),
        }
    }

    // The framing property: arbitrary bytes under arbitrary re-chunking
    // (including byte-at-a-time) produce exactly the same event sequence
    // as one monolithic push — chunk boundaries are invisible — and the
    // reader never panics or buffers past its limit.
    #[test]
    fn frame_events_are_invariant_under_rechunking(
        bytes in prop::collection::vec(0u8..255, 0..512),
        splits in prop::collection::vec(1usize..32, 0..32),
        max_frame in 1usize..128,
    ) {
        let monolithic = {
            let mut reader = FrameReader::new(max_frame);
            reader.push(&bytes)
        };
        let rechunked = {
            let mut reader = FrameReader::new(max_frame);
            let mut events = Vec::new();
            let mut rest: &[u8] = &bytes;
            let mut split_iter = splits.iter().cycle();
            while !rest.is_empty() {
                let take = (*split_iter.next().unwrap_or(&1)).min(rest.len());
                let (chunk, tail) = rest.split_at(take);
                events.extend(reader.push(chunk));
                prop_assert!(reader.buffered() <= max_frame);
                rest = tail;
            }
            events
        };
        prop_assert_eq!(monolithic, rechunked);
    }

    // Frame + parse composed: raw fuzz bytes through the whole inbound
    // path (split, validate UTF-8, parse) never panic, and every complete
    // line yields either a request or a structured error.
    #[test]
    fn raw_bytes_through_the_full_inbound_path_never_panic(
        bytes in prop::collection::vec(0u8..255, 0..512),
    ) {
        let mut reader = FrameReader::new(64);
        for event in reader.push(&bytes) {
            match event {
                FrameEvent::Line(line) => {
                    let _ = parse_request(&line);
                }
                FrameEvent::Oversize { bytes } => prop_assert!(bytes > 64),
                FrameEvent::NotUtf8 { bytes } => prop_assert!(bytes <= 64),
            }
        }
    }
}

/// Interleaved frames from a deterministic splitter: many valid and
/// invalid lines mixed in one stream parse to the same set of outcomes
/// regardless of how the transport slices them.
#[test]
fn interleaved_streams_split_identically_however_chunked() {
    let mut stream = Vec::new();
    for (i, line) in request_line_templates().iter().enumerate() {
        stream.extend_from_slice(line.as_bytes());
        stream.extend_from_slice(if i % 3 == 0 { b"\r\n" } else { b"\n" });
    }
    let whole = {
        let mut reader = FrameReader::default();
        reader.push(&stream)
    };
    for chunk_size in [1usize, 2, 3, 7, 64, 4096] {
        let mut reader = FrameReader::default();
        let mut events = Vec::new();
        for chunk in stream.chunks(chunk_size) {
            events.extend(reader.push(chunk));
        }
        assert_eq!(events, whole, "chunk size {chunk_size}");
    }
    assert_eq!(whole.len(), request_line_templates().len());
}
