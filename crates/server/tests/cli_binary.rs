//! Pins the real `rome-server` executable against the in-process path: the
//! binary's stdout for a JSONL batch must be byte-identical to
//! `serve_jsonl` on the same input (file argument and stdin mode both).

use std::io::Write as _;
use std::process::{Command, Stdio};

use rome_server::{serve_jsonl, ScenarioEngine};

/// A quick batch (no calibration: the binary test should stay fast) with a
/// deliberate error line in the middle.
const BATCH: &str = concat!(
    "# scenario-server binary smoke batch\n",
    "{\"scenario\":\"sweep\",\"name\":\"fig13\",\"kind\":\"figure13\",\"seq_len\":4096}\n",
    "\n",
    "{\"scenario\":\"tpot\",\"name\":\"bad\",\"model\":\"gpt-2\",\"batch\":8,\"seq_len\":4096}\n",
    "{\"scenario\":\"closed_loop\",\"name\":\"burst\",\"system\":\"rome\",\"channels\":2,",
    "\"windows\":[1,4],\"max_ns\":10000000,\"workload\":{\"type\":\"burst\",\"base\":0,",
    "\"span\":1048576,\"bytes_per_burst\":32768,\"granularity\":4096,\"period_ns\":0,",
    "\"bursts\":2,\"write_period\":0}}\n",
);

fn expected() -> String {
    serve_jsonl(&ScenarioEngine::new(), BATCH).expect("batch parses")
}

#[test]
fn binary_output_is_byte_identical_to_the_in_process_path() {
    let exe = env!("CARGO_BIN_EXE_rome-server");
    let expected = expected();

    // File-argument mode.
    let path = std::env::temp_dir().join(format!("rome-server-batch-{}.jsonl", std::process::id()));
    std::fs::write(&path, BATCH).unwrap();
    let out = Command::new(exe).arg(&path).output().unwrap();
    std::fs::remove_file(&path).ok();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8(out.stdout).unwrap(), expected);

    // Stdin mode.
    let mut child = Command::new(exe)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(BATCH.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8(out.stdout).unwrap(), expected);
}

#[test]
fn binary_rejects_malformed_batches_with_the_line_number() {
    let exe = env!("CARGO_BIN_EXE_rome-server");
    let mut child = Command::new(exe)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"{\"scenario\":\"sweep\",\"name\":\"ok\",\"kind\":\"figure13\",\"seq_len\":4096}\nnot json\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success(), "malformed batch must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "stderr: {stderr}");
}
