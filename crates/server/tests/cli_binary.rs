//! Pins the real `rome-server` executable against the in-process path: the
//! binary's stdout for a JSONL batch must be byte-identical to
//! `serve_jsonl` on the same input (file argument and stdin mode both).

use std::io::Write as _;
use std::process::{Command, Stdio};

use proptest::prelude::*;
use rome_server::{parse_batch, serve_jsonl, ScenarioEngine};

/// A quick batch (no calibration: the binary test should stay fast) with a
/// deliberate error line in the middle.
const BATCH: &str = concat!(
    "# scenario-server binary smoke batch\n",
    "{\"scenario\":\"sweep\",\"name\":\"fig13\",\"kind\":\"figure13\",\"seq_len\":4096}\n",
    "\n",
    "{\"scenario\":\"tpot\",\"name\":\"bad\",\"model\":\"gpt-2\",\"batch\":8,\"seq_len\":4096}\n",
    "{\"scenario\":\"closed_loop\",\"name\":\"burst\",\"system\":\"rome\",\"channels\":2,",
    "\"windows\":[1,4],\"max_ns\":10000000,\"workload\":{\"type\":\"burst\",\"base\":0,",
    "\"span\":1048576,\"bytes_per_burst\":32768,\"granularity\":4096,\"period_ns\":0,",
    "\"bursts\":2,\"write_period\":0}}\n",
);

fn expected() -> String {
    serve_jsonl(&ScenarioEngine::new(), BATCH).expect("batch parses")
}

#[test]
fn binary_output_is_byte_identical_to_the_in_process_path() {
    let exe = env!("CARGO_BIN_EXE_rome-server");
    let expected = expected();

    // File-argument mode.
    let path = std::env::temp_dir().join(format!("rome-server-batch-{}.jsonl", std::process::id()));
    std::fs::write(&path, BATCH).unwrap();
    let out = Command::new(exe).arg(&path).output().unwrap();
    std::fs::remove_file(&path).ok();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8(out.stdout).unwrap(), expected);

    // Stdin mode.
    let mut child = Command::new(exe)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(BATCH.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8(out.stdout).unwrap(), expected);
}

#[test]
fn binary_rejects_malformed_batches_with_the_line_number() {
    let exe = env!("CARGO_BIN_EXE_rome-server");
    let mut child = Command::new(exe)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"{\"scenario\":\"sweep\",\"name\":\"ok\",\"kind\":\"figure13\",\"seq_len\":4096}\nnot json\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success(), "malformed batch must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "stderr: {stderr}");
}

/// Line templates for adversarial batches: a couple of valid specs, plus
/// every malformed shape the parser distinguishes (bad JSON, truncated
/// nesting, unterminated strings, bad escapes, unknown tags, missing
/// fields, junk numbers) and the skippable shapes (blank, comment).
/// All ASCII, so any byte offset is a valid truncation point.
fn batch_line_templates() -> Vec<&'static str> {
    vec![
        "{\"scenario\":\"sweep\",\"name\":\"s\",\"kind\":\"figure13\",\"seq_len\":4096}",
        "{\"scenario\":\"queue_depth\",\"name\":\"q\",\"system\":\"hbm4\",\"depths\":[1],\"total_bytes\":4096,\"granularity\":4096}",
        "not json",
        "{",
        "[1,2",
        "\"unterminated",
        "{\"scenario\":\"sweep\"}",
        "{\"scenario\":\"nope\",\"name\":\"x\"}",
        "{\"scenario\":\"queue_depth\",\"name\":\"q\"}",
        "{\"k\":\"bad escape \\x\"}",
        "{\"k\":\"bad unicode \\u12\"}",
        "{\"n\":12e4e5}",
        "{\"n\":-}",
        "{\"a\":[}",
        "{\"a\":1,}",
        "}",
        "# a comment line",
        "",
        "   ",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The tentpole property: arbitrary malformed/truncated JSONL batches
    // never panic the parser, and every rejection is a structured
    // `BatchError` naming a real 1-based input line with a non-empty
    // message. (A panic anywhere aborts the test process, so this test
    // passing IS the no-panic proof.)
    #[test]
    fn arbitrary_malformed_batches_yield_structured_line_errors(
        picks in prop::collection::vec(0usize..19, 1..8),
        cut in 0usize..512,
        truncate in any::<bool>(),
    ) {
        let templates = batch_line_templates();
        let mut input = picks
            .iter()
            .map(|&i| templates[i])
            .collect::<Vec<_>>()
            .join("\n");
        input.push('\n');
        if truncate {
            input.truncate(cut.min(input.len()));
        }
        match parse_batch(&input) {
            Ok(specs) => prop_assert!(specs.len() <= input.lines().count()),
            Err(e) => {
                prop_assert!(e.line >= 1, "line numbers are 1-based: {e}");
                prop_assert!(
                    e.line <= input.lines().count(),
                    "error names input line {} of {}: {e}",
                    e.line,
                    input.lines().count()
                );
                prop_assert!(!e.message.is_empty());
                // The Display form the binary prints to stderr names the line.
                prop_assert!(e.to_string().starts_with(&format!("line {}: ", e.line)));
            }
        }
    }
}

#[test]
fn binary_fails_gracefully_on_truncated_garbage() {
    // A batch sliced mid-structure: the binary must exit nonzero with a
    // structured line-numbered message on stderr, not a panic backtrace.
    let exe = env!("CARGO_BIN_EXE_rome-server");
    let mut child = Command::new(exe)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"# header\n{\"scenario\":\"sweep\",\"name\":\"s\",\"kind\":\"figure13\",\"seq_len\":4096}\n{\"scenario\":\"sweep\",\"na")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success(), "truncated batch must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 3"), "stderr: {stderr}");
    assert!(
        !stderr.contains("panicked"),
        "no panic on the CLI path: {stderr}"
    );
    assert!(out.stdout.is_empty(), "nothing runs half-configured");
}
