//! Property tests of the Chrome trace-event renderer: for arbitrary event
//! soups (any kinds, any timestamps, merged in any order across channels),
//! `chrome_trace_json` must emit parseable JSON whose `ts` values are
//! non-decreasing within each (pid, tid) track — the invariant
//! chrome://tracing and Perfetto rely on to build timelines without a sort.
//!
//! The server's own strict JSON parser plays the validator, so "valid
//! JSON" here means the exact grammar the serving stack speaks.

use std::collections::HashMap;

use proptest::prelude::*;

use rome_server::json::{self, Json};
use rome_telemetry::trace::{chrome_trace_json, TraceBuffer, TraceEvent, TraceEventKind};

const KINDS: [TraceEventKind; 7] = [
    TraceEventKind::Arrival,
    TraceEventKind::Backlog,
    TraceEventKind::Enqueue,
    TraceEventKind::Issue,
    TraceEventKind::Complete,
    TraceEventKind::RowOpen,
    TraceEventKind::Refresh,
];

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (
        (0usize..KINDS.len(), 0u64..1_000_000, 0u64..10_000),
        (0u16..4, 0u32..64, 0u32..1024),
        (0u64..1_000, 0u64..65_536, any::<bool>()),
    )
        .prop_map(
            |((kind, ts, dur), (channel, bank, row), (id, bytes, write))| TraceEvent {
                ts,
                channel,
                seq: 0,
                kind: KINDS[kind],
                id,
                bank,
                row,
                bytes,
                dur,
                write,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn renders_valid_json_with_sorted_tracks(
        events in prop::collection::vec(arb_event(), 0..200),
        split in 0usize..200,
    ) {
        // Merge through two buffers at an arbitrary split point, the way a
        // multi-channel harvest arrives, to prove render order does not
        // depend on harvest order.
        let split = split.min(events.len());
        let mut merged = TraceBuffer::default();
        let left = TraceBuffer {
            events: events[..split].to_vec(),
            ..Default::default()
        };
        let right = TraceBuffer {
            events: events[split..].to_vec(),
            ..Default::default()
        };
        merged.absorb(left);
        merged.absorb(right);

        let rendered = chrome_trace_json(&merged.events);
        let parsed = json::parse(&rendered);
        prop_assert!(parsed.is_ok(), "unparseable: {rendered}");
        let parsed = parsed.unwrap();
        prop_assert_eq!(
            parsed.get("displayTimeUnit").and_then(Json::as_str),
            Some("ns")
        );
        let rows = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        prop_assert_eq!(rows.len(), merged.events.len());

        // Non-decreasing ts per (pid, tid) track.
        let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
        for row in rows {
            let pid = row.get("pid").and_then(Json::as_u64).expect("pid");
            let tid = row.get("tid").and_then(Json::as_u64).expect("tid");
            let ts = row.get("ts").and_then(Json::as_f64).expect("ts");
            let ph = row.get("ph").and_then(Json::as_str).expect("ph");
            prop_assert!(ph == "X" || ph == "i", "unknown phase {ph}");
            if ph == "X" {
                prop_assert!(row.get("dur").is_some(), "complete span needs dur");
            }
            if let Some(prev) = last_ts.insert((pid, tid), ts) {
                prop_assert!(
                    prev <= ts,
                    "track ({pid},{tid}) went backwards: {prev} then {ts}"
                );
            }
        }
    }

    // Same events, any two harvest orders: byte-identical rendering. This
    // is the determinism contract the server's record path leans on.
    #[test]
    fn rendering_is_invariant_under_harvest_order(
        events in prop::collection::vec(arb_event(), 0..100),
        split_a in 0usize..100,
        split_b in 0usize..100,
    ) {
        let merge_at = |split: usize| {
            let split = split.min(events.len());
            let mut merged = TraceBuffer::default();
            let left = TraceBuffer {
                events: events[..split].to_vec(),
                ..Default::default()
            };
            let right = TraceBuffer {
                events: events[split..].to_vec(),
                ..Default::default()
            };
            // Either arrival order.
            if split % 2 == 0 {
                merged.absorb(left);
                merged.absorb(right);
            } else {
                merged.absorb(right);
                merged.absorb(left);
            }
            chrome_trace_json(&merged.events)
        };
        prop_assert_eq!(merge_at(split_a), merge_at(split_b));
    }
}
