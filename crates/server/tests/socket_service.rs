//! Integration suite for the socket service front end: byte-identity with
//! the batch path for fault-free traffic, and the transport fault-injection
//! matrix — misbehaving clients (slow writers, torn frames, mid-frame
//! disconnects, connect floods, stalled engines) must never stall another
//! connection or kill the warm engine, and every shed is a structured
//! frame, never a hang or a silent drop.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rome_engine::EngineFault;
use rome_server::conn::ConnConfig;
use rome_server::json;
use rome_server::net::{NetConfig, NetStats, ServerHandle, SocketServer};
use rome_server::proto::{TransportFault, TransportFaultPlan};
use rome_server::{serve_jsonl, EngineLimits, FaultPlan, Json, ScenarioEngine};

/// Fast specs shared with the CLI byte-identity suite (no calibration).
const BATCH: &str = concat!(
    "# socket smoke batch\n",
    "{\"scenario\":\"sweep\",\"name\":\"fig13\",\"kind\":\"figure13\",\"seq_len\":4096}\n",
    "\n",
    "{\"scenario\":\"tpot\",\"name\":\"bad\",\"model\":\"gpt-2\",\"batch\":8,\"seq_len\":4096}\n",
    "{\"scenario\":\"closed_loop\",\"name\":\"burst\",\"system\":\"rome\",\"channels\":2,",
    "\"windows\":[1,4],\"max_ns\":10000000,\"workload\":{\"type\":\"burst\",\"base\":0,",
    "\"span\":1048576,\"bytes_per_burst\":32768,\"granularity\":4096,\"period_ns\":0,",
    "\"bursts\":2,\"write_period\":0}}\n",
);

const QUICK_SPEC: &str =
    "{\"scenario\":\"sweep\",\"name\":\"s\",\"kind\":\"figure13\",\"seq_len\":4096}";

/// A scenario that streams ~1 GiB through a queue — far longer than any
/// test sleeps below, so it is reliably in flight when a drain fires, and
/// only a `drained` abort (never a wall-clock test timeout) ends it.
const LONG_SPEC: &str = concat!(
    "{\"scenario\":\"queue_depth\",\"name\":\"long\",\"system\":\"hbm4\",\"depths\":[4],",
    "\"total_bytes\":1073741824,\"granularity\":64}",
);

struct TestServer {
    handle: ServerHandle,
    /// The warm engine behind the socket — kept so tests can watch its
    /// metrics registry from outside while connections are live.
    engine: Arc<ScenarioEngine>,
    join: std::thread::JoinHandle<NetStats>,
}

impl TestServer {
    fn start(engine: ScenarioEngine, config: NetConfig) -> TestServer {
        let engine = Arc::new(engine);
        let server = SocketServer::bind("127.0.0.1:0", Arc::clone(&engine), config)
            .expect("bind ephemeral port");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        TestServer {
            handle,
            engine,
            join,
        }
    }

    fn connect(&self) -> BufReader<TcpStream> {
        let stream = TcpStream::connect(self.handle.local_addr()).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        BufReader::new(stream)
    }

    /// Drain with a short grace and return the final counters.
    fn shutdown(self) -> NetStats {
        self.handle.drain(Duration::from_millis(50));
        self.join.join().expect("server thread")
    }
}

fn quick_net_config() -> NetConfig {
    NetConfig {
        conn: ConnConfig {
            read_timeout: Duration::from_millis(5),
            ..ConnConfig::default()
        },
        accept_poll: Duration::from_millis(5),
        ..NetConfig::default()
    }
}

fn send_line(conn: &mut BufReader<TcpStream>, line: &str) {
    let stream = conn.get_mut();
    stream.write_all(line.as_bytes()).expect("write line");
    stream.write_all(b"\n").expect("write newline");
    stream.flush().expect("flush");
}

fn read_line(conn: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    let n = conn.read_line(&mut line).expect("read line");
    assert!(n > 0, "peer closed before a full line arrived");
    assert!(line.ends_with('\n'), "unterminated frame: {line:?}");
    line.pop();
    line
}

/// Read until EOF, returning any complete lines seen on the way.
fn read_until_eof(conn: &mut BufReader<TcpStream>) -> Vec<String> {
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        match conn.read_line(&mut line) {
            Ok(0) => return lines,
            Ok(_) => {
                if line.ends_with('\n') {
                    line.pop();
                }
                lines.push(line);
            }
            Err(_) => return lines,
        }
    }
}

fn wait_for(mut probe: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn fault_free_socket_traffic_is_byte_identical_to_the_batch_path() {
    let expected = serve_jsonl(&ScenarioEngine::new(), BATCH).expect("batch parses");
    let server = TestServer::start(ScenarioEngine::new(), quick_net_config());
    let mut conn = server.connect();
    // The whole batch in one write: comments and blank lines are skipped
    // without a response, exactly like the CLI.
    conn.get_mut()
        .write_all(BATCH.as_bytes())
        .expect("write batch");
    let mut got = String::new();
    for _ in 0..expected.lines().count() {
        got.push_str(&read_line(&mut conn));
        got.push('\n');
    }
    assert_eq!(
        got, expected,
        "socket responses must match serve_jsonl byte for byte"
    );
    drop(conn);
    let stats = server.shutdown();
    assert_eq!(stats.accepted, 1);
}

#[test]
fn envelope_requests_get_their_id_echoed_in_front_of_the_same_bytes() {
    let server = TestServer::start(ScenarioEngine::new(), quick_net_config());
    let mut conn = server.connect();
    send_line(&mut conn, QUICK_SPEC);
    let bare = read_line(&mut conn);
    send_line(&mut conn, &format!("{{\"id\":7,\"spec\":{QUICK_SPEC}}}"));
    let tagged = read_line(&mut conn);
    assert_eq!(tagged, format!("{{\"id\":7,{}", &bare[1..]));
    drop(conn);
    server.shutdown();
}

#[test]
fn byte_at_a_time_and_torn_frames_still_serve_correctly() {
    let server = TestServer::start(ScenarioEngine::new(), quick_net_config());
    let request = format!("{QUICK_SPEC}\n");
    let bytes = request.as_bytes();
    let plan = TransportFaultPlan::new(11)
        .with_fault(
            0,
            TransportFault::SlowWriter {
                chunk: 1,
                delay_ms: 1,
            },
        )
        .with_fault(
            1,
            TransportFault::TornFrame {
                at: TransportFaultPlan::new(11).derived_offset(1, bytes.len() - 1) + 1,
                pause_ms: 60,
            },
        );
    let mut expected = None;
    for conn_index in 0..2 {
        let mut conn = server.connect();
        let stream = conn.get_mut();
        match plan.fault_for(conn_index).expect("fault armed") {
            TransportFault::SlowWriter { chunk, delay_ms } => {
                for piece in bytes.chunks(chunk) {
                    stream.write_all(piece).expect("trickle");
                    stream.flush().expect("flush");
                    std::thread::sleep(Duration::from_millis(delay_ms));
                }
            }
            TransportFault::TornFrame { at, pause_ms } => {
                stream.write_all(&bytes[..at]).expect("first shred");
                stream.flush().expect("flush");
                // Long enough for the server to see a torn (partial) frame
                // across several read quanta before the rest arrives.
                std::thread::sleep(Duration::from_millis(pause_ms));
                stream.write_all(&bytes[at..]).expect("second shred");
                stream.flush().expect("flush");
            }
            TransportFault::DisconnectAfter { .. } => unreachable!("not armed here"),
        }
        let response = read_line(&mut conn);
        assert!(
            response.starts_with("{\"name\":\"s\",\"scenario\":\"sweep\""),
            "conn {conn_index}: {response}"
        );
        match &expected {
            None => expected = Some(response),
            Some(first) => assert_eq!(&response, first, "chunking must not change bytes"),
        }
    }
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_neither_stalls_other_connections_nor_kills_the_engine() {
    let server = TestServer::start(ScenarioEngine::new(), quick_net_config());
    let healthy = server.connect();
    let mut healthy = healthy;

    // A client that dies mid-frame, torn at a seeded offset.
    let plan = TransportFaultPlan::new(23);
    let request = format!("{QUICK_SPEC}\n");
    let cut = plan.derived_offset(0, request.len() - 2) + 1;
    {
        let mut doomed = server.connect();
        doomed
            .get_mut()
            .write_all(&request.as_bytes()[..cut])
            .expect("partial frame");
        // Dropping the stream closes the socket with the frame torn.
    }
    wait_for(
        || server.handle.stats().closed_eof_mid_frame == 1,
        "torn-frame close to be recorded",
    );

    // The healthy connection — opened before the fault — still serves.
    send_line(&mut healthy, QUICK_SPEC);
    let response = read_line(&mut healthy);
    assert!(response.starts_with("{\"name\":\"s\",\"scenario\":\"sweep\""));
    drop(healthy);
    let stats = server.shutdown();
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.closed_eof_mid_frame, 1);
}

#[test]
fn connect_flood_over_the_limit_sheds_with_structured_retry_hints() {
    let mut limits = EngineLimits::default();
    limits.admission.max_connections = 1;
    limits.admission.retry_after_ms = 9;
    let server = TestServer::start(ScenarioEngine::with_limits(limits), quick_net_config());

    // One admitted connection holds the only slot...
    let mut admitted = server.connect();
    send_line(&mut admitted, QUICK_SPEC);
    let response = read_line(&mut admitted);
    assert!(response.starts_with("{\"name\":\"s\""));

    // ...so a flood of further connects is shed, each with one structured
    // overloaded frame and a clean close — never a hang, never a silent
    // drop.
    for _ in 0..4 {
        let mut flooded = server.connect();
        let lines = read_until_eof(&mut flooded);
        assert_eq!(lines.len(), 1, "exactly one refusal frame: {lines:?}");
        assert!(lines[0].contains("\"code\":\"overloaded\""), "{}", lines[0]);
        assert!(lines[0].contains("\"retry_after_ms\":9"), "{}", lines[0]);
    }
    wait_for(
        || server.handle.stats().rejected_overloaded == 4,
        "flood rejections to be recorded",
    );

    // The admitted connection never noticed the flood.
    send_line(&mut admitted, QUICK_SPEC);
    assert!(read_line(&mut admitted).starts_with("{\"name\":\"s\""));
    drop(admitted);
    let stats = server.shutdown();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.rejected_overloaded, 4);
}

#[test]
fn engine_saturation_reaches_socket_clients_as_transient_rejections() {
    // max_in_flight 0: every request is shed by ENGINE admission — the
    // same backpressure model the in-process path uses, surfaced through
    // the socket with its retry hint intact.
    let mut limits = EngineLimits::default();
    limits.admission.max_in_flight = 0;
    limits.admission.retry_after_ms = 13;
    let server = TestServer::start(ScenarioEngine::with_limits(limits), quick_net_config());
    let mut conn = server.connect();
    send_line(&mut conn, QUICK_SPEC);
    let response = read_line(&mut conn);
    assert!(response.contains("\"scenario\":\"error\""), "{response}");
    assert!(response.contains("\"code\":\"rejected\""), "{response}");
    assert!(response.contains("\"retry_after_ms\":13"), "{response}");
    drop(conn);
    server.shutdown();
}

#[test]
fn injected_scenario_panic_is_a_structured_frame_and_the_server_survives() {
    let mut engine = ScenarioEngine::new();
    engine.set_fault_plan(Some(
        FaultPlan::new(5).with_fault(0, EngineFault::panic_at(0)),
    ));
    let server = TestServer::start(engine, quick_net_config());

    let mut first = server.connect();
    send_line(&mut first, QUICK_SPEC);
    let response = read_line(&mut first);
    assert!(response.contains("\"code\":\"panicked\""), "{response}");

    // Same connection again, and a brand-new connection: the panic was
    // isolated to its scenario — the warm engine and the accept loop live.
    send_line(&mut first, QUICK_SPEC);
    assert!(read_line(&mut first).contains("\"code\":\"panicked\""));
    let mut second = server.connect();
    send_line(&mut second, QUICK_SPEC);
    assert!(read_line(&mut second).contains("\"code\":\"panicked\""));

    drop(first);
    drop(second);
    let stats = server.shutdown();
    assert_eq!(stats.accepted, 2);
    assert_eq!(
        stats.poisoned, 0,
        "scenario panics are not connection poisonings"
    );
}

#[test]
fn drain_aborts_in_flight_work_as_tagged_partials_and_notifies_the_peer() {
    let server = TestServer::start(ScenarioEngine::new(), quick_net_config());
    let mut conn = server.connect();
    send_line(&mut conn, LONG_SPEC);
    // Let the scenario get firmly in flight, then drain with a short
    // grace: the budget must abort it as a `drained` partial, the
    // connection must get the partial AND the drain notice, then close.
    std::thread::sleep(Duration::from_millis(150));
    server.handle.drain(Duration::from_millis(50));
    let lines = read_until_eof(&mut conn);
    assert_eq!(lines.len(), 2, "partial + drain notice: {lines:?}");
    assert!(
        lines[0].contains("\"aborted\":\"drained\""),
        "in-flight work must come back as a drained partial: {}",
        lines[0]
    );
    assert!(
        lines[1].contains("\"code\":\"unavailable\""),
        "{}",
        lines[1]
    );
    assert!(lines[1].contains("draining"), "{}", lines[1]);
    let stats = server.join.join().expect("server thread");
    assert_eq!(stats.closed_draining, 1);
}

#[test]
fn drain_with_generous_grace_lets_in_flight_work_complete() {
    let server = TestServer::start(ScenarioEngine::new(), quick_net_config());
    let mut conn = server.connect();
    // A spec that takes real time but far less than the grace.
    send_line(
        &mut conn,
        "{\"scenario\":\"queue_depth\",\"name\":\"mid\",\"system\":\"hbm4\",\"depths\":[4],\
         \"total_bytes\":4194304,\"granularity\":64}",
    );
    std::thread::sleep(Duration::from_millis(30));
    server.handle.drain(Duration::from_secs(120));
    let lines = read_until_eof(&mut conn);
    assert_eq!(lines.len(), 2, "result + drain notice: {lines:?}");
    assert!(
        lines[0].starts_with("{\"name\":\"mid\",\"scenario\":\"queue_depth\""),
        "{}",
        lines[0]
    );
    assert!(
        !lines[0].contains("\"aborted\""),
        "a generous grace must let the scenario finish: {}",
        lines[0]
    );
    assert!(lines[1].contains("\"code\":\"unavailable\""));
    server.join.join().expect("server thread");
}

#[test]
fn post_drain_connects_receive_a_permanent_structured_rejection() {
    let server = TestServer::start(ScenarioEngine::new(), quick_net_config());
    // An in-flight long scenario keeps the drain phase open (the server
    // refuses stragglers until every connection finishes), so the late
    // connect below deterministically lands after the drain started.
    let mut busy = server.connect();
    send_line(&mut busy, LONG_SPEC);
    std::thread::sleep(Duration::from_millis(150));
    server.handle.drain(Duration::from_secs(120));

    let mut late = server.connect();
    let lines = read_until_eof(&mut late);
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(
        lines[0].contains("\"code\":\"unavailable\""),
        "{}",
        lines[0]
    );
    assert!(
        !lines[0].contains("retry_after_ms"),
        "drain rejections are permanent — no retry hint: {}",
        lines[0]
    );

    // Tighten the deadline (earliest wins) so the in-flight scenario
    // aborts as a drained partial and the server can finish.
    server.handle.drain(Duration::from_millis(50));
    let busy_lines = read_until_eof(&mut busy);
    assert!(
        busy_lines[0].contains("\"aborted\":\"drained\""),
        "{busy_lines:?}"
    );
    let stats = server.join.join().expect("server thread");
    assert!(stats.rejected_draining >= 1);
    assert_eq!(stats.closed_draining, 1);
}

#[test]
fn idle_and_sloworis_connections_are_closed_with_a_structured_notice() {
    let mut config = quick_net_config();
    config.conn.idle_timeout = Duration::from_millis(80);
    let server = TestServer::start(ScenarioEngine::new(), config);

    // Fully silent connection.
    let mut silent = server.connect();
    let lines = read_until_eof(&mut silent);
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(lines[0].contains("idle timeout"), "{}", lines[0]);

    // Slow-loris: keeps sending bytes but never a complete frame. The
    // idle clock counts from the last complete frame, so it dies too.
    let mut loris = server.connect();
    let start = Instant::now();
    let mut got = Vec::new();
    for _ in 0..60 {
        if loris.get_mut().write_all(b"{").is_err() {
            break; // server already closed us
        }
        let _ = loris.get_mut().flush();
        std::thread::sleep(Duration::from_millis(10));
        if start.elapsed() > Duration::from_secs(10) {
            break;
        }
    }
    got.extend(read_until_eof(&mut loris));
    assert!(
        got.iter().any(|l| l.contains("idle timeout")),
        "slow-loris must be closed by the idle clock: {got:?}"
    );
    wait_for(
        || server.handle.stats().closed_idle == 2,
        "both idle closes to be recorded",
    );
    server.shutdown();
}

#[test]
fn the_stats_frame_answers_with_live_counters_and_percentiles() {
    let server = TestServer::start(ScenarioEngine::new(), quick_net_config());
    let mut conn = server.connect();
    // Traffic whose deltas the snapshot must show: one histogram-bearing
    // scenario, then two calibration serves — a cold miss and a warm hit.
    send_line(
        &mut conn,
        "{\"scenario\":\"queue_depth\",\"name\":\"q\",\"system\":\"hbm4\",\"depths\":[4],\
         \"total_bytes\":65536,\"granularity\":4096}",
    );
    assert!(read_line(&mut conn).starts_with("{\"name\":\"q\""));
    for _ in 0..2 {
        send_line(
            &mut conn,
            "{\"scenario\":\"calibration\",\"name\":\"c\",\"system\":\"hbm4\"}",
        );
        assert!(read_line(&mut conn).starts_with("{\"name\":\"c\""));
    }

    // The stats op answers in both the bare and enveloped forms, and the
    // envelope echoes its id in front of the same bytes, like any request.
    send_line(&mut conn, "{\"op\":\"stats\"}");
    let bare = read_line(&mut conn);
    assert!(bare.starts_with("{\"scenario\":\"stats\""), "{bare}");
    send_line(&mut conn, "{\"id\":5,\"op\":\"stats\"}");
    let tagged = read_line(&mut conn);
    // The snapshot is LIVE — answering the first stats frame recorded a
    // frame RTT of its own, so the two bodies differ; the envelope just
    // puts the id in front of the same canonical shape.
    assert!(
        tagged.starts_with("{\"id\":5,\"scenario\":\"stats\",\"counters\":{"),
        "{tagged}"
    );

    let snap = json::parse(&bare).expect("stats frame parses");
    let counter = |name: &str| {
        snap.get("counters")
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    };
    assert_eq!(counter("serve.ok"), 3);
    assert_eq!(counter("admission.accepted"), 3);
    assert_eq!(counter("cache.calibration.misses"), 1);
    assert_eq!(counter("cache.calibration.hits"), 1);
    assert_eq!(counter("net.accepted"), 1);

    // Request-latency percentiles from the queue-depth run, live over the
    // wire: a real sample count and a monotone p50 ≤ p95 ≤ p99 ≤ max.
    let hist = snap
        .get("histograms")
        .and_then(|h| h.get("engine.read_latency_ns"))
        .expect("read-latency percentiles in the snapshot");
    let field = |key: &str| {
        hist.get(key)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("{key} in {bare}"))
    };
    assert!(field("count") >= 1);
    assert!(field("p50") <= field("p95"));
    assert!(field("p95") <= field("p99"));
    assert!(field("p99") <= field("max"));
    // Wall-clock frame RTTs were recorded for the frames answered above.
    assert!(snap
        .get("histograms")
        .and_then(|h| h.get("net.frame_rtt_us"))
        .is_some());

    drop(conn);
    let stats = server.shutdown();
    assert_eq!(stats.accepted, 1);
}

#[test]
fn torn_frames_and_drain_refusals_are_exact_registry_deltas() {
    let server = TestServer::start(ScenarioEngine::new(), quick_net_config());
    let registry = Arc::clone(server.engine.registry());
    let torn = registry.counter("net.closed.eof_mid_frame");
    let drain_rejects = registry.counter("net.rejected_draining");
    assert_eq!(torn.get(), 0);

    // Two clients die mid-frame, each torn at a seeded offset: exactly two
    // torn-frame closes, visible in the registry while the server runs.
    let plan = TransportFaultPlan::new(31);
    let request = format!("{QUICK_SPEC}\n");
    for conn_index in 0..2 {
        let cut = plan.derived_offset(conn_index, request.len() - 2) + 1;
        let mut doomed = server.connect();
        doomed
            .get_mut()
            .write_all(&request.as_bytes()[..cut])
            .expect("partial frame");
    }
    wait_for(|| torn.get() == 2, "both torn-frame closes to be counted");

    // An in-flight long scenario keeps the drain phase open, so the late
    // connect lands mid-drain and its refusal is a live counter delta too.
    let mut busy = server.connect();
    send_line(&mut busy, LONG_SPEC);
    std::thread::sleep(Duration::from_millis(150));
    server.handle.drain(Duration::from_secs(120));
    let mut late = server.connect();
    let lines = read_until_eof(&mut late);
    assert_eq!(lines.len(), 1, "{lines:?}");
    wait_for(
        || drain_rejects.get() == 1,
        "the drain refusal to be counted",
    );

    // Tighten the deadline so the long scenario aborts and the server can
    // finish, then check the final deltas — and that the legacy NetStats
    // snapshot is just a view of the same registry counters.
    server.handle.drain(Duration::from_millis(50));
    let _ = read_until_eof(&mut busy);
    let stats = server.join.join().expect("server thread");
    assert_eq!(torn.get(), 2);
    assert_eq!(drain_rejects.get(), 1);
    assert_eq!(registry.counter("net.closed.draining").get(), 1);
    assert_eq!(stats.closed_eof_mid_frame, 2);
    assert_eq!(stats.rejected_draining, 1);
    assert_eq!(stats.closed_draining, 1);
}

#[test]
fn the_trace_flag_appends_wall_clock_spans_without_touching_result_bytes() {
    let server = TestServer::start(ScenarioEngine::new(), quick_net_config());
    let mut conn = server.connect();
    send_line(&mut conn, &format!("{{\"id\":1,\"spec\":{QUICK_SPEC}}}"));
    let plain = read_line(&mut conn);
    send_line(
        &mut conn,
        &format!("{{\"id\":1,\"spec\":{QUICK_SPEC},\"trace\":true}}"),
    );
    let traced = read_line(&mut conn);
    // The traced response is the plain response with one extra trailing
    // member — the result bytes themselves must not move.
    assert!(
        traced.starts_with(&plain[..plain.len() - 1]),
        "plain: {plain}\ntraced: {traced}"
    );
    let value = json::parse(&traced).expect("traced response parses");
    let trace = value.get("trace").expect("trace member");
    for key in ["parse_us", "admission_us", "calibration_us", "simulate_us"] {
        assert!(
            trace.get(key).and_then(Json::as_u64).is_some(),
            "{key} missing from {traced}"
        );
    }
    drop(conn);
    server.shutdown();
}
