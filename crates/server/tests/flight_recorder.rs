//! The flight-recorder acceptance suite: recorded serves return the
//! request lifecycle without perturbing the result, the recorder is
//! deterministic in sim time, and the engine's wall-clock black box
//! reconstructs what was served — including the panicked request a crash
//! investigation starts from.

use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use rome_engine::EngineFault;
use rome_server::conn::{handle_connection, ConnConfig, ConnRead, ConnWrite};
use rome_server::engine::spec_fingerprint;
use rome_server::json::{self, Json};
use rome_server::{FaultPlan, ResultPayload, ScenarioEngine, ScenarioSpec};
use rome_telemetry::trace::{chrome_trace_json, TraceLevel};

fn queue_depth_spec(name: &str) -> ScenarioSpec {
    ScenarioSpec::QueueDepth {
        name: name.into(),
        system: rome_sim::MemorySystemKind::Hbm4,
        depths: vec![8],
        total_bytes: 64 * 1024,
        granularity: 4096,
    }
}

#[test]
fn recorded_serve_returns_events_matching_the_report() {
    let engine = ScenarioEngine::new();
    let spec = queue_depth_spec("rec");
    let (result, _spans, buffer) = engine.serve_recorded(&spec, TraceLevel::Requests);
    let result = result.expect("recorded serve succeeds");
    let ResultPayload::QueueDepth(rows) = &result.payload else {
        panic!("wrong payload");
    };
    assert!(!buffer.events.is_empty(), "recorder captured no events");
    let completions = buffer
        .events
        .iter()
        .filter(|e| e.kind.as_str() == "complete")
        .count() as u64;
    // Every completed request of the run left exactly one completion span.
    assert_eq!(completions, rows[0].report.requests_completed);
    // Requests level records the request lifecycle, not bank commands.
    assert!(buffer
        .events
        .iter()
        .all(|e| !matches!(e.kind.as_str(), "row_open" | "refresh")));
}

#[test]
fn commands_level_additionally_records_bank_activity() {
    let engine = ScenarioEngine::new();
    // Enough sequential traffic to revisit every bank: row conflicts force
    // precharges, which close (and therefore emit) row-open spans.
    let spec = ScenarioSpec::QueueDepth {
        name: "cmd".into(),
        system: rome_sim::MemorySystemKind::Hbm4,
        depths: vec![8],
        total_bytes: 1024 * 1024,
        granularity: 4096,
    };
    let (result, _spans, buffer) = engine.serve_recorded(&spec, TraceLevel::Commands);
    result.expect("recorded serve succeeds");
    assert!(buffer.events.iter().any(|e| e.kind.as_str() == "issue"));
    assert!(buffer.events.iter().any(|e| e.kind.as_str() == "row_open"));
}

#[test]
fn recording_never_perturbs_the_result() {
    let engine = ScenarioEngine::new();
    let spec = queue_depth_spec("bit");
    let plain = engine.serve(&spec).expect("plain serve succeeds");
    let (recorded, _, buffer) = engine.serve_recorded(&spec, TraceLevel::Commands);
    let recorded = recorded.expect("recorded serve succeeds");
    // The recorder is a pure observation: the payload is bit-identical to
    // the unrecorded serve of the same spec, byte-for-byte on the wire.
    assert_eq!(plain, recorded);
    assert!(!buffer.events.is_empty());
    let render = |r: &rome_server::spec::ScenarioResult| {
        rome_server::proto::render_response(Some(1), &spec, &Ok(r.clone()))
    };
    assert_eq!(render(&plain), render(&recorded));
}

#[test]
fn same_spec_yields_a_byte_identical_trace() {
    let engine = ScenarioEngine::new();
    let spec = queue_depth_spec("det");
    let (_, _, a) = engine.serve_recorded(&spec, TraceLevel::Commands);
    let (_, _, b) = engine.serve_recorded(&spec, TraceLevel::Commands);
    assert!(!a.events.is_empty());
    assert_eq!(a.events, b.events);
    assert_eq!(chrome_trace_json(&a.events), chrome_trace_json(&b.events));
}

#[test]
fn flight_box_reconstructs_a_panicked_request() {
    let mut engine = ScenarioEngine::new();
    engine.set_fault_plan(Some(
        FaultPlan::new(7).with_fault(0, EngineFault::panic_at(3)),
    ));
    let spec = queue_depth_spec("boom");
    let results = engine.serve_batch(std::slice::from_ref(&spec));
    let err = results[0].as_ref().unwrap_err();
    assert_eq!(err.code.as_str(), "panicked");
    let records = engine.flight_records();
    let last = records.last().expect("black box recorded the serve");
    assert_eq!(last.outcome, "panicked");
    assert_eq!(last.name, "boom");
    assert_eq!(last.spec_hash, spec_fingerprint(&spec));
    // The wire body carries the same reconstruction, hash as fixed hex.
    let body = engine.flight_json().emit();
    let parsed = json::parse(&body).expect("flight body is valid JSON");
    let recs = parsed.get("records").and_then(Json::as_arr).unwrap();
    let wire_last = recs.last().unwrap();
    assert_eq!(
        wire_last.get("spec_hash").and_then(Json::as_str).unwrap(),
        format!("{:016x}", spec_fingerprint(&spec))
    );
    assert_eq!(
        wire_last.get("outcome").and_then(Json::as_str).unwrap(),
        "panicked"
    );
}

#[test]
fn flight_box_is_a_bounded_ring() {
    let engine = ScenarioEngine::new();
    let spec = ScenarioSpec::Calibration {
        name: "c".into(),
        system: rome_sim::MemorySystemKind::Hbm4,
    };
    for _ in 0..70 {
        engine.serve_batch(std::slice::from_ref(&spec));
    }
    let records = engine.flight_records();
    assert_eq!(records.len(), 64, "ring retains the last 64 serves");
    // Seqs keep counting past eviction: the dump states what it is missing.
    assert_eq!(records.last().unwrap().seq, 69);
    let served = engine
        .flight_json()
        .get("served")
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(served, 70);
}

#[test]
fn stats_carry_uptime_and_a_monotone_sequence() {
    let engine = ScenarioEngine::new();
    let seq_of = |body: &Json| {
        body.get("counters")
            .and_then(|c| c.get("stats.seq"))
            .and_then(Json::as_u64)
            .unwrap()
    };
    let first = engine.stats_json();
    let second = engine.stats_json();
    assert_eq!(seq_of(&first) + 1, seq_of(&second));
    let uptime = first
        .get("gauges")
        .and_then(|g| g.get("server.uptime_s"))
        .and_then(Json::as_f64)
        .expect("uptime gauge present");
    assert!(uptime >= 0.0);
}

// ---- wire-level coverage through the connection loop ----

struct OneShotRead {
    payload: Option<Vec<u8>>,
}

impl ConnRead for OneShotRead {
    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.payload.take() {
            Some(bytes) => {
                assert!(bytes.len() <= buf.len(), "test payload fits one chunk");
                buf[..bytes.len()].copy_from_slice(&bytes);
                Ok(bytes.len())
            }
            None => Ok(0),
        }
    }
}

#[derive(Clone)]
struct CollectWrite {
    lines: Arc<Mutex<Vec<String>>>,
    shutdowns: Arc<AtomicUsize>,
}

impl CollectWrite {
    fn new() -> Self {
        CollectWrite {
            lines: Arc::new(Mutex::new(Vec::new())),
            shutdowns: Arc::new(AtomicUsize::new(0)),
        }
    }
}

impl ConnWrite for CollectWrite {
    fn write_frame(&mut self, line: &str) -> io::Result<()> {
        self.lines.lock().unwrap().push(line.to_string());
        Ok(())
    }

    fn shutdown(&mut self) {
        self.shutdowns.fetch_add(1, Ordering::AcqRel);
    }
}

fn serve_lines(engine: &ScenarioEngine, input: &str, config: &ConnConfig) -> Vec<String> {
    let reader = OneShotRead {
        payload: Some(input.as_bytes().to_vec()),
    };
    let sink = CollectWrite::new();
    let lines = Arc::clone(&sink.lines);
    handle_connection(engine, reader, sink, config);
    let collected = lines.lock().unwrap().clone();
    collected
}

const QD_SPEC: &str = "{\"scenario\":\"queue_depth\",\"name\":\"q\",\"system\":\"hbm4\",\
                       \"depths\":[8],\"total_bytes\":65536,\"granularity\":4096}";

#[test]
fn record_envelope_rides_events_on_an_otherwise_identical_response() {
    let engine = ScenarioEngine::new();
    let config = ConnConfig::default();
    let plain = serve_lines(
        &engine,
        &format!("{{\"id\":1,\"spec\":{QD_SPEC}}}\n"),
        &config,
    );
    let recorded = serve_lines(
        &engine,
        &format!(
            "{{\"id\":1,\"record\":{{\"level\":\"requests\",\"limit\":4}},\"spec\":{QD_SPEC}}}\n"
        ),
        &config,
    );
    assert_eq!(plain.len(), 1);
    assert_eq!(recorded.len(), 1);
    // The recorded frame is the plain frame plus one trailing "record"
    // member: strip it and the bytes match exactly.
    let parsed = json::parse(&recorded[0]).expect("recorded frame is valid JSON");
    let record = parsed.get("record").expect("record member present");
    let events = record.get("events").and_then(Json::as_arr).unwrap();
    assert_eq!(events.len(), 4, "limit keeps the most recent events");
    assert!(record.get("dropped").and_then(Json::as_u64).unwrap() > 0);
    let stripped = match parsed {
        Json::Obj(members) => {
            Json::Obj(members.into_iter().filter(|(k, _)| k != "record").collect())
        }
        other => other,
    };
    assert_eq!(stripped.emit(), plain[0]);
}

#[test]
fn flight_op_answers_over_the_wire() {
    let engine = ScenarioEngine::new();
    let config = ConnConfig::default();
    let input = format!("{{\"id\":1,\"spec\":{QD_SPEC}}}\n{{\"op\":\"flight\",\"id\":9}}\n");
    let lines = serve_lines(&engine, &input, &config);
    assert_eq!(lines.len(), 2);
    let flight = json::parse(&lines[1]).expect("flight frame is valid JSON");
    assert_eq!(flight.get("id").and_then(Json::as_u64), Some(9));
    assert_eq!(
        flight.get("scenario").and_then(Json::as_str),
        Some("flight")
    );
    let recs = flight.get("records").and_then(Json::as_arr).unwrap();
    assert_eq!(recs.len(), 1);
    assert_eq!(recs[0].get("outcome").and_then(Json::as_str), Some("ok"));
    assert_eq!(recs[0].get("name").and_then(Json::as_str), Some("q"));
}

#[test]
fn trace_out_writes_chrome_json_per_recorded_scenario() {
    let engine = ScenarioEngine::new();
    let path = std::env::temp_dir().join(format!(
        "rome_flight_recorder_test_{}.json",
        std::process::id()
    ));
    let config = ConnConfig {
        trace_out: Some(path.clone()),
        ..ConnConfig::default()
    };
    let input = format!("{{\"id\":1,\"record\":{{\"level\":\"commands\"}},\"spec\":{QD_SPEC}}}\n");
    let lines = serve_lines(&engine, &input, &config);
    assert_eq!(lines.len(), 1);
    let written = std::fs::read_to_string(&path).expect("--trace-out file written");
    let _ = std::fs::remove_file(&path);
    let parsed = json::parse(&written).expect("trace file is valid JSON");
    let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
    assert!(!events.is_empty());
    assert_eq!(
        parsed.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns")
    );
}

#[test]
fn invalid_record_levels_are_structured_errors() {
    let engine = ScenarioEngine::new();
    let config = ConnConfig::default();
    let input = format!("{{\"id\":1,\"record\":{{\"level\":\"nope\"}},\"spec\":{QD_SPEC}}}\n");
    let lines = serve_lines(&engine, &input, &config);
    assert_eq!(lines.len(), 1);
    assert!(
        lines[0].contains("\"code\":\"invalid_spec\""),
        "{}",
        lines[0]
    );
    assert!(lines[0].contains("record level"), "{}", lines[0]);
}
