//! The declarative scenario vocabulary: [`ScenarioSpec`] in,
//! [`ScenarioResult`] out.
//!
//! A spec names one experiment the repo already knows how to run — an
//! analytic figure sweep, a §V-A queue-depth sweep, a closed-loop workload
//! window sweep, a calibration point, a decode-TPOT point, or a sharded
//! multi-cube streaming run — as plain data. Specs and results round-trip
//! through the canonical JSON of [`crate::json`], one object per JSONL
//! line, which is the wire format of the `rome-server` CLI and the batch
//! form of [`crate::ScenarioEngine::serve_batch`].
//!
//! The serde derives on these types are for the eventual registry builds
//! (the vendored offline `serde` is a no-op); the hand-rolled
//! `to_json`/`from_json` codecs here are the canonical wire format either
//! way.

use serde::{Deserialize, Serialize};

use rome_engine::request::RequestKind;
use rome_engine::SimulationReport;
use rome_llm::model::ModelConfig;
use rome_llm::types::Stage;
use rome_sim::serving::ClosedLoopPoint;
use rome_sim::sweep::{Figure12Row, Figure13Row, ScenarioReport, SweepKind};
use rome_sim::tpot::TpotReport;
use rome_sim::{CalibrationResult, LbrReport, MemorySystemKind};
use rome_workload::trace::TraceRecord;
use rome_workload::{
    BurstSource, MoeRoutingConfig, MoeRoutingSource, MultiTenantMixSource, PrefillDecodeConfig,
    PrefillDecodeInterleaveSource, TenantSpec, TraceSource, TrafficSource,
};

use crate::json::Json;

/// A malformed or unsupported scenario spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(message: impl Into<String>) -> SpecError {
    SpecError(message.into())
}

/// One declarative scenario request. See the module docs; every variant
/// corresponds to a pre-existing direct-call experiment path, and the
/// regression suite pins that serving a spec reproduces that path
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioSpec {
    /// An analytic figure sweep — one [`rome_sim::ScenarioSet`] scenario
    /// (Figure 12 TPOT comparison or Figure 13 LBR series).
    Sweep {
        /// Scenario name (carried into the result).
        name: String,
        /// Which figure series to produce.
        kind: SweepKind,
        /// Context length of the sweep.
        seq_len: u64,
        /// Measured (warm-cached cycle simulation) vs nominal calibration.
        calibrated: bool,
    },
    /// The §V-A queue-depth streaming sweep on one single-channel
    /// controller.
    QueueDepth {
        /// Scenario name.
        name: String,
        /// Which memory system's controller to sweep.
        system: MemorySystemKind,
        /// Request-queue depths to sweep.
        depths: Vec<usize>,
        /// Bytes of the streaming-read workload.
        total_bytes: u64,
        /// Request granularity (32 for HBM4, the 4 KiB row for RoMe).
        granularity: u64,
    },
    /// A closed-loop workload window sweep on a sampled memory system
    /// (the `rome_sim::serving::closed_loop_sweep` path).
    ClosedLoop {
        /// Scenario name.
        name: String,
        /// Which memory system to drive.
        system: MemorySystemKind,
        /// Channels of the sampled system.
        channels: u16,
        /// Closed-loop windows to sweep.
        windows: Vec<usize>,
        /// Per-point time limit in ns.
        max_ns: u64,
        /// The traffic the closed-loop host feeds the system.
        workload: WorkloadSpec,
    },
    /// One warm-cached calibration point.
    Calibration {
        /// Scenario name.
        name: String,
        /// Which memory system to calibrate.
        system: MemorySystemKind,
    },
    /// One decode-TPOT point, reported for both memory systems.
    Tpot {
        /// Scenario name.
        name: String,
        /// Model name (`deepseek-v3`, `grok-1`, `llama-3`).
        model: String,
        /// Decode batch size.
        batch: u64,
        /// Context length.
        seq_len: u64,
        /// Measured (warm-cached) vs nominal calibration.
        calibrated: bool,
    },
    /// A sharded multi-cube streaming run: one multi-channel system per
    /// cube, cubes run in parallel threads, reports merged.
    MultiCube {
        /// Scenario name.
        name: String,
        /// Which memory system each cube instantiates.
        system: MemorySystemKind,
        /// Number of cubes (each its own `MultiChannelSystem`).
        cubes: u16,
        /// Channels per cube.
        channels_per_cube: u16,
        /// Sequential bytes streamed through each cube.
        bytes_per_cube: u64,
        /// Per-cube time limit in ns.
        max_ns: u64,
    },
}

/// The traffic of a [`ScenarioSpec::ClosedLoop`] scenario, lowered to a
/// streaming [`TrafficSource`] at serve time. Building is deterministic:
/// the same spec always yields the identical source (the seeds are in the
/// spec), which is what makes served results reproducible bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// MoE expert-routing skew ([`MoeRoutingSource`]).
    Moe(MoeRoutingConfig),
    /// Prefill/decode interleave ([`PrefillDecodeInterleaveSource`]).
    PrefillDecode(PrefillDecodeConfig),
    /// A multi-tenant mix of per-model decode streams
    /// ([`MultiTenantMixSource`]).
    MultiTenant(Vec<TenantDecl>),
    /// Periodic sequential bursts ([`BurstSource`]).
    Burst {
        /// Base address of the burst region.
        base: u64,
        /// Span the burst cursor wraps within.
        span: u64,
        /// Bytes per burst.
        bytes_per_burst: u64,
        /// Request granularity.
        granularity: u64,
        /// Arrival gap between bursts in ns.
        period_ns: u64,
        /// Number of bursts.
        bursts: u64,
        /// One write per this many requests (0 = reads only).
        write_period: u64,
    },
    /// Replay of an inline recorded trace ([`TraceSource`]).
    Trace(Vec<TraceRecord>),
}

/// A declarative tenant of a [`WorkloadSpec::MultiTenant`] mix: the
/// JSON-facing form of [`TenantSpec`] with the model referenced by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantDecl {
    /// Tenant name.
    pub name: String,
    /// Model name (`deepseek-v3`, `grok-1`, `llama-3`).
    pub model: String,
    /// Decode batch size.
    pub batch: u64,
    /// Context length.
    pub seq_len: u64,
    /// Arrival period between decode steps in ns.
    pub period_ns: u64,
    /// Decode steps to generate.
    pub steps: u64,
    /// Traffic scale divisor.
    pub scale: u64,
    /// Request granularity.
    pub granularity: u64,
}

impl TenantDecl {
    fn lower(&self) -> Result<TenantSpec, SpecError> {
        Ok(TenantSpec {
            name: self.name.clone(),
            model: model_by_name(&self.model)?,
            batch: self.batch,
            seq_len: self.seq_len,
            period_ns: self.period_ns,
            steps: self.steps,
            scale: self.scale,
            granularity: self.granularity,
        })
    }
}

/// Resolve a model name (case- and punctuation-insensitive) to its
/// [`ModelConfig`]. Accepts the paper names (`DeepSeek-V3`, `Grok 1`,
/// `Llama 3`) and the common short forms.
pub fn model_by_name(name: &str) -> Result<ModelConfig, SpecError> {
    let norm: String = name
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    for model in ModelConfig::paper_models() {
        let canonical: String = model
            .name
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        if norm == canonical {
            return Ok(model);
        }
    }
    match norm.as_str() {
        "deepseekv3" | "deepseek" => Ok(ModelConfig::deepseek_v3()),
        "grok1" | "grok" => Ok(ModelConfig::grok_1()),
        "llama3" | "llama" | "llama3405b" => Ok(ModelConfig::llama3_405b()),
        _ => Err(err(format!("unknown model {name:?}"))),
    }
}

impl WorkloadSpec {
    /// Lower the spec to a fresh, identically-seeded traffic source. Every
    /// call builds the same source; a closed-loop sweep calls once per
    /// window so every point sees the same traffic.
    pub fn build_source(&self) -> Result<Box<dyn TrafficSource + Send>, SpecError> {
        Ok(match self {
            WorkloadSpec::Moe(cfg) => Box::new(MoeRoutingSource::new(cfg.clone())),
            WorkloadSpec::PrefillDecode(cfg) => {
                Box::new(PrefillDecodeInterleaveSource::new(cfg.clone()))
            }
            WorkloadSpec::MultiTenant(tenants) => {
                if tenants.is_empty() {
                    return Err(err("multi-tenant workload needs at least one tenant"));
                }
                let specs = tenants
                    .iter()
                    .map(TenantDecl::lower)
                    .collect::<Result<Vec<_>, _>>()?;
                Box::new(MultiTenantMixSource::from_specs(&specs))
            }
            WorkloadSpec::Burst {
                base,
                span,
                bytes_per_burst,
                granularity,
                period_ns,
                bursts,
                write_period,
            } => Box::new(BurstSource::new(
                *base,
                *span,
                *bytes_per_burst,
                *granularity,
                *period_ns,
                *bursts,
                *write_period,
            )),
            WorkloadSpec::Trace(records) => Box::new(TraceSource::from_records(records)),
        })
    }
}

impl ScenarioSpec {
    /// The scenario's name.
    pub fn name(&self) -> &str {
        match self {
            ScenarioSpec::Sweep { name, .. }
            | ScenarioSpec::QueueDepth { name, .. }
            | ScenarioSpec::ClosedLoop { name, .. }
            | ScenarioSpec::Calibration { name, .. }
            | ScenarioSpec::Tpot { name, .. }
            | ScenarioSpec::MultiCube { name, .. } => name,
        }
    }

    /// The wire tag of the variant (`"sweep"`, `"closed_loop"`, …).
    pub fn tag(&self) -> &'static str {
        match self {
            ScenarioSpec::Sweep { .. } => "sweep",
            ScenarioSpec::QueueDepth { .. } => "queue_depth",
            ScenarioSpec::ClosedLoop { .. } => "closed_loop",
            ScenarioSpec::Calibration { .. } => "calibration",
            ScenarioSpec::Tpot { .. } => "tpot",
            ScenarioSpec::MultiCube { .. } => "multi_cube",
        }
    }

    /// A shape-based cost proxy for admission control, in abstract units
    /// roughly proportional to the number of simulated fragments the
    /// scenario will push through a run loop. Analytic scenarios (sweeps,
    /// TPOT) cost ~1; a calibration is a fixed sampled cycle-accurate run;
    /// loop scenarios scale with their traffic and point counts. The proxy
    /// is intentionally cheap and conservative — it is compared against
    /// `AdmissionConfig::max_batch_cost` before anything runs, so it must
    /// never itself be expensive or panic (all arithmetic saturates).
    pub fn estimated_cost(&self) -> u64 {
        match self {
            ScenarioSpec::Sweep { .. } | ScenarioSpec::Tpot { .. } => 1,
            ScenarioSpec::Calibration { .. } => 64,
            ScenarioSpec::QueueDepth {
                depths,
                total_bytes,
                granularity,
                ..
            } => {
                let fragments = *total_bytes / (*granularity).max(1);
                (depths.len() as u64).saturating_mul(fragments.max(1))
            }
            ScenarioSpec::ClosedLoop {
                windows, max_ns, ..
            } => {
                let horizon = (*max_ns / 1000).max(1);
                (windows.len() as u64).saturating_mul(horizon)
            }
            ScenarioSpec::MultiCube {
                cubes,
                bytes_per_cube,
                ..
            } => {
                let fragments = (bytes_per_cube / 4096).max(1);
                u64::from(*cubes).saturating_mul(fragments)
            }
        }
    }

    /// The specs a [`rome_sim::ScenarioSet`] batch corresponds to: the
    /// serving form of every scenario in the set. `serve_batch` over these
    /// (with `calibrated` matching the set's run mode) reproduces
    /// `set.run_nominal()` / `set.run_cached(…)` row for row.
    pub fn from_scenario_set(set: &rome_sim::ScenarioSet, calibrated: bool) -> Vec<ScenarioSpec> {
        set.scenarios
            .iter()
            .map(|s| ScenarioSpec::Sweep {
                name: s.name.clone(),
                kind: s.kind,
                seq_len: s.seq_len,
                calibrated,
            })
            .collect()
    }

    /// Encode as canonical JSON (one JSONL line via [`Json::emit`]).
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(&'static str, Json)> = vec![
            ("scenario", Json::from(self.tag())),
            ("name", Json::from(self.name())),
        ];
        match self {
            ScenarioSpec::Sweep {
                kind,
                seq_len,
                calibrated,
                ..
            } => {
                members.push(("kind", sweep_kind_to_json(*kind)));
                members.push(("seq_len", Json::from(*seq_len)));
                members.push(("calibrated", Json::from(*calibrated)));
            }
            ScenarioSpec::QueueDepth {
                system,
                depths,
                total_bytes,
                granularity,
                ..
            } => {
                members.push(("system", system_to_json(*system)));
                members.push((
                    "depths",
                    Json::Arr(depths.iter().map(|&d| Json::from(d)).collect()),
                ));
                members.push(("total_bytes", Json::from(*total_bytes)));
                members.push(("granularity", Json::from(*granularity)));
            }
            ScenarioSpec::ClosedLoop {
                system,
                channels,
                windows,
                max_ns,
                workload,
                ..
            } => {
                members.push(("system", system_to_json(*system)));
                members.push(("channels", Json::from(*channels as u64)));
                members.push((
                    "windows",
                    Json::Arr(windows.iter().map(|&w| Json::from(w)).collect()),
                ));
                members.push(("max_ns", Json::from(*max_ns)));
                members.push(("workload", workload.to_json()));
            }
            ScenarioSpec::Calibration { system, .. } => {
                members.push(("system", system_to_json(*system)));
            }
            ScenarioSpec::Tpot {
                model,
                batch,
                seq_len,
                calibrated,
                ..
            } => {
                members.push(("model", Json::from(model.as_str())));
                members.push(("batch", Json::from(*batch)));
                members.push(("seq_len", Json::from(*seq_len)));
                members.push(("calibrated", Json::from(*calibrated)));
            }
            ScenarioSpec::MultiCube {
                system,
                cubes,
                channels_per_cube,
                bytes_per_cube,
                max_ns,
                ..
            } => {
                members.push(("system", system_to_json(*system)));
                members.push(("cubes", Json::from(*cubes as u64)));
                members.push(("channels_per_cube", Json::from(*channels_per_cube as u64)));
                members.push(("bytes_per_cube", Json::from(*bytes_per_cube)));
                members.push(("max_ns", Json::from(*max_ns)));
            }
        }
        Json::obj(members)
    }

    /// Decode from the JSON of [`ScenarioSpec::to_json`].
    pub fn from_json(value: &Json) -> Result<ScenarioSpec, SpecError> {
        let tag = req_str(value, "scenario")?;
        let name = req_str(value, "name")?.to_string();
        match tag {
            "sweep" => Ok(ScenarioSpec::Sweep {
                name,
                kind: sweep_kind_from_json(req(value, "kind")?)?,
                seq_len: req_u64(value, "seq_len")?,
                calibrated: opt_bool(value, "calibrated", false)?,
            }),
            "queue_depth" => Ok(ScenarioSpec::QueueDepth {
                name,
                system: system_from_json(req(value, "system")?)?,
                depths: req_arr(value, "depths")?
                    .iter()
                    .map(|d| d.as_usize().ok_or_else(|| err("bad depth")))
                    .collect::<Result<Vec<_>, _>>()?,
                total_bytes: req_u64(value, "total_bytes")?,
                granularity: req_u64(value, "granularity")?,
            }),
            "closed_loop" => Ok(ScenarioSpec::ClosedLoop {
                name,
                system: system_from_json(req(value, "system")?)?,
                channels: req_u16(value, "channels")?,
                windows: req_arr(value, "windows")?
                    .iter()
                    .map(|w| w.as_usize().ok_or_else(|| err("bad window")))
                    .collect::<Result<Vec<_>, _>>()?,
                max_ns: req_u64(value, "max_ns")?,
                workload: WorkloadSpec::from_json(req(value, "workload")?)?,
            }),
            "calibration" => Ok(ScenarioSpec::Calibration {
                name,
                system: system_from_json(req(value, "system")?)?,
            }),
            "tpot" => Ok(ScenarioSpec::Tpot {
                name,
                model: req_str(value, "model")?.to_string(),
                batch: req_u64(value, "batch")?,
                seq_len: req_u64(value, "seq_len")?,
                calibrated: opt_bool(value, "calibrated", false)?,
            }),
            "multi_cube" => Ok(ScenarioSpec::MultiCube {
                name,
                system: system_from_json(req(value, "system")?)?,
                cubes: req_u16(value, "cubes")?,
                channels_per_cube: req_u16(value, "channels_per_cube")?,
                bytes_per_cube: req_u64(value, "bytes_per_cube")?,
                max_ns: req_u64(value, "max_ns")?,
            }),
            other => Err(err(format!("unknown scenario tag {other:?}"))),
        }
    }
}

impl WorkloadSpec {
    /// Encode as canonical JSON.
    pub fn to_json(&self) -> Json {
        match self {
            WorkloadSpec::Moe(cfg) => Json::obj([
                ("type", Json::from("moe")),
                ("experts", Json::from(cfg.experts as u64)),
                ("top_k", Json::from(cfg.top_k as u64)),
                ("expert_bytes", Json::from(cfg.expert_bytes)),
                ("layers", Json::from(cfg.layers as u64)),
                ("tokens_per_step", Json::from(cfg.tokens_per_step)),
                ("steps", Json::from(cfg.steps)),
                ("step_period_ns", Json::from(cfg.step_period_ns)),
                ("granularity", Json::from(cfg.granularity)),
                ("base", Json::from(cfg.base)),
                ("zipf_exponent", Json::from(cfg.zipf_exponent)),
                ("seed", Json::from(cfg.seed)),
            ]),
            WorkloadSpec::PrefillDecode(cfg) => Json::obj([
                ("type", Json::from("prefill_decode")),
                ("prefill_bytes", Json::from(cfg.prefill_bytes)),
                ("prefill_granularity", Json::from(cfg.prefill_granularity)),
                ("decode_bytes", Json::from(cfg.decode_bytes)),
                ("decode_granularity", Json::from(cfg.decode_granularity)),
                (
                    "decode_steps_per_prefill",
                    Json::from(cfg.decode_steps_per_prefill as u64),
                ),
                ("rounds", Json::from(cfg.rounds as u64)),
                ("phase_period_ns", Json::from(cfg.phase_period_ns)),
                ("weight_base", Json::from(cfg.weight_base)),
                ("weight_span", Json::from(cfg.weight_span)),
                ("kv_base", Json::from(cfg.kv_base)),
                ("kv_span", Json::from(cfg.kv_span)),
                ("kv_write_period", Json::from(cfg.kv_write_period)),
                ("seed", Json::from(cfg.seed)),
            ]),
            WorkloadSpec::MultiTenant(tenants) => Json::obj([
                ("type", Json::from("multi_tenant")),
                (
                    "tenants",
                    Json::Arr(
                        tenants
                            .iter()
                            .map(|t| {
                                Json::obj([
                                    ("name", Json::from(t.name.as_str())),
                                    ("model", Json::from(t.model.as_str())),
                                    ("batch", Json::from(t.batch)),
                                    ("seq_len", Json::from(t.seq_len)),
                                    ("period_ns", Json::from(t.period_ns)),
                                    ("steps", Json::from(t.steps)),
                                    ("scale", Json::from(t.scale)),
                                    ("granularity", Json::from(t.granularity)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            WorkloadSpec::Burst {
                base,
                span,
                bytes_per_burst,
                granularity,
                period_ns,
                bursts,
                write_period,
            } => Json::obj([
                ("type", Json::from("burst")),
                ("base", Json::from(*base)),
                ("span", Json::from(*span)),
                ("bytes_per_burst", Json::from(*bytes_per_burst)),
                ("granularity", Json::from(*granularity)),
                ("period_ns", Json::from(*period_ns)),
                ("bursts", Json::from(*bursts)),
                ("write_period", Json::from(*write_period)),
            ]),
            WorkloadSpec::Trace(records) => Json::obj([
                ("type", Json::from("trace")),
                (
                    "records",
                    Json::Arr(records.iter().map(trace_record_to_json).collect()),
                ),
            ]),
        }
    }

    /// Decode from the JSON of [`WorkloadSpec::to_json`].
    pub fn from_json(value: &Json) -> Result<WorkloadSpec, SpecError> {
        match req_str(value, "type")? {
            "moe" => Ok(WorkloadSpec::Moe(MoeRoutingConfig {
                experts: req_u64(value, "experts")? as u32,
                top_k: req_u64(value, "top_k")? as u32,
                expert_bytes: req_u64(value, "expert_bytes")?,
                layers: req_u64(value, "layers")? as u32,
                tokens_per_step: req_u64(value, "tokens_per_step")?,
                steps: req_u64(value, "steps")?,
                step_period_ns: req_u64(value, "step_period_ns")?,
                granularity: req_u64(value, "granularity")?,
                base: req_u64(value, "base")?,
                zipf_exponent: req_f64(value, "zipf_exponent")?,
                seed: req_u64(value, "seed")?,
            })),
            "prefill_decode" => Ok(WorkloadSpec::PrefillDecode(PrefillDecodeConfig {
                prefill_bytes: req_u64(value, "prefill_bytes")?,
                prefill_granularity: req_u64(value, "prefill_granularity")?,
                decode_bytes: req_u64(value, "decode_bytes")?,
                decode_granularity: req_u64(value, "decode_granularity")?,
                decode_steps_per_prefill: req_u64(value, "decode_steps_per_prefill")? as u32,
                rounds: req_u64(value, "rounds")? as u32,
                phase_period_ns: req_u64(value, "phase_period_ns")?,
                weight_base: req_u64(value, "weight_base")?,
                weight_span: req_u64(value, "weight_span")?,
                kv_base: req_u64(value, "kv_base")?,
                kv_span: req_u64(value, "kv_span")?,
                kv_write_period: req_u64(value, "kv_write_period")?,
                seed: req_u64(value, "seed")?,
            })),
            "multi_tenant" => Ok(WorkloadSpec::MultiTenant(
                req_arr(value, "tenants")?
                    .iter()
                    .map(|t| {
                        Ok(TenantDecl {
                            name: req_str(t, "name")?.to_string(),
                            model: req_str(t, "model")?.to_string(),
                            batch: req_u64(t, "batch")?,
                            seq_len: req_u64(t, "seq_len")?,
                            period_ns: req_u64(t, "period_ns")?,
                            steps: req_u64(t, "steps")?,
                            scale: req_u64(t, "scale")?,
                            granularity: req_u64(t, "granularity")?,
                        })
                    })
                    .collect::<Result<Vec<_>, SpecError>>()?,
            )),
            "burst" => Ok(WorkloadSpec::Burst {
                base: req_u64(value, "base")?,
                span: req_u64(value, "span")?,
                bytes_per_burst: req_u64(value, "bytes_per_burst")?,
                granularity: req_u64(value, "granularity")?,
                period_ns: req_u64(value, "period_ns")?,
                bursts: req_u64(value, "bursts")?,
                write_period: req_u64(value, "write_period")?,
            }),
            "trace" => Ok(WorkloadSpec::Trace(
                req_arr(value, "records")?
                    .iter()
                    .map(trace_record_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            other => Err(err(format!("unknown workload type {other:?}"))),
        }
    }
}

/// One served scenario's outcome: the spec's name and tag plus the payload
/// (the unified [`SimulationReport`]s and domain statistics of the
/// underlying experiment path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Name of the spec this answers.
    pub name: String,
    /// The result payload.
    pub payload: ResultPayload,
}

/// The per-variant payload of a [`ScenarioResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResultPayload {
    /// Figure sweep rows (exactly one of the row kinds populated).
    Sweep(ScenarioReport),
    /// Queue-depth rows, one unified report per depth.
    QueueDepth(Vec<QueueDepthRow>),
    /// Closed-loop latency/bandwidth points, one per window.
    ClosedLoop(Vec<ClosedLoopPoint>),
    /// A calibration point.
    Calibration(CalibrationResult),
    /// Decode TPOT on both memory systems.
    Tpot {
        /// The conventional HBM4 system's report.
        hbm4: TpotReport,
        /// The RoMe system's report.
        rome: TpotReport,
    },
    /// Sharded multi-cube run: per-cube reports plus the merged summary.
    /// Boxed: the embedded reports carry inline latency histograms, which
    /// would otherwise make this variant dwarf the others.
    MultiCube(Box<MultiCubeReport>),
}

/// One row of a queue-depth sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueDepthRow {
    /// Request-queue depth of this row.
    pub depth: usize,
    /// The unified single-channel report at that depth.
    pub report: SimulationReport,
}

/// The result of a sharded multi-cube run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiCubeReport {
    /// Reports merged across cubes ([`rome_engine::merge_reports`]).
    pub merged: SimulationReport,
    /// Per-cube reports, in cube order.
    pub per_cube: Vec<SimulationReport>,
}

impl ResultPayload {
    /// The wire tag of the payload variant (matches the spec tags).
    pub fn tag(&self) -> &'static str {
        match self {
            ResultPayload::Sweep(_) => "sweep",
            ResultPayload::QueueDepth(_) => "queue_depth",
            ResultPayload::ClosedLoop(_) => "closed_loop",
            ResultPayload::Calibration(_) => "calibration",
            ResultPayload::Tpot { .. } => "tpot",
            ResultPayload::MultiCube(_) => "multi_cube",
        }
    }
}

impl ScenarioResult {
    /// Encode as canonical JSON (one JSONL line via [`Json::emit`]).
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(&'static str, Json)> = vec![
            ("name", Json::from(self.name.as_str())),
            ("scenario", Json::from(self.payload.tag())),
        ];
        match &self.payload {
            ResultPayload::Sweep(report) => {
                members.push(("kind", sweep_kind_to_json(report.kind)));
                members.push(("seq_len", Json::from(report.seq_len)));
                if let Some(rows) = &report.figure12 {
                    members.push((
                        "figure12",
                        Json::Arr(rows.iter().map(figure12_to_json).collect()),
                    ));
                }
                if let Some(rows) = &report.figure13 {
                    members.push((
                        "figure13",
                        Json::Arr(rows.iter().map(figure13_to_json).collect()),
                    ));
                }
            }
            ResultPayload::QueueDepth(rows) => {
                members.push((
                    "rows",
                    Json::Arr(
                        rows.iter()
                            .map(|r| {
                                Json::obj([
                                    ("depth", Json::from(r.depth)),
                                    ("report", report_to_json(&r.report)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            ResultPayload::ClosedLoop(points) => {
                members.push((
                    "points",
                    Json::Arr(points.iter().map(closed_loop_point_to_json).collect()),
                ));
            }
            ResultPayload::Calibration(c) => {
                members.push((
                    "calibration",
                    Json::obj([
                        ("bandwidth_utilization", Json::from(c.bandwidth_utilization)),
                        ("activates_per_kib", Json::from(c.activates_per_kib)),
                        ("mean_read_latency_ns", Json::from(c.mean_read_latency_ns)),
                    ]),
                ));
            }
            ResultPayload::Tpot { hbm4, rome } => {
                members.push(("hbm4", tpot_to_json(hbm4)));
                members.push(("rome", tpot_to_json(rome)));
            }
            ResultPayload::MultiCube(report) => {
                members.push(("merged", report_to_json(&report.merged)));
                members.push((
                    "per_cube",
                    Json::Arr(report.per_cube.iter().map(report_to_json).collect()),
                ));
            }
        }
        Json::obj(members)
    }
}

// ---- field helpers ----

fn req<'a>(value: &'a Json, key: &str) -> Result<&'a Json, SpecError> {
    value
        .get(key)
        .ok_or_else(|| err(format!("missing {key:?}")))
}

fn req_str<'a>(value: &'a Json, key: &str) -> Result<&'a str, SpecError> {
    req(value, key)?
        .as_str()
        .ok_or_else(|| err(format!("{key:?} must be a string")))
}

fn req_u64(value: &Json, key: &str) -> Result<u64, SpecError> {
    req(value, key)?
        .as_u64()
        .ok_or_else(|| err(format!("{key:?} must be a non-negative integer")))
}

fn req_u16(value: &Json, key: &str) -> Result<u16, SpecError> {
    req_u64(value, key)?
        .try_into()
        .map_err(|_| err(format!("{key:?} must fit 16 bits")))
}

fn req_f64(value: &Json, key: &str) -> Result<f64, SpecError> {
    req(value, key)?
        .as_f64()
        .ok_or_else(|| err(format!("{key:?} must be a number")))
}

fn req_arr<'a>(value: &'a Json, key: &str) -> Result<&'a [Json], SpecError> {
    req(value, key)?
        .as_arr()
        .ok_or_else(|| err(format!("{key:?} must be an array")))
}

fn opt_bool(value: &Json, key: &str, default: bool) -> Result<bool, SpecError> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| err(format!("{key:?} must be a bool"))),
    }
}

// ---- leaf codecs ----

fn system_to_json(kind: MemorySystemKind) -> Json {
    Json::from(match kind {
        MemorySystemKind::Hbm4 => "hbm4",
        MemorySystemKind::Rome => "rome",
        MemorySystemKind::RomeIsoBandwidth => "rome_iso",
    })
}

fn system_from_json(value: &Json) -> Result<MemorySystemKind, SpecError> {
    match value.as_str() {
        Some("hbm4") => Ok(MemorySystemKind::Hbm4),
        Some("rome") => Ok(MemorySystemKind::Rome),
        Some("rome_iso") => Ok(MemorySystemKind::RomeIsoBandwidth),
        _ => Err(err("system must be \"hbm4\", \"rome\", or \"rome_iso\"")),
    }
}

fn sweep_kind_to_json(kind: SweepKind) -> Json {
    Json::from(match kind {
        SweepKind::Figure12 => "figure12",
        SweepKind::Figure13 => "figure13",
    })
}

fn sweep_kind_from_json(value: &Json) -> Result<SweepKind, SpecError> {
    match value.as_str() {
        Some("figure12") => Ok(SweepKind::Figure12),
        Some("figure13") => Ok(SweepKind::Figure13),
        _ => Err(err("kind must be \"figure12\" or \"figure13\"")),
    }
}

fn trace_record_to_json(r: &TraceRecord) -> Json {
    Json::obj([
        ("arrival", Json::from(r.arrival)),
        (
            "kind",
            Json::from(match r.kind {
                RequestKind::Read => "read",
                RequestKind::Write => "write",
            }),
        ),
        ("addr", Json::from(r.addr)),
        ("bytes", Json::from(r.bytes)),
        ("tag", Json::from(r.tag as u64)),
    ])
}

fn trace_record_from_json(value: &Json) -> Result<TraceRecord, SpecError> {
    let bytes = req_u64(value, "bytes")?;
    if bytes == 0 {
        // The JSONL trace parser enforces the same rule; a zero-byte
        // request would inject but never complete, stalling a closed loop.
        return Err(err("record bytes must be non-zero"));
    }
    Ok(TraceRecord {
        arrival: req_u64(value, "arrival")?,
        kind: match req_str(value, "kind")? {
            "read" => RequestKind::Read,
            "write" => RequestKind::Write,
            _ => return Err(err("record kind must be \"read\" or \"write\"")),
        },
        addr: req_u64(value, "addr")?,
        bytes,
        tag: req_u16(value, "tag")?,
    })
}

/// Encode a unified [`SimulationReport`]. The `aborted` key is emitted only
/// when the run was actually cut short, and the `read_latency` percentile
/// object only when the run recorded a sim-time latency histogram (sampling
/// on), so every report of an unbounded, unsampled run stays byte-identical
/// to the pre-budget, pre-telemetry encoding.
pub fn report_to_json(r: &SimulationReport) -> Json {
    let mut members = vec![
        ("requests_completed", Json::from(r.requests_completed)),
        ("bytes_read", Json::from(r.bytes_read)),
        ("bytes_written", Json::from(r.bytes_written)),
        ("bytes_transferred", Json::from(r.bytes_transferred)),
        ("finish_time", Json::from(r.finish_time)),
        (
            "achieved_bandwidth_gbps",
            Json::from(r.achieved_bandwidth_gbps),
        ),
        ("mean_read_latency", Json::from(r.mean_read_latency)),
        ("row_hit_rate", Json::from(r.row_hit_rate)),
        ("activates_per_kib", Json::from(r.activates_per_kib)),
    ];
    if let Some(reason) = r.aborted {
        members.push(("aborted", Json::from(reason.as_str())));
    }
    if !r.read_latency.is_empty() {
        // Sim-time percentiles: deterministic, bit-identical run to run.
        members.push((
            "read_latency",
            Json::obj([
                ("count", Json::from(r.read_latency.count())),
                ("max", Json::from(r.read_latency.max())),
                ("p50", Json::from(r.read_latency.p50())),
                ("p95", Json::from(r.read_latency.p95())),
                ("p99", Json::from(r.read_latency.p99())),
            ]),
        ));
    }
    Json::obj(members)
}

fn closed_loop_point_to_json(p: &ClosedLoopPoint) -> Json {
    let mut members = vec![
        ("window", Json::from(p.window)),
        ("injected", Json::from(p.injected)),
        ("completed", Json::from(p.completed)),
        ("bytes", Json::from(p.bytes)),
        ("achieved_gbps", Json::from(p.achieved_gbps)),
        ("mean_latency_ns", Json::from(p.mean_latency_ns)),
        ("max_latency_ns", Json::from(p.max_latency_ns)),
        ("stop_ns", Json::from(p.stop_ns)),
    ];
    if let Some(reason) = p.aborted {
        members.push(("aborted", Json::from(reason.as_str())));
    }
    Json::obj(members)
}

fn lbr_to_json(l: &LbrReport) -> Json {
    Json::obj([
        ("attention", Json::from(l.attention)),
        ("ffn", Json::from(l.ffn)),
        ("overall", Json::from(l.overall)),
    ])
}

fn tpot_to_json(t: &TpotReport) -> Json {
    Json::obj([
        ("model", Json::from(t.model.as_str())),
        (
            "stage",
            Json::from(match t.stage {
                Stage::Prefill => "prefill",
                Stage::Decode => "decode",
            }),
        ),
        ("batch", Json::from(t.batch)),
        ("seq_len", Json::from(t.seq_len)),
        ("memory_system", Json::from(t.memory_system.as_str())),
        ("tpot_ms", Json::from(t.tpot_ms)),
        ("memory_bound_ms", Json::from(t.memory_bound_ms)),
        ("compute_bound_ms", Json::from(t.compute_bound_ms)),
        ("communication_ms", Json::from(t.communication_ms)),
        ("lbr", lbr_to_json(&t.lbr)),
    ])
}

fn figure12_to_json(r: &Figure12Row) -> Json {
    Json::obj([
        ("model", Json::from(r.model.as_str())),
        ("batch", Json::from(r.batch)),
        ("tpot_hbm4_ms", Json::from(r.tpot_hbm4_ms)),
        ("tpot_rome_ms", Json::from(r.tpot_rome_ms)),
        ("normalized_rome", Json::from(r.normalized_rome)),
    ])
}

fn figure13_to_json(r: &Figure13Row) -> Json {
    Json::obj([
        ("model", Json::from(r.model.as_str())),
        ("batch", Json::from(r.batch)),
        ("lbr_attention", Json::from(r.lbr_attention)),
        ("lbr_ffn", Json::from(r.lbr_ffn)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    pub(crate) fn sample_specs() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::Sweep {
                name: "fig13-8k".into(),
                kind: SweepKind::Figure13,
                seq_len: 8192,
                calibrated: false,
            },
            ScenarioSpec::QueueDepth {
                name: "qd-rome".into(),
                system: MemorySystemKind::Rome,
                depths: vec![1, 2, 4],
                total_bytes: 256 * 1024,
                granularity: 4096,
            },
            ScenarioSpec::ClosedLoop {
                name: "moe-sweep".into(),
                system: MemorySystemKind::Hbm4,
                channels: 4,
                windows: vec![1, 8],
                max_ns: 10_000_000,
                workload: WorkloadSpec::Moe(MoeRoutingConfig {
                    experts: 8,
                    top_k: 2,
                    expert_bytes: 4096,
                    layers: 2,
                    tokens_per_step: 8,
                    steps: 2,
                    step_period_ns: 0,
                    granularity: 4096,
                    base: 0,
                    zipf_exponent: 1.0,
                    seed: 11,
                }),
            },
            ScenarioSpec::ClosedLoop {
                name: "trace-replay".into(),
                system: MemorySystemKind::Rome,
                channels: 2,
                windows: vec![2],
                max_ns: 10_000_000,
                workload: WorkloadSpec::Trace(vec![
                    TraceRecord {
                        arrival: 0,
                        kind: RequestKind::Read,
                        addr: 0,
                        bytes: 4096,
                        tag: 1,
                    },
                    TraceRecord {
                        arrival: 64,
                        kind: RequestKind::Write,
                        addr: 8192,
                        bytes: 4096,
                        tag: 2,
                    },
                ]),
            },
            ScenarioSpec::Calibration {
                name: "cal-hbm4".into(),
                system: MemorySystemKind::Hbm4,
            },
            ScenarioSpec::Tpot {
                name: "tpot-grok-64".into(),
                model: "grok-1".into(),
                batch: 64,
                seq_len: 8192,
                calibrated: false,
            },
            ScenarioSpec::MultiCube {
                name: "cubes".into(),
                system: MemorySystemKind::Rome,
                cubes: 2,
                channels_per_cube: 4,
                bytes_per_cube: 256 * 1024,
                max_ns: 5_000_000,
            },
        ]
    }

    #[test]
    fn specs_round_trip_through_canonical_json() {
        for spec in sample_specs() {
            let line = spec.to_json().emit();
            let parsed = ScenarioSpec::from_json(&parse(&line).unwrap()).unwrap();
            assert_eq!(parsed, spec, "round-trip changed the spec: {line}");
            // Canonical emission is a fixed point.
            assert_eq!(parsed.to_json().emit(), line);
        }
    }

    #[test]
    fn workloads_round_trip_including_tenants_and_bursts() {
        let workloads = vec![
            WorkloadSpec::PrefillDecode(PrefillDecodeConfig {
                prefill_bytes: 4 * 4096,
                prefill_granularity: 4096,
                decode_bytes: 8 * 32,
                decode_granularity: 32,
                decode_steps_per_prefill: 2,
                rounds: 2,
                phase_period_ns: 1_000,
                weight_base: 0,
                weight_span: 16 * 4096,
                kv_base: 1 << 20,
                kv_span: 1 << 16,
                kv_write_period: 4,
                seed: 3,
            }),
            WorkloadSpec::MultiTenant(vec![TenantDecl {
                name: "grok-b16".into(),
                model: "grok-1".into(),
                batch: 16,
                seq_len: 4096,
                period_ns: 2_000,
                steps: 2,
                scale: 1 << 16,
                granularity: 4096,
            }]),
            WorkloadSpec::Burst {
                base: 0,
                span: 1 << 20,
                bytes_per_burst: 32 * 1024,
                granularity: 4096,
                period_ns: 500,
                bursts: 3,
                write_period: 4,
            },
        ];
        for w in workloads {
            let line = w.to_json().emit();
            let parsed = WorkloadSpec::from_json(&parse(&line).unwrap()).unwrap();
            assert_eq!(parsed, w, "round-trip changed the workload: {line}");
            parsed.build_source().expect("workload must lower");
        }
    }

    #[test]
    fn model_names_resolve_loosely() {
        assert_eq!(model_by_name("DeepSeek-V3").unwrap().name, "DeepSeek-V3");
        assert_eq!(model_by_name("deepseek_v3").unwrap().name, "DeepSeek-V3");
        assert_eq!(model_by_name("grok 1").unwrap().name, "Grok 1");
        assert_eq!(model_by_name("llama-3").unwrap().name, "Llama 3");
        assert!(model_by_name("gpt-2").is_err());
    }

    #[test]
    fn malformed_specs_report_what_is_missing() {
        let cases = [
            ("{}", "missing \"scenario\""),
            (
                "{\"scenario\":\"sweep\",\"name\":\"x\"}",
                "missing \"kind\"",
            ),
            (
                "{\"scenario\":\"warp\",\"name\":\"x\"}",
                "unknown scenario tag",
            ),
            (
                "{\"scenario\":\"calibration\",\"name\":\"x\",\"system\":\"ddr4\"}",
                "system must be",
            ),
        ];
        for (line, needle) in cases {
            let e = ScenarioSpec::from_json(&parse(line).unwrap()).unwrap_err();
            assert!(e.0.contains(needle), "{line}: {e}");
        }
    }

    #[test]
    fn scenario_set_lowers_to_sweep_specs() {
        let set = rome_sim::ScenarioSet::paper_default();
        let specs = ScenarioSpec::from_scenario_set(&set, false);
        assert_eq!(specs.len(), set.len());
        assert!(matches!(
            &specs[0],
            ScenarioSpec::Sweep {
                kind: SweepKind::Figure12,
                seq_len: 8192,
                calibrated: false,
                ..
            }
        ));
    }
}
