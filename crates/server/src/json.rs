//! Minimal deterministic JSON for the scenario wire format.
//!
//! The workspace builds offline against a no-op `serde` stand-in (see
//! `vendor/serde`), so the scenario server carries its own small JSON value
//! type: a recursive-descent parser and a *canonical* compact emitter.
//! Determinism is the point — the CLI and `serve_batch` paths must produce
//! byte-identical JSONL — so objects preserve insertion order, numbers emit
//! via Rust's shortest-round-trip float formatting (integral values print
//! without a fraction), and the emitter writes no whitespace. Swapping the
//! vendored `serde` for the real crate later replaces none of this: the
//! wire format stays canonical either way.

use std::fmt::Write as _;

/// A JSON value. Object members keep insertion order (deterministic
/// emission); numbers are stored as `f64` (every quantity serialized by the
/// scenario formats fits 53 bits).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integral values emit without a fraction).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs (insertion order kept).
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// The member `key` of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) if v.is_finite() => Some(*v),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        (v >= 0.0 && v.fract() == 0.0 && v <= (1u64 << 53) as f64).then_some(v as u64)
    }

    /// The value as an exact `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Canonical compact rendering (no whitespace, insertion-order members,
    /// shortest-round-trip numbers). Non-finite numbers render as `null`.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if v.is_finite() {
                    // Rust's shortest representation that parses back to the
                    // same f64; integral values print without a fraction.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => emit_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        debug_assert!(v <= 1 << 53, "quantity exceeds exact f64 range: {v}");
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A malformed JSON document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            self.expect(b',')?;
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(members));
            }
            self.expect(b',')?;
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not expected in this wire
                            // format; map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slices
                    // at char boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let c = match s.chars().next() {
                        Some(c) => c,
                        // Unreachable (`get` above returned Some), but the
                        // serve path never panics on malformed input.
                        None => return Err(self.err("bad UTF-8")),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        // The matched bytes are all ASCII, but the serve path never panics
        // on malformed input, so the impossible branch is an error too.
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_emit_round_trips_canonically() {
        let text = r#"{"name":"a b","n":42,"x":0.88,"flag":true,"none":null,"arr":[1,2.5,"s"],"nested":{"k":[{"deep":-7}]}}"#;
        let value = parse(text).unwrap();
        assert_eq!(value.emit(), text, "canonical input must round-trip");
        assert_eq!(parse(&value.emit()).unwrap(), value);
        assert_eq!(value.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(value.get("x").unwrap().as_f64(), Some(0.88));
        assert_eq!(value.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(value.get("name").unwrap().as_str(), Some("a b"));
        assert_eq!(value.get("arr").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn whitespace_and_escapes_parse_and_normalize() {
        let value = parse(" { \"k\" : \"a\\n\\\"b\\u0041\" , \"v\" : [ ] } ").unwrap();
        assert_eq!(value.get("k").unwrap().as_str(), Some("a\n\"bA"));
        assert_eq!(value.emit(), "{\"k\":\"a\\n\\\"bA\",\"v\":[]}");
    }

    #[test]
    fn integral_floats_emit_without_a_fraction() {
        assert_eq!(Json::from(4096u64).emit(), "4096");
        assert_eq!(Json::from(2.5f64).emit(), "2.5");
        assert_eq!(Json::from(f64::NAN).emit(), "null");
        // Shortest-round-trip float formatting is stable.
        let v = 14.501_4_f64;
        assert_eq!(parse(&Json::from(v).emit()).unwrap().as_f64(), Some(v));
    }

    #[test]
    fn malformed_documents_error_with_offsets() {
        for text in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(text).is_err(), "{text:?} must not parse");
        }
        assert!(parse("{\"a\":1}x")
            .unwrap_err()
            .message
            .contains("trailing"));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("2.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(parse("123").unwrap().as_usize(), Some(123));
    }
}
