//! The socket service front end: many persistent connections, one warm
//! engine.
//!
//! [`SocketServer`] binds a std `TcpListener` and runs a bounded
//! thread-per-connection model (the offline build has no async runtime;
//! blocking threads with deadlines everywhere keep the byte-identity tests
//! meaningful). Each accepted connection runs [`crate::conn`]'s hardened
//! loop against the shared [`ScenarioEngine`], so engine admission
//! (`max_in_flight`, batch limits) gates socket traffic exactly as it
//! gates in-process batches, and connection-count admission
//! ([`crate::engine::AdmissionConfig::max_connections`]) extends the same
//! model to the transport: an over-limit connect receives one structured
//! `overloaded` frame with a retry hint and is closed — never silently
//! dropped, never queued unboundedly.
//!
//! **Panic isolation.** Scenario panics never escape
//! [`ScenarioEngine::serve_batch`]; anything else that unwinds a
//! connection thread is caught here, the peer gets a best-effort
//! `internal` error frame, and only that connection dies — the engine, its
//! calibration cache, and every other connection survive (pinned by the
//! fault-injection suite).
//!
//! **Graceful drain.** [`ServerHandle::drain`] starts the engine's
//! [`rome_engine::DrainSignal`] with a grace period and wakes the accept
//! loop: new connects are refused with a permanent `unavailable` frame,
//! established connections finish their in-flight request (or abort it as
//! a `drained` partial when the grace expires — PR 6 semantics) and are
//! notified and closed, and [`SocketServer::run`] returns the final
//! [`NetStats`] once every connection thread has joined. Nothing is
//! dropped without a structured answer.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rome_telemetry::{Counter, Registry};

use crate::conn::{handle_connection, split_tcp, ConnClose, ConnConfig};
use crate::engine::ScenarioEngine;
use crate::error::ServerError;
use crate::proto;

/// Knobs of the socket front end beyond the per-connection ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Per-connection configuration (timeouts, queue bounds).
    pub conn: ConnConfig,
    /// Accept-loop poll quantum: how long the listener waits between
    /// checks of the drain signal. Bounds drain latency on an idle server.
    pub accept_poll: Duration,
    /// Grace period handed to the engine's drain signal when the binary's
    /// shutdown path (stdin EOF) initiates the drain.
    pub drain_grace: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            conn: ConnConfig::default(),
            accept_poll: Duration::from_millis(25),
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// Cached handles into the engine's [`rome_telemetry::Registry`]
/// (`net.*` names), one per thing the server counts. Because the backing
/// counters live in the registry, a `{"op":"stats"}` frame or a
/// `--stats-interval` snapshot sees them *live, mid-run* — and
/// [`Counters::snapshot`] converts the same live values into the legacy
/// [`NetStats`] struct the run/handle APIs return.
#[derive(Debug)]
struct Counters {
    accepted: Arc<Counter>,
    rejected_overloaded: Arc<Counter>,
    rejected_draining: Arc<Counter>,
    poisoned: Arc<Counter>,
    closed_eof: Arc<Counter>,
    closed_eof_mid_frame: Arc<Counter>,
    closed_idle: Arc<Counter>,
    closed_read_error: Arc<Counter>,
    closed_stalled: Arc<Counter>,
    closed_draining: Arc<Counter>,
}

impl Counters {
    fn new(registry: &Registry) -> Self {
        Counters {
            accepted: registry.counter("net.accepted"),
            rejected_overloaded: registry.counter("net.rejected_overloaded"),
            rejected_draining: registry.counter("net.rejected_draining"),
            poisoned: registry.counter("net.poisoned"),
            closed_eof: registry.counter("net.closed.eof"),
            closed_eof_mid_frame: registry.counter("net.closed.eof_mid_frame"),
            closed_idle: registry.counter("net.closed.idle_timeout"),
            closed_read_error: registry.counter("net.closed.read_error"),
            closed_stalled: registry.counter("net.closed.stalled_reader"),
            closed_draining: registry.counter("net.closed.draining"),
        }
    }

    fn record_close(&self, close: ConnClose) {
        let counter = match close {
            ConnClose::Eof => &self.closed_eof,
            ConnClose::EofMidFrame => &self.closed_eof_mid_frame,
            ConnClose::IdleTimeout => &self.closed_idle,
            ConnClose::ReadError => &self.closed_read_error,
            ConnClose::StalledReader => &self.closed_stalled,
            ConnClose::Draining => &self.closed_draining,
        };
        counter.inc();
    }

    fn snapshot(&self) -> NetStats {
        NetStats {
            accepted: self.accepted.get() as usize,
            rejected_overloaded: self.rejected_overloaded.get() as usize,
            rejected_draining: self.rejected_draining.get() as usize,
            poisoned: self.poisoned.get() as usize,
            closed_eof: self.closed_eof.get() as usize,
            closed_eof_mid_frame: self.closed_eof_mid_frame.get() as usize,
            closed_idle: self.closed_idle.get() as usize,
            closed_read_error: self.closed_read_error.get() as usize,
            closed_stalled: self.closed_stalled.get() as usize,
            closed_draining: self.closed_draining.get() as usize,
        }
    }
}

/// A snapshot of the server's lifetime counters, returned by
/// [`SocketServer::run`] and readable live via [`ServerHandle::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Connections accepted and handed to a worker thread.
    pub accepted: usize,
    /// Connects shed at the connection-count limit (transient rejection).
    pub rejected_overloaded: usize,
    /// Connects refused because the server was draining (permanent).
    pub rejected_draining: usize,
    /// Connection threads that panicked outside scenario isolation; the
    /// peer got a structured `internal` frame and only that connection
    /// died.
    pub poisoned: usize,
    /// Clean peer closes between frames.
    pub closed_eof: usize,
    /// Peer closes mid-frame (torn frames).
    pub closed_eof_mid_frame: usize,
    /// Idle-timeout closes (includes slow-loris trickles).
    pub closed_idle: usize,
    /// Transport read failures.
    pub closed_read_error: usize,
    /// Stalled-reader closes (bounded write queue gave up).
    pub closed_stalled: usize,
    /// Connections notified and closed by a drain.
    pub closed_draining: usize,
}

impl NetStats {
    /// Total connections closed for any reason after being accepted.
    pub fn closed_total(&self) -> usize {
        self.closed_eof
            + self.closed_eof_mid_frame
            + self.closed_idle
            + self.closed_read_error
            + self.closed_stalled
            + self.closed_draining
            + self.poisoned
    }
}

/// A clonable control handle: initiate drain, read live stats.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    engine: Arc<ScenarioEngine>,
    counters: Arc<Counters>,
    accepting: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Begin graceful drain: stop accepting, give in-flight work `grace`
    /// to finish (then abort it as `drained` partials), notify and close
    /// every connection, and let [`SocketServer::run`] return. Idempotent;
    /// the earliest deadline wins.
    pub fn drain(&self, grace: Duration) {
        self.engine.start_drain(grace);
        self.accepting.store(false, Ordering::Release);
    }

    /// The bound address (useful when binding port 0 in tests).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live snapshot of the server's counters.
    pub fn stats(&self) -> NetStats {
        self.counters.snapshot()
    }
}

/// The socket front end: see the module docs.
#[derive(Debug)]
pub struct SocketServer {
    listener: TcpListener,
    engine: Arc<ScenarioEngine>,
    config: NetConfig,
    counters: Arc<Counters>,
    accepting: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl SocketServer {
    /// Bind `addr` (use port 0 for an ephemeral test port) and prepare to
    /// serve `engine`. Nothing is accepted until [`SocketServer::run`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Arc<ScenarioEngine>,
        config: NetConfig,
    ) -> std::io::Result<SocketServer> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept + poll quantum: the loop must keep probing
        // the drain signal even when no one is connecting.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let counters = Arc::new(Counters::new(engine.registry()));
        Ok(SocketServer {
            listener,
            engine,
            config,
            counters,
            accepting: Arc::new(AtomicBool::new(true)),
            addr,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A control handle for this server (clonable across threads).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            engine: Arc::clone(&self.engine),
            counters: Arc::clone(&self.counters),
            accepting: Arc::clone(&self.accepting),
            addr: self.addr,
        }
    }

    /// Serve until drained: accept connections, run each on its own scoped
    /// thread, and — once [`ServerHandle::drain`] fires — refuse new
    /// connects, wait for every connection thread to finish (bounded by
    /// the conn loops' poll quanta and the drain grace), and return the
    /// final counters.
    pub fn run(self) -> NetStats {
        let max_connections = self.engine.limits().admission.max_connections;
        let retry_after_ms = self.engine.limits().admission.retry_after_ms;
        let live = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            loop {
                if !self.accepting.load(Ordering::Acquire) || self.engine.is_draining() {
                    break;
                }
                let (stream, _) = match self.listener.accept() {
                    Ok(accepted) => accepted,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(self.config.accept_poll);
                        continue;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    // A listener-level failure (fd exhaustion, teardown):
                    // stop accepting; established connections keep going.
                    Err(_) => break,
                };
                if self.engine.is_draining() {
                    self.counters.rejected_draining.inc();
                    refuse(stream, &draining_refusal(), &self.config.conn);
                    break;
                }
                if live.load(Ordering::Acquire) >= max_connections {
                    self.counters.rejected_overloaded.inc();
                    let err = ServerError::overloaded(
                        0,
                        format!("connection limit of {max_connections} reached"),
                        Some(retry_after_ms),
                    );
                    refuse(stream, &proto::error_frame(None, &err), &self.config.conn);
                    continue;
                }
                self.counters.accepted.inc();
                live.fetch_add(1, Ordering::AcqRel);
                let engine = Arc::clone(&self.engine);
                let counters = Arc::clone(&self.counters);
                let live_conn = Arc::clone(&live);
                let conn_config = self.config.conn.clone();
                scope.spawn(move || {
                    serve_one(&engine, stream, &conn_config, &counters);
                    live_conn.fetch_sub(1, Ordering::AcqRel);
                });
            }
            // Drain phase: refuse stragglers with a structured frame until
            // every connection thread has finished, then let the scope
            // join them. Connection threads observe the drain signal
            // within one read poll quantum, so this loop terminates.
            while live.load(Ordering::Acquire) > 0 {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        self.counters.rejected_draining.inc();
                        refuse(stream, &draining_refusal(), &self.config.conn);
                    }
                    Err(_) => std::thread::sleep(self.config.accept_poll),
                }
            }
        });
        self.counters.snapshot()
    }
}

/// The permanent refusal frame sent to post-drain connects.
fn draining_refusal() -> String {
    let err = ServerError::unavailable(0, "server draining: not accepting connections");
    proto::error_frame(None, &err)
}

/// Best-effort: write one frame to a refused connect and close it. The
/// peer may already be gone; that is fine.
fn refuse(mut stream: TcpStream, frame: &str, config: &ConnConfig) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.write_all(frame.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Run one accepted connection with panic isolation: whatever unwinds out
/// of the connection loop poisons only this connection — the peer gets a
/// best-effort structured `internal` frame and the engine lives on.
fn serve_one(engine: &ScenarioEngine, stream: TcpStream, config: &ConnConfig, counters: &Counters) {
    let peer_frame = stream.try_clone();
    let outcome = catch_unwind(AssertUnwindSafe(|| match split_tcp(stream, config) {
        Ok((read, write)) => handle_connection(engine, read, write, config),
        Err(_) => ConnClose::ReadError,
    }));
    match outcome {
        Ok(close) => counters.record_close(close),
        Err(payload) => {
            counters.poisoned.inc();
            let detail = format!(
                "connection poisoned: {}",
                crate::error::panic_message(payload.as_ref())
            );
            let err = ServerError::internal(0, detail);
            if let Ok(stream) = peer_frame {
                refuse(stream, &proto::error_frame(None, &err), config);
            }
        }
    }
}
