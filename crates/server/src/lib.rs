//! # rome-server — the scenario-serving subsystem
//!
//! Every sweep, equivalence check, and workload scenario in this repository
//! used to be a bespoke `main`: build the systems, run, print. This crate
//! turns them into *requests against one long-lived engine*:
//!
//! * **[`ScenarioSpec`]** ([`spec`]) — a declarative, JSON-round-trippable
//!   description of one experiment: analytic figure sweeps
//!   (`rome_sim::ScenarioSet` scenarios), §V-A queue-depth streaming sweeps
//!   on either memory system, closed-loop workload window sweeps over any
//!   `rome-workload` source (MoE routing skew, prefill/decode interleave,
//!   multi-tenant mixes, bursts, recorded traces), calibration points, and
//!   sharded multi-cube streaming runs. [`ScenarioResult`] carries the
//!   unified `SimulationReport`s plus the domain statistics of each path.
//! * **[`ScenarioEngine`]** ([`engine`]) — the warm serving state: a
//!   concurrent [`rome_sim::CalibrationCache`] computed at most once and
//!   reused across batches (the `ScenarioSet` calibrate-once idea made
//!   persistent), and a sharded executor — scenarios of a batch fan out
//!   across a worker pool, multi-cube scenarios shard one
//!   `MultiChannelSystem` per cube across threads
//!   ([`rome_engine::run_cubes`]) and merge the reports
//!   ([`rome_engine::merge_reports`]).
//! * **Front ends** — the in-process [`ScenarioEngine::serve_batch`], and
//!   the JSONL batch CLI ([`cli`], the `rome-server` binary): specs in on
//!   stdin or a file, results out on stdout, in input order,
//!   deterministically. The CLI is a thin wrapper over
//!   [`cli::serve_jsonl`], so both front ends produce byte-identical
//!   output for the same batch.
//!
//! Served results are **bit-for-bit** the results of the pre-existing
//! direct-call paths (`ScenarioSet::run_nominal`/`run_cached`,
//! `closed_loop_sweep`, `decode_tpot`, `Calibrator`), pinned by
//! `tests/scenario_server.rs`.
//!
//! The wire format is the canonical JSON of [`json`] (hand-rolled because
//! the offline build stubs out `serde`; the format is canonical either
//! way).
//!
//! # The hardened serving path
//!
//! The serve path is fault-isolated end to end (see `engine` and `error`):
//! structured [`ServerError`]s instead of panics or bare strings, admission
//! control with transient/permanent rejection classes, per-scenario
//! [`rome_engine::RunBudget`]s so runaway specs abort with partial tagged
//! reports, a deterministic [`FaultPlan`] injection harness, and a bounded
//! retry loop ([`cli::serve_jsonl_with_retry`]) in the CLI front end. The
//! crate-level lint below is the guard: no `unwrap`/`expect` can land on
//! the non-test serve path.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cli;
pub mod conn;
pub mod engine;
pub mod error;
pub mod json;
pub mod net;
pub mod proto;
pub mod spec;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::cli::{
        parse_batch, render_results, serve_jsonl, serve_jsonl_with_retry, RetryPolicy,
        RetrySchedule,
    };
    pub use crate::conn::{ConnClose, ConnConfig};
    pub use crate::engine::{
        AdmissionConfig, EngineLimits, FaultPlan, ScenarioEngine, ServeSpans, ServedRecord,
    };
    pub use crate::error::{ErrorCode, ServerError};
    pub use crate::net::{NetConfig, NetStats, ServerHandle, SocketServer};
    pub use crate::proto::{
        Frame, FrameEvent, FrameReader, RecordSpec, Request, TransportFault, TransportFaultPlan,
    };
    pub use crate::spec::{
        MultiCubeReport, QueueDepthRow, ResultPayload, ScenarioResult, ScenarioSpec, SpecError,
        TenantDecl, WorkloadSpec,
    };
}

pub use cli::{
    parse_batch, render_results, serve_jsonl, serve_jsonl_with_retry, BatchError, RetryPolicy,
    RetrySchedule,
};
pub use conn::{ConnClose, ConnConfig};
pub use engine::{
    spec_fingerprint, AdmissionConfig, EngineLimits, FaultPlan, ScenarioEngine, ServeSpans,
    ServedRecord,
};
pub use error::{ErrorCode, ServerError};
pub use json::Json;
pub use net::{NetConfig, NetStats, ServerHandle, SocketServer};
pub use proto::{
    Frame, FrameEvent, FrameReader, RecordSpec, Request, TransportFault, TransportFaultPlan,
};
pub use spec::{
    model_by_name, MultiCubeReport, QueueDepthRow, ResultPayload, ScenarioResult, ScenarioSpec,
    SpecError, TenantDecl, WorkloadSpec,
};
