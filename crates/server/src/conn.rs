//! One connection's lifecycle: the hardened request/response loop.
//!
//! Each accepted socket gets one [`handle_connection`] call on its own
//! thread. The loop is sequential per connection — requests are served one
//! at a time, responses stream back in request order as each completes —
//! and concurrency comes from many connections multiplexing onto the one
//! warm engine, whose [`crate::engine::AdmissionConfig`] therefore gates
//! socket traffic and in-process batches with the same model.
//!
//! Robustness invariants, each pinned by a unit or integration test:
//!
//! * **Slow-loris defense** — idle time is counted from the last *complete*
//!   frame, so a client trickling bytes without ever finishing a line is
//!   closed at `idle_timeout` like a silent one.
//! * **Stalled-reader defense** — responses go through a bounded write
//!   queue drained by a dedicated writer thread with a write timeout. When
//!   the queue is full at request time the request is *shed* to a
//!   structured `overloaded` frame (with a retry hint) instead of burning
//!   engine time; when even an error frame cannot be enqueued within
//!   `enqueue_wait`, the connection is closed
//!   ([`ConnClose::StalledReader`]). A worker thread never blocks
//!   indefinitely on a client that stopped reading.
//! * **Drain awareness** — between requests the loop probes the engine's
//!   [`rome_engine::DrainSignal`]; once draining, the client gets one
//!   `unavailable` frame and the connection closes. The request in flight
//!   when drain starts finishes normally or aborts with a `drained` partial
//!   through its budget — never dropped silently.
//!
//! Transport I/O is abstracted behind [`ConnRead`]/[`ConnWrite`] so the
//! loop's failure modes are unit-testable with scripted doubles; real
//! sockets come in via [`split_tcp`].

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::engine::ScenarioEngine;
use crate::error::ServerError;
use crate::json::Json;
use crate::proto::{self, FrameEvent, FrameReader};
use crate::spec::SpecError;

/// Per-connection knobs. The defaults are safe for tests and local use;
/// production front ends tune them via [`crate::net::NetConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnConfig {
    /// Read poll quantum: how long one blocking read waits before the loop
    /// re-checks idle and drain state. Small values tighten drain latency.
    pub read_timeout: Duration,
    /// Per-write stall bound on the socket's write side.
    pub write_timeout: Duration,
    /// Close the connection when no *complete* frame has arrived for this
    /// long (partial bytes do not count — the slow-loris rule).
    pub idle_timeout: Duration,
    /// Response frames buffered ahead of the writer thread before the
    /// connection counts as stalled.
    pub write_queue_cap: usize,
    /// How long a frame may wait for queue space before the connection is
    /// closed as a stalled reader.
    pub enqueue_wait: Duration,
    /// Per-frame byte limit (oversize frames shed, never buffered).
    pub max_frame_bytes: usize,
    /// Retry hint stamped on `overloaded` shed frames.
    pub overload_retry_after_ms: u64,
    /// When set, every recorded scenario (a request carrying `"record"`)
    /// also writes its flight-recorder buffer as Chrome trace-event JSON to
    /// this file (truncating: the file holds the most recent recorded
    /// scenario's trace), ready for chrome://tracing or Perfetto. The
    /// `--trace-out` flag of `rome-server`.
    pub trace_out: Option<std::path::PathBuf>,
}

impl Default for ConnConfig {
    fn default() -> Self {
        ConnConfig {
            read_timeout: Duration::from_millis(25),
            write_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
            write_queue_cap: 64,
            enqueue_wait: Duration::from_secs(2),
            max_frame_bytes: proto::DEFAULT_MAX_FRAME_BYTES,
            overload_retry_after_ms: 25,
            trace_out: None,
        }
    }
}

/// Why a connection's loop ended. Stable names (`as_str`) feed server
/// statistics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnClose {
    /// The peer closed cleanly between frames.
    Eof,
    /// The peer closed mid-frame (a torn frame; bytes were discarded).
    EofMidFrame,
    /// No complete frame within the idle timeout.
    IdleTimeout,
    /// The transport read side failed.
    ReadError,
    /// The write side stalled or died past its bounds — the peer stopped
    /// reading (or the socket broke) and the bounded queue protected the
    /// worker by closing instead of blocking.
    StalledReader,
    /// The server is draining; the peer was notified and disconnected.
    Draining,
}

impl ConnClose {
    /// Stable snake_case name.
    pub fn as_str(self) -> &'static str {
        match self {
            ConnClose::Eof => "eof",
            ConnClose::EofMidFrame => "eof_mid_frame",
            ConnClose::IdleTimeout => "idle_timeout",
            ConnClose::ReadError => "read_error",
            ConnClose::StalledReader => "stalled_reader",
            ConnClose::Draining => "draining",
        }
    }
}

/// The read half of a connection: one bounded-blocking read.
pub trait ConnRead: Send {
    /// Read up to `buf.len()` bytes. `Ok(0)` is EOF; `WouldBlock` /
    /// `TimedOut` means the poll quantum elapsed with no data (the loop
    /// uses these ticks to check idle and drain state).
    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize>;
}

/// The write half of a connection: frame writes and teardown.
pub trait ConnWrite: Send {
    /// Write one frame (`line` + `\n`) and flush, within the configured
    /// write timeout.
    fn write_frame(&mut self, line: &str) -> io::Result<()>;
    /// Tear the transport down (both directions where applicable).
    fn shutdown(&mut self);
}

/// The read half of a real socket.
#[derive(Debug)]
pub struct TcpConnRead {
    stream: TcpStream,
}

impl ConnRead for TcpConnRead {
    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }
}

/// The write half of a real socket (a `try_clone` of the read half).
#[derive(Debug)]
pub struct TcpConnWrite {
    stream: TcpStream,
}

impl ConnWrite for TcpConnWrite {
    fn write_frame(&mut self, line: &str) -> io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    fn shutdown(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Split a socket into its two halves with the config's timeouts applied.
pub fn split_tcp(
    stream: TcpStream,
    config: &ConnConfig,
) -> io::Result<(TcpConnRead, TcpConnWrite)> {
    // Responses are written as one frame per request on a ping-pong
    // connection; with Nagle on, a multi-segment frame stalls behind the
    // peer's delayed ACK (~40 ms per request on loopback).
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    let write = stream.try_clone()?;
    write.set_write_timeout(Some(config.write_timeout))?;
    Ok((TcpConnRead { stream }, TcpConnWrite { stream: write }))
}

/// Run one connection to completion: read frames, serve requests
/// sequentially on `engine`, stream responses through the bounded write
/// queue. Returns why the connection closed. Never panics outward for
/// transport misbehavior; scenario panics are already isolated inside
/// [`ScenarioEngine::serve_batch`].
pub fn handle_connection(
    engine: &ScenarioEngine,
    mut reader: impl ConnRead,
    writer: impl ConnWrite + 'static,
    config: &ConnConfig,
) -> ConnClose {
    let (tx, rx) = mpsc::sync_channel::<String>(config.write_queue_cap.max(1));
    let depth = Arc::new(AtomicUsize::new(0));
    let writer_depth = Arc::clone(&depth);
    std::thread::scope(|scope| {
        scope.spawn(move || writer_loop(writer, rx, &writer_depth));
        // `tx` moves into the loop and drops when it returns, which
        // disconnects the channel, ends the writer thread, and bounds the
        // scope join — no connection outlives its loop.
        run_loop(engine, &mut reader, tx, &depth, config)
    })
}

/// The dedicated writer: drains the queue one frame at a time so a stalled
/// peer stalls this thread (bounded by the write timeout), never the
/// serving thread. On a write failure it exits, disconnecting the channel;
/// the serving loop observes that as a stalled reader.
fn writer_loop(mut writer: impl ConnWrite, rx: Receiver<String>, depth: &AtomicUsize) {
    while let Ok(line) = rx.recv() {
        let result = writer.write_frame(&line);
        depth.fetch_sub(1, Ordering::AcqRel);
        if result.is_err() {
            break;
        }
    }
    writer.shutdown();
}

enum Enqueue {
    Sent,
    Stalled,
    Closed,
}

/// Bounded-wait enqueue onto the writer queue. `depth` counts frames
/// enqueued but not yet written, so the serving loop can observe queue
/// pressure without consuming the channel.
fn enqueue(tx: &SyncSender<String>, depth: &AtomicUsize, line: String, wait: Duration) -> Enqueue {
    let deadline = Instant::now() + wait;
    let mut line = line;
    loop {
        depth.fetch_add(1, Ordering::AcqRel);
        match tx.try_send(line) {
            Ok(()) => return Enqueue::Sent,
            Err(TrySendError::Full(back)) => {
                depth.fetch_sub(1, Ordering::AcqRel);
                if Instant::now() >= deadline {
                    return Enqueue::Stalled;
                }
                std::thread::sleep(Duration::from_millis(1));
                line = back;
            }
            Err(TrySendError::Disconnected(_)) => {
                depth.fetch_sub(1, Ordering::AcqRel);
                return Enqueue::Closed;
            }
        }
    }
}

fn run_loop(
    engine: &ScenarioEngine,
    reader: &mut impl ConnRead,
    tx: SyncSender<String>,
    depth: &AtomicUsize,
    config: &ConnConfig,
) -> ConnClose {
    let mut frames = FrameReader::new(config.max_frame_bytes);
    let mut last_frame = Instant::now();
    let mut buf = [0u8; 4096];
    loop {
        if engine.is_draining() {
            let err = ServerError::unavailable(0, "server draining: connection closing");
            let _ = enqueue(
                &tx,
                depth,
                proto::error_frame(None, &err),
                config.enqueue_wait,
            );
            return ConnClose::Draining;
        }
        let n = match reader.read_chunk(&mut buf) {
            Ok(0) => {
                return if frames.has_partial() {
                    ConnClose::EofMidFrame
                } else {
                    ConnClose::Eof
                };
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if last_frame.elapsed() >= config.idle_timeout {
                    let err =
                        ServerError::unavailable(0, "idle timeout: no complete frame received");
                    let _ = enqueue(
                        &tx,
                        depth,
                        proto::error_frame(None, &err),
                        config.enqueue_wait,
                    );
                    return ConnClose::IdleTimeout;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return ConnClose::ReadError,
        };
        for event in frames.push(&buf[..n]) {
            // Only complete frames reset the idle clock (slow-loris rule).
            last_frame = Instant::now();
            if let Some(close) = handle_event(engine, event, &tx, depth, config) {
                return close;
            }
        }
    }
}

/// Serve one frame event; `Some(close)` ends the connection. The time from
/// frame receipt to response enqueue is recorded into the registry's
/// `net.frame_rtt_us` histogram (wall-clock ops data — it never touches a
/// scenario payload).
fn handle_event(
    engine: &ScenarioEngine,
    event: FrameEvent,
    tx: &SyncSender<String>,
    depth: &AtomicUsize,
    config: &ConnConfig,
) -> Option<ConnClose> {
    let received = Instant::now();
    let frame = match event {
        FrameEvent::Line(line) => {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                return None;
            }
            let parse_start = Instant::now();
            let parsed = proto::parse_frame(trimmed);
            let parse_us = parse_start.elapsed().as_micros() as u64;
            match parsed {
                Ok(proto::Frame::Stats { id }) => {
                    proto::render_stats_frame(id, engine.stats_json())
                }
                Ok(proto::Frame::Flight { id }) => {
                    proto::render_flight_frame(id, engine.flight_json())
                }
                Ok(proto::Frame::Request(req)) => {
                    if depth.load(Ordering::Acquire) >= config.write_queue_cap {
                        // The peer is not keeping up with its own responses:
                        // shed before burning engine time on output nobody
                        // is reading.
                        let err = ServerError::overloaded(
                            0,
                            "write queue full: request shed".to_string(),
                            Some(config.overload_retry_after_ms),
                        );
                        proto::error_frame(req.id, &err)
                    } else if let Some(record) = req.record {
                        // Recorded request: the scenario runs with a
                        // sim-time flight recorder armed; the event list
                        // rides back on the response, and the result stays
                        // byte-identical to an unrecorded serve.
                        engine
                            .registry()
                            .histogram("server.span.parse_us")
                            .record(parse_us);
                        let (result, spans, buffer) =
                            engine.serve_recorded(&req.spec, record.level);
                        if let Some(path) = &config.trace_out {
                            let chrome = rome_telemetry::trace::chrome_trace_json(&buffer.events);
                            if std::fs::write(path, chrome).is_err() {
                                engine.registry().counter("net.trace_out_errors").inc();
                            }
                        }
                        let trace = req.trace.then(|| match spans.to_json() {
                            Json::Obj(mut members) => {
                                members.insert(0, ("parse_us".to_string(), Json::from(parse_us)));
                                Json::Obj(members)
                            }
                            other => other,
                        });
                        let body = proto::record_json(record.level, &buffer, record.limit);
                        proto::render_recorded_response(req.id, &req.spec, &result, trace, body)
                    } else if req.trace {
                        // Traced request: per-phase spans ride back on the
                        // response frame the client explicitly asked for.
                        engine
                            .registry()
                            .histogram("server.span.parse_us")
                            .record(parse_us);
                        let (result, spans) = engine.serve_traced(&req.spec);
                        let trace = match spans.to_json() {
                            Json::Obj(mut members) => {
                                members.insert(0, ("parse_us".to_string(), Json::from(parse_us)));
                                Json::Obj(members)
                            }
                            other => other,
                        };
                        proto::render_traced_response(req.id, &req.spec, &result, trace)
                    } else {
                        let mut results = engine.serve_batch(std::slice::from_ref(&req.spec));
                        let result = if results.is_empty() {
                            Err(ServerError::internal(
                                0,
                                "serve_batch returned no result for a one-spec batch".to_string(),
                            ))
                        } else {
                            results.swap_remove(0)
                        };
                        proto::render_response(req.id, &req.spec, &result)
                    }
                }
                Err(message) => {
                    let err = ServerError::invalid_spec(0, SpecError(message));
                    proto::error_frame(None, &err)
                }
            }
        }
        FrameEvent::Oversize { bytes } => {
            let err = ServerError::invalid_spec(
                0,
                SpecError(format!(
                    "frame of {bytes} bytes exceeds the {} byte limit",
                    config.max_frame_bytes
                )),
            );
            proto::error_frame(None, &err)
        }
        FrameEvent::NotUtf8 { bytes } => {
            let err = ServerError::invalid_spec(
                0,
                SpecError(format!("frame of {bytes} bytes is not valid UTF-8")),
            );
            proto::error_frame(None, &err)
        }
    };
    engine
        .registry()
        .histogram("net.frame_rtt_us")
        .record(received.elapsed().as_micros() as u64);
    match enqueue(tx, depth, frame, config.enqueue_wait) {
        Enqueue::Sent => None,
        Enqueue::Stalled | Enqueue::Closed => Some(ConnClose::StalledReader),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// A scripted read half: replays chunks, timeout ticks, and EOF.
    enum ReadStep {
        Chunk(Vec<u8>),
        /// Sleep `read_timeout`-ish, then report a timed-out poll.
        Timeout(Duration),
    }

    struct ScriptedRead {
        steps: VecDeque<ReadStep>,
    }

    impl ScriptedRead {
        fn new(steps: Vec<ReadStep>) -> Self {
            ScriptedRead {
                steps: steps.into(),
            }
        }
    }

    impl ConnRead for ScriptedRead {
        fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.steps.pop_front() {
                None => Ok(0), // EOF after the script
                Some(ReadStep::Chunk(bytes)) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    if n < bytes.len() {
                        self.steps.push_front(ReadStep::Chunk(bytes[n..].to_vec()));
                    }
                    Ok(n)
                }
                Some(ReadStep::Timeout(pause)) => {
                    std::thread::sleep(pause);
                    Err(io::Error::new(io::ErrorKind::WouldBlock, "poll quantum"))
                }
            }
        }
    }

    /// A recording write half with scriptable misbehavior.
    #[derive(Clone)]
    struct SinkWrite {
        lines: Arc<Mutex<Vec<String>>>,
        /// Sleep this long inside the first write (stalls the writer
        /// thread deterministically while the serving loop races ahead).
        first_write_stall: Duration,
        /// Fail every write.
        fail: bool,
        shutdowns: Arc<AtomicUsize>,
        writes: Arc<AtomicUsize>,
    }

    impl SinkWrite {
        fn new() -> Self {
            SinkWrite {
                lines: Arc::new(Mutex::new(Vec::new())),
                first_write_stall: Duration::ZERO,
                fail: false,
                shutdowns: Arc::new(AtomicUsize::new(0)),
                writes: Arc::new(AtomicUsize::new(0)),
            }
        }

        fn lines(&self) -> Vec<String> {
            self.lines.lock().unwrap().clone()
        }
    }

    impl ConnWrite for SinkWrite {
        fn write_frame(&mut self, line: &str) -> io::Result<()> {
            if self.writes.fetch_add(1, Ordering::AcqRel) == 0 {
                std::thread::sleep(self.first_write_stall);
            }
            if self.fail {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "peer gone"));
            }
            self.lines.lock().unwrap().push(line.to_string());
            Ok(())
        }

        fn shutdown(&mut self) {
            self.shutdowns.fetch_add(1, Ordering::AcqRel);
        }
    }

    const SPEC: &str =
        "{\"scenario\":\"sweep\",\"name\":\"s\",\"kind\":\"figure13\",\"seq_len\":4096}";

    fn quick_config() -> ConnConfig {
        ConnConfig {
            read_timeout: Duration::from_millis(5),
            idle_timeout: Duration::from_secs(10),
            enqueue_wait: Duration::from_millis(250),
            ..ConnConfig::default()
        }
    }

    #[test]
    fn happy_path_serves_and_closes_on_eof() {
        let engine = ScenarioEngine::new();
        let reader = ScriptedRead::new(vec![ReadStep::Chunk(format!("{SPEC}\n").into_bytes())]);
        let sink = SinkWrite::new();
        let close = handle_connection(&engine, reader, sink.clone(), &quick_config());
        assert_eq!(close, ConnClose::Eof);
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"name\":\"s\",\"scenario\":\"sweep\""));
        assert_eq!(sink.shutdowns.load(Ordering::Acquire), 1);
    }

    #[test]
    fn eof_inside_a_frame_is_a_torn_frame_close() {
        let engine = ScenarioEngine::new();
        let reader = ScriptedRead::new(vec![ReadStep::Chunk(b"{\"scenario\":".to_vec())]);
        let close = handle_connection(&engine, reader, SinkWrite::new(), &quick_config());
        assert_eq!(close, ConnClose::EofMidFrame);
    }

    #[test]
    fn byte_trickling_without_complete_frames_hits_idle_timeout() {
        let engine = ScenarioEngine::new();
        // A slow-loris: keeps the socket warm with single bytes, never
        // finishes a line. Partial bytes must not reset the idle clock.
        let mut steps = Vec::new();
        for _ in 0..20 {
            steps.push(ReadStep::Chunk(b"{".to_vec()));
            steps.push(ReadStep::Timeout(Duration::from_millis(10)));
        }
        let reader = ScriptedRead::new(steps);
        let sink = SinkWrite::new();
        let config = ConnConfig {
            idle_timeout: Duration::from_millis(40),
            ..quick_config()
        };
        let close = handle_connection(&engine, reader, sink.clone(), &config);
        assert_eq!(close, ConnClose::IdleTimeout);
        let lines = sink.lines();
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].contains("\"code\":\"unavailable\""));
        assert!(lines[0].contains("idle timeout"));
    }

    #[test]
    fn full_write_queue_sheds_requests_to_overloaded_frames() {
        let engine = ScenarioEngine::new();
        // Two parse-error lines then a valid spec, all in one chunk. The
        // writer stalls 300 ms inside its first write, so by the time the
        // valid spec arrives the first error frame is still in flight and
        // the queue (cap 1) counts as full: the spec must be shed without
        // touching the engine.
        let chunk = format!("not json\n{SPEC}\n");
        let reader = ScriptedRead::new(vec![ReadStep::Chunk(chunk.into_bytes())]);
        let mut sink = SinkWrite::new();
        sink.first_write_stall = Duration::from_millis(300);
        let config = ConnConfig {
            write_queue_cap: 1,
            overload_retry_after_ms: 7,
            enqueue_wait: Duration::from_secs(2),
            ..quick_config()
        };
        let close = handle_connection(&engine, reader, sink.clone(), &config);
        assert_eq!(close, ConnClose::Eof);
        let lines = sink.lines();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"code\":\"invalid_spec\""));
        assert!(lines[1].contains("\"code\":\"overloaded\""), "{}", lines[1]);
        assert!(lines[1].contains("\"retry_after_ms\":7"));
    }

    #[test]
    fn dead_write_side_closes_as_stalled_reader() {
        let engine = ScenarioEngine::new();
        let mut sink = SinkWrite::new();
        sink.fail = true;
        // First line's frame is accepted then fails to write, killing the
        // writer; the pause guarantees the serving loop observes the dead
        // channel on the second line.
        let reader = ScriptedRead::new(vec![
            ReadStep::Chunk(b"not json\n".to_vec()),
            ReadStep::Timeout(Duration::from_millis(50)),
            ReadStep::Chunk(b"also not json\n".to_vec()),
        ]);
        let close = handle_connection(&engine, reader, sink.clone(), &quick_config());
        assert_eq!(close, ConnClose::StalledReader);
        assert!(sink.lines().is_empty());
        assert_eq!(sink.shutdowns.load(Ordering::Acquire), 1);
    }

    #[test]
    fn draining_engine_notifies_and_closes() {
        let engine = ScenarioEngine::new();
        engine.start_drain(Duration::from_secs(5));
        let reader = ScriptedRead::new(vec![ReadStep::Chunk(format!("{SPEC}\n").into_bytes())]);
        let sink = SinkWrite::new();
        let close = handle_connection(&engine, reader, sink.clone(), &quick_config());
        assert_eq!(close, ConnClose::Draining);
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"code\":\"unavailable\""));
        assert!(lines[0].contains("draining"));
    }

    #[test]
    fn close_reasons_have_stable_names() {
        assert_eq!(ConnClose::Eof.as_str(), "eof");
        assert_eq!(ConnClose::EofMidFrame.as_str(), "eof_mid_frame");
        assert_eq!(ConnClose::IdleTimeout.as_str(), "idle_timeout");
        assert_eq!(ConnClose::ReadError.as_str(), "read_error");
        assert_eq!(ConnClose::StalledReader.as_str(), "stalled_reader");
        assert_eq!(ConnClose::Draining.as_str(), "draining");
    }
}
