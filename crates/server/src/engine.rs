//! The long-lived scenario engine: warm calibration state plus a sharded,
//! fault-isolated executor.
//!
//! A [`ScenarioEngine`] is the process-wide serving state. It owns a
//! [`CalibrationCache`] — the expensive cycle-accurate calibrations, keyed
//! and computed at most once, shared by every scenario of every batch — and
//! fans batches out across a worker pool ([`ScenarioEngine::serve_batch`]):
//! scenarios run concurrently, results come back in batch order, and a
//! multi-cube scenario additionally shards its cubes across threads via
//! [`rome_engine::run_cubes`] (one `MultiChannelSystem` per cube, the same
//! share-nothing split `run_until_idle` applies to channels).
//!
//! Every scenario variant routes through the *pre-existing* direct-call
//! path — `ScenarioSet` sweeps, `rome_mc`/`rome_core` queue-depth runs,
//! closed-loop points, `decode_tpot`, the calibrator — so a served result
//! is bit-for-bit the result of calling that path yourself; the regression
//! suite pins this.
//!
//! # The hardened serving path
//!
//! Three robustness layers sit between a batch and the run loops:
//!
//! * **Admission control** ([`AdmissionConfig`]): a batch is rejected as a
//!   whole — before anything runs — when it exceeds the spec-count or
//!   estimated-cost limits (permanent rejection: the same batch would fail
//!   again) or when admitting it would push the engine over its in-flight
//!   scenario limit (transient rejection, carrying a retry hint the CLI's
//!   bounded-backoff loop keys on).
//! * **Budgets** ([`RunBudget`] via [`EngineLimits`]): every scenario's run
//!   loops are metered, so a runaway spec returns a partial result tagged
//!   `aborted` instead of occupying a worker forever.
//! * **Panic isolation**: each scenario executes under `catch_unwind`, so a
//!   panicking scenario becomes one structured [`ServerError`] in its batch
//!   slot while its siblings' results are unaffected, and the engine (and
//!   its warm calibration cache, whose mutex recovers from poisoning)
//!   remains healthy for the next batch.
//!
//! A [`FaultPlan`] deterministically injects faults (panic at event K,
//! artificial slowdown, forced budget exhaustion) into chosen scenarios of
//! the next batches — the harness `tests/fault_injection.rs` uses to prove
//! all of the above without nondeterministic scaffolding.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rayon::prelude::*;

use rome_core::controller::{RomeController, RomeControllerConfig};
use rome_core::system::{RomeMemorySystem, RomeSystemConfig};
use rome_engine::{merge_reports, report_from_host_completions, run_cubes, MemoryRequest};
use rome_engine::{DrainSignal, EngineFault, RunBudget, RunSink, TraceSink};
use rome_mc::controller::{ChannelController, ControllerConfig};
use rome_mc::system::{MemorySystem, MemorySystemConfig};
use rome_sim::serving::closed_loop_points;
use rome_sim::sweep::Scenario;
use rome_sim::tpot::decode_tpot;
use rome_sim::{AcceleratorSpec, CalibrationCache, MemoryModel, MemorySystemKind, ScenarioSet};
use rome_telemetry::trace::{TraceBuffer, TraceConfig, TraceLevel};
use rome_telemetry::Registry;

use crate::error::{panic_message, ErrorCode, ServerError};
use crate::json::Json;
use crate::spec::{
    model_by_name, MultiCubeReport, QueueDepthRow, ResultPayload, ScenarioResult, ScenarioSpec,
    SpecError,
};

/// Admission limits for [`ScenarioEngine::serve_batch`]. The defaults are
/// permissive enough that every pre-existing workload admits unchanged; a
/// deployment fronting untrusted batches tightens them via
/// [`ScenarioEngine::with_limits`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum scenarios admitted concurrently across all in-flight batches.
    /// A batch that would exceed this is shed with a transient rejection
    /// carrying [`AdmissionConfig::retry_after_ms`].
    pub max_in_flight: usize,
    /// Maximum specs in one batch (permanent rejection above it).
    pub max_batch_specs: usize,
    /// Maximum summed [`ScenarioSpec::estimated_cost`] of one batch
    /// (permanent rejection above it).
    pub max_batch_cost: u64,
    /// Retry hint attached to transient (in-flight) rejections.
    pub retry_after_ms: u64,
    /// Maximum concurrent socket connections the network front end will
    /// hold open (see `crate::net`). Living here keeps transport and
    /// engine backpressure in one model: a connection over this limit is
    /// shed at accept time with a structured `overloaded` frame carrying
    /// [`AdmissionConfig::retry_after_ms`], exactly as an over-admitted
    /// batch is shed by [`ScenarioEngine::serve_batch`]. Ignored by the
    /// in-process and CLI front ends, which have no connections.
    pub max_connections: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_in_flight: 4096,
            max_batch_specs: 1024,
            max_batch_cost: u64::MAX,
            retry_after_ms: 25,
            max_connections: 256,
        }
    }
}

/// Operational limits of a [`ScenarioEngine`]: the [`RunBudget`] every
/// scenario's run loops are metered against, and the admission gate. The
/// default (unlimited budget, permissive admission) keeps every output
/// byte-identical to an engine without the robustness layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EngineLimits {
    /// Budget applied to every served scenario's run loops.
    pub budget: RunBudget,
    /// The admission gate for batches.
    pub admission: AdmissionConfig,
}

/// A deterministic, spec-addressable fault-injection plan: which scenario
/// indices of the next batches receive which [`EngineFault`]. Installed via
/// [`ScenarioEngine::set_fault_plan`]; the engine composes the fault into
/// the addressed scenario's [`RunBudget`], so it fires at an exact event
/// ordinal of that scenario's run loops (entry faults fire even on analytic,
/// loop-free paths). The seed exists so harnesses can derive arbitrary but
/// reproducible target events ([`FaultPlan::derived_event`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<(usize, EngineFault)>,
}

impl FaultPlan {
    /// An empty plan with a seed for derived target events.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Arm `fault` on the scenario at `scenario_index` of served batches.
    pub fn with_fault(mut self, scenario_index: usize, fault: EngineFault) -> Self {
        self.faults.push((scenario_index, fault));
        self
    }

    /// The fault armed at `scenario_index`, if any (latest arming wins).
    pub fn fault_for(&self, scenario_index: usize) -> Option<EngineFault> {
        self.faults
            .iter()
            .rev()
            .find(|(i, _)| *i == scenario_index)
            .map(|(_, f)| *f)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A reproducible pseudo-random event ordinal in `[0, span)` derived
    /// from the seed and the scenario index (splitmix64), for harnesses
    /// that want seeded-but-arbitrary fault placement.
    pub fn derived_event(&self, scenario_index: usize, span: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((scenario_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if span == 0 {
            0
        } else {
            z % span
        }
    }
}

/// RAII release of admitted in-flight slots; `Drop` runs even when a worker
/// panic unwinds through `serve_batch`, so a faulty batch can never leak
/// admission capacity.
struct AdmissionGuard<'a> {
    counter: &'a AtomicUsize,
    admitted: usize,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(self.admitted, Ordering::AcqRel);
    }
}

/// The warm scenario-serving engine. See the module docs.
#[derive(Debug)]
pub struct ScenarioEngine {
    calibration: CalibrationCache,
    accel: AcceleratorSpec,
    limits: EngineLimits,
    fault_plan: Option<FaultPlan>,
    in_flight: AtomicUsize,
    drain: DrainSignal,
    /// The engine's unified metrics registry: admission and serve-outcome
    /// counters, run-level engine counters (via each budget's [`RunSink`]),
    /// the aggregate sim-time request-latency histogram, trace-span
    /// histograms, and — recorded by the socket front end — the transport
    /// counters. Shared with front ends for live stats.
    registry: Arc<Registry>,
    /// Process start, for the `server.uptime_s` stats gauge.
    started: Instant,
    /// Monotone snapshot counter: every [`ScenarioEngine::stats_json`] call
    /// bumps it, so a consumer can order snapshots and detect missed ones.
    stats_seq: AtomicU64,
    /// The wall-clock black box: a ring of the last served requests (spec
    /// hash, phase spans, outcome), dumped on panic and on drain and served
    /// by the `{"op":"flight"}` control frame.
    black_box: Mutex<BlackBox>,
}

impl Default for ScenarioEngine {
    fn default() -> Self {
        ScenarioEngine::new()
    }
}

/// How many served requests the engine's black box retains.
const BLACK_BOX_CAPACITY: usize = 64;

/// The black-box ring behind [`ScenarioEngine::flight_records`]: bounded,
/// oldest-evicted, with a total-served counter that keeps counting after
/// eviction so a dump states how much history it is missing.
#[derive(Debug, Default)]
struct BlackBox {
    served: u64,
    records: VecDeque<ServedRecord>,
}

/// One entry of the engine's wall-clock black box: what was served, how it
/// went, and how long each phase took. Everything here is an ops-side
/// observation — the sim-time trace lives in [`TraceBuffer`], not here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServedRecord {
    /// Position in the engine's served-request sequence (0-based, monotone).
    pub seq: u64,
    /// The spec's scenario name.
    pub name: String,
    /// FNV-1a hash of the spec's canonical debug form, so a dump identifies
    /// the exact request shape without storing (possibly large) specs.
    pub spec_hash: u64,
    /// Wall-clock phase spans of the serve.
    pub spans: ServeSpans,
    /// `"ok"` or the structured error code (`"panicked"`, `"rejected"`, …).
    pub outcome: &'static str,
}

impl ServedRecord {
    /// The record as a JSON object. The hash renders as a fixed-width hex
    /// string: `Json::Num` is an f64 and would corrupt high-entropy u64s.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::from(self.seq)),
            ("name", Json::Str(self.name.clone())),
            ("spec_hash", Json::Str(format!("{:016x}", self.spec_hash))),
            ("outcome", Json::from(self.outcome)),
            ("spans", self.spans.to_json()),
        ])
    }
}

/// FNV-1a over the spec's debug form: stable for identical specs within and
/// across runs (the derived `Debug` output is a pure function of the spec's
/// fields), cheap, and dependency-free.
pub fn spec_fingerprint(spec: &ScenarioSpec) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{spec:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl ScenarioEngine {
    /// A cold engine modelling the paper's accelerator, with default
    /// (permissive) limits. Calibration warms on first use and stays warm
    /// for the life of the engine.
    pub fn new() -> Self {
        ScenarioEngine {
            calibration: CalibrationCache::new(),
            accel: AcceleratorSpec::paper_default(),
            limits: EngineLimits::default(),
            fault_plan: None,
            in_flight: AtomicUsize::new(0),
            drain: DrainSignal::new(),
            registry: Arc::new(Registry::new()),
            started: Instant::now(),
            stats_seq: AtomicU64::new(0),
            black_box: Mutex::new(BlackBox::default()),
        }
    }

    /// A cold engine with explicit operational limits.
    pub fn with_limits(limits: EngineLimits) -> Self {
        ScenarioEngine {
            limits,
            ..ScenarioEngine::new()
        }
    }

    /// The warm calibration cache (shared, thread-safe).
    pub fn calibration(&self) -> &CalibrationCache {
        &self.calibration
    }

    /// The engine's metrics registry (shared, thread-safe). Front ends
    /// record their own counters here (the socket layer's close reasons,
    /// frame RTTs) so one snapshot covers the whole serving stack.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The accelerator the analytic scenarios model.
    pub fn accel(&self) -> &AcceleratorSpec {
        &self.accel
    }

    /// The engine's operational limits.
    pub fn limits(&self) -> &EngineLimits {
        &self.limits
    }

    /// Replace the engine's operational limits.
    pub fn set_limits(&mut self, limits: EngineLimits) {
        self.limits = limits;
    }

    /// Install (or, with `None`, clear) a deterministic fault-injection
    /// plan applied to subsequently served batches.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// Scenarios currently admitted and not yet finished.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// The engine's shared drain signal. Every served scenario's
    /// [`RunBudget`] meters against a clone of it, so
    /// [`ScenarioEngine::start_drain`] converts in-flight work to partial
    /// reports tagged `drained` once the grace expires — the graceful half
    /// of shutdown. Front ends clone this to coordinate their own drain
    /// (stop accepting, notify clients) with the engine's.
    pub fn drain_signal(&self) -> &DrainSignal {
        &self.drain
    }

    /// Begin graceful drain: new batches are rejected permanently
    /// ([`ErrorCode::Unavailable`]),
    /// in-flight scenarios get `grace` to finish before their budgets abort
    /// them with tagged partials. Idempotent; the earliest deadline wins.
    pub fn start_drain(&self, grace: std::time::Duration) {
        let first = !self.drain.is_draining();
        self.drain.start_drain(grace);
        if first {
            self.dump_black_box("drain");
        }
    }

    /// Whether [`ScenarioEngine::start_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.drain.is_draining()
    }

    /// Serve one batch: scenarios fan out across the worker pool, results
    /// return in batch order (deterministic however the pool schedules).
    /// Each element is the scenario's result or the structured error that
    /// kept it from producing one — an invalid spec, an isolated worker
    /// panic, or a batch-wide admission rejection. One bad spec never
    /// poisons the batch, and one bad batch never poisons the engine.
    pub fn serve_batch(&self, specs: &[ScenarioSpec]) -> Vec<Result<ScenarioResult, ServerError>> {
        if self.drain.is_draining() {
            self.registry
                .counter("admission.rejected_draining")
                .add(specs.len() as u64);
            return (0..specs.len())
                .map(|index| {
                    Err(ServerError::unavailable(
                        index,
                        "engine draining: no new work accepted",
                    ))
                })
                .collect();
        }
        let admission = &self.limits.admission;
        if specs.len() > admission.max_batch_specs {
            let detail = format!(
                "batch of {} specs exceeds the per-batch limit of {}",
                specs.len(),
                admission.max_batch_specs
            );
            self.registry
                .counter("admission.rejected_permanent")
                .add(specs.len() as u64);
            return reject_all(specs.len(), &detail, None);
        }
        let cost: u64 = specs
            .iter()
            .map(ScenarioSpec::estimated_cost)
            .fold(0, u64::saturating_add);
        if cost > admission.max_batch_cost {
            let detail = format!(
                "batch cost estimate {cost} exceeds the per-batch limit of {}",
                admission.max_batch_cost
            );
            self.registry
                .counter("admission.rejected_permanent")
                .add(specs.len() as u64);
            return reject_all(specs.len(), &detail, None);
        }
        let _guard = match self.try_admit(specs.len()) {
            Ok(guard) => guard,
            Err(detail) => {
                self.registry
                    .counter("admission.rejected_transient")
                    .add(specs.len() as u64);
                return reject_all(specs.len(), &detail, Some(admission.retry_after_ms));
            }
        };
        self.registry
            .counter("admission.accepted")
            .add(specs.len() as u64);

        let results: Vec<Result<ScenarioResult, ServerError>> = specs
            .iter()
            .enumerate()
            .collect::<Vec<(usize, &ScenarioSpec)>>()
            .into_par_iter()
            .map(|(index, spec)| {
                let budget = self.budget_for(index);
                // catch_unwind sits INSIDE the per-scenario worker closure:
                // a panic anywhere below (including one propagated up from a
                // nested per-channel or per-cube worker) unwinds to here and
                // becomes this scenario's structured error, never the
                // batch's.
                match catch_unwind(AssertUnwindSafe(|| self.serve_with_budget(spec, &budget))) {
                    Ok(Ok(result)) => Ok(result),
                    Ok(Err(err)) => Err(ServerError::invalid_spec(index, err)),
                    Err(payload) => Err(ServerError::panicked(
                        index,
                        panic_message(payload.as_ref()),
                    )),
                }
            })
            .collect();
        for (spec, result) in specs.iter().zip(&results) {
            self.record_outcome(result);
            self.record_flight(spec, ServeSpans::default(), result);
        }
        results
    }

    /// Fold one served outcome into the registry: an outcome counter
    /// (`serve.ok` / `serve.errors.<code>`) and, for payloads carrying
    /// unified reports, their sim-time read-latency histograms merged into
    /// `engine.read_latency_ns` — the aggregate the stats endpoint extracts
    /// p50/p95/p99 from.
    fn record_outcome(&self, result: &Result<ScenarioResult, ServerError>) {
        match result {
            Ok(ok) => {
                self.registry.counter("serve.ok").inc();
                let hist = self.registry.histogram("engine.read_latency_ns");
                match &ok.payload {
                    ResultPayload::QueueDepth(rows) => {
                        for row in rows {
                            hist.merge_from(&row.report.read_latency);
                        }
                    }
                    // The merged report's histogram is already the merge of
                    // the per-cube ones; folding it alone avoids counting a
                    // cube twice.
                    ResultPayload::MultiCube(mc) => hist.merge_from(&mc.merged.read_latency),
                    _ => {}
                }
            }
            Err(err) => {
                self.registry
                    .counter(&format!("serve.errors.{}", err.code.as_str()))
                    .inc();
            }
        }
    }

    /// Atomically reserve `n` in-flight slots, or explain why not.
    fn try_admit(&self, n: usize) -> Result<AdmissionGuard<'_>, String> {
        let max = self.limits.admission.max_in_flight;
        let mut current = self.in_flight.load(Ordering::Acquire);
        loop {
            if current.saturating_add(n) > max {
                return Err(format!(
                    "engine saturated: {current} scenarios in flight, \
                     admitting {n} more would exceed the limit of {max}"
                ));
            }
            match self.in_flight.compare_exchange_weak(
                current,
                current + n,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    return Ok(AdmissionGuard {
                        counter: &self.in_flight,
                        admitted: n,
                    })
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// The budget for the scenario at `index` of a batch: the engine-wide
    /// budget, plus the engine's drain signal and telemetry sink, plus any
    /// fault the installed [`FaultPlan`] addresses to it.
    fn budget_for(&self, index: usize) -> RunBudget {
        let mut budget = self
            .limits
            .budget
            .clone()
            .with_drain(self.drain.clone())
            .with_sink(RunSink::new(Arc::clone(&self.registry)));
        if let Some(fault) = self
            .fault_plan
            .as_ref()
            .and_then(|plan| plan.fault_for(index))
        {
            budget = budget.with_fault(fault);
        }
        budget
    }

    /// Serve one scenario through its pre-existing direct-call path under
    /// the engine's budget. Bypasses admission control and the fault plan
    /// (both are batch-level concepts); panics propagate to the caller.
    pub fn serve(&self, spec: &ScenarioSpec) -> Result<ScenarioResult, SpecError> {
        self.serve_with_budget(spec, &self.limits.budget)
    }

    /// Serve one scenario with an explicit [`RunBudget`]. Loop scenarios
    /// thread the budget through their runners (each run loop meters
    /// independently); analytic scenarios have no loop to meter and honor
    /// only entry faults ([`RunBudget::entry_fault`]).
    pub fn serve_with_budget(
        &self,
        spec: &ScenarioSpec,
        budget: &RunBudget,
    ) -> Result<ScenarioResult, SpecError> {
        let payload = match spec {
            ScenarioSpec::Sweep {
                name,
                kind,
                seq_len,
                calibrated,
            } => {
                budget.entry_fault();
                let set = ScenarioSet::new(self.accel).with(Scenario {
                    name: name.clone(),
                    kind: *kind,
                    seq_len: *seq_len,
                });
                let mut reports = if *calibrated {
                    set.run_cached(&self.calibration)
                } else {
                    set.run_nominal()
                };
                let report = reports
                    .pop()
                    .ok_or_else(|| SpecError("internal: sweep produced no report".into()))?;
                ResultPayload::Sweep(report)
            }
            ScenarioSpec::QueueDepth {
                system,
                depths,
                total_bytes,
                granularity,
                ..
            } => {
                if depths.is_empty() || depths.contains(&0) {
                    return Err(SpecError("queue-depth sweep needs non-zero depths".into()));
                }
                if *granularity == 0 || *total_bytes == 0 {
                    return Err(SpecError("queue-depth sweep needs traffic".into()));
                }
                ResultPayload::QueueDepth(queue_depth_sweep(
                    *system,
                    depths,
                    *total_bytes,
                    *granularity,
                    budget,
                ))
            }
            ScenarioSpec::ClosedLoop {
                system,
                channels,
                windows,
                max_ns,
                workload,
                ..
            } => {
                if *channels == 0 || windows.is_empty() || windows.contains(&0) {
                    return Err(SpecError(
                        "closed-loop sweep needs channels and non-zero windows".into(),
                    ));
                }
                // Build one fresh, identically-seeded source per window up
                // front: a workload that fails to lower is a structured
                // error before any simulation runs.
                let mut sources = Vec::with_capacity(windows.len());
                for &window in windows {
                    sources.push((window, workload.build_source()?));
                }
                ResultPayload::ClosedLoop(closed_loop_points(
                    *system, *channels, sources, *max_ns, budget,
                ))
            }
            ScenarioSpec::Calibration { system, .. } => {
                budget.entry_fault();
                ResultPayload::Calibration(self.calibration.get_or_calibrate(*system))
            }
            ScenarioSpec::Tpot {
                model,
                batch,
                seq_len,
                calibrated,
                ..
            } => {
                budget.entry_fault();
                let model = model_by_name(model)?;
                let (hbm4, rome) = if *calibrated {
                    MemoryModel::calibrated_pair_cached(&self.accel, &self.calibration)
                } else {
                    (
                        MemoryModel::hbm4_baseline(&self.accel),
                        MemoryModel::rome(&self.accel),
                    )
                };
                ResultPayload::Tpot {
                    hbm4: decode_tpot(&model, *batch, *seq_len, &self.accel, &hbm4),
                    rome: decode_tpot(&model, *batch, *seq_len, &self.accel, &rome),
                }
            }
            ScenarioSpec::MultiCube {
                system,
                cubes,
                channels_per_cube,
                bytes_per_cube,
                max_ns,
                ..
            } => {
                if *cubes == 0 || *channels_per_cube == 0 || *bytes_per_cube == 0 {
                    return Err(SpecError(
                        "multi-cube run needs cubes, channels, and traffic".into(),
                    ));
                }
                ResultPayload::MultiCube(Box::new(run_multi_cube(
                    *system,
                    *cubes,
                    *channels_per_cube,
                    *bytes_per_cube,
                    *max_ns,
                    budget,
                )))
            }
        };
        Ok(ScenarioResult {
            name: spec.name().to_string(),
            payload,
        })
    }

    /// Serve one scenario with per-phase wall-clock spans: admission,
    /// calibration warm-up, and simulation are timed separately, recorded
    /// into the registry's `server.span.*` histograms, and returned so a
    /// front end can attach them to the response *when the request opted
    /// in*. The result itself is byte-identical to the untraced path —
    /// spans are wall-clock and live strictly outside the
    /// [`ScenarioResult`] payload.
    pub fn serve_traced(
        &self,
        spec: &ScenarioSpec,
    ) -> (Result<ScenarioResult, ServerError>, ServeSpans) {
        let (result, spans, _) = self.serve_observed(spec, None);
        (result, spans)
    }

    /// [`ScenarioEngine::serve_traced`], additionally armed with a sim-time
    /// flight recorder at `level`: the scenario's run loops emit lifecycle
    /// [`TraceEvent`](rome_telemetry::trace::TraceEvent)s into the returned
    /// buffer. The recorder is a pure observation — the [`ScenarioResult`]
    /// stays byte-identical to an unrecorded serve of the same spec, and the
    /// buffer is deterministic in sim time (same spec, same events).
    pub fn serve_recorded(
        &self,
        spec: &ScenarioSpec,
        level: TraceLevel,
    ) -> (Result<ScenarioResult, ServerError>, ServeSpans, TraceBuffer) {
        self.serve_observed(spec, Some(level))
    }

    /// The shared traced/recorded serving path: admission, calibration
    /// warm-up, and simulation timed into [`ServeSpans`], panics isolated,
    /// the outcome folded into the registry and the black box, and — when
    /// `record` is set — a [`TraceSink`] attached to the scenario's budget
    /// and harvested into the returned [`TraceBuffer`].
    fn serve_observed(
        &self,
        spec: &ScenarioSpec,
        record: Option<TraceLevel>,
    ) -> (Result<ScenarioResult, ServerError>, ServeSpans, TraceBuffer) {
        let mut spans = ServeSpans::default();
        let t = Instant::now();
        let admitted = self.admit_one(spec);
        spans.admission_us = t.elapsed().as_micros() as u64;
        let guard = match admitted {
            Ok(guard) => guard,
            Err(err) => {
                let result = Err(err);
                self.record_outcome(&result);
                self.record_spans(&spans);
                self.record_flight(spec, spans, &result);
                return (result, spans, TraceBuffer::default());
            }
        };
        // Warm the calibrations the spec will consult so the simulate span
        // measures simulation, not a cold cache. A warm hit costs ~nothing,
        // so repeated traces converge on the steady-state phase split.
        let t = Instant::now();
        self.prewarm_calibration(spec);
        spans.calibration_us = t.elapsed().as_micros() as u64;
        let mut budget = self.budget_for(0);
        let sink = record.map(|level| {
            let sink = TraceSink::new(TraceConfig::with_level(level));
            budget = budget.clone().with_trace(sink.clone());
            sink
        });
        let t = Instant::now();
        let result = match catch_unwind(AssertUnwindSafe(|| self.serve_with_budget(spec, &budget)))
        {
            Ok(Ok(result)) => Ok(result),
            Ok(Err(err)) => Err(ServerError::invalid_spec(0, err)),
            Err(payload) => Err(ServerError::panicked(0, panic_message(payload.as_ref()))),
        };
        spans.simulate_us = t.elapsed().as_micros() as u64;
        drop(guard);
        self.record_outcome(&result);
        self.record_spans(&spans);
        self.record_flight(spec, spans, &result);
        let buffer = sink.map(|sink| sink.take()).unwrap_or_default();
        (result, spans, buffer)
    }

    /// Append one served request to the black box; a panicked serve dumps
    /// the box to stderr immediately (the crash-adjacent moment the black
    /// box exists for).
    fn record_flight(
        &self,
        spec: &ScenarioSpec,
        spans: ServeSpans,
        result: &Result<ScenarioResult, ServerError>,
    ) {
        let outcome = match result {
            Ok(_) => "ok",
            Err(err) => err.code.as_str(),
        };
        {
            let mut bb = self.black_box.lock().unwrap_or_else(|p| p.into_inner());
            let record = ServedRecord {
                seq: bb.served,
                name: spec.name().to_string(),
                spec_hash: spec_fingerprint(spec),
                spans,
                outcome,
            };
            bb.served += 1;
            if bb.records.len() == BLACK_BOX_CAPACITY {
                bb.records.pop_front();
            }
            bb.records.push_back(record);
        }
        if matches!(result, Err(err) if err.code == ErrorCode::Panicked) {
            self.dump_black_box("panic");
        }
    }

    /// The black box's current contents, oldest first.
    pub fn flight_records(&self) -> Vec<ServedRecord> {
        let bb = self.black_box.lock().unwrap_or_else(|p| p.into_inner());
        bb.records.iter().cloned().collect()
    }

    /// The black box as a canonical-JSON object — the body of the
    /// `{"op":"flight"}` control frame and of each stderr dump: total
    /// requests ever served (so a reader knows how much history the bounded
    /// ring has shed) and the retained records, oldest first.
    pub fn flight_json(&self) -> Json {
        let bb = self.black_box.lock().unwrap_or_else(|p| p.into_inner());
        let records: Vec<Json> = bb.records.iter().map(ServedRecord::to_json).collect();
        Json::obj([
            ("scenario", Json::from("flight")),
            ("served", Json::from(bb.served)),
            ("records", Json::Arr(records)),
        ])
    }

    /// Write the black box to stderr, tagged with why it was dumped.
    fn dump_black_box(&self, why: &str) {
        eprintln!(
            "rome-server black box ({why}): {}",
            self.flight_json().emit()
        );
    }

    /// The admission gates of [`ScenarioEngine::serve_batch`], applied to a
    /// single scenario (the traced path serves one spec at a time).
    fn admit_one(&self, spec: &ScenarioSpec) -> Result<AdmissionGuard<'_>, ServerError> {
        if self.drain.is_draining() {
            self.registry.counter("admission.rejected_draining").inc();
            return Err(ServerError::unavailable(
                0,
                "engine draining: no new work accepted",
            ));
        }
        let admission = &self.limits.admission;
        let cost = spec.estimated_cost();
        if cost > admission.max_batch_cost {
            self.registry.counter("admission.rejected_permanent").inc();
            let detail = format!(
                "batch cost estimate {cost} exceeds the per-batch limit of {}",
                admission.max_batch_cost
            );
            return Err(ServerError::rejected(0, detail, None));
        }
        match self.try_admit(1) {
            Ok(guard) => {
                self.registry.counter("admission.accepted").inc();
                Ok(guard)
            }
            Err(detail) => {
                self.registry.counter("admission.rejected_transient").inc();
                Err(ServerError::rejected(
                    0,
                    detail,
                    Some(admission.retry_after_ms),
                ))
            }
        }
    }

    /// Warm every calibration `spec` will consult (see
    /// [`ScenarioEngine::serve_traced`]).
    fn prewarm_calibration(&self, spec: &ScenarioSpec) {
        match spec {
            ScenarioSpec::Sweep {
                calibrated: true, ..
            }
            | ScenarioSpec::Tpot {
                calibrated: true, ..
            } => {
                self.calibration.get_or_calibrate(MemorySystemKind::Hbm4);
                self.calibration.get_or_calibrate(MemorySystemKind::Rome);
            }
            ScenarioSpec::Calibration { system, .. } => {
                self.calibration.get_or_calibrate(*system);
            }
            _ => {}
        }
    }

    fn record_spans(&self, spans: &ServeSpans) {
        self.registry
            .histogram("server.span.admission_us")
            .record(spans.admission_us);
        self.registry
            .histogram("server.span.calibration_us")
            .record(spans.calibration_us);
        self.registry
            .histogram("server.span.simulate_us")
            .record(spans.simulate_us);
    }

    /// A canonical-JSON snapshot of the serving stack's metrics: every
    /// registry counter, gauge, and histogram, plus point-in-time figures
    /// the registry doesn't own (the calibration cache's hit/miss totals,
    /// the in-flight and uptime gauges, and the monotone `stats.seq`
    /// snapshot counter a consumer orders snapshots by). Keys render in
    /// lexicographic order. This is the body of the `{"op":"stats"}`
    /// control frame and of each `--stats-interval` JSONL line.
    pub fn stats_json(&self) -> Json {
        let mut snap = self.registry.snapshot();
        let (hits, misses) = self.calibration.stats();
        snap.counters.push(("cache.calibration.hits".into(), hits));
        snap.counters
            .push(("cache.calibration.misses".into(), misses));
        snap.counters.push((
            "stats.seq".into(),
            self.stats_seq.fetch_add(1, Ordering::AcqRel) + 1,
        ));
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges
            .push(("engine.in_flight".into(), self.in_flight() as i64));
        snap.gauges.push((
            "server.uptime_s".into(),
            self.started.elapsed().as_secs() as i64,
        ));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let counters = Json::Obj(
            snap.counters
                .into_iter()
                .map(|(k, v)| (k.to_string(), Json::from(v)))
                .collect(),
        );
        let gauges = Json::Obj(
            snap.gauges
                .into_iter()
                .map(|(k, v)| (k.to_string(), Json::Num(v as f64)))
                .collect(),
        );
        let histograms = Json::Obj(
            snap.histograms
                .into_iter()
                .filter(|(_, h)| !h.is_empty())
                .map(|(k, h)| (k.to_string(), histogram_json(&h)))
                .collect(),
        );
        Json::obj([
            ("scenario", Json::from("stats")),
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }
}

/// Wall-clock phase timings of one traced serve, in microseconds. These are
/// ops measurements — nondeterministic by nature — and are kept strictly
/// outside [`ScenarioResult`]; a front end attaches them to a response only
/// when the request's `trace` flag asked for them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSpans {
    /// Time in the admission gates (drain check, cost check, slot reserve).
    pub admission_us: u64,
    /// Time warming the calibrations the spec consults (≈0 on a warm cache).
    pub calibration_us: u64,
    /// Time in the scenario's direct-call serving path.
    pub simulate_us: u64,
}

impl ServeSpans {
    /// The spans as a JSON object (stable keys, µs integers).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("admission_us", Json::from(self.admission_us)),
            ("calibration_us", Json::from(self.calibration_us)),
            ("simulate_us", Json::from(self.simulate_us)),
        ])
    }
}

/// The summary of one histogram a stats snapshot renders: sample count,
/// exact max, mean, and bucket-resolution p50/p95/p99 (the `sum` stays
/// internal — it can exceed JSON's exact-integer range).
fn histogram_json(h: &rome_telemetry::LatencyHistogram) -> Json {
    Json::obj([
        ("count", Json::from(h.count())),
        ("max", Json::from(h.max())),
        ("mean", Json::Num(h.mean())),
        ("p50", Json::from(h.p50())),
        ("p95", Json::from(h.p95())),
        ("p99", Json::from(h.p99())),
    ])
}

/// Every slot of a shed batch carries the same rejection, addressed to its
/// own index.
fn reject_all(
    n: usize,
    detail: &str,
    retry_after_ms: Option<u64>,
) -> Vec<Result<ScenarioResult, ServerError>> {
    (0..n)
        .map(|i| Err(ServerError::rejected(i, detail.to_string(), retry_after_ms)))
        .collect()
}

/// The §V-A queue-depth sweep: one streaming-read run per depth on a fresh
/// single-channel controller (the exact shape of the pre-existing
/// `queue_depth_table` experiment). Each depth's run is metered against its
/// own meter of `budget`, so an armed fault fires once per row.
fn queue_depth_sweep(
    system: MemorySystemKind,
    depths: &[usize],
    total_bytes: u64,
    granularity: u64,
    budget: &RunBudget,
) -> Vec<QueueDepthRow> {
    depths
        .iter()
        .map(|&depth| {
            let reqs = rome_mc::workload::streaming_reads(0, total_bytes, granularity);
            let report = match system {
                MemorySystemKind::Hbm4 => {
                    let mut ctrl =
                        ChannelController::new(ControllerConfig::hbm4_with_queue_depth(depth));
                    rome_mc::simulate::run_with_budget(&mut ctrl, reqs, 50_000_000, budget)
                }
                MemorySystemKind::Rome | MemorySystemKind::RomeIsoBandwidth => {
                    let mut ctrl =
                        RomeController::new(RomeControllerConfig::with_queue_depth(depth));
                    rome_core::simulate::run_with_budget(&mut ctrl, reqs, 50_000_000, budget)
                }
            };
            QueueDepthRow { depth, report }
        })
        .collect()
}

/// The sharded multi-cube run: one multi-channel system per cube, each fed
/// one `bytes_per_cube` sequential read (DMA-style, fragmented at the
/// system's access granularity across its channels), cubes run in parallel
/// threads, per-cube reports merged. Every channel of every cube meters
/// independently against `budget`; an aborted channel tags its cube's
/// report, and [`merge_reports`] propagates the tag to the merged report.
fn run_multi_cube(
    system: MemorySystemKind,
    cubes: u16,
    channels_per_cube: u16,
    bytes_per_cube: u64,
    max_ns: u64,
    budget: &RunBudget,
) -> MultiCubeReport {
    let per_cube = match system {
        MemorySystemKind::Hbm4 => {
            let mut systems: Vec<MemorySystem> = (0..cubes)
                .map(|_| MemorySystem::new(MemorySystemConfig::hbm4(channels_per_cube)))
                .collect();
            for sys in &mut systems {
                sys.submit(MemoryRequest::read(1, 0, bytes_per_cube, 0));
            }
            run_cubes(&mut systems, |_, sys| {
                let (done, _, aborted) = sys.run_until_idle_budgeted(max_ns, budget);
                report_from_host_completions(&sys.stats_snapshot(), &done).with_abort(aborted)
            })
        }
        MemorySystemKind::Rome | MemorySystemKind::RomeIsoBandwidth => {
            let mut systems: Vec<RomeMemorySystem> = (0..cubes)
                .map(|_| RomeMemorySystem::new(RomeSystemConfig::with_channels(channels_per_cube)))
                .collect();
            for sys in &mut systems {
                sys.submit(MemoryRequest::read(1, 0, bytes_per_cube, 0));
            }
            run_cubes(&mut systems, |_, sys| {
                let (done, _, aborted) = sys.run_until_idle_budgeted(max_ns, budget);
                report_from_host_completions(&sys.stats_snapshot(), &done).with_abort(aborted)
            })
        }
    };
    MultiCubeReport {
        merged: merge_reports(&per_cube),
        per_cube,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorCode;
    use rome_sim::sweep::SweepKind;

    #[test]
    fn multi_cube_shards_and_merges() {
        let engine = ScenarioEngine::new();
        let spec = ScenarioSpec::MultiCube {
            name: "cubes".into(),
            system: MemorySystemKind::Rome,
            cubes: 2,
            channels_per_cube: 4,
            bytes_per_cube: 256 * 1024,
            max_ns: 5_000_000,
        };
        let result = engine.serve(&spec).unwrap();
        let ResultPayload::MultiCube(report) = &result.payload else {
            panic!("wrong payload");
        };
        assert_eq!(report.per_cube.len(), 2);
        // Identical cubes fed identical traffic produce identical reports.
        assert_eq!(report.per_cube[0], report.per_cube[1]);
        assert_eq!(report.merged.requests_completed, 2);
        assert_eq!(report.merged.bytes_read, 2 * 256 * 1024);
        // Parallel shards: merged elapsed time is a cube's, not the sum.
        assert_eq!(report.merged.finish_time, report.per_cube[0].finish_time);
        // Merged bandwidth is the cube aggregate at matched finish times.
        assert!(
            (report.merged.achieved_bandwidth_gbps
                - 2.0 * report.per_cube[0].achieved_bandwidth_gbps)
                .abs()
                < 1e-9
        );
        assert_eq!(report.merged.aborted, None);
    }

    #[test]
    fn bad_specs_do_not_poison_a_batch() {
        let engine = ScenarioEngine::new();
        let specs = vec![
            ScenarioSpec::Tpot {
                name: "bad-model".into(),
                model: "gpt-2".into(),
                batch: 8,
                seq_len: 4096,
                calibrated: false,
            },
            ScenarioSpec::Sweep {
                name: "fig13".into(),
                kind: SweepKind::Figure13,
                seq_len: 4096,
                calibrated: false,
            },
        ];
        let results = engine.serve_batch(&specs);
        let err = results[0].as_ref().unwrap_err();
        assert_eq!(err.code, ErrorCode::InvalidSpec);
        assert_eq!(err.scenario_index, 0);
        let ok = results[1].as_ref().unwrap();
        assert_eq!(ok.name, "fig13");
        assert!(matches!(&ok.payload, ResultPayload::Sweep(r) if r.figure13.is_some()));
    }

    #[test]
    fn oversized_batches_are_rejected_permanently() {
        let mut limits = EngineLimits::default();
        limits.admission.max_batch_specs = 1;
        let engine = ScenarioEngine::with_limits(limits);
        let spec = |name: &str| ScenarioSpec::Tpot {
            name: name.into(),
            model: "grok-1".into(),
            batch: 8,
            seq_len: 4096,
            calibrated: false,
        };
        let results = engine.serve_batch(&[spec("a"), spec("b")]);
        assert_eq!(results.len(), 2);
        for (i, r) in results.iter().enumerate() {
            let err = r.as_ref().unwrap_err();
            assert_eq!(err.code, ErrorCode::Rejected);
            assert_eq!(err.scenario_index, i);
            assert!(
                !err.is_transient(),
                "size rejection never succeeds on retry"
            );
        }
        // Rejection sheds before admission: nothing stays in flight and a
        // conforming batch still serves.
        assert_eq!(engine.in_flight(), 0);
        assert!(engine.serve_batch(&[spec("ok")])[0].is_ok());
    }

    #[test]
    fn saturation_rejections_carry_a_retry_hint() {
        let mut limits = EngineLimits::default();
        limits.admission.max_in_flight = 0;
        limits.admission.retry_after_ms = 7;
        let engine = ScenarioEngine::with_limits(limits);
        let specs = vec![ScenarioSpec::Tpot {
            name: "t".into(),
            model: "grok-1".into(),
            batch: 8,
            seq_len: 4096,
            calibrated: false,
        }];
        let results = engine.serve_batch(&specs);
        let err = results[0].as_ref().unwrap_err();
        assert_eq!(err.code, ErrorCode::Rejected);
        assert_eq!(err.retry_after_ms, Some(7));
        assert!(err.is_transient());
        assert_eq!(engine.in_flight(), 0);
    }

    #[test]
    fn cost_estimates_scale_with_spec_shape() {
        let small = ScenarioSpec::QueueDepth {
            name: "s".into(),
            system: MemorySystemKind::Rome,
            depths: vec![1],
            total_bytes: 4096,
            granularity: 4096,
        };
        let big = ScenarioSpec::QueueDepth {
            name: "b".into(),
            system: MemorySystemKind::Rome,
            depths: vec![1, 2, 4, 8],
            total_bytes: 1 << 30,
            granularity: 64,
        };
        assert!(big.estimated_cost() > small.estimated_cost());
        let mut limits = EngineLimits::default();
        limits.admission.max_batch_cost = small.estimated_cost();
        let engine = ScenarioEngine::with_limits(limits);
        let results = engine.serve_batch(std::slice::from_ref(&big));
        assert_eq!(results[0].as_ref().unwrap_err().code, ErrorCode::Rejected);
    }

    #[test]
    fn fault_plans_address_specific_scenarios() {
        let plan = FaultPlan::new(42)
            .with_fault(1, EngineFault::panic_at(3))
            .with_fault(1, EngineFault::exhaust_at(9));
        assert_eq!(plan.fault_for(0), None);
        // Latest arming wins.
        assert_eq!(plan.fault_for(1), Some(EngineFault::exhaust_at(9)));
        assert_eq!(plan.seed(), 42);
        // Derived events are reproducible and bounded.
        let a = plan.derived_event(5, 1000);
        assert_eq!(a, FaultPlan::new(42).derived_event(5, 1000));
        assert!(a < 1000);
        assert_eq!(plan.derived_event(5, 0), 0);
    }
}
