//! The long-lived scenario engine: warm calibration state plus a sharded
//! executor.
//!
//! A [`ScenarioEngine`] is the process-wide serving state. It owns a
//! [`CalibrationCache`] — the expensive cycle-accurate calibrations, keyed
//! and computed at most once, shared by every scenario of every batch — and
//! fans batches out across a worker pool ([`ScenarioEngine::serve_batch`]):
//! scenarios run concurrently, results come back in batch order, and a
//! multi-cube scenario additionally shards its cubes across threads via
//! [`rome_engine::run_cubes`] (one `MultiChannelSystem` per cube, the same
//! share-nothing split `run_until_idle` applies to channels).
//!
//! Every scenario variant routes through the *pre-existing* direct-call
//! path — `ScenarioSet` sweeps, `rome_mc`/`rome_core` queue-depth runs,
//! `closed_loop_sweep`, `decode_tpot`, the calibrator — so a served result
//! is bit-for-bit the result of calling that path yourself; the regression
//! suite pins this.

use rayon::prelude::*;

use rome_core::controller::{RomeController, RomeControllerConfig};
use rome_core::system::{RomeMemorySystem, RomeSystemConfig};
use rome_engine::{merge_reports, report_from_host_completions, run_cubes, MemoryRequest};
use rome_mc::controller::{ChannelController, ControllerConfig};
use rome_mc::system::{MemorySystem, MemorySystemConfig};
use rome_sim::serving::closed_loop_sweep;
use rome_sim::sweep::Scenario;
use rome_sim::tpot::decode_tpot;
use rome_sim::{AcceleratorSpec, CalibrationCache, MemoryModel, MemorySystemKind, ScenarioSet};

use crate::spec::{
    model_by_name, MultiCubeReport, QueueDepthRow, ResultPayload, ScenarioResult, ScenarioSpec,
    SpecError,
};

/// The warm scenario-serving engine. See the module docs.
#[derive(Debug, Default)]
pub struct ScenarioEngine {
    calibration: CalibrationCache,
    accel: AcceleratorSpec,
}

impl ScenarioEngine {
    /// A cold engine modelling the paper's accelerator. Calibration warms on
    /// first use and stays warm for the life of the engine.
    pub fn new() -> Self {
        ScenarioEngine {
            calibration: CalibrationCache::new(),
            accel: AcceleratorSpec::paper_default(),
        }
    }

    /// The warm calibration cache (shared, thread-safe).
    pub fn calibration(&self) -> &CalibrationCache {
        &self.calibration
    }

    /// The accelerator the analytic scenarios model.
    pub fn accel(&self) -> &AcceleratorSpec {
        &self.accel
    }

    /// Serve one batch: scenarios fan out across the worker pool, results
    /// return in batch order (deterministic however the pool schedules).
    /// Each element is the scenario's result or the error that kept it from
    /// running (one bad spec does not poison the batch).
    pub fn serve_batch(&self, specs: &[ScenarioSpec]) -> Vec<Result<ScenarioResult, SpecError>> {
        specs
            .iter()
            .collect::<Vec<&ScenarioSpec>>()
            .into_par_iter()
            .map(|spec| self.serve(spec))
            .collect()
    }

    /// Serve one scenario through its pre-existing direct-call path.
    pub fn serve(&self, spec: &ScenarioSpec) -> Result<ScenarioResult, SpecError> {
        let payload = match spec {
            ScenarioSpec::Sweep {
                name,
                kind,
                seq_len,
                calibrated,
            } => {
                let set = ScenarioSet::new(self.accel).with(Scenario {
                    name: name.clone(),
                    kind: *kind,
                    seq_len: *seq_len,
                });
                let mut reports = if *calibrated {
                    set.run_cached(&self.calibration)
                } else {
                    set.run_nominal()
                };
                ResultPayload::Sweep(reports.pop().expect("one scenario queued"))
            }
            ScenarioSpec::QueueDepth {
                system,
                depths,
                total_bytes,
                granularity,
                ..
            } => {
                if depths.is_empty() || depths.contains(&0) {
                    return Err(SpecError("queue-depth sweep needs non-zero depths".into()));
                }
                if *granularity == 0 || *total_bytes == 0 {
                    return Err(SpecError("queue-depth sweep needs traffic".into()));
                }
                ResultPayload::QueueDepth(queue_depth_sweep(
                    *system,
                    depths,
                    *total_bytes,
                    *granularity,
                ))
            }
            ScenarioSpec::ClosedLoop {
                system,
                channels,
                windows,
                max_ns,
                workload,
                ..
            } => {
                if *channels == 0 || windows.is_empty() || windows.contains(&0) {
                    return Err(SpecError(
                        "closed-loop sweep needs channels and non-zero windows".into(),
                    ));
                }
                // Validate the lowering once up front, then build one fresh,
                // identically-seeded source per window (the
                // closed_loop_sweep contract).
                workload.build_source()?;
                ResultPayload::ClosedLoop(closed_loop_sweep(
                    *system,
                    *channels,
                    windows,
                    *max_ns,
                    |_| workload.build_source().expect("validated above"),
                ))
            }
            ScenarioSpec::Calibration { system, .. } => {
                ResultPayload::Calibration(self.calibration.get_or_calibrate(*system))
            }
            ScenarioSpec::Tpot {
                model,
                batch,
                seq_len,
                calibrated,
                ..
            } => {
                let model = model_by_name(model)?;
                let (hbm4, rome) = if *calibrated {
                    MemoryModel::calibrated_pair_cached(&self.accel, &self.calibration)
                } else {
                    (
                        MemoryModel::hbm4_baseline(&self.accel),
                        MemoryModel::rome(&self.accel),
                    )
                };
                ResultPayload::Tpot {
                    hbm4: decode_tpot(&model, *batch, *seq_len, &self.accel, &hbm4),
                    rome: decode_tpot(&model, *batch, *seq_len, &self.accel, &rome),
                }
            }
            ScenarioSpec::MultiCube {
                system,
                cubes,
                channels_per_cube,
                bytes_per_cube,
                max_ns,
                ..
            } => {
                if *cubes == 0 || *channels_per_cube == 0 || *bytes_per_cube == 0 {
                    return Err(SpecError(
                        "multi-cube run needs cubes, channels, and traffic".into(),
                    ));
                }
                ResultPayload::MultiCube(run_multi_cube(
                    *system,
                    *cubes,
                    *channels_per_cube,
                    *bytes_per_cube,
                    *max_ns,
                ))
            }
        };
        Ok(ScenarioResult {
            name: spec.name().to_string(),
            payload,
        })
    }
}

/// The §V-A queue-depth sweep: one streaming-read run per depth on a fresh
/// single-channel controller (the exact shape of the pre-existing
/// `queue_depth_table` experiment).
fn queue_depth_sweep(
    system: MemorySystemKind,
    depths: &[usize],
    total_bytes: u64,
    granularity: u64,
) -> Vec<QueueDepthRow> {
    depths
        .iter()
        .map(|&depth| {
            let reqs = rome_mc::workload::streaming_reads(0, total_bytes, granularity);
            let report = match system {
                MemorySystemKind::Hbm4 => {
                    let mut ctrl =
                        ChannelController::new(ControllerConfig::hbm4_with_queue_depth(depth));
                    rome_mc::simulate::run_to_completion(&mut ctrl, reqs)
                }
                MemorySystemKind::Rome | MemorySystemKind::RomeIsoBandwidth => {
                    let mut ctrl =
                        RomeController::new(RomeControllerConfig::with_queue_depth(depth));
                    rome_core::simulate::run_to_completion(&mut ctrl, reqs)
                }
            };
            QueueDepthRow { depth, report }
        })
        .collect()
}

/// The sharded multi-cube run: one multi-channel system per cube, each fed
/// one `bytes_per_cube` sequential read (DMA-style, fragmented at the
/// system's access granularity across its channels), cubes run in parallel
/// threads, per-cube reports merged.
fn run_multi_cube(
    system: MemorySystemKind,
    cubes: u16,
    channels_per_cube: u16,
    bytes_per_cube: u64,
    max_ns: u64,
) -> MultiCubeReport {
    let per_cube = match system {
        MemorySystemKind::Hbm4 => {
            let mut systems: Vec<MemorySystem> = (0..cubes)
                .map(|_| MemorySystem::new(MemorySystemConfig::hbm4(channels_per_cube)))
                .collect();
            for sys in &mut systems {
                sys.submit(MemoryRequest::read(1, 0, bytes_per_cube, 0));
            }
            run_cubes(&mut systems, |_, sys| {
                let (done, _) = sys.run_until_idle(max_ns);
                report_from_host_completions(&sys.stats_snapshot(), &done)
            })
        }
        MemorySystemKind::Rome | MemorySystemKind::RomeIsoBandwidth => {
            let mut systems: Vec<RomeMemorySystem> = (0..cubes)
                .map(|_| RomeMemorySystem::new(RomeSystemConfig::with_channels(channels_per_cube)))
                .collect();
            for sys in &mut systems {
                sys.submit(MemoryRequest::read(1, 0, bytes_per_cube, 0));
            }
            run_cubes(&mut systems, |_, sys| {
                let (done, _) = sys.run_until_idle(max_ns);
                report_from_host_completions(&sys.stats_snapshot(), &done)
            })
        }
    };
    MultiCubeReport {
        merged: merge_reports(&per_cube),
        per_cube,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rome_sim::sweep::SweepKind;

    #[test]
    fn multi_cube_shards_and_merges() {
        let engine = ScenarioEngine::new();
        let spec = ScenarioSpec::MultiCube {
            name: "cubes".into(),
            system: MemorySystemKind::Rome,
            cubes: 2,
            channels_per_cube: 4,
            bytes_per_cube: 256 * 1024,
            max_ns: 5_000_000,
        };
        let result = engine.serve(&spec).unwrap();
        let ResultPayload::MultiCube(report) = &result.payload else {
            panic!("wrong payload");
        };
        assert_eq!(report.per_cube.len(), 2);
        // Identical cubes fed identical traffic produce identical reports.
        assert_eq!(report.per_cube[0], report.per_cube[1]);
        assert_eq!(report.merged.requests_completed, 2);
        assert_eq!(report.merged.bytes_read, 2 * 256 * 1024);
        // Parallel shards: merged elapsed time is a cube's, not the sum.
        assert_eq!(report.merged.finish_time, report.per_cube[0].finish_time);
        // Merged bandwidth is the cube aggregate at matched finish times.
        assert!(
            (report.merged.achieved_bandwidth_gbps
                - 2.0 * report.per_cube[0].achieved_bandwidth_gbps)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn bad_specs_do_not_poison_a_batch() {
        let engine = ScenarioEngine::new();
        let specs = vec![
            ScenarioSpec::Tpot {
                name: "bad-model".into(),
                model: "gpt-2".into(),
                batch: 8,
                seq_len: 4096,
                calibrated: false,
            },
            ScenarioSpec::Sweep {
                name: "fig13".into(),
                kind: SweepKind::Figure13,
                seq_len: 4096,
                calibrated: false,
            },
        ];
        let results = engine.serve_batch(&specs);
        assert!(results[0].is_err());
        let ok = results[1].as_ref().unwrap();
        assert_eq!(ok.name, "fig13");
        assert!(matches!(&ok.payload, ResultPayload::Sweep(r) if r.figure13.is_some()));
    }
}
