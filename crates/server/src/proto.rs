//! The wire protocol of the socket front end: newline framing, request
//! parsing, response rendering, and the deterministic transport-fault
//! harness.
//!
//! The protocol is the JSONL batch format made conversational. A frame is
//! one line (LF-terminated, optional CR stripped); a request frame is
//! either a **bare [`ScenarioSpec`] object** — in which case the response
//! frame is byte-identical to the line [`crate::cli::render_results`] would
//! emit for that spec — or an **envelope** `{"id":N,"spec":{…}}`, in which
//! case the response is the same object with `"id":N` prepended so
//! concurrent clients can address errors to requests. Responses stream back
//! per request, in request order, as each scenario completes.
//!
//! Protocol-level failures (a line that is not a request, a shed, a drain
//! notice) render as error frames that reuse the CLI's error-line shape
//! minus the `name` key — there is no spec to name.
//!
//! [`FrameReader`] is the parsing half: an incremental splitter that
//! tolerates arbitrary chunking (byte-at-a-time tricklers, torn frames,
//! many frames per read) and sheds oversize frames without buffering them,
//! so a client cannot balloon server memory by never sending a newline.
//! `tests/proto_fuzz.rs` pins that it never panics and that frame
//! boundaries are invariant under re-chunking.

use rome_telemetry::trace::TraceLevel;

use crate::error::ServerError;
use crate::json::{self, Json};
use crate::spec::{ScenarioResult, ScenarioSpec};

/// Default cap on a single frame's length in bytes (1 MiB). Oversize
/// frames are discarded as they stream in and reported as
/// [`FrameEvent::Oversize`] once their terminating newline arrives.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// One complete frame (or the structured reason there isn't one) popped
/// from a [`FrameReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete line, CR/LF stripped. May be empty.
    Line(String),
    /// A frame longer than the reader's limit; its bytes were discarded as
    /// they arrived (`bytes` counts every discarded byte of the frame).
    Oversize {
        /// Total length of the discarded frame in bytes.
        bytes: usize,
    },
    /// A complete frame that was not valid UTF-8.
    NotUtf8 {
        /// Length of the rejected frame in bytes.
        bytes: usize,
    },
}

/// Incremental newline-delimited frame splitter with bounded buffering.
///
/// Feed it raw socket bytes in whatever chunks the transport delivers;
/// it yields one [`FrameEvent`] per terminated line. The internal buffer
/// never grows past the frame limit: once a partial frame exceeds it, the
/// buffer is dropped and subsequent bytes are counted-and-discarded until
/// the newline, which yields [`FrameEvent::Oversize`].
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    max_frame: usize,
    /// When `Some(n)`, the current frame already overflowed and `n` bytes
    /// of it have been discarded so far.
    discarding: Option<usize>,
}

impl FrameReader {
    /// A reader with the given per-frame byte limit.
    pub fn new(max_frame: usize) -> Self {
        FrameReader {
            buf: Vec::new(),
            max_frame,
            discarding: None,
        }
    }

    /// Append a chunk of transport bytes and pop every frame it completes,
    /// in order. Chunk boundaries are invisible: any re-chunking of the
    /// same byte stream yields the same events.
    pub fn push(&mut self, chunk: &[u8]) -> Vec<FrameEvent> {
        let mut events = Vec::new();
        for &byte in chunk {
            if byte == b'\n' {
                events.push(self.complete_frame());
                continue;
            }
            match self.discarding {
                Some(ref mut n) => *n = n.saturating_add(1),
                None => {
                    if self.buf.len() >= self.max_frame {
                        self.discarding = Some(self.buf.len().saturating_add(1));
                        self.buf.clear();
                    } else {
                        self.buf.push(byte);
                    }
                }
            }
        }
        events
    }

    /// Whether a partial (unterminated) frame is buffered or being
    /// discarded. Used by connection idle accounting, which counts idle
    /// time from the last *complete* frame so a byte-trickling client
    /// cannot hold a connection open indefinitely.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty() || self.discarding.is_some()
    }

    /// Bytes currently buffered for the partial frame (0 while discarding
    /// an oversize frame — that is the point).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    fn complete_frame(&mut self) -> FrameEvent {
        if let Some(discarded) = self.discarding.take() {
            self.buf.clear();
            return FrameEvent::Oversize { bytes: discarded };
        }
        let mut bytes = std::mem::take(&mut self.buf);
        if bytes.last() == Some(&b'\r') {
            bytes.pop();
        }
        let len = bytes.len();
        match String::from_utf8(bytes) {
            Ok(line) => FrameEvent::Line(line),
            Err(_) => FrameEvent::NotUtf8 { bytes: len },
        }
    }
}

impl Default for FrameReader {
    fn default() -> Self {
        FrameReader::new(DEFAULT_MAX_FRAME_BYTES)
    }
}

/// One parsed request frame: a scenario to serve, optionally tagged with a
/// client-chosen id that will be echoed on the response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The envelope id, if the client used the envelope form.
    pub id: Option<u64>,
    /// The scenario to serve.
    pub spec: ScenarioSpec,
    /// Whether the envelope asked for per-phase trace spans
    /// (`"trace":true`): the response frame gains a `trace` object of
    /// wall-clock phase timings. Off for bare-spec frames, so their
    /// responses stay byte-identical to the CLI's.
    pub trace: bool,
    /// The envelope's `"record"` member, if present: run the scenario with
    /// the sim-time flight recorder armed and return the event list on the
    /// response frame. `None` (bare specs and envelopes without the member)
    /// serves exactly as before, byte-identical responses included.
    pub record: Option<RecordSpec>,
}

/// A parsed `"record"` envelope member: how to arm the sim-time flight
/// recorder for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordSpec {
    /// Verbosity to record at (`"requests"` or `"commands"`; never `Off` —
    /// omitting the member is how recording is turned off).
    pub level: TraceLevel,
    /// Cap on the events returned on the response frame, keeping the most
    /// recent (a flight recorder keeps the end of the story). `None` returns
    /// everything the bounded recorder retained.
    pub limit: Option<usize>,
}

/// One parsed inbound frame: a scenario request, or a control operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A scenario request (bare spec or envelope).
    Request(Request),
    /// The `{"op":"stats"}` control frame: answer with a live metrics
    /// snapshot ([`crate::engine::ScenarioEngine::stats_json`]), echoing
    /// the optional envelope id.
    Stats {
        /// The envelope id to echo, if the client sent one.
        id: Option<u64>,
    },
    /// The `{"op":"flight"}` control frame: answer with the engine's
    /// wall-clock black box — the ring of recently served requests
    /// ([`crate::engine::ScenarioEngine::flight_json`]) — echoing the
    /// optional envelope id.
    Flight {
        /// The envelope id to echo, if the client sent one.
        id: Option<u64>,
    },
}

/// Parse one inbound frame: the `{"op":"stats"}` control form (optionally
/// carrying an `id` to echo), the bare-spec request form, or the request
/// envelope `{"id":N,"spec":{…}[,"trace":true]}`. Anything else is a
/// protocol error described by the returned string.
pub fn parse_frame(line: &str) -> Result<Frame, String> {
    let value = json::parse(line).map_err(|e| e.to_string())?;
    if let Some(op) = value.get("op") {
        match op.as_str() {
            Some(name @ ("stats" | "flight")) => {
                let id = match value.get("id") {
                    Some(idv) => Some(
                        idv.as_u64()
                            .ok_or_else(|| "envelope id must be an unsigned integer".to_string())?,
                    ),
                    None => None,
                };
                return Ok(if name == "stats" {
                    Frame::Stats { id }
                } else {
                    Frame::Flight { id }
                });
            }
            Some(other) => return Err(format!("unknown op {other:?}")),
            None => return Err("op must be a string".to_string()),
        }
    }
    request_from_value(&value).map(Frame::Request)
}

/// Parse one request frame. Accepts the bare-spec form (any object carrying
/// a `scenario` tag) and the envelope form `{"id":N,"spec":{…}}`; anything
/// else is a protocol error described by the returned string.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = json::parse(line).map_err(|e| e.to_string())?;
    request_from_value(&value)
}

fn request_from_value(value: &Json) -> Result<Request, String> {
    if let Some(spec_value) = value.get("spec") {
        let id = match value.get("id") {
            Some(idv) => Some(
                idv.as_u64()
                    .ok_or_else(|| "envelope id must be an unsigned integer".to_string())?,
            ),
            None => return Err("envelope with \"spec\" must also carry \"id\"".to_string()),
        };
        let trace = match value.get("trace") {
            Some(tv) => tv
                .as_bool()
                .ok_or_else(|| "envelope trace must be a boolean".to_string())?,
            None => false,
        };
        let record = match value.get("record") {
            Some(rv) => Some(record_from_value(rv)?),
            None => None,
        };
        let spec = ScenarioSpec::from_json(spec_value).map_err(|e| e.to_string())?;
        return Ok(Request {
            id,
            spec,
            trace,
            record,
        });
    }
    let spec = ScenarioSpec::from_json(value).map_err(|e| e.to_string())?;
    Ok(Request {
        id: None,
        spec,
        trace: false,
        record: None,
    })
}

/// Parse a `"record"` envelope member: `{"level":"requests"|"commands"
/// [,"limit":N]}`. The level defaults to `"requests"` when omitted.
fn record_from_value(value: &Json) -> Result<RecordSpec, String> {
    let level = match value.get("level") {
        Some(lv) => {
            let s = lv
                .as_str()
                .ok_or_else(|| "record level must be a string".to_string())?;
            match TraceLevel::parse(s) {
                Some(TraceLevel::Off) | None => {
                    return Err(format!(
                        "record level must be \"requests\" or \"commands\", got {s:?}"
                    ));
                }
                Some(level) => level,
            }
        }
        None => TraceLevel::Requests,
    };
    let limit = match value.get("limit") {
        Some(nv) => Some(
            nv.as_u64()
                .ok_or_else(|| "record limit must be an unsigned integer".to_string())?
                as usize,
        ),
        None => None,
    };
    Ok(RecordSpec { level, limit })
}

/// Render one response frame (no trailing newline). For bare requests this
/// is byte-identical to the corresponding [`crate::cli::render_results`]
/// line; for envelope requests the same object gains a leading `"id"`.
pub fn render_response(
    id: Option<u64>,
    spec: &ScenarioSpec,
    result: &Result<ScenarioResult, ServerError>,
) -> String {
    let line = crate::cli::result_json(spec, result);
    with_id(id, line).emit()
}

/// Render one traced response frame: the ordinary response object with a
/// trailing `"trace"` member holding the wall-clock span object. Only
/// requests that asked (`"trace":true`) are rendered this way — every
/// other response stays byte-identical to the untraced encoding.
pub fn render_traced_response(
    id: Option<u64>,
    spec: &ScenarioSpec,
    result: &Result<ScenarioResult, ServerError>,
    trace: Json,
) -> String {
    let line = match crate::cli::result_json(spec, result) {
        Json::Obj(mut members) => {
            members.push(("trace".to_string(), trace));
            Json::Obj(members)
        }
        other => other,
    };
    with_id(id, line).emit()
}

/// Render one recorded response frame: the ordinary (or traced, when the
/// envelope also asked for wall-clock spans) response object with a
/// trailing `"record"` member holding the sim-time event list. Only
/// requests that sent `"record":{…}` are rendered this way — every other
/// response stays byte-identical to the unrecorded encoding.
pub fn render_recorded_response(
    id: Option<u64>,
    spec: &ScenarioSpec,
    result: &Result<ScenarioResult, ServerError>,
    trace: Option<Json>,
    record: Json,
) -> String {
    let line = match crate::cli::result_json(spec, result) {
        Json::Obj(mut members) => {
            if let Some(trace) = trace {
                members.push(("trace".to_string(), trace));
            }
            members.push(("record".to_string(), record));
            Json::Obj(members)
        }
        other => other,
    };
    with_id(id, line).emit()
}

/// Render a harvested trace buffer as the `"record"` response member:
/// `{"level":…,"dropped":N,"events":[…]}`, events in the canonical
/// [`rome_telemetry::trace::TraceEvent`] order. When `limit` is set, only
/// the most recent `limit` events are kept (a flight recorder keeps the end
/// of the story) and the trimmed ones are counted into `dropped`.
pub fn record_json(
    level: TraceLevel,
    buffer: &rome_telemetry::trace::TraceBuffer,
    limit: Option<usize>,
) -> Json {
    let keep = limit.unwrap_or(buffer.events.len());
    let start = buffer.events.len().saturating_sub(keep);
    let trimmed = start as u64;
    let events: Vec<Json> = buffer.events[start..]
        .iter()
        .map(|ev| {
            Json::obj([
                ("ts", Json::from(ev.ts)),
                ("dur", Json::from(ev.dur)),
                ("kind", Json::from(ev.kind.as_str())),
                ("channel", Json::from(u64::from(ev.channel))),
                ("bank", Json::from(u64::from(ev.bank))),
                ("row", Json::from(u64::from(ev.row))),
                ("id", Json::from(ev.id)),
                ("bytes", Json::from(ev.bytes)),
                ("write", Json::from(ev.write)),
            ])
        })
        .collect();
    Json::obj([
        ("level", Json::from(level.as_str())),
        ("dropped", Json::from(buffer.dropped + trimmed)),
        ("events", Json::Arr(events)),
    ])
}

/// Render one stats response frame (no trailing newline): the snapshot
/// body, gaining a leading `"id"` when the control frame carried one.
pub fn render_stats_frame(id: Option<u64>, body: Json) -> String {
    with_id(id, body).emit()
}

/// Render one flight (black-box) response frame (no trailing newline): the
/// engine's [`crate::engine::ScenarioEngine::flight_json`] body, gaining a
/// leading `"id"` when the `{"op":"flight"}` control frame carried one.
pub fn render_flight_frame(id: Option<u64>, body: Json) -> String {
    with_id(id, body).emit()
}

/// Render a protocol-level error frame (no trailing newline): the CLI error
/// shape minus `name` — there is no spec to name. Carries the envelope id
/// when the offending request had one.
pub fn error_frame(id: Option<u64>, err: &ServerError) -> String {
    let mut members = vec![
        ("scenario", Json::from("error")),
        ("error", Json::from(err.detail.as_str())),
        ("code", Json::from(err.code.as_str())),
    ];
    if let Some(ms) = err.retry_after_ms {
        members.push(("retry_after_ms", Json::from(ms)));
    }
    with_id(id, Json::obj(members)).emit()
}

fn with_id(id: Option<u64>, line: Json) -> Json {
    match (id, line) {
        (Some(id), Json::Obj(mut members)) => {
            members.insert(0, ("id".to_string(), Json::from(id)));
            Json::Obj(members)
        }
        (_, line) => line,
    }
}

/// A deterministic misbehaving-client script, the transport-layer analogue
/// of [`crate::engine::FaultPlan`]: tests derive reproducible client faults
/// (where to tear a frame, how slowly to trickle bytes, when to disconnect)
/// from a seed and a connection ordinal instead of from a real flaky
/// network.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransportFaultPlan {
    seed: u64,
    faults: Vec<(usize, TransportFault)>,
}

/// One scripted client misbehavior, addressed to a connection ordinal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// Close the socket after writing exactly `bytes` bytes of the request
    /// stream (mid-frame when `bytes` lands inside a line).
    DisconnectAfter {
        /// Bytes written before the abrupt close.
        bytes: usize,
    },
    /// Write the request stream `chunk` bytes at a time, sleeping
    /// `delay_ms` between chunks (a slow-loris when `chunk` is 1).
    SlowWriter {
        /// Bytes per write.
        chunk: usize,
        /// Milliseconds between writes.
        delay_ms: u64,
    },
    /// Write the stream in two writes torn at byte `at`, with a pause
    /// between them long enough for the server to observe the torn frame.
    TornFrame {
        /// Byte offset of the tear.
        at: usize,
        /// Milliseconds to pause at the tear.
        pause_ms: u64,
    },
}

impl TransportFaultPlan {
    /// An empty plan with a seed for derived placements.
    pub fn new(seed: u64) -> Self {
        TransportFaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Arm `fault` on the connection at `conn_index`.
    pub fn with_fault(mut self, conn_index: usize, fault: TransportFault) -> Self {
        self.faults.push((conn_index, fault));
        self
    }

    /// The fault armed at `conn_index`, if any (latest arming wins).
    pub fn fault_for(&self, conn_index: usize) -> Option<TransportFault> {
        self.faults
            .iter()
            .rev()
            .find(|(i, _)| *i == conn_index)
            .map(|(_, f)| *f)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A reproducible pseudo-random offset in `[0, span)` derived from the
    /// seed and the connection index (splitmix64), for seeded-but-arbitrary
    /// tear/disconnect placement.
    pub fn derived_offset(&self, conn_index: usize, span: usize) -> usize {
        let mut z = self
            .seed
            .wrapping_add((conn_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if span == 0 {
            0
        } else {
            (z % span as u64) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_split_on_newlines_regardless_of_chunking() {
        let stream = b"first\nsecond\r\n\nthird";
        let whole = {
            let mut r = FrameReader::default();
            r.push(stream)
        };
        let byte_at_a_time = {
            let mut r = FrameReader::default();
            let mut events = Vec::new();
            for b in stream {
                events.extend(r.push(&[*b]));
            }
            events
        };
        assert_eq!(whole, byte_at_a_time);
        assert_eq!(
            whole,
            vec![
                FrameEvent::Line("first".into()),
                FrameEvent::Line("second".into()),
                FrameEvent::Line(String::new()),
            ]
        );
    }

    #[test]
    fn partial_frames_are_tracked_but_not_emitted() {
        let mut r = FrameReader::default();
        assert!(r.push(b"unterminated").is_empty());
        assert!(r.has_partial());
        assert_eq!(r.buffered(), "unterminated".len());
        assert_eq!(r.push(b"\n"), vec![FrameEvent::Line("unterminated".into())]);
        assert!(!r.has_partial());
    }

    #[test]
    fn oversize_frames_are_discarded_not_buffered() {
        let mut r = FrameReader::new(8);
        let events = r.push(b"0123456789abcdef");
        assert!(events.is_empty());
        // The buffer stopped growing at the limit.
        assert_eq!(r.buffered(), 0);
        assert!(r.has_partial());
        let events = r.push(b"\nok\n");
        assert_eq!(
            events,
            vec![
                FrameEvent::Oversize { bytes: 16 },
                FrameEvent::Line("ok".into()),
            ]
        );
    }

    #[test]
    fn invalid_utf8_frames_are_structured_errors() {
        let mut r = FrameReader::default();
        let events = r.push(&[0xFF, 0xFE, b'\n', b'o', b'k', b'\n']);
        assert_eq!(
            events,
            vec![
                FrameEvent::NotUtf8 { bytes: 2 },
                FrameEvent::Line("ok".into()),
            ]
        );
    }

    #[test]
    fn bare_and_envelope_requests_parse() {
        let bare = "{\"scenario\":\"calibration\",\"name\":\"c\",\"system\":\"hbm4\"}";
        let req = parse_request(bare).unwrap();
        assert_eq!(req.id, None);
        assert_eq!(req.spec.name(), "c");

        let envelope = format!("{{\"id\":7,\"spec\":{bare}}}");
        let req = parse_request(&envelope).unwrap();
        assert_eq!(req.id, Some(7));
        assert_eq!(req.spec.name(), "c");

        assert!(parse_request("{\"spec\":{}}").is_err());
        assert!(parse_request("{\"id\":\"x\",\"spec\":{}}").is_err());
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn stats_and_trace_frames_parse() {
        assert_eq!(
            parse_frame("{\"op\":\"stats\"}").unwrap(),
            Frame::Stats { id: None }
        );
        assert_eq!(
            parse_frame("{\"op\":\"stats\",\"id\":9}").unwrap(),
            Frame::Stats { id: Some(9) }
        );
        assert!(parse_frame("{\"op\":\"flush\"}").is_err());
        assert!(parse_frame("{\"op\":7}").is_err());
        assert!(parse_frame("{\"op\":\"stats\",\"id\":\"x\"}").is_err());

        let bare = "{\"scenario\":\"calibration\",\"name\":\"c\",\"system\":\"hbm4\"}";
        let Frame::Request(req) = parse_frame(bare).unwrap() else {
            panic!("bare spec must parse as a request");
        };
        assert!(!req.trace, "bare requests never trace");

        let traced = format!("{{\"id\":2,\"trace\":true,\"spec\":{bare}}}");
        let Frame::Request(req) = parse_frame(&traced).unwrap() else {
            panic!("envelope must parse as a request");
        };
        assert_eq!(req.id, Some(2));
        assert!(req.trace);
        assert!(parse_frame(&format!("{{\"id\":2,\"trace\":1,\"spec\":{bare}}}")).is_err());
    }

    #[test]
    fn error_frames_carry_code_hint_and_id() {
        let err = ServerError::overloaded(0, "write queue full".into(), Some(10));
        assert_eq!(
            error_frame(Some(3), &err),
            "{\"id\":3,\"scenario\":\"error\",\"error\":\"write queue full\",\
             \"code\":\"overloaded\",\"retry_after_ms\":10}"
        );
        let err = ServerError::unavailable(0, "draining");
        assert_eq!(
            error_frame(None, &err),
            "{\"scenario\":\"error\",\"error\":\"draining\",\"code\":\"unavailable\"}"
        );
    }

    #[test]
    fn derived_offsets_are_reproducible_and_bounded() {
        let plan = TransportFaultPlan::new(42);
        let a = plan.derived_offset(5, 1000);
        assert_eq!(a, TransportFaultPlan::new(42).derived_offset(5, 1000));
        assert!(a < 1000);
        assert_eq!(plan.derived_offset(5, 0), 0);
        let plan = plan
            .with_fault(1, TransportFault::DisconnectAfter { bytes: 10 })
            .with_fault(
                1,
                TransportFault::SlowWriter {
                    chunk: 1,
                    delay_ms: 2,
                },
            );
        assert_eq!(
            plan.fault_for(1),
            Some(TransportFault::SlowWriter {
                chunk: 1,
                delay_ms: 2
            })
        );
        assert_eq!(plan.fault_for(0), None);
    }
}
