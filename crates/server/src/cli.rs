//! The JSONL batch front end.
//!
//! One [`ScenarioSpec`] object per input line (blank lines and `#` comments
//! skipped), one result object per output line, *in input order* — the
//! output is a deterministic function of the input bytes, so piping the same
//! batch through the `rome-server` binary twice (or through
//! [`ScenarioEngine::serve_batch`] in process) produces byte-identical
//! JSONL; the regression suite pins this. A scenario that fails to run
//! renders as an `{"name":…,"scenario":"error","error":…,"code":…}` line
//! without poisoning the rest of the batch (with `retry_after_ms` appended
//! for transient rejections); a line that fails to *parse* rejects the
//! whole batch up front (nothing runs half-configured).
//!
//! [`serve_jsonl_with_retry`] adds the operational loop on top: scenarios
//! shed by transient admission rejections are retried as a sub-batch with
//! bounded backoff, honoring the engine's retry hints. Against an engine
//! whose admission never sheds (the default), it is byte-identical to
//! [`serve_jsonl`].

use crate::engine::ScenarioEngine;
use crate::error::ServerError;
use crate::json::{self, Json};
use crate::spec::{ScenarioResult, ScenarioSpec};

/// A batch rejected at parse time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// 1-based input line of the offending spec.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BatchError {}

/// Parse a JSONL batch (blank lines and `#` comment lines skipped).
pub fn parse_batch(input: &str) -> Result<Vec<ScenarioSpec>, BatchError> {
    let mut specs = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let value = json::parse(trimmed).map_err(|e| BatchError {
            line: i + 1,
            message: e.to_string(),
        })?;
        specs.push(ScenarioSpec::from_json(&value).map_err(|e| BatchError {
            line: i + 1,
            message: e.to_string(),
        })?);
    }
    Ok(specs)
}

/// Render a batch's results (paired with their specs, in batch order) as
/// canonical JSONL, one line per scenario. Error lines keep the legacy
/// `name`/`scenario`/`error` keys first (pre-structured consumers keep
/// parsing), then append the machine-readable `code` and, for transient
/// rejections, `retry_after_ms`.
pub fn render_results(
    specs: &[ScenarioSpec],
    results: &[Result<ScenarioResult, ServerError>],
) -> String {
    let mut out = String::new();
    for (spec, result) in specs.iter().zip(results) {
        out.push_str(&result_json(spec, result).emit());
        out.push('\n');
    }
    out
}

/// One scenario's result line as a [`Json`] value — the unit
/// [`render_results`] is built from, shared with the socket protocol
/// ([`crate::proto::render_response`]) so both front ends render
/// byte-identical lines.
pub fn result_json(spec: &ScenarioSpec, result: &Result<ScenarioResult, ServerError>) -> Json {
    match result {
        Ok(r) => r.to_json(),
        Err(e) => {
            let mut members = vec![
                ("name", Json::from(spec.name())),
                ("scenario", Json::from("error")),
                ("error", Json::from(e.detail.as_str())),
                ("code", Json::from(e.code.as_str())),
            ];
            if let Some(ms) = e.retry_after_ms {
                members.push(("retry_after_ms", Json::from(ms)));
            }
            Json::obj(members)
        }
    }
}

/// The whole CLI path in one call: parse the JSONL batch, serve it on
/// `engine`, render the results. The `rome-server` binary is a thin wrapper
/// over [`serve_jsonl_with_retry`] (which degenerates to exactly this
/// function against a never-shedding engine), which is what keeps the CLI
/// and the in-process [`ScenarioEngine::serve_batch`] byte-identical.
pub fn serve_jsonl(engine: &ScenarioEngine, input: &str) -> Result<String, BatchError> {
    let specs = parse_batch(input)?;
    let results = engine.serve_batch(&specs);
    Ok(render_results(&specs, &results))
}

/// Bounded retry for the transient error class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retry rounds after the initial attempt.
    pub max_retries: u32,
    /// Exponential backoff floor: round `k` waits at least
    /// `base_backoff_ms << k` ms (the engine's retry hint can only raise
    /// the wait).
    pub base_backoff_ms: u64,
    /// Seed for the jitter added on top of the backoff floor, so that many
    /// clients shed at the same instant do not retry in lockstep. The
    /// jitter is a pure function of `(jitter_seed, round)` — same seed,
    /// same waits — which keeps retry timing reproducible in tests.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 10,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry round `round` (0-based), given the largest
    /// engine retry hint among the shed scenarios: the floor is the larger
    /// of the hint and the exponential schedule `base_backoff_ms << round`,
    /// and a seeded jitter in `[0, floor/2]` is added on top. The hint is
    /// honored as a *floor* — jitter never schedules a retry earlier than
    /// the engine asked.
    pub fn backoff_ms(&self, round: u32, hint: u64) -> u64 {
        let floor = self
            .base_backoff_ms
            .checked_shl(round)
            .unwrap_or(u64::MAX)
            .max(hint);
        // splitmix64 over (seed, round): deterministic, well-mixed jitter.
        let mut z = self
            .jitter_seed
            .wrapping_add(u64::from(round).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let jitter = z % (floor / 2 + 1);
        floor.saturating_add(jitter)
    }

    /// The stateful schedule for one retry loop (see [`RetrySchedule`]).
    pub fn schedule(&self) -> RetrySchedule {
        RetrySchedule {
            policy: *self,
            state: self.jitter_seed,
            round: 0,
        }
    }
}

/// One retry loop's backoff stream: the stateful form of [`RetryPolicy`].
///
/// [`RetryPolicy::backoff_ms`] re-derives its jitter from `(seed, round)`
/// on every call, so every call site holding the same policy replays the
/// same waits — many loops shed at the same instant retry in lockstep
/// anyway, defeating the jitter. A `RetrySchedule` instead owns one seeded
/// splitmix64 *stream*: it is created once per retry loop
/// ([`serve_jsonl_with_retry`] threads it through), each draw advances the
/// state, and the whole end-to-end wait sequence is a deterministic
/// function of the seed — reproducible in tests, yet streams with
/// different seeds stay de-synchronized across draws.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetrySchedule {
    policy: RetryPolicy,
    state: u64,
    round: u32,
}

impl RetrySchedule {
    /// Draw the wait before the next retry round, honoring `hint` (the
    /// largest engine retry hint among the shed scenarios) as a floor
    /// exactly as [`RetryPolicy::backoff_ms`] does, and advance both the
    /// round counter and the jitter stream.
    pub fn next_backoff_ms(&mut self, hint: u64) -> u64 {
        let floor = self
            .policy
            .base_backoff_ms
            .checked_shl(self.round)
            .unwrap_or(u64::MAX)
            .max(hint);
        self.round = self.round.saturating_add(1);
        // splitmix64: advance the stream, mix the new state into a draw.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let jitter = z % (floor / 2 + 1);
        floor.saturating_add(jitter)
    }

    /// Retry rounds drawn so far.
    pub fn rounds_taken(&self) -> u32 {
        self.round
    }
}

/// [`serve_jsonl`] plus the operational retry loop: after the initial
/// attempt, scenarios that failed with a *transient* error (an admission
/// rejection carrying a retry hint) are re-served as a sub-batch — up to
/// `policy.max_retries` rounds, each waiting the larger of the engine's
/// hint and the policy's exponential backoff — and their fresh results are
/// mapped back to the original batch positions. Permanent errors are never
/// retried.
pub fn serve_jsonl_with_retry(
    engine: &ScenarioEngine,
    input: &str,
    policy: &RetryPolicy,
) -> Result<String, BatchError> {
    let specs = parse_batch(input)?;
    let mut results = engine.serve_batch(&specs);
    // One seeded backoff stream for the whole loop: the end-to-end wait
    // sequence is a deterministic function of the policy's seed.
    let mut schedule = policy.schedule();
    for _ in 0..policy.max_retries {
        let transient: Vec<usize> = results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match r {
                Err(e) if e.is_transient() => Some(i),
                _ => None,
            })
            .collect();
        if transient.is_empty() {
            break;
        }
        let hint = transient
            .iter()
            .filter_map(|&i| match &results[i] {
                Err(e) => e.retry_after_ms,
                Ok(_) => None,
            })
            .max()
            .unwrap_or(0);
        let backoff = schedule.next_backoff_ms(hint);
        engine.registry().counter("admission.retry_rounds").inc();
        if backoff > 0 {
            std::thread::sleep(std::time::Duration::from_millis(backoff));
        }
        let sub_batch: Vec<ScenarioSpec> = transient.iter().map(|&i| specs[i].clone()).collect();
        let retried = engine.serve_batch(&sub_batch);
        for (&original, result) in transient.iter().zip(retried) {
            results[original] = result.map_err(|e| e.at_index(original));
        }
    }
    Ok(render_results(&specs, &results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineLimits;

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let input =
            "# a comment\n\n{\"scenario\":\"calibration\",\"name\":\"c\",\"system\":\"hbm4\"}\n";
        let specs = parse_batch(input).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].name(), "c");
    }

    #[test]
    fn parse_failures_name_the_line() {
        let input = "{\"scenario\":\"calibration\",\"name\":\"c\",\"system\":\"hbm4\"}\nnot json\n";
        let e = parse_batch(input).unwrap_err();
        assert_eq!(e.line, 2);
        let input = "{\"scenario\":\"nope\",\"name\":\"c\"}";
        let e = parse_batch(input).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown scenario tag"));
    }

    #[test]
    fn degenerate_specs_render_as_error_lines_instead_of_panicking() {
        // Regression: zero windows/depths used to trip downstream asserts
        // and abort the whole process; they must come back as error lines.
        let engine = ScenarioEngine::new();
        let input = concat!(
            "{\"scenario\":\"closed_loop\",\"name\":\"w0\",\"system\":\"rome\",\"channels\":2,",
            "\"windows\":[0],\"max_ns\":1000,\"workload\":{\"type\":\"burst\",\"base\":0,",
            "\"span\":4096,\"bytes_per_burst\":4096,\"granularity\":4096,\"period_ns\":0,",
            "\"bursts\":1,\"write_period\":0}}\n",
            "{\"scenario\":\"queue_depth\",\"name\":\"d0\",\"system\":\"hbm4\",\"depths\":[1,0],",
            "\"total_bytes\":1024,\"granularity\":32}\n",
            "{\"scenario\":\"calibration\",\"name\":\"ok\",\"system\":\"rome\"}\n",
        );
        let out = serve_jsonl(&engine, input).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"scenario\":\"error\"") && lines[0].contains("window"));
        assert!(lines[1].contains("\"scenario\":\"error\"") && lines[1].contains("depth"));
        assert!(lines[2].starts_with("{\"name\":\"ok\",\"scenario\":\"calibration\""));
    }

    #[test]
    fn out_of_range_and_zero_byte_fields_are_rejected_at_parse_time() {
        // Regression: channel counts above u16 used to truncate silently;
        // zero-byte trace records used to inject and never complete.
        let too_wide = "{\"scenario\":\"closed_loop\",\"name\":\"x\",\"system\":\"rome\",\"channels\":65537,\"windows\":[1],\"max_ns\":1000,\"workload\":{\"type\":\"burst\",\"base\":0,\"span\":4096,\"bytes_per_burst\":4096,\"granularity\":4096,\"period_ns\":0,\"bursts\":1,\"write_period\":0}}";
        let e = parse_batch(too_wide).unwrap_err();
        assert!(e.message.contains("16 bits"), "{e}");
        let zero_bytes = "{\"scenario\":\"closed_loop\",\"name\":\"x\",\"system\":\"rome\",\"channels\":2,\"windows\":[1],\"max_ns\":1000,\"workload\":{\"type\":\"trace\",\"records\":[{\"arrival\":0,\"kind\":\"read\",\"addr\":0,\"bytes\":0,\"tag\":0}]}}";
        let e = parse_batch(zero_bytes).unwrap_err();
        assert!(e.message.contains("bytes must be non-zero"), "{e}");
    }

    #[test]
    fn run_errors_render_as_error_lines_in_order() {
        let engine = ScenarioEngine::new();
        let input = "{\"scenario\":\"tpot\",\"name\":\"bad\",\"model\":\"gpt-2\",\"batch\":8,\"seq_len\":4096}\n{\"scenario\":\"sweep\",\"name\":\"ok\",\"kind\":\"figure13\",\"seq_len\":4096}\n";
        let out = serve_jsonl(&engine, input).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"name\":\"bad\",\"scenario\":\"error\""));
        assert!(lines[0].contains("unknown model"));
        assert!(lines[0].contains("\"code\":\"invalid_spec\""));
        assert!(lines[1].starts_with("{\"name\":\"ok\",\"scenario\":\"sweep\""));
        assert!(lines[1].contains("\"figure13\":["));
    }

    #[test]
    fn transient_rejections_render_their_retry_hint() {
        let mut limits = EngineLimits::default();
        limits.admission.max_in_flight = 0;
        limits.admission.retry_after_ms = 3;
        let engine = ScenarioEngine::with_limits(limits);
        let input = "{\"scenario\":\"calibration\",\"name\":\"c\",\"system\":\"hbm4\"}\n";
        let out = serve_jsonl(&engine, input).unwrap();
        assert!(out.starts_with("{\"name\":\"c\",\"scenario\":\"error\""));
        assert!(out.contains("\"code\":\"rejected\""));
        assert!(out.contains("\"retry_after_ms\":3"));
    }

    #[test]
    fn retry_loop_gives_up_after_bounded_rounds() {
        // A permanently saturated engine: every round sheds, the loop stops
        // at max_retries, and the final render still carries the transient
        // rejection rather than hanging.
        let mut limits = EngineLimits::default();
        limits.admission.max_in_flight = 0;
        limits.admission.retry_after_ms = 1;
        let engine = ScenarioEngine::with_limits(limits);
        let policy = RetryPolicy {
            max_retries: 2,
            base_backoff_ms: 0,
            jitter_seed: 0,
        };
        let input = "{\"scenario\":\"calibration\",\"name\":\"c\",\"system\":\"hbm4\"}\n";
        let out = serve_jsonl_with_retry(&engine, input, &policy).unwrap();
        assert!(out.contains("\"code\":\"rejected\""));
    }

    #[test]
    fn backoff_honors_hint_as_floor_and_jitter_is_seeded() {
        let policy = RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 10,
            jitter_seed: 42,
        };
        for round in 0..3 {
            let floor = (10u64 << round).max(25);
            let wait = policy.backoff_ms(round, 25);
            // Never earlier than the engine's hint or the exponential
            // schedule; jitter bounded at half the floor.
            assert!(wait >= floor, "round {round}: {wait} < {floor}");
            assert!(wait <= floor + floor / 2, "round {round}: {wait}");
            // Deterministic: same seed, same wait.
            assert_eq!(wait, policy.backoff_ms(round, 25));
        }
        // Different seeds de-synchronize (holds for these specific seeds).
        let other = RetryPolicy {
            jitter_seed: 7,
            ..policy
        };
        assert_ne!(policy.backoff_ms(0, 25), other.backoff_ms(0, 25));
        // Zero floor stays zero: a hintless, zero-base policy never sleeps.
        let zero = RetryPolicy {
            max_retries: 1,
            base_backoff_ms: 0,
            jitter_seed: 42,
        };
        assert_eq!(zero.backoff_ms(0, 0), 0);
    }

    #[test]
    fn retry_schedules_are_seeded_streams() {
        let policy = RetryPolicy {
            max_retries: 4,
            base_backoff_ms: 10,
            jitter_seed: 42,
        };
        let mut a = policy.schedule();
        let mut b = policy.schedule();
        for round in 0..4 {
            let floor = (10u64 << round).max(25);
            let wait = a.next_backoff_ms(25);
            // Bounds match the stateless form: hint-or-exponential floor,
            // jitter at most half the floor.
            assert!(wait >= floor, "round {round}: {wait} < {floor}");
            assert!(wait <= floor + floor / 2, "round {round}: {wait}");
            // Same seed, same stream, draw for draw.
            assert_eq!(wait, b.next_backoff_ms(25));
        }
        assert_eq!(a.rounds_taken(), 4);
        // Different seeds de-synchronize from the very first draw (holds
        // for these specific seeds).
        let mut other = RetryPolicy {
            jitter_seed: 7,
            ..policy
        }
        .schedule();
        assert_ne!(
            policy.schedule().next_backoff_ms(25),
            other.next_backoff_ms(25)
        );
        // Zero floor stays zero: a hintless, zero-base schedule never
        // sleeps, whatever the seed.
        let mut zero = RetryPolicy {
            max_retries: 1,
            base_backoff_ms: 0,
            jitter_seed: 42,
        }
        .schedule();
        assert_eq!(zero.next_backoff_ms(0), 0);
    }

    #[test]
    fn retry_rounds_are_counted_in_the_registry() {
        let mut limits = EngineLimits::default();
        limits.admission.max_in_flight = 0;
        limits.admission.retry_after_ms = 1;
        let engine = ScenarioEngine::with_limits(limits);
        let policy = RetryPolicy {
            max_retries: 2,
            base_backoff_ms: 0,
            jitter_seed: 0,
        };
        let input = "{\"scenario\":\"calibration\",\"name\":\"c\",\"system\":\"hbm4\"}\n";
        serve_jsonl_with_retry(&engine, input, &policy).unwrap();
        assert_eq!(engine.registry().counter("admission.retry_rounds").get(), 2);
        // Every attempt (initial + 2 retries) was shed at saturation.
        assert_eq!(
            engine
                .registry()
                .counter("admission.rejected_transient")
                .get(),
            3
        );
    }

    #[test]
    fn retry_path_is_byte_identical_without_shedding() {
        let engine = ScenarioEngine::new();
        let input = "{\"scenario\":\"tpot\",\"name\":\"bad\",\"model\":\"gpt-2\",\"batch\":8,\"seq_len\":4096}\n{\"scenario\":\"sweep\",\"name\":\"ok\",\"kind\":\"figure13\",\"seq_len\":4096}\n";
        let plain = serve_jsonl(&engine, input).unwrap();
        let retried = serve_jsonl_with_retry(&engine, input, &RetryPolicy::default()).unwrap();
        assert_eq!(plain, retried);
    }
}
