//! The JSONL batch front end.
//!
//! One [`ScenarioSpec`] object per input line (blank lines and `#` comments
//! skipped), one result object per output line, *in input order* — the
//! output is a deterministic function of the input bytes, so piping the same
//! batch through the `rome-server` binary twice (or through
//! [`ScenarioEngine::serve_batch`] in process) produces byte-identical
//! JSONL; the regression suite pins this. A scenario that fails to run
//! renders as an `{"name":…,"scenario":"error","error":…}` line without
//! poisoning the rest of the batch; a line that fails to *parse* rejects the
//! whole batch up front (nothing runs half-configured).

use crate::engine::ScenarioEngine;
use crate::json::{self, Json};
use crate::spec::{ScenarioResult, ScenarioSpec, SpecError};

/// A batch rejected at parse time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// 1-based input line of the offending spec.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BatchError {}

/// Parse a JSONL batch (blank lines and `#` comment lines skipped).
pub fn parse_batch(input: &str) -> Result<Vec<ScenarioSpec>, BatchError> {
    let mut specs = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let value = json::parse(trimmed).map_err(|e| BatchError {
            line: i + 1,
            message: e.to_string(),
        })?;
        specs.push(ScenarioSpec::from_json(&value).map_err(|e| BatchError {
            line: i + 1,
            message: e.to_string(),
        })?);
    }
    Ok(specs)
}

/// Render a batch's results (paired with their specs, in batch order) as
/// canonical JSONL, one line per scenario.
pub fn render_results(
    specs: &[ScenarioSpec],
    results: &[Result<ScenarioResult, SpecError>],
) -> String {
    let mut out = String::new();
    for (spec, result) in specs.iter().zip(results) {
        let line = match result {
            Ok(r) => r.to_json(),
            Err(e) => Json::obj([
                ("name", Json::from(spec.name())),
                ("scenario", Json::from("error")),
                ("error", Json::from(e.0.as_str())),
            ]),
        };
        out.push_str(&line.emit());
        out.push('\n');
    }
    out
}

/// The whole CLI path in one call: parse the JSONL batch, serve it on
/// `engine`, render the results. The `rome-server` binary is a thin wrapper
/// over exactly this function, which is what keeps the CLI and the
/// in-process [`ScenarioEngine::serve_batch`] byte-identical.
pub fn serve_jsonl(engine: &ScenarioEngine, input: &str) -> Result<String, BatchError> {
    let specs = parse_batch(input)?;
    let results = engine.serve_batch(&specs);
    Ok(render_results(&specs, &results))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let input =
            "# a comment\n\n{\"scenario\":\"calibration\",\"name\":\"c\",\"system\":\"hbm4\"}\n";
        let specs = parse_batch(input).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].name(), "c");
    }

    #[test]
    fn parse_failures_name_the_line() {
        let input = "{\"scenario\":\"calibration\",\"name\":\"c\",\"system\":\"hbm4\"}\nnot json\n";
        let e = parse_batch(input).unwrap_err();
        assert_eq!(e.line, 2);
        let input = "{\"scenario\":\"nope\",\"name\":\"c\"}";
        let e = parse_batch(input).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown scenario tag"));
    }

    #[test]
    fn degenerate_specs_render_as_error_lines_instead_of_panicking() {
        // Regression: zero windows/depths used to trip downstream asserts
        // and abort the whole process; they must come back as error lines.
        let engine = ScenarioEngine::new();
        let input = concat!(
            "{\"scenario\":\"closed_loop\",\"name\":\"w0\",\"system\":\"rome\",\"channels\":2,",
            "\"windows\":[0],\"max_ns\":1000,\"workload\":{\"type\":\"burst\",\"base\":0,",
            "\"span\":4096,\"bytes_per_burst\":4096,\"granularity\":4096,\"period_ns\":0,",
            "\"bursts\":1,\"write_period\":0}}\n",
            "{\"scenario\":\"queue_depth\",\"name\":\"d0\",\"system\":\"hbm4\",\"depths\":[1,0],",
            "\"total_bytes\":1024,\"granularity\":32}\n",
            "{\"scenario\":\"calibration\",\"name\":\"ok\",\"system\":\"rome\"}\n",
        );
        let out = serve_jsonl(&engine, input).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"scenario\":\"error\"") && lines[0].contains("window"));
        assert!(lines[1].contains("\"scenario\":\"error\"") && lines[1].contains("depth"));
        assert!(lines[2].starts_with("{\"name\":\"ok\",\"scenario\":\"calibration\""));
    }

    #[test]
    fn out_of_range_and_zero_byte_fields_are_rejected_at_parse_time() {
        // Regression: channel counts above u16 used to truncate silently;
        // zero-byte trace records used to inject and never complete.
        let too_wide = "{\"scenario\":\"closed_loop\",\"name\":\"x\",\"system\":\"rome\",\"channels\":65537,\"windows\":[1],\"max_ns\":1000,\"workload\":{\"type\":\"burst\",\"base\":0,\"span\":4096,\"bytes_per_burst\":4096,\"granularity\":4096,\"period_ns\":0,\"bursts\":1,\"write_period\":0}}";
        let e = parse_batch(too_wide).unwrap_err();
        assert!(e.message.contains("16 bits"), "{e}");
        let zero_bytes = "{\"scenario\":\"closed_loop\",\"name\":\"x\",\"system\":\"rome\",\"channels\":2,\"windows\":[1],\"max_ns\":1000,\"workload\":{\"type\":\"trace\",\"records\":[{\"arrival\":0,\"kind\":\"read\",\"addr\":0,\"bytes\":0,\"tag\":0}]}}";
        let e = parse_batch(zero_bytes).unwrap_err();
        assert!(e.message.contains("bytes must be non-zero"), "{e}");
    }

    #[test]
    fn run_errors_render_as_error_lines_in_order() {
        let engine = ScenarioEngine::new();
        let input = "{\"scenario\":\"tpot\",\"name\":\"bad\",\"model\":\"gpt-2\",\"batch\":8,\"seq_len\":4096}\n{\"scenario\":\"sweep\",\"name\":\"ok\",\"kind\":\"figure13\",\"seq_len\":4096}\n";
        let out = serve_jsonl(&engine, input).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"name\":\"bad\",\"scenario\":\"error\""));
        assert!(lines[0].contains("unknown model"));
        assert!(lines[1].starts_with("{\"name\":\"ok\",\"scenario\":\"sweep\""));
        assert!(lines[1].contains("\"figure13\":["));
    }
}
