//! Structured serving errors: every way a scenario can fail, as data.
//!
//! The serve path never surfaces a bare panic or a stringly error: each
//! failed scenario of a batch becomes one [`ServerError`] carrying a stable
//! machine-readable [`ErrorCode`], the index of the scenario inside its
//! batch, a human-readable detail, and — for the transient class — a retry
//! hint. The CLI front end renders these as per-line error JSON (appending
//! `code` and `retry_after_ms` after the legacy `name`/`scenario`/`error`
//! keys, so pre-existing consumers keep parsing), and
//! [`crate::cli::serve_jsonl_with_retry`] keys its bounded retry loop on
//! [`ServerError::is_transient`].

use std::fmt;

use crate::spec::SpecError;

/// Stable machine-readable class of a serving failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The spec itself is invalid (unknown model, zero-sized traffic, …).
    /// Resubmitting the same spec will fail the same way.
    InvalidSpec,
    /// The scenario's worker panicked; the panic was isolated to this
    /// scenario and the engine remains healthy.
    Panicked,
    /// Admission control shed the batch before any scenario ran. Transient
    /// when a retry hint is present (the engine was momentarily saturated);
    /// permanent when absent (the batch itself exceeds a configured limit).
    Rejected,
    /// An internal invariant failed. A bug, not a caller error.
    Internal,
    /// A transport-layer shed: the connection's bounded write queue filled
    /// (stalled reader) or the server is at its connection limit. Transient
    /// when a retry hint is present, just like [`ErrorCode::Rejected`].
    Overloaded,
    /// The service is permanently refusing new work on this connection —
    /// draining for shutdown or closing an idle/expired session. Never
    /// transient; reconnecting to a draining server gains nothing.
    Unavailable,
}

impl ErrorCode {
    /// Stable snake_case name, used verbatim in rendered error lines.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::InvalidSpec => "invalid_spec",
            ErrorCode::Panicked => "panicked",
            ErrorCode::Rejected => "rejected",
            ErrorCode::Internal => "internal",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Unavailable => "unavailable",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One scenario's structured failure. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerError {
    /// Machine-readable failure class.
    pub code: ErrorCode,
    /// Index of the failed scenario inside its batch (0-based).
    pub scenario_index: usize,
    /// Human-readable description (the legacy `error` field of rendered
    /// error lines, byte-identical to the pre-structured messages for the
    /// invalid-spec class).
    pub detail: String,
    /// For transient rejections: how long the client should wait before
    /// resubmitting. `None` for permanent failures.
    pub retry_after_ms: Option<u64>,
}

impl ServerError {
    /// An invalid spec, carrying the spec layer's message verbatim.
    pub fn invalid_spec(scenario_index: usize, err: SpecError) -> Self {
        ServerError {
            code: ErrorCode::InvalidSpec,
            scenario_index,
            detail: err.0,
            retry_after_ms: None,
        }
    }

    /// An isolated worker panic.
    pub fn panicked(scenario_index: usize, detail: String) -> Self {
        ServerError {
            code: ErrorCode::Panicked,
            scenario_index,
            detail,
            retry_after_ms: None,
        }
    }

    /// An admission rejection; pass a retry hint only for transient
    /// saturation (a batch that exceeds a static limit gains nothing from
    /// retrying).
    pub fn rejected(scenario_index: usize, detail: String, retry_after_ms: Option<u64>) -> Self {
        ServerError {
            code: ErrorCode::Rejected,
            scenario_index,
            detail,
            retry_after_ms,
        }
    }

    /// A broken internal invariant.
    pub fn internal(scenario_index: usize, detail: String) -> Self {
        ServerError {
            code: ErrorCode::Internal,
            scenario_index,
            detail,
            retry_after_ms: None,
        }
    }

    /// A transport-layer shed (write-queue overflow, connection limit).
    /// Transient when hinted, like [`ServerError::rejected`].
    pub fn overloaded(scenario_index: usize, detail: String, retry_after_ms: Option<u64>) -> Self {
        ServerError {
            code: ErrorCode::Overloaded,
            scenario_index,
            detail,
            retry_after_ms,
        }
    }

    /// A permanent service-side refusal (draining, idle close). Carries no
    /// retry hint by construction.
    pub fn unavailable(scenario_index: usize, detail: &str) -> Self {
        ServerError {
            code: ErrorCode::Unavailable,
            scenario_index,
            detail: detail.to_string(),
            retry_after_ms: None,
        }
    }

    /// Whether resubmitting the same scenario can plausibly succeed without
    /// any change to the spec: true exactly for admission rejections and
    /// transport sheds that carry a retry hint.
    pub fn is_transient(&self) -> bool {
        matches!(self.code, ErrorCode::Rejected | ErrorCode::Overloaded)
            && self.retry_after_ms.is_some()
    }

    /// Re-address this error to a different batch index (used when a retried
    /// sub-batch's results are mapped back to their original positions).
    pub fn at_index(mut self, scenario_index: usize) -> Self {
        self.scenario_index = scenario_index;
        self
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] scenario {}: {}",
            self.code, self.scenario_index, self.detail
        )?;
        if let Some(ms) = self.retry_after_ms {
            write!(f, " (retry after {ms} ms)")?;
        }
        Ok(())
    }
}

impl std::error::Error for ServerError {}

/// Best-effort text of a caught panic payload (`&str` and `String` payloads
/// cover `panic!` with a message; anything else is opaque).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_have_stable_snake_case_names() {
        assert_eq!(ErrorCode::InvalidSpec.as_str(), "invalid_spec");
        assert_eq!(ErrorCode::Panicked.as_str(), "panicked");
        assert_eq!(ErrorCode::Rejected.as_str(), "rejected");
        assert_eq!(ErrorCode::Internal.as_str(), "internal");
        assert_eq!(ErrorCode::Overloaded.as_str(), "overloaded");
        assert_eq!(ErrorCode::Unavailable.as_str(), "unavailable");
    }

    #[test]
    fn only_hinted_rejections_are_transient() {
        assert!(ServerError::rejected(0, "saturated".into(), Some(25)).is_transient());
        assert!(!ServerError::rejected(0, "batch too large".into(), None).is_transient());
        assert!(!ServerError::panicked(0, "boom".into()).is_transient());
        assert!(!ServerError::invalid_spec(0, SpecError("bad".into())).is_transient());
        assert!(ServerError::overloaded(0, "write queue full".into(), Some(10)).is_transient());
        assert!(!ServerError::overloaded(0, "shed".into(), None).is_transient());
        assert!(!ServerError::unavailable(0, "draining").is_transient());
    }

    #[test]
    fn display_carries_code_index_detail_and_hint() {
        let e = ServerError::rejected(3, "engine saturated".into(), Some(25));
        assert_eq!(
            e.to_string(),
            "[rejected] scenario 3: engine saturated (retry after 25 ms)"
        );
        let e = ServerError::panicked(1, "boom".into());
        assert_eq!(e.to_string(), "[panicked] scenario 1: boom");
        assert_eq!(e.at_index(7).scenario_index, 7);
    }

    #[test]
    fn panic_messages_are_extracted_from_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(s.as_ref()), "static str");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(s.as_ref()), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(s.as_ref()), "opaque panic payload");
    }
}
