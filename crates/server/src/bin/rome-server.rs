//! The `rome-server` front ends: the JSONL batch CLI and the socket
//! service.
//!
//! ```text
//! rome-server [FILE]          # specs from FILE, or stdin when omitted
//! cat batch.jsonl | rome-server > results.jsonl
//! rome-server --serve 127.0.0.1:7654   # persistent socket service
//! ```
//!
//! Batch mode: one spec object per input line (blank lines and `#`
//! comments skipped), one result object per output line, in input order.
//! The output is a deterministic function of the input: the same batch
//! always produces byte-identical results, matching the in-process
//! `ScenarioEngine::serve_batch` exactly. Scenarios shed by transient
//! admission rejections are retried with bounded backoff (the default
//! engine never sheds, so the default output is unchanged by the retry
//! loop).
//!
//! Serve mode (`--serve ADDR`): bind a socket service on ADDR (see the
//! README's "Network service" section for the wire protocol), print
//! `listening on <addr>` to stdout, and serve until stdin reaches EOF —
//! the shutdown signal — then drain gracefully: stop accepting, let
//! in-flight scenarios finish (or abort as `drained` partials after the
//! grace period), notify every connection, and exit 0. With
//! `--stats-interval SECS`, a metrics snapshot (the same canonical JSON
//! the `{"op":"stats"}` wire frame returns) is additionally emitted to
//! stdout as one JSONL line every SECS seconds, plus one final snapshot
//! after the drain completes.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use rome_server::net::{NetConfig, SocketServer};
use rome_server::{serve_jsonl_with_retry, RetryPolicy, ScenarioEngine};

const USAGE: &str =
    "usage: rome-server [FILE | --serve ADDR [--stats-interval SECS] [--trace-out FILE]]

Serve a JSONL batch of scenario specs (from FILE, or stdin when omitted),
writing one JSONL result per spec to stdout, in input order; or, with
--serve, run a persistent socket service on ADDR until stdin reaches EOF,
then drain gracefully. --stats-interval additionally emits a JSONL metrics
snapshot to stdout every SECS seconds (and once after drain). --trace-out
writes each recorded scenario's flight-recorder buffer (a request carrying
\"record\") to FILE as Chrome trace-event JSON, ready for chrome://tracing
or Perfetto. See the \"Scenario server\", \"Network service\",
\"Observability\", and \"Flight recorder\" sections of README.md for the
formats.";

/// Serve-mode flags parsed from everything after `--serve ADDR`.
struct ServeArgs {
    stats_interval: Option<Duration>,
    trace_out: Option<std::path::PathBuf>,
}

fn parse_serve_args(rest: &[String]) -> Result<ServeArgs, String> {
    let mut parsed = ServeArgs {
        stats_interval: None,
        trace_out: None,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--stats-interval" => {
                let secs = it
                    .next()
                    .ok_or_else(|| "--stats-interval needs SECS".to_string())?;
                let secs: u64 = secs
                    .parse()
                    .map_err(|_| format!("--stats-interval takes whole seconds, got {secs:?}"))?;
                if secs == 0 {
                    return Err("--stats-interval must be at least 1 second".to_string());
                }
                parsed.stats_interval = Some(Duration::from_secs(secs));
            }
            "--trace-out" => {
                let path = it
                    .next()
                    .ok_or_else(|| "--trace-out needs a file path".to_string())?;
                parsed.trace_out = Some(std::path::PathBuf::from(path));
            }
            other => return Err(format!("unknown serve flag {other:?}")),
        }
    }
    Ok(parsed)
}

fn serve_socket(addr: &str, serve_args: ServeArgs) -> ExitCode {
    let stats_interval = serve_args.stats_interval;
    let engine = Arc::new(ScenarioEngine::new());
    let mut config = NetConfig::default();
    config.conn.trace_out = serve_args.trace_out;
    let grace = config.drain_grace;
    let server = match SocketServer::bind(addr, Arc::clone(&engine), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("rome-server: could not bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.local_addr());
    let handle = server.handle();
    std::thread::spawn(move || {
        // stdin EOF is the shutdown signal (works under pipes, process
        // managers, and tests alike).
        let mut sink = Vec::new();
        let _ = std::io::stdin().read_to_end(&mut sink);
        handle.drain(grace);
    });
    if let Some(interval) = stats_interval {
        let emitter_engine = Arc::clone(&engine);
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            if emitter_engine.is_draining() {
                // The final snapshot is the drain dump below, emitted
                // after the last connection settles.
                break;
            }
            println!("{}", emitter_engine.stats_json().emit());
        });
    }
    let stats = server.run();
    if stats_interval.is_some() {
        // Drain dump: the definitive end-of-life snapshot, after every
        // connection thread has folded its counters in.
        println!("{}", engine.stats_json().emit());
    }
    eprintln!(
        "rome-server: drained ({} accepted, {} closed)",
        stats.accepted,
        stats.closed_total()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let input = match args.as_slice() {
        [] => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("rome-server: could not read stdin: {e}");
                return ExitCode::FAILURE;
            }
            buf
        }
        [arg] if arg == "--help" || arg == "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        [flag, addr, rest @ ..] if flag == "--serve" => {
            return match parse_serve_args(rest) {
                Ok(serve_args) => serve_socket(addr, serve_args),
                Err(message) => {
                    eprintln!("rome-server: {message}");
                    ExitCode::FAILURE
                }
            };
        }
        [path] => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("rome-server: could not read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let engine = ScenarioEngine::new();
    match serve_jsonl_with_retry(&engine, &input, &RetryPolicy::default()) {
        Ok(results) => {
            print!("{results}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rome-server: {e}");
            ExitCode::FAILURE
        }
    }
}
