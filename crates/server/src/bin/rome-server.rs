//! The `rome-server` batch CLI: JSONL scenario specs in, JSONL results out.
//!
//! ```text
//! rome-server [FILE]          # specs from FILE, or stdin when omitted
//! cat batch.jsonl | rome-server > results.jsonl
//! ```
//!
//! One spec object per input line (blank lines and `#` comments skipped),
//! one result object per output line, in input order. The output is a
//! deterministic function of the input: the same batch always produces
//! byte-identical results, matching the in-process
//! `ScenarioEngine::serve_batch` exactly. Scenarios shed by transient
//! admission rejections are retried with bounded backoff (the default
//! engine never sheds, so the default output is unchanged by the retry
//! loop).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::io::Read;
use std::process::ExitCode;

use rome_server::{serve_jsonl_with_retry, RetryPolicy, ScenarioEngine};

const USAGE: &str = "usage: rome-server [FILE]

Serve a JSONL batch of scenario specs (from FILE, or stdin when omitted),
writing one JSONL result per spec to stdout, in input order. See the
\"Scenario server\" section of README.md for the spec format.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let input = match args.as_slice() {
        [] => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("rome-server: could not read stdin: {e}");
                return ExitCode::FAILURE;
            }
            buf
        }
        [arg] if arg == "--help" || arg == "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        [path] => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("rome-server: could not read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let engine = ScenarioEngine::new();
    match serve_jsonl_with_retry(&engine, &input, &RetryPolicy::default()) {
        Ok(results) => {
            print!("{results}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rome-server: {e}");
            ExitCode::FAILURE
        }
    }
}
