//! Per-class completion statistics (per tenant, per phase, per window…).
//!
//! The streaming sources tag requests through their ids (tenant index,
//! prefill/decode phase); [`ClassStats`] folds [`HostCompletion`]s into the
//! bandwidth/latency summary of one such class, and [`ClassedStats`] keeps a
//! labelled set of them — the shape the closed-loop sweeps and the
//! `workload_scenarios` example report.

use serde::{Deserialize, Serialize};

use rome_engine::system::HostCompletion;
use rome_hbm::units::Cycle;

/// Bandwidth/latency summary of one request class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Completions observed.
    pub completed: u64,
    /// Useful bytes completed.
    pub bytes: u64,
    /// Sum of arrival-to-completion latencies in ns.
    pub latency_sum_ns: u64,
    /// Worst latency in ns.
    pub latency_max_ns: u64,
    /// Cycle of the latest completion.
    pub last_completion_ns: Cycle,
}

impl ClassStats {
    /// Fold one completion in (latency is completion minus recorded
    /// arrival).
    pub fn record(&mut self, c: &HostCompletion) {
        let latency = c.completed.saturating_sub(c.arrival);
        self.completed += 1;
        self.bytes += c.bytes;
        self.latency_sum_ns += latency;
        self.latency_max_ns = self.latency_max_ns.max(latency);
        self.last_completion_ns = self.last_completion_ns.max(c.completed);
    }

    /// Mean latency in ns (0 before any completion).
    pub fn mean_latency_ns(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.latency_sum_ns as f64 / self.completed as f64
        }
    }

    /// Achieved useful bandwidth in decimal GB/s over `elapsed_ns`.
    pub fn bandwidth_gbps(&self, elapsed_ns: Cycle) -> f64 {
        self.bytes as f64 / elapsed_ns.max(1) as f64
    }
}

/// A labelled set of [`ClassStats`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassedStats {
    classes: Vec<(String, ClassStats)>,
}

impl ClassedStats {
    /// An empty set with the given class labels, in report order.
    pub fn with_classes(labels: impl IntoIterator<Item = impl Into<String>>) -> Self {
        ClassedStats {
            classes: labels
                .into_iter()
                .map(|l| (l.into(), ClassStats::default()))
                .collect(),
        }
    }

    /// Fold a completion into class `index`.
    pub fn record(&mut self, index: usize, c: &HostCompletion) {
        self.classes[index].1.record(c);
    }

    /// Iterate `(label, stats)` in report order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ClassStats)> {
        self.classes.iter().map(|(l, s)| (l.as_str(), s))
    }

    /// The stats of class `index`.
    pub fn class(&self, index: usize) -> &ClassStats {
        &self.classes[index].1
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the set has no classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rome_engine::request::{RequestId, RequestKind};

    fn completion(id: u64, bytes: u64, arrival: Cycle, completed: Cycle) -> HostCompletion {
        HostCompletion {
            id: RequestId(id),
            kind: RequestKind::Read,
            bytes,
            arrival,
            completed,
        }
    }

    #[test]
    fn class_stats_fold_latency_and_bytes() {
        let mut s = ClassStats::default();
        assert_eq!(s.mean_latency_ns(), 0.0);
        s.record(&completion(1, 64, 10, 50));
        s.record(&completion(2, 32, 20, 100));
        assert_eq!(s.completed, 2);
        assert_eq!(s.bytes, 96);
        assert_eq!(s.mean_latency_ns(), 60.0);
        assert_eq!(s.latency_max_ns, 80);
        assert_eq!(s.last_completion_ns, 100);
        assert!(s.bandwidth_gbps(100) > 0.9);
    }

    #[test]
    fn classed_stats_keep_report_order() {
        let mut cs = ClassedStats::with_classes(["prefill", "decode"]);
        assert_eq!(cs.len(), 2);
        assert!(!cs.is_empty());
        cs.record(1, &completion(1, 32, 0, 40));
        let labels: Vec<&str> = cs.iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["prefill", "decode"]);
        assert_eq!(cs.class(0).completed, 0);
        assert_eq!(cs.class(1).completed, 1);
    }
}
