//! Trace-driven serving traffic: replay recorded request traces.
//!
//! Synthetic generators model serving traffic; a *trace* replays it. A trace
//! is a sequence of [`TraceRecord`]s — `(arrival, kind, addr, bytes, tag)` —
//! typically stored one JSON object per line (JSONL), the format every
//! serving-trace tool in the wild can produce:
//!
//! ```text
//! {"arrival":0,"kind":"read","addr":4096,"bytes":32,"tag":1}
//! {"arrival":120,"kind":"write","addr":8192,"bytes":64,"tag":2}
//! ```
//!
//! [`TraceSource`] streams the records through the [`TrafficSource`]
//! contract: each record becomes available at its recorded arrival (clamped
//! so availability is non-decreasing in record order, exactly like
//! [`rome_engine::source::ReplaySource`]), and every minted request id
//! carries the record's `tag` in bits 48+ (the same encoding
//! [`crate::tenants::MultiTenantMixSource`] uses), so completions can be
//! attributed per tag with [`TraceSource::tag_of`] without side tables.

use std::collections::VecDeque;

use rome_engine::request::{MemoryRequest, RequestId, RequestKind};
use rome_engine::source::TrafficSource;
use rome_hbm::units::Cycle;

/// Bits of a trace request id reserved for the record sequence number; the
/// record `tag` lives above them (matching the multi-tenant id encoding).
const TAG_SHIFT: u32 = 48;

/// One recorded request of a serving trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Arrival cycle (ns) of the request.
    pub arrival: Cycle,
    /// Read or write.
    pub kind: RequestKind,
    /// Physical byte address.
    pub addr: u64,
    /// Request size in bytes.
    pub bytes: u64,
    /// Free-form class tag (tenant, stream, priority class…), carried into
    /// the minted request id for completion attribution.
    pub tag: u16,
}

impl TraceRecord {
    /// Render the record as one JSONL line (the format [`parse_jsonl`]
    /// reads back; `parse_jsonl(records.map(to_jsonl_line).join("\n"))` is
    /// the identity).
    pub fn to_jsonl_line(&self) -> String {
        format!(
            "{{\"arrival\":{},\"kind\":\"{}\",\"addr\":{},\"bytes\":{},\"tag\":{}}}",
            self.arrival,
            match self.kind {
                RequestKind::Read => "read",
                RequestKind::Write => "write",
            },
            self.addr,
            self.bytes,
            self.tag
        )
    }
}

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Minimal scanner for the flat one-object-per-line trace schema. The
/// records are flat objects of integer and short-string scalars, so a full
/// JSON parser is not needed; unknown keys are ignored (traces from richer
/// tools round-trip), missing `tag` defaults to 0.
fn parse_record(line: &str, lineno: usize) -> Result<TraceRecord, TraceParseError> {
    let err = |message: &str| TraceParseError {
        line: lineno,
        message: message.to_string(),
    };
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| err("record must be a JSON object"))?;
    let mut arrival = None;
    let mut kind = None;
    let mut addr = None;
    let mut bytes = None;
    let mut tag = 0u16;
    let mut rest = body.trim();
    while !rest.is_empty() {
        // Key: a quoted string (no escapes in this schema).
        let after_quote = rest
            .strip_prefix('"')
            .ok_or_else(|| err("expected a quoted key"))?;
        let close = after_quote
            .find('"')
            .ok_or_else(|| err("unterminated key"))?;
        let key = &after_quote[..close];
        let after_colon = after_quote[close + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| err("expected ':' after key"))?
            .trim_start();
        // Value: a quoted string or a bare scalar running to ',' or the end.
        let (value, next) = if let Some(s) = after_colon.strip_prefix('"') {
            let close = s.find('"').ok_or_else(|| err("unterminated string"))?;
            (&s[..close], &s[close + 1..])
        } else {
            let end = after_colon.find(',').unwrap_or(after_colon.len());
            (after_colon[..end].trim(), &after_colon[end..])
        };
        match key {
            "arrival" => {
                arrival = Some(value.parse().map_err(|_| err("bad arrival"))?);
            }
            "kind" => {
                kind = Some(match value {
                    "read" => RequestKind::Read,
                    "write" => RequestKind::Write,
                    _ => return Err(err("kind must be \"read\" or \"write\"")),
                });
            }
            "addr" => addr = Some(value.parse().map_err(|_| err("bad addr"))?),
            "bytes" => bytes = Some(value.parse().map_err(|_| err("bad bytes"))?),
            "tag" => tag = value.parse().map_err(|_| err("bad tag"))?,
            _ => {} // unknown keys are ignored
        }
        rest = next.trim_start();
        if let Some(after_comma) = rest.strip_prefix(',') {
            rest = after_comma.trim_start();
            if rest.is_empty() {
                return Err(err("trailing comma"));
            }
        } else if !rest.is_empty() {
            return Err(err("expected ',' between fields"));
        }
    }
    let bytes = bytes.ok_or_else(|| err("missing bytes"))?;
    if bytes == 0 {
        return Err(err("bytes must be non-zero"));
    }
    Ok(TraceRecord {
        arrival: arrival.ok_or_else(|| err("missing arrival"))?,
        kind: kind.ok_or_else(|| err("missing kind"))?,
        addr: addr.ok_or_else(|| err("missing addr"))?,
        bytes,
        tag,
    })
}

/// Parse a JSONL trace (one record per line; blank lines are skipped).
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, TraceParseError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_record(line, i + 1)?);
    }
    Ok(out)
}

/// Replays a recorded trace as a [`TrafficSource`]. See the module docs.
#[derive(Debug, Clone)]
pub struct TraceSource {
    /// Remaining records with their effective (order-clamped) arrivals and
    /// minted ids.
    queue: VecDeque<(Cycle, MemoryRequest)>,
    total: usize,
}

impl TraceSource {
    /// Build a replay over `records` in trace order. A record becomes
    /// available at its recorded arrival, or at its predecessor's
    /// availability if that is later (record order is never violated) —
    /// the [`rome_engine::source::ReplaySource`] clamping rule.
    pub fn from_records(records: &[TraceRecord]) -> Self {
        let mut watermark: Cycle = 0;
        let queue = records
            .iter()
            .enumerate()
            .map(|(seq, r)| {
                watermark = watermark.max(r.arrival);
                // Sequence numbers start at 1 so no id is ever 0 (id 0 is
                // auto-reassigned by multi-channel submit, which would break
                // completion attribution).
                let id = ((r.tag as u64) << TAG_SHIFT) | (seq as u64 + 1);
                let req = match r.kind {
                    RequestKind::Read => MemoryRequest::read(id, r.addr, r.bytes, r.arrival),
                    RequestKind::Write => MemoryRequest::write(id, r.addr, r.bytes, r.arrival),
                };
                (watermark, req)
            })
            .collect();
        TraceSource {
            queue,
            total: records.len(),
        }
    }

    /// Parse a JSONL trace and build the replay in one step.
    pub fn from_jsonl(text: &str) -> Result<Self, TraceParseError> {
        Ok(TraceSource::from_records(&parse_jsonl(text)?))
    }

    /// The trace tag a request id minted by any `TraceSource` carries.
    pub fn tag_of(id: RequestId) -> u16 {
        (id.0 >> TAG_SHIFT) as u16
    }

    /// Records in the trace.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the trace was empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Records not yet released.
    pub fn remaining(&self) -> usize {
        self.queue.len()
    }
}

impl TrafficSource for TraceSource {
    fn next_arrival_at(&self) -> Option<Cycle> {
        self.queue.front().map(|(at, _)| *at)
    }

    fn pull_into(&mut self, now: Cycle, out: &mut Vec<MemoryRequest>) {
        while let Some((at, _)) = self.queue.front() {
            if *at > now {
                break;
            }
            let (_, req) = self.queue.pop_front().expect("front exists");
            out.push(req);
        }
    }

    fn is_exhausted(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = "\
{\"arrival\":0,\"kind\":\"read\",\"addr\":4096,\"bytes\":32,\"tag\":1}\n\
\n\
{\"arrival\":120,\"kind\":\"write\",\"addr\":8192,\"bytes\":64,\"tag\":2}\n\
{\"arrival\":60,\"kind\":\"read\",\"addr\":0,\"bytes\":32}\n";

    #[test]
    fn parses_records_and_defaults_the_tag() {
        let records = parse_jsonl(TRACE).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].tag, 1);
        assert_eq!(records[1].kind, RequestKind::Write);
        assert_eq!(records[2].tag, 0, "missing tag defaults to 0");
        assert_eq!(records[2].arrival, 60);
    }

    #[test]
    fn jsonl_round_trips() {
        let records = parse_jsonl(TRACE).unwrap();
        let text: String = records.iter().map(|r| r.to_jsonl_line() + "\n").collect();
        assert_eq!(parse_jsonl(&text).unwrap(), records);
    }

    #[test]
    fn replay_clamps_out_of_order_arrivals_and_tags_ids() {
        let mut src = TraceSource::from_jsonl(TRACE).unwrap();
        assert_eq!(src.len(), 3);
        assert!(!src.is_empty());
        assert_eq!(src.next_arrival_at(), Some(0));
        let mut out = Vec::new();
        src.pull_into(0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(TraceSource::tag_of(out[0].id), 1);
        // Record 3 arrived at 60 but sits behind record 2 (arrival 120):
        // clamped, both release at 120.
        assert_eq!(src.next_arrival_at(), Some(120));
        src.pull_into(119, &mut out);
        assert_eq!(out.len(), 1);
        src.pull_into(120, &mut out);
        assert_eq!(out.len(), 3);
        assert!(src.is_exhausted());
        assert_eq!(src.remaining(), 0);
        assert_eq!(TraceSource::tag_of(out[1].id), 2);
        assert_eq!(TraceSource::tag_of(out[2].id), 0);
        assert!(out.iter().all(|r| r.id.0 != 0), "ids must be non-zero");
        // The recorded arrival is preserved on the request itself.
        assert_eq!(out[2].arrival, 60);
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        for (text, line) in [
            ("not json", 1),
            (
                "{\"arrival\":0,\"kind\":\"scan\",\"addr\":0,\"bytes\":32}",
                1,
            ),
            (
                "{\"arrival\":0,\"kind\":\"read\",\"addr\":0,\"bytes\":32}\n{\"arrival\":1}",
                2,
            ),
            (
                "{\"arrival\":0,\"kind\":\"read\",\"addr\":0,\"bytes\":0}",
                1,
            ),
            (
                "{\"arrival\":0,\"kind\":\"read\",\"addr\":0,\"bytes\":32,}",
                1,
            ),
        ] {
            let e = parse_jsonl(text).unwrap_err();
            assert_eq!(e.line, line, "{text}: {e}");
        }
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let line = "{\"arrival\":5,\"kind\":\"read\",\"addr\":64,\"bytes\":32,\"latency_us\":17,\"model\":\"grok\"}";
        let records = parse_jsonl(line).unwrap();
        assert_eq!(records[0].arrival, 5);
        assert_eq!(records[0].bytes, 32);
    }
}
