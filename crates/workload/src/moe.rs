//! MoE expert-routing traffic with configurable hot-expert skew.
//!
//! A decode step of an MoE model reads the weights of every *distinct*
//! expert the batch's tokens were routed to (`rome_llm::ffn` models the
//! uniform-routing expectation). Real serving traffic is skewed: a few hot
//! experts absorb most of the routing mass, so the per-step address stream
//! concentrates on a few weight regions — exactly the channel-imbalance
//! stress the paper's LLM workload characterization calls out.
//!
//! [`MoeRoutingSource`] lowers that behaviour to an address stream: per
//! decode step and per layer it samples `top_k` routed experts per token
//! from a Zipf distribution over a seeded hot-expert ranking, then emits
//! sequential reads over each distinct touched expert's weight region.
//! Steps arrive `step_period_ns` apart; everything is deterministic for a
//! given seed regardless of when the driver pulls.

use std::collections::BTreeSet;

use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;

use rome_engine::request::MemoryRequest;
use rome_engine::source::TrafficSource;
use rome_hbm::units::Cycle;
use rome_llm::ffn::FfnConfig;
use rome_llm::ops::OperatorKind;
use rome_llm::traffic::StepTraffic;

use crate::synthetic::{chunk_bytes, seeded_rng};

/// Configuration of a [`MoeRoutingSource`].
#[derive(Debug, Clone, PartialEq)]
pub struct MoeRoutingConfig {
    /// Number of routed experts per layer.
    pub experts: u32,
    /// Experts selected per token.
    pub top_k: u32,
    /// Bytes of one expert's weights in one layer (the region a touched
    /// expert streams).
    pub expert_bytes: u64,
    /// MoE layers per step.
    pub layers: u32,
    /// Tokens routed per decode step (the batch).
    pub tokens_per_step: u64,
    /// Decode steps to generate.
    pub steps: u64,
    /// Arrival gap between consecutive steps (0 = one initial burst).
    pub step_period_ns: Cycle,
    /// Request size in bytes (expert regions are streamed at this
    /// granularity; a non-multiple region ends in a partial request).
    pub granularity: u64,
    /// Base physical address of the expert-weight region.
    pub base: u64,
    /// Zipf exponent of the routing skew: 0 = uniform routing, larger =
    /// hotter hot experts (1.0 is a typical serving skew).
    pub zipf_exponent: f64,
    /// RNG seed (hot-expert ranking and per-token routing draws).
    pub seed: u64,
}

impl MoeRoutingConfig {
    /// Derive a config from a computed [`StepTraffic`] and the model's
    /// [`FfnConfig`]: expert count and `top_k` come from the FFN, the
    /// per-expert region size and layer count from the step's `moe_experts`
    /// operator (`weight_unit_bytes` is one expert projection matrix), and
    /// the tokens per step from the step's batch. `scale` divides the
    /// per-expert bytes so sampled simulations stay tractable (1 = full
    /// size). Returns `None` for a dense FFN or a step without an MoE
    /// operator.
    pub fn from_step(
        step: &StepTraffic,
        ffn: &FfnConfig,
        granularity: u64,
        scale: u64,
    ) -> Option<MoeRoutingConfig> {
        let FfnConfig::Moe { experts, top_k, .. } = *ffn else {
            return None;
        };
        let moe_op = step
            .operators
            .iter()
            .find(|o| o.kind == OperatorKind::Ffn && o.name == "moe_experts")?;
        let expert_bytes = (moe_op.weight_unit_bytes / scale.max(1)).max(granularity);
        Some(MoeRoutingConfig {
            experts,
            top_k,
            expert_bytes,
            layers: moe_op.repeat,
            tokens_per_step: step.batch,
            steps: 4,
            step_period_ns: 0,
            granularity,
            base: 0,
            zipf_exponent: 1.0,
            seed: 0x4d6f45,
        })
    }

    /// Requests one fully-streamed expert region expands to.
    fn requests_per_expert(&self) -> u64 {
        self.expert_bytes.div_ceil(self.granularity)
    }

    /// Region stride: expert regions are laid out back to back, rounded up
    /// to the request granularity so every region starts aligned.
    fn expert_stride(&self) -> u64 {
        self.expert_bytes.div_ceil(self.granularity) * self.granularity
    }
}

/// The streaming MoE routing-skew source. See the module docs.
#[derive(Debug, Clone)]
pub struct MoeRoutingSource {
    cfg: MoeRoutingConfig,
    rng: ChaCha8Rng,
    /// `rank_to_expert[r]` = the expert id holding hotness rank `r` (a
    /// seeded permutation, so the hot set differs per seed).
    rank_to_expert: Vec<u32>,
    /// Cumulative routing probability over ranks (Zipf).
    cdf: Vec<f64>,
    /// Requests emitted per expert id (skew observability).
    per_expert: Vec<u64>,
    next_step: u64,
    next_id: u64,
}

impl MoeRoutingSource {
    /// Build the source. Panics if the config has no experts, no layers, or
    /// a zero granularity.
    pub fn new(cfg: MoeRoutingConfig) -> Self {
        assert!(cfg.experts > 0 && cfg.top_k > 0, "MoE needs routed experts");
        assert!(cfg.layers > 0 && cfg.tokens_per_step > 0, "steps need work");
        assert!(cfg.granularity > 0, "granularity must be non-zero");
        let mut rng = seeded_rng(cfg.seed);
        // Seeded Fisher-Yates: which experts are hot is itself random.
        let mut rank_to_expert: Vec<u32> = (0..cfg.experts).collect();
        for i in (1..rank_to_expert.len()).rev() {
            let j = rng.gen_range(0..(i as u64 + 1)) as usize;
            rank_to_expert.swap(i, j);
        }
        // Zipf CDF over ranks: weight(r) ∝ (r + 1)^(-s); s = 0 is uniform.
        let mut cdf = Vec::with_capacity(cfg.experts as usize);
        let mut acc = 0.0;
        for r in 0..cfg.experts {
            acc += ((r + 1) as f64).powf(-cfg.zipf_exponent);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        let per_expert = vec![0u64; cfg.experts as usize];
        MoeRoutingSource {
            cfg,
            rng,
            rank_to_expert,
            cdf,
            per_expert,
            next_step: 0,
            // Ids start at 1: id 0 is auto-reassigned by multi-channel
            // submit, which would break completion routing.
            next_id: 1,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MoeRoutingConfig {
        &self.cfg
    }

    /// Requests emitted so far per expert id — the observable skew (hot
    /// experts accumulate many more re-reads across steps).
    pub fn requests_per_expert(&self) -> &[u64] {
        &self.per_expert
    }

    /// Total requests emitted so far.
    pub fn requests_emitted(&self) -> u64 {
        self.next_id - 1
    }

    fn step_arrival(&self, step: u64) -> Cycle {
        step * self.cfg.step_period_ns
    }

    /// Sample one routed expert rank from the Zipf CDF.
    fn sample_rank(rng: &mut ChaCha8Rng, cdf: &[f64]) -> usize {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
    }

    /// Generate one decode step: route every token, then stream each
    /// distinct touched expert's weight region, layer by layer.
    fn generate_step(&mut self, arrival: Cycle, out: &mut Vec<MemoryRequest>) {
        let cfg = self.cfg.clone();
        for layer in 0..cfg.layers as u64 {
            let mut touched: BTreeSet<u32> = BTreeSet::new();
            for _token in 0..cfg.tokens_per_step {
                for _k in 0..cfg.top_k {
                    let rank = Self::sample_rank(&mut self.rng, &self.cdf);
                    touched.insert(self.rank_to_expert[rank]);
                }
            }
            for expert in touched {
                let region =
                    cfg.base + (layer * cfg.experts as u64 + expert as u64) * cfg.expert_stride();
                for i in 0..cfg.requests_per_expert() {
                    let bytes = chunk_bytes(i, cfg.expert_bytes, cfg.granularity);
                    out.push(MemoryRequest::read(
                        self.next_id,
                        region + i * cfg.granularity,
                        bytes,
                        arrival,
                    ));
                    self.next_id += 1;
                    self.per_expert[expert as usize] += 1;
                }
            }
        }
    }
}

impl TrafficSource for MoeRoutingSource {
    fn next_arrival_at(&self) -> Option<Cycle> {
        (self.next_step < self.cfg.steps).then(|| self.step_arrival(self.next_step))
    }

    fn pull_into(&mut self, now: Cycle, out: &mut Vec<MemoryRequest>) {
        while self.next_step < self.cfg.steps && self.step_arrival(self.next_step) <= now {
            let arrival = self.step_arrival(self.next_step);
            self.next_step += 1;
            self.generate_step(arrival, out);
        }
    }

    fn is_exhausted(&self) -> bool {
        self.next_step >= self.cfg.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rome_llm::model::ModelConfig;
    use rome_llm::ops::decode_step;
    use rome_llm::parallelism::Parallelism;

    fn tiny_cfg(zipf: f64, seed: u64) -> MoeRoutingConfig {
        MoeRoutingConfig {
            experts: 8,
            top_k: 2,
            expert_bytes: 100,
            layers: 2,
            tokens_per_step: 16,
            steps: 3,
            step_period_ns: 500,
            granularity: 32,
            base: 0,
            zipf_exponent: zipf,
            seed,
        }
    }

    fn drain(src: &mut MoeRoutingSource) -> Vec<MemoryRequest> {
        let mut out = Vec::new();
        src.pull_into(Cycle::MAX, &mut out);
        out
    }

    #[test]
    fn steps_arrive_on_schedule_and_cover_expert_regions() {
        let mut src = MoeRoutingSource::new(tiny_cfg(1.0, 7));
        assert_eq!(src.next_arrival_at(), Some(0));
        let mut out = Vec::new();
        src.pull_into(0, &mut out);
        assert!(!out.is_empty());
        assert!(out.iter().all(|r| r.arrival == 0));
        assert_eq!(src.next_arrival_at(), Some(500));
        // Partial tail: 100-byte regions at 32-byte granularity end in 4 B.
        assert!(out.iter().any(|r| r.bytes == 4));
        src.pull_into(1_000, &mut out);
        assert!(src.is_exhausted());
        assert_eq!(src.next_arrival_at(), None);
    }

    #[test]
    fn zipf_skew_concentrates_traffic_on_hot_experts() {
        let mut uniform = MoeRoutingSource::new(tiny_cfg(0.0, 7));
        let mut skewed = MoeRoutingSource::new(tiny_cfg(2.0, 7));
        drain(&mut uniform);
        drain(&mut skewed);
        let spread = |s: &MoeRoutingSource| {
            let max = *s.requests_per_expert().iter().max().unwrap() as f64;
            let total: u64 = s.requests_per_expert().iter().sum();
            max / total as f64
        };
        assert!(
            spread(&skewed) > spread(&uniform),
            "skewed {} vs uniform {}",
            spread(&skewed),
            spread(&uniform)
        );
    }

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let a = drain(&mut MoeRoutingSource::new(tiny_cfg(1.0, 1)));
        let b = drain(&mut MoeRoutingSource::new(tiny_cfg(1.0, 1)));
        let c = drain(&mut MoeRoutingSource::new(tiny_cfg(1.0, 2)));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn from_step_lowers_deepseek_moe() {
        let model = ModelConfig::deepseek_v3();
        let par = Parallelism::paper_decode(&model);
        let step = decode_step(&model, &par, 32, 4096);
        let cfg = MoeRoutingConfig::from_step(&step, &model.ffn, 4096, 1 << 10)
            .expect("DeepSeek-V3 is MoE");
        assert_eq!(cfg.experts, 256);
        assert_eq!(cfg.top_k, 8);
        assert_eq!(cfg.tokens_per_step, 32);
        assert!(cfg.expert_bytes >= 4096);
        assert!(cfg.layers > 0);
        // A dense model lowers to None.
        let dense = ModelConfig::llama3_405b();
        let dstep = decode_step(&dense, &Parallelism::paper_decode(&dense), 8, 4096);
        assert!(MoeRoutingConfig::from_step(&dstep, &dense.ffn, 4096, 1).is_none());
    }
}
