//! Synthetic request-stream builders.
//!
//! These are the materialized generators behind the microbenchmark-style
//! experiments — streaming reads/writes (the LLM-like pattern), strided
//! accesses, uniformly random accesses — plus [`BurstSource`], their
//! streaming counterpart (periodic bursts released as simulated time
//! advances). `rome_mc::workload` re-exports the materialized builders, so
//! every existing experiment keeps its exact request streams.
//!
//! When `total_bytes` is not a multiple of `granularity`, the builders emit
//! a final *partial* request covering the tail (they used to silently
//! truncate it); the sum of the generated request sizes always equals
//! `total_bytes`.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use rome_engine::request::MemoryRequest;
use rome_engine::source::TrafficSource;
use rome_hbm::units::Cycle;

/// The one place the workload RNG is seeded: a deterministic ChaCha8 stream
/// for a 64-bit seed, shared by every seeded generator in this crate (and by
/// `rome_mc::workload::random_reads` through its wrapper).
pub fn seeded_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Size of request `i` of a stream covering `total_bytes` at `granularity`:
/// full requests followed by one partial tail when the total is not a
/// multiple. The one definition of partial-tail chunking every generator in
/// this crate shares.
pub(crate) fn chunk_bytes(i: u64, total_bytes: u64, granularity: u64) -> u64 {
    granularity.min(total_bytes - i * granularity)
}

/// Walk a wrapping cursor through `[0, span)` in `granularity`-sized chunks
/// (clipped at the wrap point) until `total` bytes are covered, invoking
/// `emit(offset, bytes)` per chunk. Returns the advanced cursor. The shared
/// emitter behind [`BurstSource`] bursts and the prefill phase of
/// `PrefillDecodeInterleaveSource`.
pub(crate) fn for_each_wrapping_chunk(
    span: u64,
    mut cursor: u64,
    total: u64,
    granularity: u64,
    mut emit: impl FnMut(u64, u64),
) -> u64 {
    let mut emitted = 0u64;
    while emitted < total {
        let bytes = granularity.min(total - emitted).min(span - cursor);
        emit(cursor, bytes);
        emitted += bytes;
        cursor += bytes;
        if cursor >= span {
            cursor = 0;
        }
    }
    cursor
}

/// Generate sequential read requests starting at `base` covering
/// `total_bytes`, each of `granularity` bytes except a final partial request
/// when the total is not a multiple, all arriving at cycle 0.
pub fn streaming_reads(base: u64, total_bytes: u64, granularity: u64) -> Vec<MemoryRequest> {
    assert!(granularity > 0);
    let count = total_bytes.div_ceil(granularity);
    (0..count)
        .map(|i| {
            MemoryRequest::read(
                i,
                base + i * granularity,
                chunk_bytes(i, total_bytes, granularity),
                0,
            )
        })
        .collect()
}

/// Generate sequential write requests (see [`streaming_reads`]).
pub fn streaming_writes(base: u64, total_bytes: u64, granularity: u64) -> Vec<MemoryRequest> {
    assert!(granularity > 0);
    let count = total_bytes.div_ceil(granularity);
    (0..count)
        .map(|i| {
            MemoryRequest::write(
                i,
                base + i * granularity,
                chunk_bytes(i, total_bytes, granularity),
                0,
            )
        })
        .collect()
}

/// Generate a read-dominated mix: one write every `write_period` requests.
/// Covers `total_bytes` including a final partial request (see
/// [`streaming_reads`]).
pub fn read_write_mix(
    base: u64,
    total_bytes: u64,
    granularity: u64,
    write_period: u64,
) -> Vec<MemoryRequest> {
    assert!(granularity > 0 && write_period > 0);
    let count = total_bytes.div_ceil(granularity);
    (0..count)
        .map(|i| {
            let addr = base + i * granularity;
            let bytes = chunk_bytes(i, total_bytes, granularity);
            if i % write_period == write_period - 1 {
                MemoryRequest::write(i, addr, bytes, 0)
            } else {
                MemoryRequest::read(i, addr, bytes, 0)
            }
        })
        .collect()
}

/// Generate strided reads: `count` requests of `granularity` bytes, spaced
/// `stride` bytes apart.
pub fn strided_reads(base: u64, count: u64, granularity: u64, stride: u64) -> Vec<MemoryRequest> {
    (0..count)
        .map(|i| MemoryRequest::read(i, base + i * stride, granularity, 0))
        .collect()
}

/// Generate uniformly random reads within `[base, base + span)`, aligned to
/// `granularity`. Deterministic for a given `seed`.
pub fn random_reads(
    base: u64,
    span: u64,
    count: u64,
    granularity: u64,
    seed: u64,
) -> Vec<MemoryRequest> {
    assert!(granularity > 0 && span >= granularity);
    let mut rng = seeded_rng(seed);
    let slots = span / granularity;
    (0..count)
        .map(|i| {
            let slot = rng.gen_range(0..slots);
            MemoryRequest::read(i, base + slot * granularity, granularity, 0)
        })
        .collect()
}

/// A streaming source emitting periodic bursts of sequential traffic: every
/// `period_ns` a burst of `bytes_per_burst` sequential bytes (granularity-
/// sized requests, partial tail included) arrives, the cursor advancing
/// through `[base, base + span)` and wrapping. One request in every
/// `write_period` is a write (`0` = reads only).
///
/// This is the shape one serving tenant presents to the memory system — a
/// decode step's worth of traffic released per scheduling interval — and the
/// building block `MultiTenantMixSource` composes.
#[derive(Debug, Clone)]
pub struct BurstSource {
    base: u64,
    span: u64,
    bytes_per_burst: u64,
    granularity: u64,
    period_ns: Cycle,
    bursts: u64,
    write_period: u64,
    /// Next burst index not yet generated.
    next_burst: u64,
    /// Byte offset of the next request within the span (wraps).
    cursor: u64,
    /// Next request id (also the per-source request sequence number).
    next_id: u64,
}

impl BurstSource {
    /// Build a burst source. `span` is rounded up to at least one burst;
    /// `granularity` must be non-zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        base: u64,
        span: u64,
        bytes_per_burst: u64,
        granularity: u64,
        period_ns: Cycle,
        bursts: u64,
        write_period: u64,
    ) -> Self {
        assert!(granularity > 0, "granularity must be non-zero");
        assert!(bytes_per_burst > 0, "bursts must carry traffic");
        BurstSource {
            base,
            span: span.max(bytes_per_burst),
            bytes_per_burst,
            granularity,
            period_ns,
            bursts,
            write_period,
            next_burst: 0,
            cursor: 0,
            // Ids start at 1: id 0 is auto-reassigned by multi-channel
            // submit, which would break completion routing.
            next_id: 1,
        }
    }

    /// Arrival cycle of burst `i`.
    fn burst_arrival(&self, i: u64) -> Cycle {
        i * self.period_ns
    }

    /// Total requests a full run of this source generates.
    pub fn total_requests(&self) -> u64 {
        self.bursts * self.bytes_per_burst.div_ceil(self.granularity)
    }

    /// Append one burst's requests (sequential, wrapping cursor) to `out`.
    fn generate_burst(&mut self, arrival: Cycle, out: &mut Vec<MemoryRequest>) {
        let (base, write_period) = (self.base, self.write_period);
        let next_id = &mut self.next_id;
        self.cursor = for_each_wrapping_chunk(
            self.span,
            self.cursor,
            self.bytes_per_burst,
            self.granularity,
            |offset, bytes| {
                let id = *next_id;
                *next_id += 1;
                let addr = base + offset;
                let req = if write_period > 0 && id.is_multiple_of(write_period) {
                    MemoryRequest::write(id, addr, bytes, arrival)
                } else {
                    MemoryRequest::read(id, addr, bytes, arrival)
                };
                out.push(req);
            },
        );
    }
}

impl TrafficSource for BurstSource {
    fn next_arrival_at(&self) -> Option<Cycle> {
        (self.next_burst < self.bursts).then(|| self.burst_arrival(self.next_burst))
    }

    fn pull_into(&mut self, now: Cycle, out: &mut Vec<MemoryRequest>) {
        while self.next_burst < self.bursts && self.burst_arrival(self.next_burst) <= now {
            let arrival = self.burst_arrival(self.next_burst);
            self.next_burst += 1;
            self.generate_burst(arrival, out);
        }
    }

    fn is_exhausted(&self) -> bool {
        self.next_burst >= self.bursts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rome_engine::request::RequestKind;

    #[test]
    fn streaming_covers_partial_tail() {
        let reqs = streaming_reads(0, 100, 32);
        assert_eq!(reqs.len(), 4);
        assert_eq!(reqs[3].bytes, 4);
        let total: u64 = reqs.iter().map(|r| r.bytes).sum();
        assert_eq!(total, 100);
        let writes = streaming_writes(0, 100, 32);
        assert_eq!(writes.len(), 4);
        assert_eq!(writes[3].bytes, 4);
        assert!(writes.iter().all(|r| r.kind == RequestKind::Write));
        let mix = read_write_mix(0, 100, 32, 2);
        let total: u64 = mix.iter().map(|r| r.bytes).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn exact_multiples_are_unchanged() {
        let reqs = streaming_reads(0x1000, 1024, 32);
        assert_eq!(reqs.len(), 32);
        assert!(reqs.iter().all(|r| r.bytes == 32));
        assert_eq!(reqs[31].address.raw(), 0x1000 + 31 * 32);
    }

    #[test]
    fn random_reads_share_the_seeding_helper() {
        let a = random_reads(0, 1 << 20, 50, 32, 9);
        let b = random_reads(0, 1 << 20, 50, 32, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|r| r.address.raw() % 32 == 0));
    }

    #[test]
    fn burst_source_releases_on_schedule() {
        let mut src = BurstSource::new(0, 1 << 20, 100, 32, 50, 3, 0);
        assert_eq!(src.total_requests(), 12);
        let mut out = Vec::new();
        src.pull_into(0, &mut out);
        assert_eq!(out.len(), 4, "one burst due at cycle 0");
        assert_eq!(out.iter().map(|r| r.bytes).sum::<u64>(), 100);
        assert_eq!(src.next_arrival_at(), Some(50));
        src.pull_into(49, &mut out);
        assert_eq!(out.len(), 4);
        src.pull_into(120, &mut out);
        assert_eq!(out.len(), 12, "both remaining bursts due");
        assert!(src.is_exhausted());
        assert!(out.iter().all(|r| r.kind == RequestKind::Read));
    }

    #[test]
    fn burst_source_wraps_and_mixes_writes() {
        let mut src = BurstSource::new(0, 64, 64, 32, 10, 2, 2);
        let mut out = Vec::new();
        src.pull_into(100, &mut out);
        assert_eq!(out.len(), 4);
        // Cursor wrapped: second burst re-covers the same 64-byte span.
        assert_eq!(out[2].address.raw(), 0);
        // Every 2nd request is a write.
        assert_eq!(
            out.iter().filter(|r| r.kind == RequestKind::Write).count(),
            2
        );
    }
}
