//! # rome-workload — the streaming workload subsystem
//!
//! Every experiment used to materialize its whole request stream up front
//! (`Vec<MemoryRequest>`, all arrivals at cycle 0), so the simulator could
//! only model open-loop bursts. This crate opens the workload axis the
//! ROADMAP calls for: request streams generated *lazily as simulated time
//! advances*, reacting to completions, grounded in the `rome-llm` serving
//! models.
//!
//! * the **[`TrafficSource`] trait** (defined in `rome-engine`, re-exported
//!   here) — `next_arrival_at` merges into the event horizon, `pull_into`
//!   releases due requests, `on_completion` feeds the memory system's
//!   behaviour back to the generator;
//! * **[`ReplaySource`]** — any materialized vector as a source, making
//!   every existing experiment a special case (pinned bit-identical by the
//!   regression suite);
//! * **[`ClosedLoopHost`]** — the windowed closed-loop host model: at most
//!   `window` requests outstanding, the next injected only on a completion —
//!   the true latency/bandwidth curve instead of a saturated burst
//!   ([`closed_loop`]);
//! * **serving-traffic generators** grounded in `rome-llm`:
//!   [`MoeRoutingSource`] (Zipf hot-expert routing skew over expert weight
//!   regions, [`moe`]), [`PrefillDecodeInterleaveSource`] (alternating dense
//!   sequential prefill and sparse decode phases, [`phases`]),
//!   [`MultiTenantMixSource`] (N seeded tenants merged deterministically by
//!   arrival time, [`tenants`]);
//! * **synthetic builders** ([`synthetic`]) — the materialized
//!   streaming/strided/random generators (re-exported by
//!   `rome_mc::workload`) plus the periodic [`BurstSource`];
//! * **trace replay** ([`trace`]) — [`TraceSource`] replays recorded
//!   serving traces from JSONL `(arrival, kind, addr, bytes, tag)` records,
//!   tagging ids for per-class attribution;
//! * **SLO-aware scheduling** — an [`SloPolicy`] (per-tenant window caps
//!   and priorities) turns the closed-loop host into a serving scheduler:
//!   freed window slots go to the highest-priority tenant with headroom;
//! * **per-class statistics** ([`stats`]) — fold completions into per-tenant
//!   / per-phase bandwidth and latency summaries.
//!
//! Drivers live next to the systems they drive:
//! `rome_engine::simulate::run_with_source` for a single controller,
//! `MultiChannelSystem::run_with_source` (wrapped by
//! `MemorySystem::run_with_source` and `RomeMemorySystem::run_with_source`)
//! for whole systems, and `rome_sim::serving` for closed-loop sweeps.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod closed_loop;
pub mod moe;
pub mod phases;
pub mod stats;
pub mod synthetic;
pub mod tenants;
pub mod trace;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::closed_loop::{ClosedLoopHost, SloPolicy, TenantSlo};
    pub use crate::moe::{MoeRoutingConfig, MoeRoutingSource};
    pub use crate::phases::{PrefillDecodeConfig, PrefillDecodeInterleaveSource};
    pub use crate::stats::{ClassStats, ClassedStats};
    pub use crate::synthetic::BurstSource;
    pub use crate::tenants::{MultiTenantMixSource, TenantSpec};
    pub use crate::trace::{TraceRecord, TraceSource};
    pub use rome_engine::source::{ReplaySource, TrafficSource};
}

pub use closed_loop::{ClosedLoopHost, SloPolicy, TenantSlo};
pub use moe::{MoeRoutingConfig, MoeRoutingSource};
pub use phases::{PrefillDecodeConfig, PrefillDecodeInterleaveSource};
pub use stats::{ClassStats, ClassedStats};
pub use synthetic::BurstSource;
pub use tenants::{MultiTenantMixSource, Tenant, TenantSpec};
pub use trace::{TraceRecord, TraceSource};

pub use rome_engine::source::{ReplaySource, TrafficSource};
