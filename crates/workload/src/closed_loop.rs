//! The closed-loop host model.
//!
//! Open-loop replay answers "what does the memory system do under this fixed
//! schedule"; a serving host is *closed-loop*: it keeps at most `window`
//! requests outstanding and injects the next one only when a completion
//! frees a slot. Sweeping the window traces the true latency/bandwidth curve
//! of a memory system (throughput saturates while latency keeps climbing),
//! which a saturated burst cannot show.
//!
//! [`ClosedLoopHost`] adapts *any* inner [`TrafficSource`]: the inner
//! source's arrival schedule says when work becomes available to the host;
//! the window says when the host actually hands it to the memory system.
//! Work that is available but blocked by the window waits in the host queue
//! (and its wait is part of the measured host latency).

use std::collections::{HashMap, VecDeque};

use rome_engine::request::{MemoryRequest, RequestId};
use rome_engine::source::TrafficSource;
use rome_engine::system::HostCompletion;
use rome_hbm::units::Cycle;

/// A windowed closed-loop host wrapping an inner traffic source. See the
/// module docs.
#[derive(Debug, Clone)]
pub struct ClosedLoopHost<S> {
    inner: S,
    window: usize,
    /// Work pulled from the inner source, waiting for a window slot.
    staged: VecDeque<MemoryRequest>,
    /// Injection cycle of every in-flight request (host-level latency is
    /// measured from injection, not from inner-source availability).
    in_flight: HashMap<RequestId, Cycle>,
    /// Scratch buffer for pulling from the inner source.
    scratch: Vec<MemoryRequest>,
    peak_outstanding: usize,
    injected: u64,
    completed: u64,
    completed_bytes: u64,
    latency_sum_ns: u64,
    latency_max_ns: u64,
    last_completion_ns: Cycle,
}

impl<S: TrafficSource> ClosedLoopHost<S> {
    /// Wrap `inner` with an outstanding-request cap of `window` (≥ 1).
    pub fn new(inner: S, window: usize) -> Self {
        assert!(
            window > 0,
            "closed-loop window must admit at least one request"
        );
        ClosedLoopHost {
            inner,
            window,
            staged: VecDeque::new(),
            in_flight: HashMap::new(),
            scratch: Vec::new(),
            peak_outstanding: 0,
            injected: 0,
            completed: 0,
            completed_bytes: 0,
            latency_sum_ns: 0,
            latency_max_ns: 0,
            last_completion_ns: 0,
        }
    }

    /// The configured window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Requests currently outstanding in the memory system.
    pub fn outstanding(&self) -> usize {
        self.in_flight.len()
    }

    /// The largest outstanding count ever observed (must never exceed the
    /// window; the regression suite pins this).
    pub fn peak_outstanding(&self) -> usize {
        self.peak_outstanding
    }

    /// Requests injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Useful bytes of completed requests.
    pub fn completed_bytes(&self) -> u64 {
        self.completed_bytes
    }

    /// Mean injection-to-completion latency in ns (0 before any completion).
    pub fn mean_latency_ns(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.latency_sum_ns as f64 / self.completed as f64
        }
    }

    /// Worst injection-to-completion latency in ns.
    pub fn max_latency_ns(&self) -> u64 {
        self.latency_max_ns
    }

    /// Cycle of the latest completion (the elapsed time of a drained run).
    pub fn last_completion_ns(&self) -> Cycle {
        self.last_completion_ns
    }

    /// Achieved useful bandwidth over the run so far, in decimal GB/s
    /// (completed bytes over the last completion cycle).
    pub fn achieved_gbps(&self) -> f64 {
        if self.last_completion_ns == 0 {
            0.0
        } else {
            self.completed_bytes as f64 / self.last_completion_ns as f64
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Move inner-source releases due at `now` into the host queue.
    fn stage(&mut self, now: Cycle) {
        self.inner.pull_into(now, &mut self.scratch);
        self.staged.extend(self.scratch.drain(..));
    }
}

impl<S: TrafficSource> TrafficSource for ClosedLoopHost<S> {
    fn next_arrival_at(&self) -> Option<Cycle> {
        if self.in_flight.len() >= self.window {
            // Window full: the next injection is gated on a completion, which
            // the driver is guaranteed to observe as a controller event.
            return None;
        }
        match self.staged.front() {
            // Staged work was released at or before the current pull; its
            // arrival cycle already passed, the driver clamps to now + 1.
            Some(req) => Some(req.arrival),
            None => self.inner.next_arrival_at(),
        }
    }

    fn pull_into(&mut self, now: Cycle, out: &mut Vec<MemoryRequest>) {
        self.stage(now);
        while self.in_flight.len() < self.window {
            let Some(req) = self.staged.pop_front() else {
                break;
            };
            // Id 0 is auto-reassigned by multi-channel submit, so its
            // completion could never be routed back to this window slot.
            assert!(
                req.id.0 != 0,
                "closed-loop sources must mint non-zero request ids"
            );
            self.in_flight.insert(req.id, now);
            self.injected += 1;
            self.peak_outstanding = self.peak_outstanding.max(self.in_flight.len());
            out.push(req);
        }
    }

    fn on_completion(&mut self, completion: &HostCompletion) {
        if let Some(injected_at) = self.in_flight.remove(&completion.id) {
            let latency = completion.completed.saturating_sub(injected_at);
            self.completed += 1;
            self.completed_bytes += completion.bytes;
            self.latency_sum_ns += latency;
            self.latency_max_ns = self.latency_max_ns.max(latency);
            self.last_completion_ns = self.last_completion_ns.max(completion.completed);
        }
        self.inner.on_completion(completion);
    }

    fn is_exhausted(&self) -> bool {
        self.inner.is_exhausted() && self.staged.is_empty() && self.in_flight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rome_engine::request::RequestKind;
    use rome_engine::source::ReplaySource;

    fn completion_for(req: &MemoryRequest, at: Cycle) -> HostCompletion {
        HostCompletion {
            id: req.id,
            kind: req.kind,
            bytes: req.bytes,
            arrival: req.arrival,
            completed: at,
        }
    }

    #[test]
    fn window_caps_outstanding_and_releases_on_completion() {
        let reqs: Vec<MemoryRequest> = (0..6)
            .map(|i| MemoryRequest::read(i + 1, i * 32, 32, 0))
            .collect();
        let mut host = ClosedLoopHost::new(ReplaySource::from(reqs), 2);
        let mut out = Vec::new();
        host.pull_into(0, &mut out);
        assert_eq!(out.len(), 2, "window admits exactly two");
        assert_eq!(host.outstanding(), 2);
        assert_eq!(host.next_arrival_at(), None, "full window gates arrivals");
        // Pulling again with a full window injects nothing.
        host.pull_into(5, &mut out);
        assert_eq!(out.len(), 2);

        host.on_completion(&completion_for(&out[0], 40));
        assert_eq!(host.outstanding(), 1);
        assert!(host.next_arrival_at().is_some());
        host.pull_into(41, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(host.peak_outstanding(), 2);
        assert_eq!(host.completed(), 1);
        assert_eq!(host.mean_latency_ns(), 40.0);
        assert!(!host.is_exhausted());
    }

    #[test]
    fn drains_to_exhaustion_and_tracks_stats() {
        let reqs: Vec<MemoryRequest> = (0..3)
            .map(|i| MemoryRequest::write(i + 1, i * 64, 64, 0))
            .collect();
        let mut host = ClosedLoopHost::new(ReplaySource::from(reqs), 1);
        let mut out = Vec::new();
        let mut now = 0;
        while !host.is_exhausted() {
            host.pull_into(now, &mut out);
            if let Some(req) = out.pop() {
                assert_eq!(req.kind, RequestKind::Write);
                now += 10;
                host.on_completion(&completion_for(&req, now));
            }
        }
        assert_eq!(host.injected(), 3);
        assert_eq!(host.completed(), 3);
        assert_eq!(host.completed_bytes(), 3 * 64);
        assert_eq!(host.peak_outstanding(), 1);
        assert_eq!(host.max_latency_ns(), 10);
        assert_eq!(host.last_completion_ns(), 30);
        assert!(host.achieved_gbps() > 0.0);
    }
}
