//! The closed-loop host model.
//!
//! Open-loop replay answers "what does the memory system do under this fixed
//! schedule"; a serving host is *closed-loop*: it keeps at most `window`
//! requests outstanding and injects the next one only when a completion
//! frees a slot. Sweeping the window traces the true latency/bandwidth curve
//! of a memory system (throughput saturates while latency keeps climbing),
//! which a saturated burst cannot show.
//!
//! [`ClosedLoopHost`] adapts *any* inner [`TrafficSource`]: the inner
//! source's arrival schedule says when work becomes available to the host;
//! the window says when the host actually hands it to the memory system.
//! Work that is available but blocked by the window waits in the host queue
//! (and its wait is part of the measured host latency).
//!
//! # SLO-aware scheduling
//!
//! A serving host that shares one memory system between tenants does not
//! inject FIFO: each tenant has its own outstanding-request budget (so one
//! tenant's burst cannot monopolize the window) and a priority (so a
//! latency-sensitive tenant's work goes first when slots free up). An
//! [`SloPolicy`] — per-tenant [`TenantSlo`] window caps plus a classifier
//! mapping request ids to tenants — turns the host into that scheduler
//! ([`ClosedLoopHost::with_slo`]): staged work queues per tenant, and every
//! freed slot goes to the *highest-priority tenant with window headroom*
//! (lowest [`TenantSlo::priority`] value, ties by tenant index, order within
//! a tenant preserved). Unclassified requests bypass the per-tenant caps and
//! inject last, under the global window only. Without a policy the host
//! behaves exactly as before (one global FIFO) — the regression suite pins
//! that path bit-identical.

use std::collections::{HashMap, VecDeque};

use rome_engine::request::{MemoryRequest, RequestId};
use rome_engine::source::TrafficSource;
use rome_engine::system::HostCompletion;
use rome_hbm::units::Cycle;

/// The service-level objective of one tenant behind an SLO-aware
/// [`ClosedLoopHost`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSlo {
    /// Outstanding-request cap of this tenant (≥ 1); the global host window
    /// still bounds the sum over all tenants.
    pub window: usize,
    /// Scheduling priority: *lower values go first* when several tenants
    /// compete for a freed slot.
    pub priority: u8,
}

/// Per-tenant window caps and priority order for an SLO-aware
/// [`ClosedLoopHost`]. See the module docs.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    tenants: Vec<TenantSlo>,
    /// Maps a request id to its tenant index (e.g.
    /// [`crate::tenants::tenant_tag`] for `MultiTenantMixSource` ids);
    /// `None` or an out-of-range index means unclassified.
    classify: fn(RequestId) -> Option<usize>,
}

impl SloPolicy {
    /// Build a policy over `tenants` with the given id classifier. Panics if
    /// any tenant window is zero.
    pub fn new(tenants: Vec<TenantSlo>, classify: fn(RequestId) -> Option<usize>) -> Self {
        assert!(
            tenants.iter().all(|t| t.window > 0),
            "every tenant window must admit at least one request"
        );
        SloPolicy { tenants, classify }
    }

    /// Number of tenants under the policy.
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The SLO of tenant `index`.
    pub fn tenant(&self, index: usize) -> TenantSlo {
        self.tenants[index]
    }

    /// Classify an id into an in-range tenant index.
    fn tenant_of(&self, id: RequestId) -> Option<usize> {
        (self.classify)(id).filter(|&t| t < self.tenants.len())
    }
}

/// A windowed closed-loop host wrapping an inner traffic source. See the
/// module docs.
#[derive(Debug, Clone)]
pub struct ClosedLoopHost<S> {
    inner: S,
    window: usize,
    /// Optional per-tenant SLO scheduling (see the module docs); `None` =
    /// the plain global-FIFO host.
    slo: Option<SloPolicy>,
    /// Work pulled from the inner source, waiting for a window slot (the
    /// whole queue without an SLO policy; the unclassified overflow with
    /// one).
    staged: VecDeque<MemoryRequest>,
    /// Per-tenant staged queues (empty without an SLO policy).
    staged_tenant: Vec<VecDeque<MemoryRequest>>,
    /// Outstanding requests per tenant (empty without an SLO policy).
    outstanding_tenant: Vec<usize>,
    /// Peak outstanding per tenant (empty without an SLO policy).
    peak_tenant: Vec<usize>,
    /// Injection cycle and tenant of every in-flight request (host-level
    /// latency is measured from injection, not inner-source availability).
    in_flight: HashMap<RequestId, (Cycle, Option<usize>)>,
    /// Scratch buffer for pulling from the inner source.
    scratch: Vec<MemoryRequest>,
    peak_outstanding: usize,
    injected: u64,
    completed: u64,
    completed_bytes: u64,
    latency_sum_ns: u64,
    latency_max_ns: u64,
    last_completion_ns: Cycle,
}

impl<S: TrafficSource> ClosedLoopHost<S> {
    /// Wrap `inner` with an outstanding-request cap of `window` (≥ 1).
    pub fn new(inner: S, window: usize) -> Self {
        assert!(
            window > 0,
            "closed-loop window must admit at least one request"
        );
        ClosedLoopHost {
            inner,
            window,
            slo: None,
            staged: VecDeque::new(),
            staged_tenant: Vec::new(),
            outstanding_tenant: Vec::new(),
            peak_tenant: Vec::new(),
            in_flight: HashMap::new(),
            scratch: Vec::new(),
            peak_outstanding: 0,
            injected: 0,
            completed: 0,
            completed_bytes: 0,
            latency_sum_ns: 0,
            latency_max_ns: 0,
            last_completion_ns: 0,
        }
    }

    /// Wrap `inner` with a global window *and* a per-tenant [`SloPolicy`]
    /// (per-tenant window caps, priority injection order). See the module
    /// docs.
    pub fn with_slo(inner: S, window: usize, slo: SloPolicy) -> Self {
        let tenants = slo.tenants();
        let mut host = ClosedLoopHost::new(inner, window);
        host.staged_tenant = (0..tenants).map(|_| VecDeque::new()).collect();
        host.outstanding_tenant = vec![0; tenants];
        host.peak_tenant = vec![0; tenants];
        host.slo = Some(slo);
        host
    }

    /// The SLO policy, if one is installed.
    pub fn slo(&self) -> Option<&SloPolicy> {
        self.slo.as_ref()
    }

    /// Requests currently outstanding for tenant `index` (SLO hosts only).
    pub fn tenant_outstanding(&self, index: usize) -> usize {
        self.outstanding_tenant[index]
    }

    /// The largest outstanding count tenant `index` ever reached — must
    /// never exceed its [`TenantSlo::window`] (SLO hosts only).
    pub fn peak_tenant_outstanding(&self, index: usize) -> usize {
        self.peak_tenant[index]
    }

    /// The configured window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Requests currently outstanding in the memory system.
    pub fn outstanding(&self) -> usize {
        self.in_flight.len()
    }

    /// The largest outstanding count ever observed (must never exceed the
    /// window; the regression suite pins this).
    pub fn peak_outstanding(&self) -> usize {
        self.peak_outstanding
    }

    /// Requests injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Useful bytes of completed requests.
    pub fn completed_bytes(&self) -> u64 {
        self.completed_bytes
    }

    /// Mean injection-to-completion latency in ns (0 before any completion).
    pub fn mean_latency_ns(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.latency_sum_ns as f64 / self.completed as f64
        }
    }

    /// Worst injection-to-completion latency in ns.
    pub fn max_latency_ns(&self) -> u64 {
        self.latency_max_ns
    }

    /// Cycle of the latest completion (the elapsed time of a drained run).
    pub fn last_completion_ns(&self) -> Cycle {
        self.last_completion_ns
    }

    /// Achieved useful bandwidth over the run so far, in decimal GB/s
    /// (completed bytes over the last completion cycle).
    pub fn achieved_gbps(&self) -> f64 {
        if self.last_completion_ns == 0 {
            0.0
        } else {
            self.completed_bytes as f64 / self.last_completion_ns as f64
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Move inner-source releases due at `now` into the host queue(s).
    fn stage(&mut self, now: Cycle) {
        self.inner.pull_into(now, &mut self.scratch);
        match &self.slo {
            None => self.staged.extend(self.scratch.drain(..)),
            Some(slo) => {
                for req in self.scratch.drain(..) {
                    match slo.tenant_of(req.id) {
                        Some(t) => self.staged_tenant[t].push_back(req),
                        None => self.staged.push_back(req),
                    }
                }
            }
        }
    }

    /// The next staged request an SLO host would inject: the front of the
    /// highest-priority tenant queue with window headroom (ties by tenant
    /// index), falling back to the unclassified queue. `None` when every
    /// staged request is gated on a completion.
    fn slo_pick(&self) -> Option<(Option<usize>, &MemoryRequest)> {
        let slo = self.slo.as_ref().expect("SLO host");
        let mut best: Option<(u8, usize)> = None;
        for (t, queue) in self.staged_tenant.iter().enumerate() {
            if queue.is_empty() || self.outstanding_tenant[t] >= slo.tenants[t].window {
                continue;
            }
            let priority = slo.tenants[t].priority;
            if best.is_none_or(|(p, _)| priority < p) {
                best = Some((priority, t));
            }
        }
        match best {
            Some((_, t)) => Some((Some(t), self.staged_tenant[t].front().expect("non-empty"))),
            None => self.staged.front().map(|req| (None, req)),
        }
    }

    /// Record an injection at `now` of a request owned by `tenant`.
    fn inject(&mut self, tenant: Option<usize>, req: MemoryRequest, now: Cycle) {
        // Id 0 is auto-reassigned by multi-channel submit, so its
        // completion could never be routed back to this window slot.
        assert!(
            req.id.0 != 0,
            "closed-loop sources must mint non-zero request ids"
        );
        self.in_flight.insert(req.id, (now, tenant));
        self.injected += 1;
        self.peak_outstanding = self.peak_outstanding.max(self.in_flight.len());
        if let Some(t) = tenant {
            self.outstanding_tenant[t] += 1;
            self.peak_tenant[t] = self.peak_tenant[t].max(self.outstanding_tenant[t]);
        }
    }
}

impl<S: TrafficSource> TrafficSource for ClosedLoopHost<S> {
    fn next_arrival_at(&self) -> Option<Cycle> {
        if self.in_flight.len() >= self.window {
            // Window full: the next injection is gated on a completion, which
            // the driver is guaranteed to observe as a controller event.
            return None;
        }
        if self.slo.is_some() {
            // Staged work an eligible tenant could inject was released at or
            // before the current pull (the driver clamps to now + 1); work
            // gated on a tenant window waits for a completion — also a
            // driver-visible event — so only the inner source's future
            // arrivals remain to merge.
            return match self.slo_pick() {
                Some((_, req)) => Some(req.arrival),
                None => self.inner.next_arrival_at(),
            };
        }
        match self.staged.front() {
            // Staged work was released at or before the current pull; its
            // arrival cycle already passed, the driver clamps to now + 1.
            Some(req) => Some(req.arrival),
            None => self.inner.next_arrival_at(),
        }
    }

    fn pull_into(&mut self, now: Cycle, out: &mut Vec<MemoryRequest>) {
        self.stage(now);
        while self.in_flight.len() < self.window {
            if self.slo.is_some() {
                let Some((tenant, _)) = self.slo_pick() else {
                    break;
                };
                let req = match tenant {
                    Some(t) => self.staged_tenant[t].pop_front().expect("picked front"),
                    None => self.staged.pop_front().expect("picked front"),
                };
                self.inject(tenant, req, now);
                out.push(req);
            } else {
                let Some(req) = self.staged.pop_front() else {
                    break;
                };
                self.inject(None, req, now);
                out.push(req);
            }
        }
    }

    fn on_completion(&mut self, completion: &HostCompletion) {
        if let Some((injected_at, tenant)) = self.in_flight.remove(&completion.id) {
            let latency = completion.completed.saturating_sub(injected_at);
            self.completed += 1;
            self.completed_bytes += completion.bytes;
            self.latency_sum_ns += latency;
            self.latency_max_ns = self.latency_max_ns.max(latency);
            self.last_completion_ns = self.last_completion_ns.max(completion.completed);
            if let Some(t) = tenant {
                self.outstanding_tenant[t] -= 1;
            }
        }
        self.inner.on_completion(completion);
    }

    fn is_exhausted(&self) -> bool {
        self.inner.is_exhausted()
            && self.staged.is_empty()
            && self.staged_tenant.iter().all(VecDeque::is_empty)
            && self.in_flight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rome_engine::request::RequestKind;
    use rome_engine::source::ReplaySource;

    fn completion_for(req: &MemoryRequest, at: Cycle) -> HostCompletion {
        HostCompletion {
            id: req.id,
            kind: req.kind,
            bytes: req.bytes,
            arrival: req.arrival,
            completed: at,
        }
    }

    #[test]
    fn window_caps_outstanding_and_releases_on_completion() {
        let reqs: Vec<MemoryRequest> = (0..6)
            .map(|i| MemoryRequest::read(i + 1, i * 32, 32, 0))
            .collect();
        let mut host = ClosedLoopHost::new(ReplaySource::from(reqs), 2);
        let mut out = Vec::new();
        host.pull_into(0, &mut out);
        assert_eq!(out.len(), 2, "window admits exactly two");
        assert_eq!(host.outstanding(), 2);
        assert_eq!(host.next_arrival_at(), None, "full window gates arrivals");
        // Pulling again with a full window injects nothing.
        host.pull_into(5, &mut out);
        assert_eq!(out.len(), 2);

        host.on_completion(&completion_for(&out[0], 40));
        assert_eq!(host.outstanding(), 1);
        assert!(host.next_arrival_at().is_some());
        host.pull_into(41, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(host.peak_outstanding(), 2);
        assert_eq!(host.completed(), 1);
        assert_eq!(host.mean_latency_ns(), 40.0);
        assert!(!host.is_exhausted());
    }

    #[test]
    fn slo_injection_prefers_high_priority_tenants_within_their_windows() {
        use crate::tenants::{tenant_tag, MultiTenantMixSource};

        // Two tenants with four requests each, all available at cycle 0,
        // observed through the mix's tag encoding.
        let reqs = |base: u64| -> Vec<MemoryRequest> {
            (0..4)
                .map(|i| MemoryRequest::read(i + 1, base + i * 32, 32, 0))
                .collect()
        };
        let mix = MultiTenantMixSource::new()
            .with_tenant("batch", ReplaySource::from(reqs(0)))
            .with_tenant("latency", ReplaySource::from(reqs(1 << 20)));
        // Tenant 0 ("batch"): low priority, cap 1. Tenant 1 ("latency"):
        // high priority (lower value), cap 2. Global window 3.
        let policy = SloPolicy::new(
            vec![
                TenantSlo {
                    window: 1,
                    priority: 5,
                },
                TenantSlo {
                    window: 2,
                    priority: 0,
                },
            ],
            tenant_tag,
        );
        let mut host = ClosedLoopHost::with_slo(mix, 3, policy);
        assert_eq!(host.slo().unwrap().tenants(), 2);

        let mut out = Vec::new();
        host.pull_into(0, &mut out);
        // The high-priority tenant fills its cap first, then the
        // low-priority tenant gets the remaining global slot.
        let tenants: Vec<_> = out.iter().map(|r| tenant_tag(r.id).unwrap()).collect();
        assert_eq!(tenants, vec![1, 1, 0]);
        assert_eq!(host.tenant_outstanding(1), 2);
        assert_eq!(host.tenant_outstanding(0), 1);
        // Global window full: arrivals are gated on a completion.
        assert_eq!(host.next_arrival_at(), None);

        // A high-priority completion frees a slot; the freed slot goes back
        // to the high-priority tenant (it still has staged work + headroom).
        host.on_completion(&completion_for(&out[0], 50));
        assert_eq!(host.next_arrival_at(), Some(0));
        host.pull_into(51, &mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(tenant_tag(out[3].id), Some(1));

        // A low-priority completion with the high-priority queue still
        // backed up: tenant 0's own cap (1) has headroom again, but tenant 1
        // is at its cap, so the slot goes to tenant 0.
        host.on_completion(&completion_for(&out[2], 80));
        host.pull_into(81, &mut out);
        assert_eq!(out.len(), 5);
        assert_eq!(tenant_tag(out[4].id), Some(0));

        // Drain everything; per-tenant peaks never exceeded the caps.
        let mut i = 0;
        while !host.is_exhausted() {
            while i < out.len() {
                host.on_completion(&completion_for(&out[i], 100 + i as u64));
                i += 1;
            }
            host.pull_into(200, &mut out);
        }
        assert_eq!(host.completed(), 8);
        assert_eq!(host.peak_tenant_outstanding(0), 1);
        assert_eq!(host.peak_tenant_outstanding(1), 2);
        assert!(host.peak_outstanding() <= 3);
    }

    #[test]
    fn slo_unclassified_requests_fall_back_to_the_global_window() {
        // Plain (untagged) ids classify to no tenant: they inject last,
        // bounded only by the global window.
        let reqs: Vec<MemoryRequest> = (0..3)
            .map(|i| MemoryRequest::read(i + 1, i * 32, 32, 0))
            .collect();
        let policy = SloPolicy::new(
            vec![TenantSlo {
                window: 1,
                priority: 0,
            }],
            crate::tenants::tenant_tag,
        );
        let mut host = ClosedLoopHost::with_slo(ReplaySource::from(reqs), 2, policy);
        let mut out = Vec::new();
        host.pull_into(0, &mut out);
        assert_eq!(out.len(), 2, "global window admits two unclassified");
        assert_eq!(host.tenant_outstanding(0), 0);
        host.on_completion(&completion_for(&out[0], 10));
        host.pull_into(11, &mut out);
        assert_eq!(out.len(), 3);
        host.on_completion(&completion_for(&out[1], 20));
        host.on_completion(&completion_for(&out[2], 20));
        assert!(host.is_exhausted());
        assert_eq!(host.completed(), 3);
    }

    #[test]
    fn drains_to_exhaustion_and_tracks_stats() {
        let reqs: Vec<MemoryRequest> = (0..3)
            .map(|i| MemoryRequest::write(i + 1, i * 64, 64, 0))
            .collect();
        let mut host = ClosedLoopHost::new(ReplaySource::from(reqs), 1);
        let mut out = Vec::new();
        let mut now = 0;
        while !host.is_exhausted() {
            host.pull_into(now, &mut out);
            if let Some(req) = out.pop() {
                assert_eq!(req.kind, RequestKind::Write);
                now += 10;
                host.on_completion(&completion_for(&req, now));
            }
        }
        assert_eq!(host.injected(), 3);
        assert_eq!(host.completed(), 3);
        assert_eq!(host.completed_bytes(), 3 * 64);
        assert_eq!(host.peak_outstanding(), 1);
        assert_eq!(host.max_latency_ns(), 10);
        assert_eq!(host.last_completion_ns(), 30);
        assert!(host.achieved_gbps() > 0.0);
    }
}
