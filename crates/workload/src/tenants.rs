//! Multi-tenant traffic mixes.
//!
//! A serving deployment rarely runs one workload: several tenants (models,
//! batch sizes, arrival rates) share the same memory system.
//! [`MultiTenantMixSource`] composes any set of [`TrafficSource`]s into one
//! stream, merged deterministically by arrival time (ties broken by tenant
//! index, order within a tenant preserved). Every request id is re-tagged
//! with its tenant so completions can be attributed per tenant and routed
//! back to the originating source's [`TrafficSource::on_completion`] — a
//! closed-loop tenant behind the mix keeps working.
//!
//! [`TenantSpec`] builds the common case from `rome-llm` models: each tenant
//! presents one decode step's worth of (scaled) traffic per scheduling
//! period over a tenant-private address region.

use rome_engine::request::{MemoryRequest, RequestId};
use rome_engine::source::TrafficSource;
use rome_engine::system::HostCompletion;
use rome_hbm::units::Cycle;
use rome_llm::model::ModelConfig;
use rome_llm::ops::decode_step;
use rome_llm::parallelism::Parallelism;

use crate::synthetic::BurstSource;

/// Bits of a mixed request id reserved for the tenant-local id.
const TENANT_SHIFT: u32 = 48;
/// Address-space region reserved per tenant by [`TenantSpec`] builds.
const TENANT_REGION_BYTES: u64 = 1 << 30;

/// One tenant of a [`MultiTenantMixSource`]: a name and its traffic source.
pub struct Tenant {
    /// Tenant name (reports and per-tenant stats).
    pub name: String,
    source: Box<dyn TrafficSource + Send>,
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant").field("name", &self.name).finish()
    }
}

/// A declarative tenant: one `rome-llm` model served at one batch size and
/// arrival rate. Lowered to a [`BurstSource`] whose bursts carry one scaled
/// decode step of traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name.
    pub name: String,
    /// The model this tenant serves.
    pub model: ModelConfig,
    /// Decode batch size.
    pub batch: u64,
    /// Context length.
    pub seq_len: u64,
    /// Arrival period between decode steps in ns (the tenant's rate).
    pub period_ns: Cycle,
    /// Decode steps to generate.
    pub steps: u64,
    /// Traffic scale divisor (1 = full per-device step traffic).
    pub scale: u64,
    /// Request granularity.
    pub granularity: u64,
}

impl TenantSpec {
    /// Lower to a burst source over a private region starting at `base`.
    /// Returns the source and the region span it actually occupies (a large
    /// tenant's working set may exceed the 1 GiB region granularity; the caller
    /// places the next tenant past it, so regions never overlap).
    fn build(&self, base: u64) -> (BurstSource, u64) {
        let par = Parallelism::paper_decode(&self.model);
        let step = decode_step(&self.model, &par, self.batch, self.seq_len);
        let bytes_per_burst = (step.total_bytes() / self.scale.max(1)).max(self.granularity);
        let span = bytes_per_burst * 4;
        let source = BurstSource::new(
            base,
            span,
            bytes_per_burst,
            self.granularity,
            self.period_ns,
            self.steps,
            0,
        );
        (source, span)
    }
}

/// The tenant index encoded in a mixed request id's tag bits, independent of
/// any particular mix instance (`None` for untagged ids). This is the
/// classifier an SLO-aware [`crate::ClosedLoopHost`] uses to attribute
/// staged requests to their per-tenant windows; ids from a specific mix
/// should prefer [`MultiTenantMixSource::tenant_of`], which also bounds the
/// tag against the mix's tenant count.
pub fn tenant_tag(id: RequestId) -> Option<usize> {
    let tag = (id.0 >> TENANT_SHIFT) as usize;
    (tag >= 1).then(|| tag - 1)
}

/// The deterministic multi-tenant merge. See the module docs.
#[derive(Debug, Default)]
pub struct MultiTenantMixSource {
    tenants: Vec<Tenant>,
    /// Scratch for per-tenant pulls.
    scratch: Vec<MemoryRequest>,
    /// Merge buffer: `(arrival, tenant, per-pull sequence)` keys.
    merge: Vec<(Cycle, usize, usize, MemoryRequest)>,
}

impl MultiTenantMixSource {
    /// An empty mix.
    pub fn new() -> Self {
        MultiTenantMixSource::default()
    }

    /// Build a mix from declarative specs. Tenant regions are disjoint:
    /// each tenant's base is placed past the previous tenant's working set,
    /// aligned up to the 1 GiB region granularity (so tenant `i` starts at
    /// `i` GiB unless an earlier tenant's scaled traffic outgrew its GiB).
    pub fn from_specs(specs: &[TenantSpec]) -> Self {
        let mut mix = MultiTenantMixSource::new();
        let mut base = 0u64;
        for spec in specs {
            let (source, span) = spec.build(base);
            mix.add_tenant(spec.name.clone(), source);
            base = (base + span).next_multiple_of(TENANT_REGION_BYTES);
        }
        mix
    }

    /// Append a tenant (builder style).
    pub fn with_tenant(
        mut self,
        name: impl Into<String>,
        source: impl TrafficSource + Send + 'static,
    ) -> Self {
        self.add_tenant(name, source);
        self
    }

    /// Append a tenant.
    pub fn add_tenant(
        &mut self,
        name: impl Into<String>,
        source: impl TrafficSource + Send + 'static,
    ) {
        assert!(
            self.tenants.len() < (1 << 15) - 1,
            "tenant index must fit the id tag"
        );
        self.tenants.push(Tenant {
            name: name.into(),
            source: Box::new(source),
        });
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The name of tenant `index`.
    pub fn tenant_name(&self, index: usize) -> &str {
        &self.tenants[index].name
    }

    /// The tenant a mixed request id belongs to, or `None` for ids this mix
    /// did not issue.
    pub fn tenant_of(&self, id: RequestId) -> Option<usize> {
        tenant_tag(id).filter(|&t| t < self.tenants.len())
    }

    /// Tag a tenant-local id with its tenant index.
    fn encode(tenant: usize, inner: u64) -> RequestId {
        assert!(
            inner < (1u64 << TENANT_SHIFT),
            "tenant-local ids must fit {TENANT_SHIFT} bits"
        );
        RequestId(((tenant as u64 + 1) << TENANT_SHIFT) | inner)
    }

    /// Strip the tenant tag, recovering the tenant-local id.
    fn decode(id: RequestId) -> u64 {
        id.0 & ((1u64 << TENANT_SHIFT) - 1)
    }
}

impl TrafficSource for MultiTenantMixSource {
    fn next_arrival_at(&self) -> Option<Cycle> {
        self.tenants
            .iter()
            .filter_map(|t| t.source.next_arrival_at())
            .min()
    }

    fn pull_into(&mut self, now: Cycle, out: &mut Vec<MemoryRequest>) {
        self.merge.clear();
        for (idx, tenant) in self.tenants.iter_mut().enumerate() {
            tenant.source.pull_into(now, &mut self.scratch);
            for (seq, mut req) in self.scratch.drain(..).enumerate() {
                req.id = Self::encode(idx, req.id.0);
                self.merge.push((req.arrival, idx, seq, req));
            }
        }
        // Deterministic merge: arrival time, then tenant index; the per-pull
        // sequence key keeps each tenant's own order (sort_unstable is safe
        // because the full key is unique).
        self.merge
            .sort_unstable_by_key(|(arrival, tenant, seq, _)| (*arrival, *tenant, *seq));
        out.extend(self.merge.drain(..).map(|(_, _, _, req)| req));
    }

    fn on_completion(&mut self, completion: &HostCompletion) {
        if let Some(tenant) = self.tenant_of(completion.id) {
            let mut local = *completion;
            local.id = RequestId(Self::decode(completion.id));
            self.tenants[tenant].source.on_completion(&local);
        }
    }

    fn is_exhausted(&self) -> bool {
        self.tenants.iter().all(|t| t.source.is_exhausted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rome_engine::source::ReplaySource;

    fn req(id: u64, addr: u64, arrival: Cycle) -> MemoryRequest {
        MemoryRequest::read(id, addr, 32, arrival)
    }

    #[test]
    fn merge_is_deterministic_by_arrival_then_tenant() {
        let a = ReplaySource::from(vec![req(0, 0, 0), req(1, 32, 20)]);
        let b = ReplaySource::from(vec![req(0, 64, 0), req(1, 96, 10)]);
        let mut mix = MultiTenantMixSource::new()
            .with_tenant("a", a)
            .with_tenant("b", b);
        assert_eq!(mix.tenants(), 2);
        let mut out = Vec::new();
        mix.pull_into(20, &mut out);
        // Arrival order 0,0,10,20 with tenant a before b at equal arrivals.
        let tenants: Vec<usize> = out.iter().map(|r| mix.tenant_of(r.id).unwrap()).collect();
        assert_eq!(tenants, vec![0, 1, 1, 0]);
        let arrivals: Vec<Cycle> = out.iter().map(|r| r.arrival).collect();
        assert_eq!(arrivals, vec![0, 0, 10, 20]);
        assert!(mix.is_exhausted());
        assert_eq!(mix.tenant_name(0), "a");
    }

    #[test]
    fn completions_route_back_to_their_tenant() {
        // Tenant 1 is closed-loop-ish: a replay we observe through the mix.
        let a = ReplaySource::from(vec![req(7, 0, 0)]);
        let mut mix = MultiTenantMixSource::new().with_tenant("only", a);
        let mut out = Vec::new();
        mix.pull_into(0, &mut out);
        assert_eq!(out.len(), 1);
        let id = out[0].id;
        assert_eq!(mix.tenant_of(id), Some(0));
        assert_eq!(MultiTenantMixSource::decode(id), 7);
        // Foreign ids are ignored.
        assert_eq!(mix.tenant_of(RequestId(42)), None);
        mix.on_completion(&HostCompletion {
            id,
            kind: out[0].kind,
            bytes: 32,
            arrival: 0,
            completed: 99,
        });
        assert!(mix.is_exhausted());
    }

    #[test]
    fn oversized_tenants_do_not_overlap_their_neighbors() {
        // Regression: a tenant whose scaled working set exceeds the 1 GiB
        // default region must push the next tenant's base past it instead of
        // silently aliasing its neighbor's addresses.
        let spec = |name: &str, scale| TenantSpec {
            name: name.into(),
            model: ModelConfig::grok_1(),
            batch: 64,
            seq_len: 4096,
            period_ns: 0,
            steps: 1,
            scale,
            granularity: 1 << 20, // 1 MiB requests keep the pull small
        };
        // Tenant 0's burst is ~1.4 GB — bigger than the 1 GiB default region.
        let mut mix = MultiTenantMixSource::from_specs(&[spec("big", 64), spec("small", 1 << 16)]);
        let mut out = Vec::new();
        mix.pull_into(Cycle::MAX, &mut out);
        let range = |t: usize| {
            let addrs: Vec<u64> = out
                .iter()
                .filter(|r| mix.tenant_of(r.id) == Some(t))
                .map(|r| r.address.raw())
                .collect();
            (*addrs.iter().min().unwrap(), *addrs.iter().max().unwrap())
        };
        let (min0, max0) = range(0);
        let (min1, _) = range(1);
        assert_eq!(min0, 0);
        assert!(max0 >= TENANT_REGION_BYTES, "tenant 0 outgrew its GiB");
        assert!(min1 > max0, "tenant 1 must start past tenant 0's region");
        assert!(min1.is_multiple_of(TENANT_REGION_BYTES));
    }

    #[test]
    fn specs_build_disjoint_regions() {
        let spec = |name: &str, batch| TenantSpec {
            name: name.into(),
            model: ModelConfig::grok_1(),
            batch,
            seq_len: 4096,
            period_ns: 1_000,
            steps: 2,
            scale: 1 << 16,
            granularity: 4096,
        };
        let mut mix = MultiTenantMixSource::from_specs(&[spec("g16", 16), spec("g64", 64)]);
        let mut out = Vec::new();
        mix.pull_into(Cycle::MAX, &mut out);
        assert!(!out.is_empty());
        for r in &out {
            let tenant = mix.tenant_of(r.id).unwrap();
            let region = r.address.raw() / TENANT_REGION_BYTES;
            assert_eq!(region, tenant as u64, "tenant regions must not overlap");
        }
        // The larger batch moves more bytes per step.
        let bytes = |t: usize| -> u64 {
            out.iter()
                .filter(|r| mix.tenant_of(r.id) == Some(t))
                .map(|r| r.bytes)
                .sum()
        };
        assert!(bytes(1) > bytes(0));
    }
}
