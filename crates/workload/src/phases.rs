//! Prefill/decode interleaved serving traffic.
//!
//! A serving engine alternates between two very different memory phases:
//! *prefill* streams long sequential weight reads (compute-bound, dense
//! bursts), *decode* scatters small KV-cache accesses plus occasional cache
//! appends (memory-bound, sparse). [`PrefillDecodeInterleaveSource`]
//! generates that alternation with a configurable steps-per-prefill ratio,
//! tagging every request with its phase so per-phase bandwidth and latency
//! can be attributed from the completions.
//!
//! The phase of a request is encoded in its id
//! ([`PrefillDecodeInterleaveSource::stage_of`]), so attribution needs no
//! side tables.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use rome_engine::request::{MemoryRequest, RequestId};
use rome_engine::source::TrafficSource;
use rome_hbm::units::Cycle;
use rome_llm::model::ModelConfig;
use rome_llm::ops::{decode_step, prefill_step};
use rome_llm::parallelism::Parallelism;
use rome_llm::types::Stage;

use crate::synthetic::{chunk_bytes, for_each_wrapping_chunk, seeded_rng};

/// Mint the next request id, carrying the phase tag in bit 0.
fn mint_id(next_seq: &mut u64, decode: bool) -> u64 {
    let id = (*next_seq << 1) | decode as u64;
    *next_seq += 1;
    id
}

/// Configuration of a [`PrefillDecodeInterleaveSource`].
#[derive(Debug, Clone, PartialEq)]
pub struct PrefillDecodeConfig {
    /// Sequential bytes streamed per prefill phase.
    pub prefill_bytes: u64,
    /// Request size of prefill traffic (long sequential runs).
    pub prefill_granularity: u64,
    /// Bytes touched per decode step.
    pub decode_bytes: u64,
    /// Request size of decode traffic (sparse accesses).
    pub decode_granularity: u64,
    /// Decode steps interleaved after every prefill phase.
    pub decode_steps_per_prefill: u32,
    /// Number of prefill→decode rounds.
    pub rounds: u32,
    /// Arrival gap between consecutive phases (0 = one initial burst).
    pub phase_period_ns: Cycle,
    /// Base/span of the weight region prefill streams through (wrapping).
    pub weight_base: u64,
    /// Span of the weight region.
    pub weight_span: u64,
    /// Base/span of the KV-cache region decode scatters over.
    pub kv_base: u64,
    /// Span of the KV region.
    pub kv_span: u64,
    /// Every `kv_write_period`-th decode request is a cache append (write);
    /// 0 = reads only.
    pub kv_write_period: u64,
    /// RNG seed for the decode scatter.
    pub seed: u64,
}

impl PrefillDecodeConfig {
    /// Derive phase sizes from a model's computed prefill and decode steps
    /// (per-device traffic at the paper's parallelism), scaled down by
    /// `scale` for tractable sampled simulation.
    pub fn from_model(
        model: &ModelConfig,
        batch: u64,
        seq_len: u64,
        scale: u64,
    ) -> PrefillDecodeConfig {
        let scale = scale.max(1);
        let pre = prefill_step(model, &Parallelism::paper_prefill(model), batch, seq_len);
        let dec = decode_step(model, &Parallelism::paper_decode(model), batch, seq_len);
        let prefill_bytes = (pre.total_bytes() / scale).max(4096);
        let decode_bytes = (dec.total_bytes() / scale).max(32);
        PrefillDecodeConfig {
            prefill_bytes,
            prefill_granularity: 4096,
            decode_bytes,
            decode_granularity: 32,
            decode_steps_per_prefill: 4,
            rounds: 2,
            phase_period_ns: 0,
            weight_base: 0,
            weight_span: (prefill_bytes * 2).max(4096),
            kv_base: 1 << 32,
            kv_span: (decode_bytes * 8).max(4096),
            kv_write_period: 4,
            seed: 0x5e12f,
        }
    }
}

/// The interleaved prefill/decode source. See the module docs.
#[derive(Debug, Clone)]
pub struct PrefillDecodeInterleaveSource {
    cfg: PrefillDecodeConfig,
    rng: ChaCha8Rng,
    next_phase: u64,
    /// Prefill cursor into the weight region (wraps).
    weight_cursor: u64,
    /// Request sequence number (the id carries the phase tag in bit 0).
    next_seq: u64,
    prefill_requests: u64,
    decode_requests: u64,
}

impl PrefillDecodeInterleaveSource {
    /// Build the source.
    pub fn new(cfg: PrefillDecodeConfig) -> Self {
        assert!(cfg.prefill_granularity > 0 && cfg.decode_granularity > 0);
        assert!(cfg.prefill_bytes > 0 && cfg.decode_bytes > 0);
        assert!(cfg.weight_span >= cfg.prefill_granularity);
        assert!(cfg.kv_span >= cfg.decode_granularity);
        assert!(cfg.rounds > 0);
        let rng = seeded_rng(cfg.seed);
        PrefillDecodeInterleaveSource {
            cfg,
            rng,
            next_phase: 0,
            weight_cursor: 0,
            // Sequence numbers start at 1 so no id is ever 0 (id 0 is
            // auto-reassigned by multi-channel submit).
            next_seq: 1,
            prefill_requests: 0,
            decode_requests: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PrefillDecodeConfig {
        &self.cfg
    }

    /// The phase a request id generated by this source belongs to.
    pub fn stage_of(id: RequestId) -> Stage {
        if id.0 & 1 == 0 {
            Stage::Prefill
        } else {
            Stage::Decode
        }
    }

    /// Prefill requests emitted so far.
    pub fn prefill_requests(&self) -> u64 {
        self.prefill_requests
    }

    /// Decode requests emitted so far.
    pub fn decode_requests(&self) -> u64 {
        self.decode_requests
    }

    /// Phases per round: one prefill plus the configured decode steps.
    fn phases_per_round(&self) -> u64 {
        1 + self.cfg.decode_steps_per_prefill as u64
    }

    /// Total phases over the whole run.
    fn total_phases(&self) -> u64 {
        self.cfg.rounds as u64 * self.phases_per_round()
    }

    fn phase_arrival(&self, phase: u64) -> Cycle {
        phase * self.cfg.phase_period_ns
    }

    fn generate_prefill(&mut self, arrival: Cycle, out: &mut Vec<MemoryRequest>) {
        let cfg = self.cfg.clone();
        let next_seq = &mut self.next_seq;
        let prefill_requests = &mut self.prefill_requests;
        self.weight_cursor = for_each_wrapping_chunk(
            cfg.weight_span,
            self.weight_cursor,
            cfg.prefill_bytes,
            cfg.prefill_granularity,
            |offset, bytes| {
                let id = mint_id(next_seq, false);
                out.push(MemoryRequest::read(
                    id,
                    cfg.weight_base + offset,
                    bytes,
                    arrival,
                ));
                *prefill_requests += 1;
            },
        );
    }

    fn generate_decode(&mut self, arrival: Cycle, out: &mut Vec<MemoryRequest>) {
        let cfg = self.cfg.clone();
        let slots = cfg.kv_span / cfg.decode_granularity;
        let count = cfg.decode_bytes.div_ceil(cfg.decode_granularity);
        for i in 0..count {
            let bytes = chunk_bytes(i, cfg.decode_bytes, cfg.decode_granularity);
            let slot = self.rng.gen_range(0..slots);
            let addr = cfg.kv_base + slot * cfg.decode_granularity;
            let id = mint_id(&mut self.next_seq, true);
            let req = if cfg.kv_write_period > 0 && (i + 1).is_multiple_of(cfg.kv_write_period) {
                MemoryRequest::write(id, addr, bytes, arrival)
            } else {
                MemoryRequest::read(id, addr, bytes, arrival)
            };
            out.push(req);
            self.decode_requests += 1;
        }
    }
}

impl TrafficSource for PrefillDecodeInterleaveSource {
    fn next_arrival_at(&self) -> Option<Cycle> {
        (self.next_phase < self.total_phases()).then(|| self.phase_arrival(self.next_phase))
    }

    fn pull_into(&mut self, now: Cycle, out: &mut Vec<MemoryRequest>) {
        while self.next_phase < self.total_phases() && self.phase_arrival(self.next_phase) <= now {
            let phase = self.next_phase;
            let arrival = self.phase_arrival(phase);
            self.next_phase += 1;
            if phase.is_multiple_of(self.phases_per_round()) {
                self.generate_prefill(arrival, out);
            } else {
                self.generate_decode(arrival, out);
            }
        }
    }

    fn is_exhausted(&self) -> bool {
        self.next_phase >= self.total_phases()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rome_engine::request::RequestKind;

    fn tiny_cfg(seed: u64) -> PrefillDecodeConfig {
        PrefillDecodeConfig {
            prefill_bytes: 4 * 4096,
            prefill_granularity: 4096,
            decode_bytes: 8 * 32,
            decode_granularity: 32,
            decode_steps_per_prefill: 2,
            rounds: 2,
            phase_period_ns: 1_000,
            weight_base: 0,
            weight_span: 16 * 4096,
            kv_base: 1 << 20,
            kv_span: 1 << 16,
            kv_write_period: 4,
            seed,
        }
    }

    #[test]
    fn phases_alternate_and_are_tagged() {
        let mut src = PrefillDecodeInterleaveSource::new(tiny_cfg(3));
        let mut out = Vec::new();
        src.pull_into(0, &mut out);
        // Phase 0 is a prefill burst: 4 sequential 4 KiB reads.
        assert_eq!(out.len(), 4);
        assert!(out
            .iter()
            .all(|r| PrefillDecodeInterleaveSource::stage_of(r.id) == Stage::Prefill));
        assert_eq!(out[1].address.raw(), 4096);
        out.clear();
        src.pull_into(2_000, &mut out);
        // Phases 1 and 2 are decode steps: sparse KV traffic with appends.
        assert_eq!(out.len(), 16);
        assert!(out
            .iter()
            .all(|r| PrefillDecodeInterleaveSource::stage_of(r.id) == Stage::Decode));
        assert!(out.iter().all(|r| r.address.raw() >= 1 << 20));
        assert_eq!(
            out.iter().filter(|r| r.kind == RequestKind::Write).count(),
            4
        );
        src.pull_into(Cycle::MAX, &mut out);
        assert!(src.is_exhausted());
        assert_eq!(src.prefill_requests(), 8);
        assert_eq!(src.decode_requests(), 32);
    }

    #[test]
    fn seed_determinism() {
        let drain = |seed| {
            let mut src = PrefillDecodeInterleaveSource::new(tiny_cfg(seed));
            let mut out = Vec::new();
            src.pull_into(Cycle::MAX, &mut out);
            out
        };
        assert_eq!(drain(5), drain(5));
        assert_ne!(drain(5), drain(6));
    }

    #[test]
    fn from_model_scales_phase_sizes() {
        let model = ModelConfig::grok_1();
        let cfg = PrefillDecodeConfig::from_model(&model, 16, 4096, 1 << 14);
        assert!(cfg.prefill_bytes >= 4096);
        assert!(cfg.decode_bytes >= 32);
        // Prefill moves much more data than one decode step at this batch.
        assert!(cfg.prefill_bytes > cfg.decode_bytes);
        let src = PrefillDecodeInterleaveSource::new(cfg);
        assert!(!src.is_exhausted());
    }
}
