//! Parallelization strategies (§VI-A).
//!
//! The paper serves every model on eight accelerators. During prefill, tensor
//! parallelism (TP) of degree 8 is applied everywhere. During decode the
//! attention layers use TP 1 (data parallelism) for DeepSeek-V3 — the
//! compressed MLA KV cache favours DP — and TP 8 for Grok-1 and Llama-3;
//! MoE layers use expert parallelism (EP) with each accelerator owning a
//! distinct subset of experts; dense FFN layers use TP 8.

use serde::{Deserialize, Serialize};

use crate::model::ModelConfig;
use crate::types::Stage;

/// How one model is partitioned across the accelerators of a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Parallelism {
    /// Number of accelerators serving the model.
    pub devices: u32,
    /// Tensor-parallel degree applied to attention layers.
    pub attention_tp: u32,
    /// Data-parallel degree applied to attention layers (batch is split).
    pub attention_dp: u32,
    /// Tensor-parallel degree applied to dense FFN layers.
    pub ffn_tp: u32,
    /// Expert-parallel degree applied to MoE layers.
    pub expert_parallel: u32,
}

impl Parallelism {
    /// The paper's decode-stage strategy for `model` on eight accelerators.
    pub fn paper_decode(model: &ModelConfig) -> Self {
        let mla = model.attention.is_mla();
        Parallelism {
            devices: 8,
            attention_tp: if mla { 1 } else { 8 },
            attention_dp: if mla { 8 } else { 1 },
            ffn_tp: 8,
            expert_parallel: 8,
        }
    }

    /// The paper's prefill-stage strategy (TP 8 everywhere).
    pub fn paper_prefill(_model: &ModelConfig) -> Self {
        Parallelism {
            devices: 8,
            attention_tp: 8,
            attention_dp: 1,
            ffn_tp: 8,
            expert_parallel: 8,
        }
    }

    /// The paper's strategy for `model` in `stage`.
    pub fn paper(model: &ModelConfig, stage: Stage) -> Self {
        match stage {
            Stage::Prefill => Parallelism::paper_prefill(model),
            Stage::Decode => Parallelism::paper_decode(model),
        }
    }

    /// A single-device configuration (useful for unit tests and small
    /// studies).
    pub fn single_device() -> Self {
        Parallelism {
            devices: 1,
            attention_tp: 1,
            attention_dp: 1,
            ffn_tp: 1,
            expert_parallel: 1,
        }
    }

    /// Validate internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the attention TP × DP product does not equal the device
    /// count, or any degree is zero.
    pub fn validate(&self) {
        assert!(self.devices > 0 && self.attention_tp > 0 && self.attention_dp > 0);
        assert!(self.ffn_tp > 0 && self.expert_parallel > 0);
        assert_eq!(
            self.attention_tp * self.attention_dp,
            self.devices,
            "attention TP × DP must cover all devices"
        );
    }

    /// The share of a batch of `batch` sequences handled by one device's
    /// attention layers (data parallelism splits the batch).
    pub fn attention_batch_share(&self, batch: u64) -> u64 {
        batch.div_ceil(self.attention_dp as u64)
    }

    /// The fraction of attention weights resident on (and read by) one
    /// device.
    pub fn attention_weight_fraction(&self) -> f64 {
        1.0 / self.attention_tp as f64
    }

    /// The fraction of a dense FFN's weights resident on one device.
    pub fn ffn_weight_fraction(&self) -> f64 {
        1.0 / self.ffn_tp as f64
    }

    /// The fraction of MoE experts resident on one device.
    pub fn expert_fraction(&self) -> f64 {
        1.0 / self.expert_parallel as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deepseek_uses_data_parallel_attention_in_decode() {
        let p = Parallelism::paper_decode(&ModelConfig::deepseek_v3());
        p.validate();
        assert_eq!(p.attention_tp, 1);
        assert_eq!(p.attention_dp, 8);
        assert_eq!(p.expert_parallel, 8);
    }

    #[test]
    fn gqa_models_use_tensor_parallel_attention_in_decode() {
        for m in [ModelConfig::grok_1(), ModelConfig::llama3_405b()] {
            let p = Parallelism::paper_decode(&m);
            p.validate();
            assert_eq!(p.attention_tp, 8, "{}", m.name);
            assert_eq!(p.attention_dp, 1);
        }
    }

    #[test]
    fn prefill_uses_tp8_everywhere() {
        for m in ModelConfig::paper_models() {
            let p = Parallelism::paper(&m, Stage::Prefill);
            p.validate();
            assert_eq!(p.attention_tp, 8);
            assert_eq!(p.ffn_tp, 8);
        }
    }

    #[test]
    fn batch_and_weight_shares() {
        let p = Parallelism::paper_decode(&ModelConfig::deepseek_v3());
        assert_eq!(p.attention_batch_share(64), 8);
        assert_eq!(p.attention_batch_share(7), 1);
        assert_eq!(p.attention_weight_fraction(), 1.0);
        let p = Parallelism::paper_decode(&ModelConfig::llama3_405b());
        assert_eq!(p.attention_batch_share(64), 64);
        assert_eq!(p.attention_weight_fraction(), 0.125);
        assert_eq!(p.ffn_weight_fraction(), 0.125);
        assert_eq!(p.expert_fraction(), 0.125);
    }

    #[test]
    #[should_panic(expected = "attention TP × DP")]
    fn inconsistent_parallelism_panics() {
        Parallelism {
            devices: 8,
            attention_tp: 2,
            attention_dp: 2,
            ffn_tp: 8,
            expert_parallel: 8,
        }
        .validate();
    }

    #[test]
    fn single_device_is_consistent() {
        Parallelism::single_device().validate();
    }
}
