//! Per-operator FLOP and memory-traffic accounting.
//!
//! A [`StepTraffic`] describes everything one accelerator does for a single
//! inference step (one decode iteration, or one prefill pass): a list of
//! operators, each annotated with the bytes of weight / activation / KV-cache
//! data it moves and the FLOPs it performs *on that device* given the
//! parallelization strategy. `rome-sim` turns this into time by combining it
//! with an accelerator and a memory system.

use serde::{Deserialize, Serialize};

use crate::model::ModelConfig;
use crate::parallelism::Parallelism;
use crate::traffic::StepTraffic;
use crate::types::{DataKind, Stage};

/// Coarse classification of operators (used to split attention vs FFN for
/// the paper's Figure 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatorKind {
    /// Token embedding lookup.
    Embedding,
    /// Attention projections and score/context computation.
    Attention,
    /// Feed-forward network (dense or MoE experts).
    Ffn,
    /// Normalization and other element-wise work.
    Elementwise,
    /// The final language-model head.
    LmHead,
}

impl std::fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OperatorKind::Embedding => "embedding",
            OperatorKind::Attention => "attention",
            OperatorKind::Ffn => "ffn",
            OperatorKind::Elementwise => "elementwise",
            OperatorKind::LmHead => "lm_head",
        };
        f.write_str(s)
    }
}

/// One operator instance as executed by one device, possibly repeated across
/// `repeat` identical layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    /// Operator name (e.g. `"attn_proj"`, `"moe_experts"`).
    pub name: String,
    /// Coarse kind.
    pub kind: OperatorKind,
    /// How many times this operator runs per step (number of layers it
    /// appears in).
    pub repeat: u32,
    /// Weight bytes read per execution (per device).
    pub weight_bytes: u64,
    /// Activation bytes read + written per execution (per device).
    pub activation_bytes: u64,
    /// KV-cache bytes read + written per execution (per device).
    pub kv_bytes: u64,
    /// Floating-point operations per execution (per device).
    pub flops: u64,
    /// Size of one independently-allocated weight object within this
    /// operator (one projection matrix, one expert matrix, …). Zero means
    /// the weight traffic is a single object. Used by the channel
    /// load-balance analysis.
    pub weight_unit_bytes: u64,
    /// Size of one independently-allocated KV-cache object (one sequence's
    /// per-layer cache). Zero means a single object.
    pub kv_unit_bytes: u64,
}

impl Operator {
    /// Total memory traffic of one execution, in bytes.
    pub fn bytes(&self) -> u64 {
        self.weight_bytes + self.activation_bytes + self.kv_bytes
    }

    /// Memory traffic of one execution attributed to `kind`.
    pub fn bytes_of(&self, kind: DataKind) -> u64 {
        match kind {
            DataKind::Weight => self.weight_bytes,
            DataKind::Activation => self.activation_bytes,
            DataKind::KvCache => self.kv_bytes,
        }
    }

    /// Arithmetic intensity (FLOPs per byte) of one execution.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes() == 0 {
            f64::INFINITY
        } else {
            self.flops as f64 / self.bytes() as f64
        }
    }

    /// Break one execution's traffic into independently-allocated memory
    /// objects: weight matrices, per-sequence KV-cache slices, and the
    /// activation buffer. The sum of the returned sizes equals
    /// [`Operator::bytes`].
    pub fn tensor_units(&self) -> Vec<(DataKind, u64)> {
        fn split(total: u64, unit: u64, kind: DataKind, out: &mut Vec<(DataKind, u64)>) {
            if total == 0 {
                return;
            }
            if unit == 0 || unit >= total {
                out.push((kind, total));
                return;
            }
            let full = total / unit;
            for _ in 0..full {
                out.push((kind, unit));
            }
            if !total.is_multiple_of(unit) {
                out.push((kind, total % unit));
            }
        }
        let mut out = Vec::new();
        split(
            self.weight_bytes,
            self.weight_unit_bytes,
            DataKind::Weight,
            &mut out,
        );
        split(
            self.kv_bytes,
            self.kv_unit_bytes,
            DataKind::KvCache,
            &mut out,
        );
        split(self.activation_bytes, 0, DataKind::Activation, &mut out);
        out
    }
}

fn attention_ops(
    model: &ModelConfig,
    par: &Parallelism,
    stage: Stage,
    batch: u64,
    seq_len: u64,
) -> Vec<Operator> {
    let dtype = model.dtype.bytes();
    let hidden = model.hidden as u64;
    let tp = par.attention_tp as u64;
    // Tokens processed by this device's attention in one step.
    let device_sequences = par.attention_batch_share(batch);
    let tokens = match stage {
        Stage::Decode => device_sequences,
        Stage::Prefill => device_sequences * seq_len,
    };
    // Context each new token attends over.
    let context = match stage {
        Stage::Decode => seq_len,
        Stage::Prefill => seq_len / 2,
    };

    let proj_weight_bytes = model.attention.weight_params(hidden) * dtype / tp;
    let proj_matrices = if model.attention.is_mla() { 5 } else { 4 };
    let proj = Operator {
        name: "attn_proj".to_string(),
        kind: OperatorKind::Attention,
        repeat: model.layers,
        weight_bytes: proj_weight_bytes,
        activation_bytes: 2 * tokens * hidden * dtype,
        kv_bytes: 0,
        flops: model.attention.projection_flops(hidden, tokens) / tp,
        weight_unit_bytes: proj_weight_bytes / proj_matrices,
        kv_unit_bytes: 0,
    };

    let kv_per_token = model.attention.kv_bytes_per_token(dtype);
    let kv_read = match stage {
        // Every generated token re-reads the whole per-layer KV cache of its
        // sequences (split across TP for GQA; whole for MLA under DP).
        Stage::Decode => device_sequences * seq_len * kv_per_token / tp,
        // Prefill builds the cache and re-reads it roughly once.
        Stage::Prefill => tokens * kv_per_token / tp,
    };
    let kv_write = tokens * kv_per_token / tp;
    let score = Operator {
        name: "attn_score_context".to_string(),
        kind: OperatorKind::Attention,
        repeat: model.layers,
        weight_bytes: 0,
        activation_bytes: 2 * tokens * hidden * dtype,
        kv_bytes: kv_read + kv_write,
        flops: model.attention.attention_flops(context, tokens) / tp,
        weight_unit_bytes: 0,
        // One sequence's per-layer cache is the independently-placed unit.
        kv_unit_bytes: seq_len * kv_per_token / tp,
    };

    vec![proj, score]
}

fn ffn_ops(
    model: &ModelConfig,
    par: &Parallelism,
    stage: Stage,
    batch: u64,
    seq_len: u64,
) -> Vec<Operator> {
    let dtype = model.dtype.bytes();
    let hidden = model.hidden as u64;
    let tokens = match stage {
        Stage::Decode => batch,
        Stage::Prefill => batch * seq_len,
    };
    let mut ops = Vec::new();

    // Leading dense layers (DeepSeek-V3 has 3).
    if model.leading_dense_layers > 0 {
        let dense = crate::ffn::FfnConfig::Dense {
            intermediate: model.leading_dense_intermediate,
        };
        let weight_bytes = dense.weight_params(hidden) * dtype / par.ffn_tp as u64;
        ops.push(Operator {
            name: "dense_ffn_leading".to_string(),
            kind: OperatorKind::Ffn,
            repeat: model.leading_dense_layers,
            weight_bytes,
            activation_bytes: 2 * tokens * hidden * dtype,
            kv_bytes: 0,
            flops: dense.flops(hidden, tokens) / par.ffn_tp as u64,
            weight_unit_bytes: weight_bytes / 3,
            kv_unit_bytes: 0,
        });
    }

    let main_layers = model.layers - model.leading_dense_layers;
    if model.ffn.is_moe() {
        // Expert parallelism: every device owns experts/EP experts and
        // processes the tokens routed to them; the distinct experts a batch
        // touches are spread uniformly over the devices.
        let ep = par.expert_parallel as u64;
        let touched = model.ffn.weight_params_touched(hidden, tokens);
        // One expert projection matrix is the independently-placed unit.
        let expert_matrix = hidden * model.ffn.intermediate() as u64 * dtype;
        ops.push(Operator {
            name: "moe_experts".to_string(),
            kind: OperatorKind::Ffn,
            repeat: main_layers,
            weight_bytes: touched * dtype / ep,
            activation_bytes: 2 * tokens * hidden * dtype / ep,
            kv_bytes: 0,
            flops: model.ffn.flops(hidden, tokens) / ep,
            weight_unit_bytes: expert_matrix,
            kv_unit_bytes: 0,
        });
    } else {
        let weight_bytes = model.ffn.weight_params(hidden) * dtype / par.ffn_tp as u64;
        ops.push(Operator {
            name: "dense_ffn".to_string(),
            kind: OperatorKind::Ffn,
            repeat: main_layers,
            weight_bytes,
            activation_bytes: 2 * tokens * hidden * dtype,
            kv_bytes: 0,
            flops: model.ffn.flops(hidden, tokens) / par.ffn_tp as u64,
            weight_unit_bytes: weight_bytes / 3,
            kv_unit_bytes: 0,
        });
    }
    ops
}

fn shared_ops(
    model: &ModelConfig,
    par: &Parallelism,
    stage: Stage,
    batch: u64,
    seq_len: u64,
) -> Vec<Operator> {
    let dtype = model.dtype.bytes();
    let hidden = model.hidden as u64;
    let tokens = match stage {
        Stage::Decode => batch,
        Stage::Prefill => batch * seq_len,
    };
    let norm = Operator {
        name: "rmsnorm".to_string(),
        kind: OperatorKind::Elementwise,
        repeat: 2 * model.layers,
        weight_bytes: hidden * dtype,
        activation_bytes: 2 * tokens * hidden * dtype,
        kv_bytes: 0,
        flops: 6 * tokens * hidden,
        weight_unit_bytes: 0,
        kv_unit_bytes: 0,
    };
    let embedding = Operator {
        name: "embedding".to_string(),
        kind: OperatorKind::Embedding,
        repeat: 1,
        weight_bytes: tokens * hidden * dtype,
        activation_bytes: tokens * hidden * dtype,
        kv_bytes: 0,
        flops: tokens * hidden,
        weight_unit_bytes: hidden * dtype,
        kv_unit_bytes: 0,
    };
    let lm_head_weight = model.vocab as u64 * hidden * dtype / par.ffn_tp as u64;
    let lm_head = Operator {
        name: "lm_head".to_string(),
        kind: OperatorKind::LmHead,
        repeat: 1,
        weight_bytes: lm_head_weight,
        activation_bytes: (tokens * hidden + batch * model.vocab as u64) * dtype,
        kv_bytes: 0,
        flops: 2 * model.vocab as u64 * hidden * batch / par.ffn_tp as u64,
        weight_unit_bytes: 0,
        kv_unit_bytes: 0,
    };
    vec![norm, embedding, lm_head]
}

/// Build the per-device traffic of one **decode** step.
pub fn decode_step(
    model: &ModelConfig,
    par: &Parallelism,
    batch: u64,
    seq_len: u64,
) -> StepTraffic {
    build(model, par, Stage::Decode, batch, seq_len)
}

/// Build the per-device traffic of one **prefill** pass.
pub fn prefill_step(
    model: &ModelConfig,
    par: &Parallelism,
    batch: u64,
    seq_len: u64,
) -> StepTraffic {
    build(model, par, Stage::Prefill, batch, seq_len)
}

fn build(
    model: &ModelConfig,
    par: &Parallelism,
    stage: Stage,
    batch: u64,
    seq_len: u64,
) -> StepTraffic {
    par.validate();
    let mut operators = attention_ops(model, par, stage, batch, seq_len);
    operators.extend(ffn_ops(model, par, stage, batch, seq_len));
    operators.extend(shared_ops(model, par, stage, batch, seq_len));
    StepTraffic {
        model: model.name.clone(),
        stage,
        batch,
        seq_len,
        operators,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_step_is_memory_dominated_for_every_paper_model() {
        for model in ModelConfig::paper_models() {
            let par = Parallelism::paper_decode(&model);
            let step = decode_step(&model, &par, 64, 8192);
            // Arithmetic intensity well under the 280 Op/B machine balance.
            let ai = step.flops() as f64 / step.total_bytes() as f64;
            assert!(ai < 280.0, "{}: decode AI {ai:.1}", model.name);
        }
    }

    #[test]
    fn prefill_is_compute_dominated_for_every_paper_model() {
        for model in ModelConfig::paper_models() {
            let par = Parallelism::paper_prefill(&model);
            let step = prefill_step(&model, &par, 64, 8192);
            let ai = step.flops() as f64 / step.total_bytes() as f64;
            assert!(ai > 280.0, "{}: prefill AI {ai:.1}", model.name);
        }
    }

    #[test]
    fn llama_decode_weight_traffic_matches_weights_per_device() {
        let model = ModelConfig::llama3_405b();
        let par = Parallelism::paper_decode(&model);
        let step = decode_step(&model, &par, 8, 8192);
        let weight = step.bytes_of(DataKind::Weight);
        // A dense model reads essentially all of its per-device weights every
        // decode step: ~1/8 of 810 GB ≈ 101 GB.
        let per_device_weights = model.weight_bytes() / 8;
        let ratio = weight as f64 / per_device_weights as f64;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn deepseek_moe_weight_traffic_grows_with_batch() {
        let model = ModelConfig::deepseek_v3();
        let par = Parallelism::paper_decode(&model);
        let small = decode_step(&model, &par, 8, 8192).bytes_of(DataKind::Weight);
        let large = decode_step(&model, &par, 256, 8192).bytes_of(DataKind::Weight);
        assert!(
            large > small,
            "MoE should touch more experts at larger batch"
        );
    }

    #[test]
    fn kv_traffic_scales_with_batch_and_sequence_length() {
        let model = ModelConfig::grok_1();
        let par = Parallelism::paper_decode(&model);
        let base = decode_step(&model, &par, 32, 4096).bytes_of(DataKind::KvCache);
        let more_batch = decode_step(&model, &par, 64, 4096).bytes_of(DataKind::KvCache);
        let more_seq = decode_step(&model, &par, 32, 8192).bytes_of(DataKind::KvCache);
        assert!(more_batch as f64 > 1.9 * base as f64);
        assert!(more_seq as f64 > 1.9 * base as f64);
    }

    #[test]
    fn attention_and_ffn_are_separately_attributable() {
        let model = ModelConfig::grok_1();
        let par = Parallelism::paper_decode(&model);
        let step = decode_step(&model, &par, 64, 8192);
        let attn = step.bytes_of_kind_filtered(OperatorKind::Attention);
        let ffn = step.bytes_of_kind_filtered(OperatorKind::Ffn);
        assert!(attn > 0 && ffn > 0);
        assert!(attn + ffn <= step.total_bytes());
    }

    #[test]
    fn operator_helpers() {
        let op = Operator {
            name: "x".to_string(),
            kind: OperatorKind::Ffn,
            repeat: 2,
            weight_bytes: 100,
            activation_bytes: 50,
            kv_bytes: 25,
            flops: 350,
            weight_unit_bytes: 40,
            kv_unit_bytes: 0,
        };
        assert_eq!(op.bytes(), 175);
        assert_eq!(op.bytes_of(DataKind::Weight), 100);
        assert_eq!(op.bytes_of(DataKind::KvCache), 25);
        assert_eq!(op.arithmetic_intensity(), 2.0);
        assert_eq!(OperatorKind::Ffn.to_string(), "ffn");
        let empty = Operator {
            weight_bytes: 0,
            activation_bytes: 0,
            kv_bytes: 0,
            ..op
        };
        assert!(empty.arithmetic_intensity().is_infinite());
    }
}
