//! Model configurations for the three LLMs the paper evaluates.

use serde::{Deserialize, Serialize};

use crate::attention::AttentionConfig;
use crate::ffn::FfnConfig;
use crate::types::Dtype;

/// The architecture description of one transformer-decoder LLM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name.
    pub name: String,
    /// Number of decoder blocks.
    pub layers: u32,
    /// Hidden (embedding) dimension.
    pub hidden: u32,
    /// Vocabulary size.
    pub vocab: u32,
    /// Attention mechanism of every layer.
    pub attention: AttentionConfig,
    /// FFN of the non-dense layers.
    pub ffn: FfnConfig,
    /// Leading layers that use a dense FFN even in an MoE model
    /// (DeepSeek-V3 uses 3).
    pub leading_dense_layers: u32,
    /// Intermediate size of those leading dense layers.
    pub leading_dense_intermediate: u32,
    /// Element type of the weights and KV cache.
    pub dtype: Dtype,
}

impl ModelConfig {
    /// DeepSeek-V3 (671 B parameters): MLA attention and a 256-expert MoE
    /// with 8 routed + 1 shared expert active per token.
    pub fn deepseek_v3() -> Self {
        ModelConfig {
            name: "DeepSeek-V3".to_string(),
            layers: 61,
            hidden: 7168,
            vocab: 129_280,
            attention: AttentionConfig::Mla {
                heads: 128,
                nope_head_dim: 128,
                rope_head_dim: 64,
                v_head_dim: 128,
                q_lora_rank: 1536,
                kv_lora_rank: 512,
            },
            ffn: FfnConfig::Moe {
                experts: 256,
                top_k: 8,
                expert_intermediate: 2048,
                shared_experts: 1,
            },
            leading_dense_layers: 3,
            leading_dense_intermediate: 18_432,
            dtype: Dtype::Bf16,
        }
    }

    /// Grok-1 (314 B parameters): GQA and an 8-expert MoE with 2 experts
    /// active per token.
    pub fn grok_1() -> Self {
        ModelConfig {
            name: "Grok 1".to_string(),
            layers: 64,
            hidden: 6144,
            vocab: 131_072,
            attention: AttentionConfig::Gqa {
                heads: 48,
                kv_heads: 8,
                head_dim: 128,
            },
            ffn: FfnConfig::Moe {
                experts: 8,
                top_k: 2,
                expert_intermediate: 32_768,
                shared_experts: 0,
            },
            leading_dense_layers: 0,
            leading_dense_intermediate: 0,
            dtype: Dtype::Bf16,
        }
    }

    /// Llama-3-405B: GQA and a dense FFN.
    pub fn llama3_405b() -> Self {
        ModelConfig {
            name: "Llama 3".to_string(),
            layers: 126,
            hidden: 16_384,
            vocab: 128_256,
            attention: AttentionConfig::Gqa {
                heads: 128,
                kv_heads: 8,
                head_dim: 128,
            },
            ffn: FfnConfig::Dense {
                intermediate: 53_248,
            },
            leading_dense_layers: 0,
            leading_dense_intermediate: 0,
            dtype: Dtype::Bf16,
        }
    }

    /// The three models of the paper's evaluation, in the order of Fig. 12.
    pub fn paper_models() -> Vec<ModelConfig> {
        vec![
            ModelConfig::deepseek_v3(),
            ModelConfig::grok_1(),
            ModelConfig::llama3_405b(),
        ]
    }

    /// The FFN configuration of layer `layer` (leading layers may be dense).
    pub fn ffn_of_layer(&self, layer: u32) -> FfnConfig {
        if layer < self.leading_dense_layers {
            FfnConfig::Dense {
                intermediate: self.leading_dense_intermediate,
            }
        } else {
            self.ffn
        }
    }

    /// Total parameter count of the model (decoder blocks + embedding +
    /// LM head).
    pub fn total_params(&self) -> u64 {
        let mut params = 0u64;
        for layer in 0..self.layers {
            params += self.attention.weight_params(self.hidden as u64);
            params += self.ffn_of_layer(layer).weight_params(self.hidden as u64);
            // Two RMSNorm weight vectors per block.
            params += 2 * self.hidden as u64;
        }
        // Token embedding and LM head.
        params += 2 * self.vocab as u64 * self.hidden as u64;
        params
    }

    /// Total weight footprint in bytes.
    pub fn weight_bytes(&self) -> u64 {
        self.total_params() * self.dtype.bytes()
    }

    /// KV-cache bytes per token across all layers.
    pub fn kv_bytes_per_token(&self) -> u64 {
        self.layers as u64 * self.attention.kv_bytes_per_token(self.dtype.bytes())
    }

    /// KV-cache bytes for a whole batch of sequences of `seq_len` tokens.
    pub fn kv_bytes(&self, batch: u64, seq_len: u64) -> u64 {
        batch * seq_len * self.kv_bytes_per_token()
    }

    /// The largest batch (power of two) whose weights + KV cache fit in
    /// `capacity_bytes` of memory at sequence length `seq_len` — the paper's
    /// "maximum batch size is constrained by memory capacity".
    pub fn max_batch_for_capacity(&self, capacity_bytes: u64, seq_len: u64) -> u64 {
        let weights = self.weight_bytes();
        if weights >= capacity_bytes {
            return 0;
        }
        let per_seq = self.kv_bytes(1, seq_len) + 4 * 1024 * 1024;
        let fit = (capacity_bytes - weights) / per_seq.max(1);
        // Round down to a power of two, as the paper's sweeps do.
        if fit == 0 {
            0
        } else {
            1u64 << (63 - fit.leading_zeros())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_are_in_the_published_ballpark() {
        let ds = ModelConfig::deepseek_v3();
        let grok = ModelConfig::grok_1();
        let llama = ModelConfig::llama3_405b();
        let ds_b = ds.total_params() as f64 / 1e9;
        let grok_b = grok.total_params() as f64 / 1e9;
        let llama_b = llama.total_params() as f64 / 1e9;
        assert!((600.0..750.0).contains(&ds_b), "DeepSeek-V3 {ds_b:.0} B");
        assert!((280.0..360.0).contains(&grok_b), "Grok-1 {grok_b:.0} B");
        assert!((380.0..440.0).contains(&llama_b), "Llama-3 {llama_b:.0} B");
    }

    #[test]
    fn kv_cache_per_token_ordering_matches_the_architectures() {
        let ds = ModelConfig::deepseek_v3();
        let grok = ModelConfig::grok_1();
        let llama = ModelConfig::llama3_405b();
        // MLA compresses the per-token KV state far below GQA.
        assert!(ds.kv_bytes_per_token() < grok.kv_bytes_per_token());
        assert!(grok.kv_bytes_per_token() < llama.kv_bytes_per_token());
        // Llama-3-405B: 126 layers × 4 KiB = 516,096 B per token.
        assert_eq!(llama.kv_bytes_per_token(), 126 * 4096);
        // DeepSeek-V3: 61 layers × 1152 B.
        assert_eq!(ds.kv_bytes_per_token(), 61 * 1152);
    }

    #[test]
    fn leading_dense_layers_of_deepseek() {
        let ds = ModelConfig::deepseek_v3();
        assert!(!ds.ffn_of_layer(0).is_moe());
        assert!(!ds.ffn_of_layer(2).is_moe());
        assert!(ds.ffn_of_layer(3).is_moe());
        let grok = ModelConfig::grok_1();
        assert!(grok.ffn_of_layer(0).is_moe());
    }

    #[test]
    fn weight_bytes_fit_in_the_paper_memory_system() {
        // The paper's system has 8 accelerators × 256 GB = 2 TB total; each
        // model's BF16 weights must fit comfortably.
        let total_capacity: u64 = 8 * 256 * (1 << 30);
        for m in ModelConfig::paper_models() {
            assert!(
                m.weight_bytes() < total_capacity * 3 / 4,
                "{} too large",
                m.name
            );
        }
    }

    #[test]
    fn max_batch_is_limited_by_kv_cache_growth() {
        let llama = ModelConfig::llama3_405b();
        let capacity: u64 = 8 * 256 * (1 << 30);
        let at_8k = llama.max_batch_for_capacity(capacity, 8192);
        // Fig. 12 sweeps Llama-3 up to batch 256 at 8K context.
        assert!((256..=512).contains(&at_8k), "batch {at_8k}");
        let ds = ModelConfig::deepseek_v3();
        let ds_batch = ds.max_batch_for_capacity(capacity, 8192);
        // DeepSeek-V3's compressed KV cache allows ~1024.
        assert!(ds_batch >= 1024, "batch {ds_batch}");
        // Weights alone exceeding capacity yields zero.
        assert_eq!(llama.max_batch_for_capacity(1 << 30, 8192), 0);
    }

    #[test]
    fn paper_models_are_three_and_named() {
        let models = ModelConfig::paper_models();
        assert_eq!(models.len(), 3);
        assert_eq!(models[0].name, "DeepSeek-V3");
        assert_eq!(models[1].name, "Grok 1");
        assert_eq!(models[2].name, "Llama 3");
    }
}
