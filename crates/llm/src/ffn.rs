//! Feed-forward-network configurations: dense FFN and mixture of experts.
//!
//! MoE layers only activate `top_k` of their experts per token, so the
//! weight traffic of a decode step depends on how many *distinct* experts the
//! batch touches — the effect that drives the paper's Figure 13 discussion of
//! `LBR_FFN` improving with batch size.

use serde::{Deserialize, Serialize};

/// The FFN of one decoder layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FfnConfig {
    /// Dense gated FFN (gate, up, down projections).
    Dense {
        /// Intermediate dimension.
        intermediate: u32,
    },
    /// Mixture of experts with `experts` routed experts of intermediate size
    /// `expert_intermediate`, `top_k` active per token, plus
    /// `shared_experts` always-active experts.
    Moe {
        /// Number of routed experts.
        experts: u32,
        /// Experts selected per token.
        top_k: u32,
        /// Intermediate dimension of each expert.
        expert_intermediate: u32,
        /// Number of always-active shared experts.
        shared_experts: u32,
    },
}

impl FfnConfig {
    /// Parameters of one expert (or of the dense FFN): gate + up + down.
    fn gated_params(hidden: u64, intermediate: u64) -> u64 {
        3 * hidden * intermediate
    }

    /// Total FFN weight parameters per layer.
    pub fn weight_params(&self, hidden: u64) -> u64 {
        match *self {
            FfnConfig::Dense { intermediate } => Self::gated_params(hidden, intermediate as u64),
            FfnConfig::Moe {
                experts,
                expert_intermediate,
                shared_experts,
                ..
            } => {
                let per_expert = Self::gated_params(hidden, expert_intermediate as u64);
                (experts as u64 + shared_experts as u64) * per_expert
                    // Router weights.
                    + hidden * experts as u64
            }
        }
    }

    /// Parameters that participate in computing one token (active experts
    /// only for MoE).
    pub fn active_params_per_token(&self, hidden: u64) -> u64 {
        match *self {
            FfnConfig::Dense { intermediate } => Self::gated_params(hidden, intermediate as u64),
            FfnConfig::Moe {
                experts,
                top_k,
                expert_intermediate,
                shared_experts,
            } => {
                let per_expert = Self::gated_params(hidden, expert_intermediate as u64);
                (top_k as u64 + shared_experts as u64) * per_expert + hidden * experts as u64
            }
        }
    }

    /// Expected number of *distinct* routed experts activated by a batch of
    /// `batch` tokens (uniform routing assumption): `E · (1 − (1 − k/E)^B)`.
    pub fn expected_active_experts(&self, batch: u64) -> f64 {
        match *self {
            FfnConfig::Dense { .. } => 1.0,
            FfnConfig::Moe { experts, top_k, .. } => {
                let e = experts as f64;
                let k = top_k as f64;
                e * (1.0 - (1.0 - k / e).powf(batch as f64))
            }
        }
    }

    /// Expected weight parameters *read from memory* by a decode step over a
    /// batch of `batch` tokens: distinct activated experts (plus shared
    /// experts and the router) for MoE; the whole FFN for dense.
    pub fn weight_params_touched(&self, hidden: u64, batch: u64) -> u64 {
        match *self {
            FfnConfig::Dense { intermediate } => Self::gated_params(hidden, intermediate as u64),
            FfnConfig::Moe {
                experts,
                expert_intermediate,
                shared_experts,
                ..
            } => {
                let per_expert = Self::gated_params(hidden, expert_intermediate as u64);
                let distinct = self.expected_active_experts(batch);
                (distinct * per_expert as f64) as u64
                    + shared_experts as u64 * per_expert
                    + hidden * experts as u64
            }
        }
    }

    /// FLOPs for `tokens` tokens (2 FLOPs per active parameter per token).
    pub fn flops(&self, hidden: u64, tokens: u64) -> u64 {
        2 * self.active_params_per_token(hidden) * tokens
    }

    /// Whether this is a mixture-of-experts FFN.
    pub fn is_moe(&self) -> bool {
        matches!(self, FfnConfig::Moe { .. })
    }

    /// The intermediate dimension (per expert for MoE).
    pub fn intermediate(&self) -> u32 {
        match *self {
            FfnConfig::Dense { intermediate } => intermediate,
            FfnConfig::Moe {
                expert_intermediate,
                ..
            } => expert_intermediate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deepseek_moe() -> FfnConfig {
        FfnConfig::Moe {
            experts: 256,
            top_k: 8,
            expert_intermediate: 2048,
            shared_experts: 1,
        }
    }

    fn grok_moe() -> FfnConfig {
        FfnConfig::Moe {
            experts: 8,
            top_k: 2,
            expert_intermediate: 32768,
            shared_experts: 0,
        }
    }

    fn llama_dense() -> FfnConfig {
        FfnConfig::Dense {
            intermediate: 53248,
        }
    }

    #[test]
    fn dense_weight_params() {
        // Llama-3-405B FFN: 3 × 16384 × 53248 ≈ 2.6 G params per layer.
        let p = llama_dense().weight_params(16384);
        assert_eq!(p, 3 * 16384 * 53248);
        assert_eq!(llama_dense().active_params_per_token(16384), p);
        assert_eq!(llama_dense().weight_params_touched(16384, 1000), p);
    }

    #[test]
    fn moe_active_params_are_much_smaller_than_total() {
        let total = deepseek_moe().weight_params(7168);
        let active = deepseek_moe().active_params_per_token(7168);
        assert!(active * 20 < total, "active {active} vs total {total}");
    }

    #[test]
    fn expected_active_experts_grows_with_batch_and_saturates() {
        let moe = deepseek_moe();
        let small = moe.expected_active_experts(1);
        let medium = moe.expected_active_experts(64);
        let large = moe.expected_active_experts(1024);
        assert!((small - 8.0).abs() < 0.2);
        assert!(medium > small && large > medium);
        assert!(large <= 256.0);
        assert!(
            large > 250.0,
            "batch 1024 should touch nearly all experts: {large}"
        );
        // Grok-1 saturates its 8 experts at small batches (the paper notes
        // all experts begin to be selected around batch 8).
        assert!(grok_moe().expected_active_experts(8) > 7.0);
    }

    #[test]
    fn weight_params_touched_interpolates_between_active_and_total() {
        let moe = deepseek_moe();
        let touched_small = moe.weight_params_touched(7168, 1);
        let touched_large = moe.weight_params_touched(7168, 4096);
        let total = moe.weight_params(7168);
        assert!(touched_small < touched_large);
        assert!(touched_large <= total);
        assert!(touched_large as f64 > 0.95 * total as f64);
    }

    #[test]
    fn flops_and_helpers() {
        assert!(deepseek_moe().is_moe());
        assert!(!llama_dense().is_moe());
        assert_eq!(llama_dense().intermediate(), 53248);
        assert_eq!(deepseek_moe().intermediate(), 2048);
        assert_eq!(
            llama_dense().flops(16384, 2),
            2 * llama_dense().flops(16384, 1)
        );
    }
}
