//! Aggregation of per-operator traffic into per-step and per-device totals.

use serde::{Deserialize, Serialize};

use crate::ops::{Operator, OperatorKind};
use crate::types::{DataKind, Stage};

/// The complete per-device workload of one inference step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepTraffic {
    /// Model name.
    pub model: String,
    /// Prefill or decode.
    pub stage: Stage,
    /// Batch size (sequences).
    pub batch: u64,
    /// Sequence length (context tokens per sequence).
    pub seq_len: u64,
    /// The operators executed by one device, with their repeat counts.
    pub operators: Vec<Operator>,
}

impl StepTraffic {
    /// Total memory traffic of the step on one device, in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.operators
            .iter()
            .map(|o| o.bytes() * o.repeat as u64)
            .sum()
    }

    /// Total FLOPs of the step on one device.
    pub fn flops(&self) -> u64 {
        self.operators
            .iter()
            .map(|o| o.flops * o.repeat as u64)
            .sum()
    }

    /// Memory traffic attributed to one data kind.
    pub fn bytes_of(&self, kind: DataKind) -> u64 {
        self.operators
            .iter()
            .map(|o| o.bytes_of(kind) * o.repeat as u64)
            .sum()
    }

    /// Memory traffic attributed to operators of one kind (attention, FFN…).
    pub fn bytes_of_kind_filtered(&self, kind: OperatorKind) -> u64 {
        self.operators
            .iter()
            .filter(|o| o.kind == kind)
            .map(|o| o.bytes() * o.repeat as u64)
            .sum()
    }

    /// Arithmetic intensity of the whole step (FLOPs per byte).
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.total_bytes();
        if bytes == 0 {
            f64::INFINITY
        } else {
            self.flops() as f64 / bytes as f64
        }
    }

    /// The distinct memory objects (tensors) the step touches per executed
    /// layer instance, with their sizes — the granularity at which data is
    /// laid out in memory and therefore the granularity that matters for the
    /// channel-load-balance analysis (Fig. 13). Each entry is
    /// `(operator kind, bytes of one tensor instance)`.
    pub fn tensor_instances(&self) -> Vec<(OperatorKind, u64)> {
        let mut out = Vec::new();
        for op in &self.operators {
            for _ in 0..op.repeat {
                if op.weight_bytes > 0 {
                    out.push((op.kind, op.weight_bytes));
                }
                if op.kv_bytes > 0 {
                    out.push((op.kind, op.kv_bytes));
                }
                if op.activation_bytes > 0 {
                    out.push((op.kind, op.activation_bytes));
                }
            }
        }
        out
    }
}

/// Aggregated byte counters per data kind (used in reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceTraffic {
    /// Weight bytes read.
    pub weight_bytes: u64,
    /// Activation bytes read + written.
    pub activation_bytes: u64,
    /// KV-cache bytes read + written.
    pub kv_bytes: u64,
    /// Total FLOPs.
    pub flops: u64,
}

impl DeviceTraffic {
    /// Summarize a step.
    pub fn from_step(step: &StepTraffic) -> Self {
        DeviceTraffic {
            weight_bytes: step.bytes_of(DataKind::Weight),
            activation_bytes: step.bytes_of(DataKind::Activation),
            kv_bytes: step.bytes_of(DataKind::KvCache),
            flops: step.flops(),
        }
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.weight_bytes + self.activation_bytes + self.kv_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use crate::ops::decode_step;
    use crate::parallelism::Parallelism;

    #[test]
    fn totals_are_consistent_across_views() {
        let model = ModelConfig::grok_1();
        let par = Parallelism::paper_decode(&model);
        let step = decode_step(&model, &par, 64, 8192);
        let by_kind: u64 = DataKind::ALL.iter().map(|k| step.bytes_of(*k)).sum();
        assert_eq!(by_kind, step.total_bytes());
        let summary = DeviceTraffic::from_step(&step);
        assert_eq!(summary.total_bytes(), step.total_bytes());
        assert_eq!(summary.flops, step.flops());
        assert!(step.arithmetic_intensity() > 0.0);
    }

    #[test]
    fn tensor_instances_cover_all_layers() {
        let model = ModelConfig::llama3_405b();
        let par = Parallelism::paper_decode(&model);
        let step = decode_step(&model, &par, 8, 8192);
        let tensors = step.tensor_instances();
        // At least one weight tensor per layer for attention and FFN.
        assert!(tensors.len() as u32 >= 2 * model.layers);
        let total: u64 = tensors.iter().map(|(_, b)| *b).sum();
        assert_eq!(total, step.total_bytes());
    }

    #[test]
    fn stage_metadata_is_preserved() {
        let model = ModelConfig::deepseek_v3();
        let par = Parallelism::paper_decode(&model);
        let step = decode_step(&model, &par, 16, 4096);
        assert_eq!(step.stage, Stage::Decode);
        assert_eq!(step.batch, 16);
        assert_eq!(step.seq_len, 4096);
        assert_eq!(step.model, "DeepSeek-V3");
    }
}
