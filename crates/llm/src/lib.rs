//! # rome-llm — LLM workload models for memory-system simulation
//!
//! The RoMe paper evaluates its memory system on three large language models:
//! DeepSeek-V3 (multi-head latent attention + mixture of experts), Grok-1
//! (grouped-query attention + MoE), and Llama-3-405B (GQA + dense FFN). This
//! crate reproduces the workload side of that evaluation:
//!
//! * model architecture descriptions and presets ([`model`], [`attention`],
//!   [`ffn`]);
//! * parallelization strategies — tensor, expert, and data parallelism as the
//!   paper configures them per model and stage ([`parallelism`]);
//! * per-operator FLOP and memory-traffic accounting for the prefill and
//!   decode stages ([`ops`], [`traffic`]);
//! * the weight / activation / KV-cache footprint distribution behind the
//!   paper's Figure 1 ([`footprint`]).
//!
//! The output of this crate is deliberately memory-system-agnostic: operators
//! report how many bytes of each data type they touch and how many FLOPs they
//! perform per device; `rome-sim` combines that with an accelerator model and
//! a memory system (conventional HBM4 or RoMe) to produce end-to-end timing.
//!
//! # Example
//!
//! ```
//! use rome_llm::prelude::*;
//!
//! let model = ModelConfig::deepseek_v3();
//! let par = Parallelism::paper_decode(&model);
//! let step = decode_step(&model, &par, 64, 8192);
//! // A decode step reads every active expert's weights plus the KV cache.
//! assert!(step.total_bytes() > 1 << 30);
//! assert!(step.flops() > 100e9 as u64);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attention;
pub mod ffn;
pub mod footprint;
pub mod model;
pub mod ops;
pub mod parallelism;
pub mod traffic;
pub mod types;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::attention::AttentionConfig;
    pub use crate::ffn::FfnConfig;
    pub use crate::footprint::{footprint_rows, FootprintRow};
    pub use crate::model::ModelConfig;
    pub use crate::ops::{decode_step, prefill_step, Operator, OperatorKind};
    pub use crate::parallelism::Parallelism;
    pub use crate::traffic::{DeviceTraffic, StepTraffic};
    pub use crate::types::{DataKind, Dtype, Stage};
}

pub use attention::AttentionConfig;
pub use ffn::FfnConfig;
pub use model::ModelConfig;
pub use ops::{decode_step, prefill_step, Operator, OperatorKind};
pub use parallelism::Parallelism;
pub use traffic::{DeviceTraffic, StepTraffic};
pub use types::{DataKind, Dtype, Stage};
