//! Attention-layer configurations: grouped-query attention (GQA) and
//! multi-head latent attention (MLA).
//!
//! The two mechanisms differ in what they store per token (full K/V heads vs
//! a compressed latent) and in their projection weights, which is why the
//! paper's three models show such different KV-cache footprints (Figure 1)
//! and channel-load-balance behaviour (Figure 13).

use serde::{Deserialize, Serialize};

/// The attention mechanism of one decoder layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttentionConfig {
    /// Grouped-query attention: `heads` query heads share `kv_heads` K/V
    /// heads of dimension `head_dim`.
    Gqa {
        /// Number of query heads.
        heads: u32,
        /// Number of key/value heads.
        kv_heads: u32,
        /// Dimension of each head.
        head_dim: u32,
    },
    /// Multi-head latent attention (DeepSeek): K/V are compressed into a
    /// latent of `kv_lora_rank` dimensions plus a shared `rope_dim` rotary
    /// component; queries are also low-rank projected through `q_lora_rank`.
    Mla {
        /// Number of query heads.
        heads: u32,
        /// Per-head dimension of the non-rotary (nope) part.
        nope_head_dim: u32,
        /// Per-head dimension of the rotary part.
        rope_head_dim: u32,
        /// Per-head value dimension.
        v_head_dim: u32,
        /// Rank of the query low-rank projection.
        q_lora_rank: u32,
        /// Rank of the compressed KV latent.
        kv_lora_rank: u32,
    },
}

impl AttentionConfig {
    /// Number of query heads.
    pub fn heads(&self) -> u32 {
        match *self {
            AttentionConfig::Gqa { heads, .. } | AttentionConfig::Mla { heads, .. } => heads,
        }
    }

    /// Bytes of KV-cache state stored per token per layer (before any
    /// parallel partitioning), for elements of `dtype_bytes` bytes.
    pub fn kv_bytes_per_token(&self, dtype_bytes: u64) -> u64 {
        match *self {
            AttentionConfig::Gqa {
                kv_heads, head_dim, ..
            } => 2 * kv_heads as u64 * head_dim as u64 * dtype_bytes,
            AttentionConfig::Mla {
                kv_lora_rank,
                rope_head_dim,
                ..
            } => (kv_lora_rank as u64 + rope_head_dim as u64) * dtype_bytes,
        }
    }

    /// Number of projection-weight parameters per layer, given the model
    /// hidden size.
    pub fn weight_params(&self, hidden: u64) -> u64 {
        match *self {
            AttentionConfig::Gqa {
                heads,
                kv_heads,
                head_dim,
                ..
            } => {
                let q = hidden * heads as u64 * head_dim as u64;
                let k = hidden * kv_heads as u64 * head_dim as u64;
                let v = k;
                let o = heads as u64 * head_dim as u64 * hidden;
                q + k + v + o
            }
            AttentionConfig::Mla {
                heads,
                nope_head_dim,
                rope_head_dim,
                v_head_dim,
                q_lora_rank,
                kv_lora_rank,
            } => {
                let q_down = hidden * q_lora_rank as u64;
                let q_up =
                    q_lora_rank as u64 * heads as u64 * (nope_head_dim + rope_head_dim) as u64;
                let kv_down = hidden * (kv_lora_rank + rope_head_dim) as u64;
                let kv_up =
                    kv_lora_rank as u64 * heads as u64 * (nope_head_dim + v_head_dim) as u64;
                let o = heads as u64 * v_head_dim as u64 * hidden;
                q_down + q_up + kv_down + kv_up + o
            }
        }
    }

    /// FLOPs of the projection GEMMs for `tokens` tokens (2 FLOPs per
    /// parameter per token).
    pub fn projection_flops(&self, hidden: u64, tokens: u64) -> u64 {
        2 * self.weight_params(hidden) * tokens
    }

    /// FLOPs of the score+context attention computation for `tokens` new
    /// tokens attending over a context of `context_len` tokens.
    pub fn attention_flops(&self, context_len: u64, tokens: u64) -> u64 {
        match *self {
            AttentionConfig::Gqa {
                heads, head_dim, ..
            } => {
                // QK^T and PV: 2 × 2 × heads × head_dim per (token, context).
                4 * heads as u64 * head_dim as u64 * context_len * tokens
            }
            AttentionConfig::Mla {
                heads,
                nope_head_dim,
                rope_head_dim,
                v_head_dim,
                ..
            } => {
                let score_dim = (nope_head_dim + rope_head_dim) as u64;
                2 * heads as u64 * (score_dim + v_head_dim as u64) * context_len * tokens
            }
        }
    }

    /// Whether this is multi-head latent attention.
    pub fn is_mla(&self) -> bool {
        matches!(self, AttentionConfig::Mla { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gqa_llama() -> AttentionConfig {
        AttentionConfig::Gqa {
            heads: 128,
            kv_heads: 8,
            head_dim: 128,
        }
    }

    fn mla_deepseek() -> AttentionConfig {
        AttentionConfig::Mla {
            heads: 128,
            nope_head_dim: 128,
            rope_head_dim: 64,
            v_head_dim: 128,
            q_lora_rank: 1536,
            kv_lora_rank: 512,
        }
    }

    #[test]
    fn gqa_kv_bytes_per_token() {
        // Llama-3-405B: 2 (K+V) × 8 heads × 128 dims × 2 B = 4 KiB per token
        // per layer.
        assert_eq!(gqa_llama().kv_bytes_per_token(2), 4096);
    }

    #[test]
    fn mla_kv_is_an_order_of_magnitude_smaller_than_gqa() {
        // DeepSeek-V3 stores 512 + 64 = 576 elements = 1152 B per token.
        assert_eq!(mla_deepseek().kv_bytes_per_token(2), 1152);
        assert!(mla_deepseek().kv_bytes_per_token(2) < gqa_llama().kv_bytes_per_token(2));
    }

    #[test]
    fn gqa_weight_params_scale_with_heads() {
        let hidden = 16384u64;
        let params = gqa_llama().weight_params(hidden);
        // Q: 16384×16384, K/V: 16384×1024 each, O: 16384×16384.
        let expected = hidden * 16384 + 2 * hidden * 1024 + 16384 * hidden;
        assert_eq!(params, expected);
    }

    #[test]
    fn mla_weight_params_are_positive_and_dominated_by_up_projections() {
        let params = mla_deepseek().weight_params(7168);
        // DeepSeek-V3 attention weights are roughly 187 M parameters/layer.
        assert!(params > 150_000_000 && params < 250_000_000, "{params}");
    }

    #[test]
    fn flops_scale_linearly_with_tokens_and_context() {
        let a = gqa_llama();
        assert_eq!(a.projection_flops(1024, 4), 4 * a.projection_flops(1024, 1));
        assert_eq!(a.attention_flops(1000, 2), 2 * a.attention_flops(1000, 1));
        assert_eq!(a.attention_flops(2000, 1), 2 * a.attention_flops(1000, 1));
        assert!(mla_deepseek().attention_flops(8192, 1) > 0);
    }

    #[test]
    fn classification_helpers() {
        assert!(mla_deepseek().is_mla());
        assert!(!gqa_llama().is_mla());
        assert_eq!(gqa_llama().heads(), 128);
        assert_eq!(mla_deepseek().heads(), 128);
    }
}
