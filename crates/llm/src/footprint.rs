//! Data-size distribution of LLM operators (the paper's Figure 1).
//!
//! Figure 1 plots, for each model and stage, the distribution of the sizes of
//! the weight, activation, and KV-cache objects accessed by individual
//! operations. The point of the figure is that almost every object is
//! hundreds of kilobytes to tens of megabytes — orders of magnitude larger
//! than a 32 B cache line — which is what motivates row-granularity access.

use serde::{Deserialize, Serialize};

use crate::model::ModelConfig;
use crate::ops::{decode_step, prefill_step};
use crate::parallelism::Parallelism;
use crate::types::{DataKind, Stage};

/// One point of the Figure 1 distribution: the size of one data object
/// touched by one operator execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FootprintRow {
    /// Model name.
    pub model: String,
    /// Prefill or decode.
    pub stage: Stage,
    /// Weight / activation / KV cache.
    pub kind: DataKind,
    /// Operator name.
    pub operator: String,
    /// Size of the object in bytes (per device).
    pub bytes: u64,
}

/// Produce the Figure 1 rows for one model and stage at the given batch and
/// sequence length.
pub fn footprint_rows(
    model: &ModelConfig,
    stage: Stage,
    batch: u64,
    seq_len: u64,
) -> Vec<FootprintRow> {
    let par = Parallelism::paper(model, stage);
    let step = match stage {
        Stage::Decode => decode_step(model, &par, batch, seq_len),
        Stage::Prefill => prefill_step(model, &par, batch, seq_len),
    };
    let mut rows = Vec::new();
    for op in &step.operators {
        for (kind, bytes) in [
            (DataKind::Weight, op.weight_bytes),
            (DataKind::Activation, op.activation_bytes),
            (DataKind::KvCache, op.kv_bytes),
        ] {
            if bytes > 0 {
                rows.push(FootprintRow {
                    model: model.name.clone(),
                    stage,
                    kind,
                    operator: op.name.clone(),
                    bytes,
                });
            }
        }
    }
    rows
}

/// Summary statistics of one (model, stage, kind) group of Figure 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FootprintSummary {
    /// Model name.
    pub model: String,
    /// Stage.
    pub stage: Stage,
    /// Data kind.
    pub kind: DataKind,
    /// Smallest object in bytes.
    pub min_bytes: u64,
    /// Largest object in bytes.
    pub max_bytes: u64,
    /// Median object size in bytes.
    pub median_bytes: u64,
}

/// Group Figure 1 rows into per-(model, stage, kind) summaries.
pub fn summarize(rows: &[FootprintRow]) -> Vec<FootprintSummary> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<(String, String, String), Vec<u64>> = BTreeMap::new();
    for r in rows {
        groups
            .entry((r.model.clone(), r.stage.to_string(), r.kind.to_string()))
            .or_default()
            .push(r.bytes);
    }
    let mut out = Vec::new();
    for r in rows {
        let key = (r.model.clone(), r.stage.to_string(), r.kind.to_string());
        if out.iter().any(|s: &FootprintSummary| {
            s.model == r.model && s.stage == r.stage && s.kind == r.kind
        }) {
            continue;
        }
        let mut sizes = groups[&key].clone();
        sizes.sort_unstable();
        out.push(FootprintSummary {
            model: r.model.clone(),
            stage: r.stage,
            kind: r.kind,
            min_bytes: sizes[0],
            max_bytes: *sizes.last().expect("non-empty"),
            median_bytes: sizes[sizes.len() / 2],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_objects_exceed_hundreds_of_kilobytes_in_decode() {
        // The paper's core observation: weight and KV-cache objects are far
        // larger than a cache line; most exceed several hundred KB.
        for model in ModelConfig::paper_models() {
            let rows = footprint_rows(&model, Stage::Decode, 256, 8192);
            let big = rows.iter().filter(|r| r.bytes > 256 * 1024).count();
            assert!(
                big * 2 > rows.len(),
                "{}: only {big}/{} objects exceed 256 KiB",
                model.name,
                rows.len()
            );
            // And every weight or KV object is far larger than a 32 B line.
            assert!(rows
                .iter()
                .filter(|r| r.kind != DataKind::Activation)
                .all(|r| r.bytes > 10 * 1024));
        }
    }

    #[test]
    fn grok_weight_matrices_exceed_12_mib_under_tp8() {
        // Fig. 1 notes Grok-1's weight matrices (other than one small one)
        // exceed 12 MB model-wide; per device under TP-8 the attention and
        // expert matrices remain megabytes.
        let rows = footprint_rows(&ModelConfig::grok_1(), Stage::Decode, 64, 8192);
        let weight_rows: Vec<_> = rows.iter().filter(|r| r.kind == DataKind::Weight).collect();
        assert!(weight_rows.iter().any(|r| r.bytes > 12 * 1024 * 1024));
    }

    #[test]
    fn decode_kv_cache_is_larger_than_prefill_kv_per_step() {
        // In decode the KV cache holds input + generated tokens and is
        // re-read per token; the per-step KV traffic exceeds the prefill
        // per-token share.
        let model = ModelConfig::llama3_405b();
        let decode = footprint_rows(&model, Stage::Decode, 64, 8192);
        let kv_decode: u64 = decode
            .iter()
            .filter(|r| r.kind == DataKind::KvCache)
            .map(|r| r.bytes)
            .max()
            .unwrap();
        assert!(
            kv_decode > 1 << 27,
            "decode KV object {kv_decode} too small"
        );
    }

    #[test]
    fn prefill_activations_reach_tens_of_megabytes() {
        let model = ModelConfig::deepseek_v3();
        let rows = footprint_rows(&model, Stage::Prefill, 64, 8192);
        let act_max = rows
            .iter()
            .filter(|r| r.kind == DataKind::Activation)
            .map(|r| r.bytes)
            .max()
            .unwrap();
        assert!(
            act_max > 10 * 1024 * 1024,
            "max prefill activation {act_max}"
        );
    }

    #[test]
    fn summaries_cover_every_present_kind() {
        let rows = footprint_rows(&ModelConfig::grok_1(), Stage::Decode, 64, 8192);
        let sums = summarize(&rows);
        assert!(sums.len() >= 3);
        for s in &sums {
            assert!(s.min_bytes <= s.median_bytes && s.median_bytes <= s.max_bytes);
        }
    }
}
