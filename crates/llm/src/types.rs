//! Basic workload vocabulary: inference stages, data kinds, element types.

use serde::{Deserialize, Serialize};

/// The two stages of transformer inference (§III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// All input tokens are processed at once and the first output token is
    /// produced; compute-bound.
    Prefill,
    /// One token is generated per sequence per step; memory-bandwidth-bound.
    Decode,
}

impl Stage {
    /// Both stages.
    pub const ALL: [Stage; 2] = [Stage::Prefill, Stage::Decode];
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Prefill => f.write_str("prefill"),
            Stage::Decode => f.write_str("decode"),
        }
    }
}

/// The three primary data types moved by LLM inference (§III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataKind {
    /// Pre-trained model parameters.
    Weight,
    /// Intermediate results flowing between operators.
    Activation,
    /// Cached key/value (or latent) state of the sequence so far.
    KvCache,
}

impl DataKind {
    /// All data kinds.
    pub const ALL: [DataKind; 3] = [DataKind::Weight, DataKind::Activation, DataKind::KvCache];
}

impl std::fmt::Display for DataKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataKind::Weight => f.write_str("weight"),
            DataKind::Activation => f.write_str("activation"),
            DataKind::KvCache => f.write_str("KV cache"),
        }
    }
}

/// Numeric element type of the model's tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dtype {
    /// bfloat16 — the paper stores all weights in BF16.
    Bf16,
    /// 8-bit floating point (for what-if studies).
    Fp8,
    /// 32-bit floating point.
    Fp32,
}

impl Dtype {
    /// Size of one element in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            Dtype::Bf16 => 2,
            Dtype::Fp8 => 1,
            Dtype::Fp32 => 4,
        }
    }
}

impl std::fmt::Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dtype::Bf16 => f.write_str("bf16"),
            Dtype::Fp8 => f.write_str("fp8"),
            Dtype::Fp32 => f.write_str("fp32"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(Dtype::Bf16.bytes(), 2);
        assert_eq!(Dtype::Fp8.bytes(), 1);
        assert_eq!(Dtype::Fp32.bytes(), 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(Stage::Prefill.to_string(), "prefill");
        assert_eq!(Stage::Decode.to_string(), "decode");
        assert_eq!(DataKind::KvCache.to_string(), "KV cache");
        assert_eq!(Dtype::Bf16.to_string(), "bf16");
        assert_eq!(Stage::ALL.len(), 2);
        assert_eq!(DataKind::ALL.len(), 3);
    }
}
