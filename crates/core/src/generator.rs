//! The RoMe command generator.
//!
//! The command generator sits on the HBM logic die (§IV-C). It receives the
//! three row-level commands from the RoMe MC and expands each into a fixed,
//! statically scheduled sequence of conventional DRAM commands: one ACT per
//! physical bank, a train of column commands interleaved across the two banks
//! of the VBA at `tCCDS`, and a closing PRE per bank (Fig. 9). Because the
//! schedule is fixed, the generator needs no bank-state tracking — the
//! intentional `tRRDS − tCCDS` stagger before the first ACT guarantees the
//! interleaving is legal.
//!
//! The expansion is used two ways in this reproduction: to *verify* against
//! the cycle-accurate channel model that the schedule respects every HBM4
//! timing constraint, and to *count* the conventional commands each row
//! command implies (for the energy model).

use serde::{Deserialize, Serialize};

use rome_hbm::address::BankAddress;
use rome_hbm::command::{CommandTarget, DramCommand};
use rome_hbm::organization::Organization;
use rome_hbm::timing::TimingParams;
use rome_hbm::units::Cycle;

use crate::row_command::{RowCommand, RowCommandKind, VbaAddress};
use crate::vba::{BankMerge, PcMerge, VbaConfig};

/// One step of an expanded command sequence: a relative issue offset (in ns
/// from the row command's acceptance) and the conventional command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledCommand {
    /// Offset from the row command's acceptance, in nanoseconds.
    pub offset: Cycle,
    /// The conventional DRAM command to issue.
    pub command: DramCommand,
}

/// Counts of conventional commands produced by one row command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpansionCounts {
    /// Activations.
    pub activates: u64,
    /// Column reads.
    pub reads: u64,
    /// Column writes.
    pub writes: u64,
    /// Precharges.
    pub precharges: u64,
    /// Per-bank refreshes.
    pub refreshes: u64,
}

/// The RoMe command generator for one channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandGenerator {
    org: Organization,
    timing: TimingParams,
    vba: VbaConfig,
}

impl CommandGenerator {
    /// Create a generator for the given organization, conventional timing,
    /// and VBA configuration.
    pub fn new(org: Organization, timing: TimingParams, vba: VbaConfig) -> Self {
        CommandGenerator { org, timing, vba }
    }

    /// The VBA configuration the generator drives.
    pub fn vba_config(&self) -> &VbaConfig {
        &self.vba
    }

    /// The physical banks driven by a row command to `target`.
    ///
    /// In the default configuration a VBA spans two banks with the same bank
    /// index in the two bank groups of a pair, across both pseudo channels.
    /// Banks are returned in the order they are activated.
    pub fn banks_of_vba(&self, target: VbaAddress) -> Vec<BankAddress> {
        let vba = target.vba;
        let sid = target.stack_id;
        let banks_per_group = self.org.banks_per_group;
        let pcs: Vec<u8> = match self.vba.pc_merge {
            PcMerge::LegacyBothPcs => (0..self.org.pseudo_channels).collect(),
            PcMerge::WidenSinglePc => vec![
                (vba / (self.org.bank_groups * banks_per_group / 2)) % self.org.pseudo_channels,
            ],
        };
        let mut out = Vec::new();
        match self.vba.bank_merge {
            BankMerge::WidenSingleBank => {
                // One physical bank per PC: vba indexes (bg, bank) directly.
                let bg = vba / banks_per_group;
                let bank = vba % banks_per_group;
                for pc in &pcs {
                    out.push(BankAddress::new(*pc, sid, bg % self.org.bank_groups, bank));
                }
            }
            BankMerge::TandemSameBankGroup => {
                // Two banks of the same bank group: (bank, bank+half).
                let half = banks_per_group / 2;
                let bg = vba / half % self.org.bank_groups;
                let bank = vba % half;
                for pc in &pcs {
                    out.push(BankAddress::new(*pc, sid, bg, bank));
                    out.push(BankAddress::new(*pc, sid, bg, bank + half));
                }
            }
            BankMerge::InterleaveAcrossBankGroups => {
                // Two banks with the same index in a pair of bank groups.
                let pairs = self.org.bank_groups / 2;
                let pair = vba / banks_per_group % pairs;
                let bank = vba % banks_per_group;
                for pc in &pcs {
                    out.push(BankAddress::new(*pc, sid, pair * 2, bank));
                    out.push(BankAddress::new(*pc, sid, pair * 2 + 1, bank));
                }
            }
        }
        out
    }

    /// Expand a row command into its fixed conventional command schedule
    /// (Fig. 9). Offsets are relative to the acceptance of the row command.
    pub fn expand(&self, command: RowCommand) -> Vec<ScheduledCommand> {
        match command.kind {
            RowCommandKind::RdRow => self.expand_data(command, false),
            RowCommandKind::WrRow => self.expand_data(command, true),
            RowCommandKind::RefVba => self.expand_refresh(command),
        }
    }

    fn expand_data(&self, command: RowCommand, is_write: bool) -> Vec<ScheduledCommand> {
        let t = &self.timing;
        let banks = self.banks_of_vba(command.target);
        let columns_per_pc_bank = self.org.columns_per_row() as u16;
        let mut out = Vec::new();

        // The VBA's banks are organized into `slots`: the bank-merge
        // dimension is time-multiplexed at tCCDS (Fig. 7(d)), while all
        // pseudo channels of a slot receive their command in the same beat
        // because both PCs share the C/A pins and operate in lock-step in
        // legacy mode (Fig. 8(b)). With the default configuration this yields
        // two slots of two banks each.
        let slot_count = self.vba.bank_merge.banks_combined().max(1) as usize;
        let mut slots: Vec<Vec<BankAddress>> = vec![Vec::new(); slot_count];
        for (i, b) in banks.iter().enumerate() {
            slots[i % slot_count].push(*b);
        }

        // ACTs: slot 0 activates immediately, slot 1 activates tRRDS later
        // (the ACT-to-ACT constraint across bank groups).
        for (s, slot) in slots.iter().enumerate() {
            let act_at = Cycle::from(t.t_rrd_s) * s as u64;
            for b in slot {
                out.push(ScheduledCommand {
                    offset: act_at,
                    command: DramCommand::Act {
                        target: CommandTarget::from_bank_address(*b),
                        row: command.row,
                    },
                });
            }
        }

        // Column commands: beats alternate across slots at tCCDS. The first
        // beat is delayed by the Fig. 9 stagger (tRRDS − tCCDS) beyond tRCD so
        // the later slot's tRCD is satisfied when its first beat arrives.
        let t_rcd = if is_write { t.t_rcd_wr } else { t.t_rcd_rd };
        let stagger = (slot_count as u32 - 1) * (t.t_rrd_s - t.t_ccd_s);
        let first_col = Cycle::from(t_rcd + stagger);
        let total_beats = columns_per_pc_bank as usize * slot_count;
        let mut last_col_at = vec![0 as Cycle; slot_count];
        for beat in 0..total_beats {
            let which = beat % slot_count;
            let at = first_col + (beat as u64) * Cycle::from(t.t_ccd_s);
            let column = (beat / slot_count) as u16;
            last_col_at[which] = at;
            for b in &slots[which] {
                let target = CommandTarget::from_bank_address(*b);
                let cmd = if is_write {
                    DramCommand::Wr {
                        target,
                        column,
                        auto_precharge: false,
                    }
                } else {
                    DramCommand::Rd {
                        target,
                        column,
                        auto_precharge: false,
                    }
                };
                out.push(ScheduledCommand {
                    offset: at,
                    command: cmd,
                });
            }
        }

        // Closing PREs: after the last column command to each slot, honouring
        // read-to-precharge or write recovery.
        for (s, slot) in slots.iter().enumerate() {
            let after = if is_write {
                Cycle::from(t.write_to_precharge(self.org.burst_ns() as u32))
            } else {
                Cycle::from(t.t_rtp)
            };
            for b in slot {
                out.push(ScheduledCommand {
                    offset: last_col_at[s] + after,
                    command: DramCommand::Pre {
                        target: CommandTarget::from_bank_address(*b),
                    },
                });
            }
        }

        out.sort_by_key(|s| s.offset);
        out
    }

    /// The minimum legal gap between two row commands of `kind` issued to the
    /// *same* VBA, as implied by the generated command schedule (last
    /// precharge plus `tRP`). This is the self-consistent counterpart of the
    /// paper's `tRD_row`/`tWR_row` (Table V); see `RomeTimingParams` for the
    /// published values.
    pub fn min_same_vba_gap(&self, kind: RowCommandKind) -> Cycle {
        let probe = RowCommand {
            kind,
            target: VbaAddress::new(0, 0, 0),
            row: 0,
        };
        let schedule = self.expand(probe);
        let last_pre = schedule
            .iter()
            .filter(|s| matches!(s.command, DramCommand::Pre { .. }))
            .map(|s| s.offset)
            .max()
            .unwrap_or(0);
        last_pre + Cycle::from(self.timing.t_rp)
    }

    fn expand_refresh(&self, command: RowCommand) -> Vec<ScheduledCommand> {
        // §V-B: the MC issues one refresh per VBA every 2×tREFIpb; the
        // generator forwards two REFpb commands (one per bank of the VBA)
        // spaced tRREFD apart, so the VBA stalls for tRFCpb + tRREFD instead
        // of 2 × tRFCpb.
        let banks = self.banks_of_vba(command.target);
        let mut out = Vec::new();
        let mut seen_pairs: Vec<(u8, u8)> = Vec::new();
        for b in banks {
            // One REFpb per distinct (bank group, bank) — both PCs refresh in
            // lock-step under a single command in legacy mode.
            if seen_pairs.contains(&(b.bank_group, b.bank)) {
                continue;
            }
            seen_pairs.push((b.bank_group, b.bank));
            let idx = (seen_pairs.len() - 1) as u64;
            out.push(ScheduledCommand {
                offset: idx * Cycle::from(self.timing.t_rrefd),
                command: DramCommand::RefPerBank {
                    target: CommandTarget::from_bank_address(b),
                },
            });
        }
        out
    }

    /// Count the conventional commands a row command expands into.
    pub fn expansion_counts(&self, kind: RowCommandKind) -> ExpansionCounts {
        let probe = RowCommand {
            kind,
            target: VbaAddress::new(0, 0, 0),
            row: 0,
        };
        let mut counts = ExpansionCounts::default();
        for s in self.expand(probe) {
            match s.command {
                DramCommand::Act { .. } => counts.activates += 1,
                DramCommand::Rd { .. } => counts.reads += 1,
                DramCommand::Wr { .. } => counts.writes += 1,
                DramCommand::Pre { .. } | DramCommand::PreAll { .. } => counts.precharges += 1,
                DramCommand::RefPerBank { .. } | DramCommand::RefAllBank { .. } => {
                    counts.refreshes += 1
                }
                DramCommand::Mrs { .. } => {}
            }
        }
        counts
    }

    /// The total time from row-command acceptance to the completion of the
    /// last scheduled conventional command's effect (data or precharge),
    /// i.e. the VBA occupancy of one row command.
    pub fn occupancy_ns(&self, kind: RowCommandKind) -> Cycle {
        match kind {
            RowCommandKind::RefVba => {
                Cycle::from(self.timing.t_rfc_pb) + Cycle::from(self.timing.t_rrefd)
            }
            _ => {
                let probe = RowCommand {
                    kind,
                    target: VbaAddress::new(0, 0, 0),
                    row: 0,
                };
                let schedule = self.expand(probe);
                let last = schedule.last().map(|s| s.offset).unwrap_or(0);
                last + Cycle::from(self.timing.t_rp)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rome_hbm::channel::HbmChannel;

    fn generator() -> CommandGenerator {
        CommandGenerator::new(
            Organization::hbm4(),
            TimingParams::hbm4(),
            VbaConfig::rome_default(),
        )
    }

    #[test]
    fn default_vba_spans_two_bank_groups_and_both_pcs() {
        let g = generator();
        let banks = g.banks_of_vba(VbaAddress::new(0, 0, 0));
        assert_eq!(banks.len(), 4);
        let pcs: std::collections::HashSet<u8> = banks.iter().map(|b| b.pseudo_channel).collect();
        let bgs: std::collections::HashSet<u8> = banks.iter().map(|b| b.bank_group).collect();
        assert_eq!(pcs.len(), 2);
        assert_eq!(bgs.len(), 2);
        // All banks carry the same bank index within their group.
        let idx: std::collections::HashSet<u8> = banks.iter().map(|b| b.bank).collect();
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn distinct_vbas_map_to_distinct_bank_sets() {
        let g = generator();
        let vbas = VbaConfig::rome_default().vbas_per_rank(&Organization::hbm4());
        let mut seen = std::collections::HashSet::new();
        for v in 0..vbas as u8 {
            let mut banks = g.banks_of_vba(VbaAddress::new(0, 0, v));
            banks.sort();
            assert!(seen.insert(banks), "VBA {v} reuses another VBA's banks");
        }
    }

    #[test]
    fn rd_row_expands_to_two_acts_64_reads_two_pres_per_pc_pair() {
        let g = generator();
        let counts = g.expansion_counts(RowCommandKind::RdRow);
        // 4 physical banks (2 BG × 2 PC): one ACT and one PRE each, and
        // 32 columns per bank = 128 column commands carrying 32 B each
        // (4 KB total).
        assert_eq!(counts.activates, 4);
        assert_eq!(counts.precharges, 4);
        assert_eq!(counts.reads, 128);
        assert_eq!(counts.writes, 0);
        let bytes: u64 = counts.reads * 32;
        assert_eq!(bytes, 4096);
    }

    #[test]
    fn wr_row_expansion_mirrors_rd_row_with_writes() {
        let g = generator();
        let counts = g.expansion_counts(RowCommandKind::WrRow);
        assert_eq!(counts.activates, 4);
        assert_eq!(counts.writes, 128);
        assert_eq!(counts.reads, 0);
    }

    #[test]
    fn refresh_expands_to_paired_refpb_with_trrefd_gap() {
        let g = generator();
        let schedule = g.expand(RowCommand::ref_vba(VbaAddress::new(0, 0, 0)));
        assert_eq!(schedule.len(), 2);
        assert_eq!(schedule[0].offset, 0);
        assert_eq!(schedule[1].offset, 8);
        assert!(matches!(
            schedule[0].command,
            DramCommand::RefPerBank { .. }
        ));
        // Occupancy is tRFCpb + tRREFD, not 2 × tRFCpb (§V-B).
        assert_eq!(g.occupancy_ns(RowCommandKind::RefVba), 288);
    }

    #[test]
    fn expansion_is_legal_under_the_cycle_accurate_channel_model() {
        let g = generator();
        let mut channel = HbmChannel::new(Organization::hbm4(), TimingParams::hbm4());
        let schedule = g.expand(RowCommand::rd_row(VbaAddress::new(0, 0, 3), 17));
        let base = 0;
        for s in &schedule {
            let at = base + s.offset;
            assert!(
                channel.can_issue(&s.command, at),
                "command {:?} at {} violates timing (earliest {})",
                s.command,
                at,
                channel.earliest_issue(&s.command, at)
            );
            channel.issue(s.command, at).unwrap();
        }
        assert_eq!(channel.counters().reads, 128);
        assert_eq!(channel.counters().activates, 4);
        assert_eq!(channel.counters().bytes_read, 4096);
    }

    #[test]
    fn wr_row_expansion_is_legal_under_the_channel_model() {
        let g = generator();
        let mut channel = HbmChannel::new(Organization::hbm4(), TimingParams::hbm4());
        for s in g.expand(RowCommand::wr_row(VbaAddress::new(0, 1, 5), 9)) {
            assert!(
                channel.can_issue(&s.command, s.offset),
                "{:?} at {}",
                s.command,
                s.offset
            );
            channel.issue(s.command, s.offset).unwrap();
        }
        assert_eq!(channel.counters().writes, 128);
        assert_eq!(channel.counters().bytes_written, 4096);
    }

    #[test]
    fn back_to_back_rd_rows_to_different_vbas_are_legal_at_t_r2rs() {
        use crate::timing::RomeTimingParams;
        let g = generator();
        let rome_t = RomeTimingParams::paper_table_v();
        let mut channel = HbmChannel::new(Organization::hbm4(), TimingParams::hbm4());
        let first = g.expand(RowCommand::rd_row(VbaAddress::new(0, 0, 0), 0));
        let second = g.expand(RowCommand::rd_row(VbaAddress::new(0, 0, 1), 0));
        for s in &first {
            channel.issue(s.command, s.offset).unwrap();
        }
        let offset = Cycle::from(rome_t.t_r2r_s);
        for s in &second {
            let at = offset + s.offset;
            assert!(
                channel.can_issue(&s.command, at),
                "{:?} at {} (earliest {})",
                s.command,
                at,
                channel.earliest_issue(&s.command, at)
            );
            channel.issue(s.command, at).unwrap();
        }
        // 256 reads * 32 B = 8 KB moved across the two row commands.
        assert_eq!(channel.counters().bytes_read, 8192);
    }

    #[test]
    fn same_vba_reaccess_is_legal_at_the_generator_gap() {
        use crate::timing::RomeTimingParams;
        let g = generator();
        let mut channel = HbmChannel::new(Organization::hbm4(), TimingParams::hbm4());
        for s in g.expand(RowCommand::rd_row(VbaAddress::new(0, 0, 0), 0)) {
            channel.issue(s.command, s.offset).unwrap();
        }
        let gap = g.min_same_vba_gap(RowCommandKind::RdRow);
        // The self-consistent gap must be close to the paper's tRD_row value.
        let paper = RomeTimingParams::paper_table_v().t_rd_row as i64;
        assert!(
            (gap as i64 - paper).abs() <= 8,
            "gap {gap} vs paper {paper}"
        );
        let offset = gap;
        for s in g.expand(RowCommand::rd_row(VbaAddress::new(0, 0, 0), 1)) {
            let at = offset + s.offset;
            assert!(
                channel.can_issue(&s.command, at),
                "{:?} at {} (earliest {})",
                s.command,
                at,
                channel.earliest_issue(&s.command, at)
            );
            channel.issue(s.command, at).unwrap();
        }
    }

    #[test]
    fn occupancy_covers_activation_data_and_precharge() {
        let g = generator();
        let occ = g.occupancy_ns(RowCommandKind::RdRow);
        // Roughly tRCD + 64 beats + tRTP + tRP.
        assert!(occ > 90 && occ < 200, "occupancy {occ}");
        let occ_w = g.occupancy_ns(RowCommandKind::WrRow);
        assert!(occ_w > occ);
    }

    #[test]
    fn alternative_vba_configs_produce_consistent_expansions() {
        for cfg in VbaConfig::design_space() {
            let g = CommandGenerator::new(Organization::hbm4(), TimingParams::hbm4(), cfg);
            let counts = g.expansion_counts(RowCommandKind::RdRow);
            let bytes = counts.reads * 32;
            assert_eq!(
                bytes,
                cfg.effective_row_bytes(&Organization::hbm4()),
                "config {cfg}: bytes {bytes}"
            );
            assert!(counts.activates >= 1);
            assert_eq!(counts.activates, counts.precharges);
        }
    }
}
