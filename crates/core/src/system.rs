//! Multi-channel RoMe memory system.
//!
//! The RoMe counterpart of `rome_mc::system::MemorySystem`: host requests of
//! arbitrary size are fragmented into effective-row-sized chunks, steered
//! across the (expanded) channel set, and executed by per-channel
//! [`RomeController`]s. Because the access granularity is 4 KB instead of
//! 32 B, the distribution of a tensor's chunks across channels is coarser —
//! the load-imbalance effect quantified by the paper's Figure 13, which the
//! `bytes_per_channel` accessor exposes.
//!
//! As on the conventional side, all event-driven plumbing — backlog
//! back-pressure, the global-clock tick path, `next_event_at`, and the
//! parallel per-channel [`RomeMemorySystem::run_until_idle`] — lives in the
//! generic [`rome_engine::MultiChannelSystem`]; this type contributes only
//! the RoMe address decode and the aggregated [`RomeStats`].

use serde::{Deserialize, Serialize};

use rome_engine::MultiChannelSystem;
use rome_hbm::units::Cycle;

use rome_mc::request::{MemoryRequest, RequestId};

use crate::channel_plan::ChannelPlan;
use crate::controller::{RomeController, RomeControllerConfig, RomeQueueEntry};
use crate::row_command::VbaAddress;
use crate::stats::RomeStats;

pub use rome_engine::HostCompletion;

/// Configuration of a multi-channel RoMe memory system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RomeSystemConfig {
    /// Number of channels instantiated (36 per cube under the paper's plan).
    pub channels: u16,
    /// Per-channel controller configuration.
    pub controller: RomeControllerConfig,
}

impl RomeSystemConfig {
    /// A single-cube RoMe system following the paper's channel plan.
    pub fn paper_cube() -> Self {
        RomeSystemConfig {
            channels: ChannelPlan::paper_default().rome_channels as u16,
            controller: RomeControllerConfig::paper_default(),
        }
    }

    /// A RoMe system with an explicit channel count (used for sampled
    /// system-level simulation and the iso-bandwidth ablation).
    pub fn with_channels(channels: u16) -> Self {
        RomeSystemConfig {
            channels,
            controller: RomeControllerConfig::paper_default(),
        }
    }

    /// Effective row size (request granularity) in bytes.
    pub fn row_bytes(&self) -> u64 {
        self.controller.row_bytes()
    }

    /// Peak bandwidth of the instantiated system in GB/s.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.controller.organization.channel_bandwidth_gbps() * self.channels as f64
    }
}

/// A multi-channel RoMe memory system on top of the generic engine system.
#[derive(Debug, Clone)]
pub struct RomeMemorySystem {
    config: RomeSystemConfig,
    inner: MultiChannelSystem<RomeController>,
}

impl RomeMemorySystem {
    /// Build the system described by `config`.
    pub fn new(config: RomeSystemConfig) -> Self {
        let controllers = (0..config.channels)
            .map(|_| RomeController::new(config.controller.clone()))
            .collect();
        RomeMemorySystem {
            inner: MultiChannelSystem::new(controllers),
            config,
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &RomeSystemConfig {
        &self.config
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.inner.channels()
    }

    /// Aggregate statistics across channels.
    pub fn stats(&self) -> RomeStats {
        let mut out = RomeStats::new();
        for c in self.inner.controllers() {
            out.merge(c.stats());
        }
        out
    }

    /// Useful bytes served per channel (for the channel load-balance rate).
    pub fn bytes_per_channel(&self) -> Vec<u64> {
        self.inner.bytes_per_channel()
    }

    /// The engine-level statistics of the whole system (per-channel
    /// snapshots merged); feed to
    /// [`rome_engine::report_from_host_completions`] to summarize a system
    /// run as a unified [`rome_engine::SimulationReport`].
    pub fn stats_snapshot(&self) -> rome_engine::StatsSnapshot {
        self.inner.stats_merged()
    }

    /// Whether all work has drained.
    pub fn is_idle(&self) -> bool {
        self.inner.is_idle()
    }

    /// Decode a physical address into (channel, VBA, row): consecutive
    /// row-sized chunks rotate across channels first, then VBAs, then stack
    /// IDs, then rows — the RoMe address mapping selected by the paper's
    /// mapping sweep.
    pub fn decode(&self, address: u64) -> (u16, VbaAddress, u32) {
        decode_for(&self.config, address)
    }

    /// Submit a host request; it is fragmented into row-sized chunks.
    pub fn submit(&mut self, request: MemoryRequest) -> RequestId {
        let RomeMemorySystem { config, inner } = self;
        inner.submit_with(request, config.row_bytes(), |frag| {
            let (channel, target, row) = decode_for(config, frag.address.raw());
            (
                channel,
                RomeQueueEntry {
                    request: frag,
                    target,
                    row,
                },
            )
        })
    }

    /// Advance the whole system by one nanosecond.
    ///
    /// Allocates a fresh completion vector per call; hot loops should prefer
    /// [`RomeMemorySystem::tick_into`] with a reused buffer.
    pub fn tick(&mut self, now: Cycle) -> Vec<HostCompletion> {
        self.inner.tick(now)
    }

    /// Advance the whole system by one nanosecond, appending completed host
    /// requests to `completions`. Returns `true` if any channel issued a row
    /// command.
    pub fn tick_into(&mut self, now: Cycle, completions: &mut Vec<HostCompletion>) -> bool {
        self.inner.tick_into(now, completions)
    }

    /// The next cycle strictly after `now` at which any channel's state can
    /// change, or at which a backlogged fragment could enter a queue. `None`
    /// when the whole system is quiescent. Takes `&mut self` because the
    /// underlying event calendar prunes stale heap entries lazily.
    pub fn next_event_at(&mut self, now: Cycle) -> Option<Cycle> {
        self.inner.next_event_at(now)
    }

    /// Enable or disable the incremental event calendar (enabled by
    /// default); results are bit-identical either way, only cost differs.
    /// See [`rome_engine::MultiChannelSystem::set_calendar`].
    pub fn set_calendar(&mut self, enabled: bool) {
        self.inner.set_calendar(enabled);
    }

    /// Enable or disable the data-oriented issue scan on every channel
    /// controller (enabled by default); results are bit-identical either
    /// way, only cost differs. See [`RomeController::set_soa`].
    pub fn set_soa(&mut self, enabled: bool) {
        for c in self.inner.controllers_mut() {
            c.set_soa(enabled);
        }
    }

    /// Run until idle or `max_ns`, returning the completions (sorted by
    /// completion time, then id) and the stop time. Channels run their
    /// event-driven loops in parallel; see
    /// [`rome_engine::MultiChannelSystem::run_until_idle`].
    pub fn run_until_idle(&mut self, max_ns: Cycle) -> (Vec<HostCompletion>, Cycle) {
        self.inner.run_until_idle(max_ns)
    }

    /// Like [`RomeMemorySystem::run_until_idle`] but metered against a
    /// [`rome_engine::RunBudget`] (each channel meters independently),
    /// returning the abort reason if any channel's budget tripped; see
    /// [`rome_engine::MultiChannelSystem::run_until_idle_budgeted`].
    pub fn run_until_idle_budgeted(
        &mut self,
        max_ns: Cycle,
        budget: &rome_engine::RunBudget,
    ) -> (Vec<HostCompletion>, Cycle, Option<rome_engine::AbortReason>) {
        self.inner.run_until_idle_budgeted(max_ns, budget)
    }

    /// Drive the system from a lazy [`rome_engine::TrafficSource`] until the
    /// source is exhausted and all its requests completed, or `max_ns`
    /// elapses. Completions are fed back to the source (closed-loop hosts
    /// key their next injection on them) and the source's arrivals merge
    /// into the event horizon; see
    /// [`rome_engine::MultiChannelSystem::run_with_source`].
    pub fn run_with_source<S: rome_engine::TrafficSource>(
        &mut self,
        source: &mut S,
        max_ns: Cycle,
    ) -> (Vec<HostCompletion>, Cycle) {
        let (completions, stop, _) =
            self.run_with_source_budgeted(source, max_ns, &rome_engine::RunBudget::unlimited());
        (completions, stop)
    }

    /// Like [`RomeMemorySystem::run_with_source`] but metered against a
    /// [`rome_engine::RunBudget`] and with stalled-source detection,
    /// returning the abort reason alongside the completions; see
    /// [`rome_engine::MultiChannelSystem::run_with_source_budgeted`].
    pub fn run_with_source_budgeted<S: rome_engine::TrafficSource>(
        &mut self,
        source: &mut S,
        max_ns: Cycle,
        budget: &rome_engine::RunBudget,
    ) -> (Vec<HostCompletion>, Cycle, Option<rome_engine::AbortReason>) {
        let RomeMemorySystem { config, inner } = self;
        inner.run_with_source_budgeted(
            source,
            config.row_bytes(),
            max_ns,
            |frag| {
                let (channel, target, row) = decode_for(config, frag.address.raw());
                (
                    channel,
                    RomeQueueEntry {
                        request: frag,
                        target,
                        row,
                    },
                )
            },
            budget,
        )
    }
}

/// The address decode of [`RomeMemorySystem::decode`], as a free function so
/// `submit` can steer fragments while the inner system is mutably borrowed.
fn decode_for(config: &RomeSystemConfig, address: u64) -> (u16, VbaAddress, u32) {
    let row_bytes = config.row_bytes();
    let org = &config.controller.organization;
    let vbas_per_rank = config.controller.vba.vbas_per_rank(org).max(1) as u64;
    let chunk = address / row_bytes;
    let channel = (chunk % config.channels as u64) as u16;
    let rest = chunk / config.channels as u64;
    let vba = (rest % vbas_per_rank) as u8;
    let rest = rest / vbas_per_rank;
    let sid = (rest % org.stack_ids as u64) as u8;
    let row = ((rest / org.stack_ids as u64) % org.rows_per_bank as u64) as u32;
    (channel, VbaAddress::new(channel, sid, vba), row)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cube_has_36_channels_and_2_25_tbps() {
        let cfg = RomeSystemConfig::paper_cube();
        assert_eq!(cfg.channels, 36);
        assert_eq!(cfg.peak_bandwidth_gbps(), 2304.0);
        assert_eq!(cfg.row_bytes(), 4096);
    }

    #[test]
    fn decode_round_robins_channels_first() {
        let sys = RomeMemorySystem::new(RomeSystemConfig::with_channels(4));
        let (c0, _, _) = sys.decode(0);
        let (c1, _, _) = sys.decode(4096);
        let (c4, v4, _) = sys.decode(4 * 4096);
        assert_eq!(c0, 0);
        assert_eq!(c1, 1);
        assert_eq!(c4, 0);
        assert_eq!(v4.vba, 1);
    }

    #[test]
    fn large_transfer_spreads_across_channels_and_completes() {
        let mut sys = RomeMemorySystem::new(RomeSystemConfig::with_channels(4));
        sys.submit(MemoryRequest::read(1, 0, 256 * 1024, 0));
        let (done, finish) = sys.run_until_idle(5_000_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].bytes, 256 * 1024);
        let per_chan = sys.bytes_per_channel();
        let max = *per_chan.iter().max().unwrap();
        let min = *per_chan.iter().min().unwrap();
        assert_eq!(
            max, min,
            "perfectly divisible transfer must balance: {per_chan:?}"
        );
        // Aggregate bandwidth well above one channel's peak.
        let bw = (256.0 * 1024.0) / finish as f64;
        assert!(bw > 150.0, "bandwidth {bw:.1} GB/s");
    }

    #[test]
    fn small_transfer_loads_only_some_channels() {
        // A 12 KiB tensor on a 4-channel system touches only 3 channels:
        // the imbalance RoMe's Figure 13 quantifies.
        let mut sys = RomeMemorySystem::new(RomeSystemConfig::with_channels(4));
        sys.submit(MemoryRequest::read(1, 0, 12 * 1024, 0));
        sys.run_until_idle(1_000_000);
        let per_chan = sys.bytes_per_channel();
        let loaded = per_chan.iter().filter(|&&b| b > 0).count();
        assert_eq!(loaded, 3, "{per_chan:?}");
    }

    #[test]
    fn reads_and_writes_both_complete_with_stats() {
        let mut sys = RomeMemorySystem::new(RomeSystemConfig::with_channels(2));
        sys.submit(MemoryRequest::read(1, 0, 64 * 1024, 0));
        sys.submit(MemoryRequest::write(2, 1 << 20, 64 * 1024, 0));
        let (done, _) = sys.run_until_idle(5_000_000);
        assert_eq!(done.len(), 2);
        let stats = sys.stats();
        assert_eq!(stats.bytes_read, 64 * 1024);
        assert_eq!(stats.bytes_written, 64 * 1024);
        assert_eq!(stats.rd_rows_issued, 16);
        assert_eq!(stats.wr_rows_issued, 16);
    }

    #[test]
    fn auto_ids_are_assigned() {
        let mut sys = RomeMemorySystem::new(RomeSystemConfig::with_channels(2));
        let a = sys.submit(MemoryRequest::read(0, 0, 4096, 0));
        let b = sys.submit(MemoryRequest::read(0, 8192, 4096, 0));
        assert_ne!(a, b);
    }
}
