//! Multi-channel RoMe memory system.
//!
//! The RoMe counterpart of `rome_mc::system::MemorySystem`: host requests of
//! arbitrary size are fragmented into effective-row-sized chunks, steered
//! across the (expanded) channel set, and executed by per-channel
//! [`RomeController`]s. Because the access granularity is 4 KB instead of
//! 32 B, the distribution of a tensor's chunks across channels is coarser —
//! the load-imbalance effect quantified by the paper's Figure 13, which the
//! `bytes_per_channel` accessor exposes.

use std::collections::{HashMap, VecDeque};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use rome_hbm::units::Cycle;

use rome_mc::request::{CompletedRequest, MemoryRequest, RequestId, RequestKind};
use rome_mc::system::HostCompletion;

use crate::channel_plan::ChannelPlan;
use crate::controller::{RomeController, RomeControllerConfig, RomeQueueEntry};
use crate::row_command::VbaAddress;
use crate::stats::RomeStats;

/// Configuration of a multi-channel RoMe memory system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RomeSystemConfig {
    /// Number of channels instantiated (36 per cube under the paper's plan).
    pub channels: u16,
    /// Per-channel controller configuration.
    pub controller: RomeControllerConfig,
}

impl RomeSystemConfig {
    /// A single-cube RoMe system following the paper's channel plan.
    pub fn paper_cube() -> Self {
        RomeSystemConfig {
            channels: ChannelPlan::paper_default().rome_channels as u16,
            controller: RomeControllerConfig::paper_default(),
        }
    }

    /// A RoMe system with an explicit channel count (used for sampled
    /// system-level simulation and the iso-bandwidth ablation).
    pub fn with_channels(channels: u16) -> Self {
        RomeSystemConfig {
            channels,
            controller: RomeControllerConfig::paper_default(),
        }
    }

    /// Effective row size (request granularity) in bytes.
    pub fn row_bytes(&self) -> u64 {
        self.controller.row_bytes()
    }

    /// Peak bandwidth of the instantiated system in GB/s.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.controller.organization.channel_bandwidth_gbps() * self.channels as f64
    }
}

#[derive(Debug, Clone)]
struct HostTracker {
    kind: RequestKind,
    bytes: u64,
    arrival: Cycle,
    fragments_outstanding: u64,
    last_completion: Cycle,
}

/// A multi-channel RoMe memory system.
#[derive(Debug, Clone)]
pub struct RomeMemorySystem {
    config: RomeSystemConfig,
    controllers: Vec<RomeController>,
    backlog: Vec<(u16, RomeQueueEntry)>,
    host_requests: HashMap<RequestId, HostTracker>,
    next_auto_id: u64,
    /// Reused per-tick completion buffer (avoids an allocation per channel
    /// per cycle).
    scratch: Vec<CompletedRequest>,
}

impl RomeMemorySystem {
    /// Build the system described by `config`.
    pub fn new(config: RomeSystemConfig) -> Self {
        let controllers = (0..config.channels)
            .map(|_| RomeController::new(config.controller.clone()))
            .collect();
        RomeMemorySystem {
            controllers,
            backlog: Vec::new(),
            host_requests: HashMap::new(),
            next_auto_id: 1 << 48,
            scratch: Vec::new(),
            config,
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &RomeSystemConfig {
        &self.config
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.controllers.len()
    }

    /// Aggregate statistics across channels.
    pub fn stats(&self) -> RomeStats {
        let mut out = RomeStats::new();
        for c in &self.controllers {
            out.merge(c.stats());
        }
        out
    }

    /// Useful bytes served per channel (for the channel load-balance rate).
    pub fn bytes_per_channel(&self) -> Vec<u64> {
        self.controllers
            .iter()
            .map(|c| c.stats().bytes_total())
            .collect()
    }

    /// Whether all work has drained.
    pub fn is_idle(&self) -> bool {
        self.backlog.is_empty() && self.controllers.iter().all(|c| c.is_idle())
    }

    /// Decode a physical address into (channel, VBA, row): consecutive
    /// row-sized chunks rotate across channels first, then VBAs, then stack
    /// IDs, then rows — the RoMe address mapping selected by the paper's
    /// mapping sweep.
    pub fn decode(&self, address: u64) -> (u16, VbaAddress, u32) {
        let row_bytes = self.config.row_bytes();
        let org = &self.config.controller.organization;
        let vbas_per_rank = self.config.controller.vba.vbas_per_rank(org).max(1) as u64;
        let chunk = address / row_bytes;
        let channel = (chunk % self.config.channels as u64) as u16;
        let rest = chunk / self.config.channels as u64;
        let vba = (rest % vbas_per_rank) as u8;
        let rest = rest / vbas_per_rank;
        let sid = (rest % org.stack_ids as u64) as u8;
        let row = ((rest / org.stack_ids as u64) % org.rows_per_bank as u64) as u32;
        (channel, VbaAddress::new(channel, sid, vba), row)
    }

    /// Submit a host request; it is fragmented into row-sized chunks.
    pub fn submit(&mut self, mut request: MemoryRequest) -> RequestId {
        if request.id.0 == 0 {
            request.id = RequestId(self.next_auto_id);
            self.next_auto_id += 1;
        }
        let fragments = request.fragments(self.config.row_bytes());
        self.host_requests.insert(
            request.id,
            HostTracker {
                kind: request.kind,
                bytes: request.bytes,
                arrival: request.arrival,
                fragments_outstanding: fragments.len() as u64,
                last_completion: 0,
            },
        );
        for frag in fragments {
            let (channel, target, row) = self.decode(frag.address.raw());
            self.backlog.push((
                channel,
                RomeQueueEntry {
                    request: frag,
                    target,
                    row,
                },
            ));
        }
        request.id
    }

    /// Advance the whole system by one nanosecond.
    ///
    /// Allocates a fresh completion vector per call; hot loops should prefer
    /// [`RomeMemorySystem::tick_into`] with a reused buffer.
    pub fn tick(&mut self, now: Cycle) -> Vec<HostCompletion> {
        let mut completions = Vec::new();
        self.tick_into(now, &mut completions);
        completions
    }

    /// Advance the whole system by one nanosecond, appending completed host
    /// requests to `completions`. Returns `true` if any channel issued a row
    /// command.
    pub fn tick_into(&mut self, now: Cycle, completions: &mut Vec<HostCompletion>) -> bool {
        let mut i = 0;
        while i < self.backlog.len() {
            let (channel, entry) = self.backlog[i];
            let n = self.controllers.len();
            let ctrl = &mut self.controllers[channel as usize % n];
            if ctrl.slots_free() > 0 {
                let ok = ctrl.enqueue_decoded(entry);
                debug_assert!(ok);
                self.backlog.swap_remove(i);
            } else {
                i += 1;
            }
        }

        let before = completions.len();
        let mut issued = false;
        let RomeMemorySystem {
            controllers,
            scratch,
            host_requests,
            ..
        } = self;
        for ctrl in controllers.iter_mut() {
            issued |= ctrl.tick_into(now, scratch);
            for done in scratch.drain(..) {
                if let Some(tracker) = host_requests.get_mut(&done.id) {
                    tracker.fragments_outstanding -= 1;
                    tracker.last_completion = tracker.last_completion.max(done.completed);
                    if tracker.fragments_outstanding == 0 {
                        completions.push(HostCompletion {
                            id: done.id,
                            kind: tracker.kind,
                            bytes: tracker.bytes,
                            arrival: tracker.arrival,
                            completed: tracker.last_completion,
                        });
                    }
                }
            }
        }
        for c in &completions[before..] {
            self.host_requests.remove(&c.id);
        }
        issued
    }

    /// The next cycle strictly after `now` at which any channel's state can
    /// change (see [`RomeController::next_event_at`]), or at which a
    /// backlogged fragment could enter a queue. `None` when the whole system
    /// is quiescent.
    pub fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut consider = |t: Cycle| {
            let t = t.max(now + 1);
            next = Some(next.map_or(t, |n: Cycle| n.min(t)));
        };
        let n = self.controllers.len();
        if self
            .backlog
            .iter()
            .any(|(channel, _)| self.controllers[*channel as usize % n].slots_free() > 0)
        {
            consider(now + 1);
        }
        for ctrl in &self.controllers {
            if let Some(t) = ctrl.next_event_at(now) {
                consider(t);
            }
        }
        next
    }

    /// Run until idle or `max_ns`, returning the completions (sorted by
    /// completion time, then id) and the stop time.
    ///
    /// As in `rome_mc::system`, channels share no state once fragments are
    /// steered, so each channel runs its own event-driven loop to completion
    /// — in parallel across channels — and the fragment completions are
    /// merged into host completions afterwards.
    pub fn run_until_idle(&mut self, max_ns: Cycle) -> (Vec<HostCompletion>, Cycle) {
        let channels = self.controllers.len();
        let mut backlogs: Vec<VecDeque<RomeQueueEntry>> = vec![VecDeque::new(); channels];
        for (channel, entry) in self.backlog.drain(..) {
            backlogs[channel as usize % channels].push_back(entry);
        }

        let tasks: Vec<(&mut RomeController, VecDeque<RomeQueueEntry>)> =
            self.controllers.iter_mut().zip(backlogs).collect();
        let per_channel: Vec<(Vec<CompletedRequest>, Cycle)> = tasks
            .into_par_iter()
            .map(|(ctrl, backlog)| run_channel_until_idle(ctrl, backlog, max_ns))
            .collect();

        let mut stop = 0;
        let mut fragments = Vec::new();
        for (done, t) in per_channel {
            stop = stop.max(t);
            fragments.extend(done);
        }
        fragments.sort_unstable_by_key(|c| (c.completed, c.id.0));

        let mut completions = Vec::new();
        for done in fragments {
            if let Some(tracker) = self.host_requests.get_mut(&done.id) {
                tracker.fragments_outstanding -= 1;
                tracker.last_completion = tracker.last_completion.max(done.completed);
                if tracker.fragments_outstanding == 0 {
                    completions.push(HostCompletion {
                        id: done.id,
                        kind: tracker.kind,
                        bytes: tracker.bytes,
                        arrival: tracker.arrival,
                        completed: tracker.last_completion,
                    });
                }
            }
        }
        for c in &completions {
            self.host_requests.remove(&c.id);
        }
        (completions, stop)
    }
}

/// Event-driven loop for one RoMe channel: feed it its share of the backlog,
/// jump to the next event after every no-op tick, and return the fragment
/// completions plus the cycle the channel went idle (or `max_ns`).
fn run_channel_until_idle(
    ctrl: &mut RomeController,
    mut backlog: VecDeque<RomeQueueEntry>,
    max_ns: Cycle,
) -> (Vec<CompletedRequest>, Cycle) {
    let mut done = Vec::new();
    let mut now = 0;
    let mut stop = 0;
    while (!backlog.is_empty() || !ctrl.is_idle()) && now < max_ns {
        while !backlog.is_empty() && ctrl.slots_free() > 0 {
            let entry = backlog.pop_front().expect("checked non-empty");
            let ok = ctrl.enqueue_decoded(entry);
            debug_assert!(ok);
        }
        let issued = ctrl.tick_into(now, &mut done);
        stop = now + 1;
        let arrival_next = !backlog.is_empty() && ctrl.slots_free() > 0;
        now = if issued || arrival_next {
            now + 1
        } else {
            ctrl.next_event_at(now).map_or(now + 1, |t| t.max(now + 1))
        };
    }
    let finished = backlog.is_empty() && ctrl.is_idle();
    (done, if finished { stop } else { max_ns })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cube_has_36_channels_and_2_25_tbps() {
        let cfg = RomeSystemConfig::paper_cube();
        assert_eq!(cfg.channels, 36);
        assert_eq!(cfg.peak_bandwidth_gbps(), 2304.0);
        assert_eq!(cfg.row_bytes(), 4096);
    }

    #[test]
    fn decode_round_robins_channels_first() {
        let sys = RomeMemorySystem::new(RomeSystemConfig::with_channels(4));
        let (c0, _, _) = sys.decode(0);
        let (c1, _, _) = sys.decode(4096);
        let (c4, v4, _) = sys.decode(4 * 4096);
        assert_eq!(c0, 0);
        assert_eq!(c1, 1);
        assert_eq!(c4, 0);
        assert_eq!(v4.vba, 1);
    }

    #[test]
    fn large_transfer_spreads_across_channels_and_completes() {
        let mut sys = RomeMemorySystem::new(RomeSystemConfig::with_channels(4));
        sys.submit(MemoryRequest::read(1, 0, 256 * 1024, 0));
        let (done, finish) = sys.run_until_idle(5_000_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].bytes, 256 * 1024);
        let per_chan = sys.bytes_per_channel();
        let max = *per_chan.iter().max().unwrap();
        let min = *per_chan.iter().min().unwrap();
        assert_eq!(
            max, min,
            "perfectly divisible transfer must balance: {per_chan:?}"
        );
        // Aggregate bandwidth well above one channel's peak.
        let bw = (256.0 * 1024.0) / finish as f64;
        assert!(bw > 150.0, "bandwidth {bw:.1} GB/s");
    }

    #[test]
    fn small_transfer_loads_only_some_channels() {
        // A 12 KiB tensor on a 4-channel system touches only 3 channels:
        // the imbalance RoMe's Figure 13 quantifies.
        let mut sys = RomeMemorySystem::new(RomeSystemConfig::with_channels(4));
        sys.submit(MemoryRequest::read(1, 0, 12 * 1024, 0));
        sys.run_until_idle(1_000_000);
        let per_chan = sys.bytes_per_channel();
        let loaded = per_chan.iter().filter(|&&b| b > 0).count();
        assert_eq!(loaded, 3, "{per_chan:?}");
    }

    #[test]
    fn reads_and_writes_both_complete_with_stats() {
        let mut sys = RomeMemorySystem::new(RomeSystemConfig::with_channels(2));
        sys.submit(MemoryRequest::read(1, 0, 64 * 1024, 0));
        sys.submit(MemoryRequest::write(2, 1 << 20, 64 * 1024, 0));
        let (done, _) = sys.run_until_idle(5_000_000);
        assert_eq!(done.len(), 2);
        let stats = sys.stats();
        assert_eq!(stats.bytes_read, 64 * 1024);
        assert_eq!(stats.bytes_written, 64 * 1024);
        assert_eq!(stats.rd_rows_issued, 16);
        assert_eq!(stats.wr_rows_issued, 16);
    }

    #[test]
    fn auto_ids_are_assigned() {
        let mut sys = RomeMemorySystem::new(RomeSystemConfig::with_channels(2));
        let a = sys.submit(MemoryRequest::read(0, 0, 4096, 0));
        let b = sys.submit(MemoryRequest::read(0, 8192, 4096, 0));
        assert_ne!(a, b);
    }
}
