//! The virtual-bank (VBA) design space.
//!
//! A VBA is the unit of access under RoMe: a group of conventional banks that
//! together deliver the channel's full bandwidth from a single logical bank,
//! so that the MC no longer needs to interleave across bank groups or pseudo
//! channels. The paper explores three ways of forming a VBA from banks
//! (Fig. 7 b/c/d) and two ways of removing the pseudo channel from the
//! interface (Fig. 8 a/b); the default RoMe configuration combines Fig. 7(d)
//! with Fig. 8(b) because it needs no changes to the DRAM array and adds no
//! datapath width.

use serde::{Deserialize, Serialize};

use rome_hbm::organization::Organization;

/// How banks are merged into a virtual bank (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BankMerge {
    /// Fig. 7(b): a single bank doubles its internal access granularity
    /// (`AG_bank`), BK-BUS width, and I/O-control buffer.
    WidenSingleBank,
    /// Fig. 7(c): two banks of the *same* bank group operate in tandem,
    /// doubling the fetched data per access.
    TandemSameBankGroup,
    /// Fig. 7(d): two banks from *different* bank groups are accessed in a
    /// time-multiplexed manner — no DRAM-internal changes (RoMe's choice).
    InterleaveAcrossBankGroups,
}

impl BankMerge {
    /// All options, in the paper's order.
    pub const ALL: [BankMerge; 3] = [
        BankMerge::WidenSingleBank,
        BankMerge::TandemSameBankGroup,
        BankMerge::InterleaveAcrossBankGroups,
    ];

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            BankMerge::WidenSingleBank => "Fig7(b) widen-bank",
            BankMerge::TandemSameBankGroup => "Fig7(c) tandem-same-BG",
            BankMerge::InterleaveAcrossBankGroups => "Fig7(d) interleave-across-BG",
        }
    }

    /// Number of conventional banks combined into one VBA (per pseudo
    /// channel).
    pub fn banks_combined(self) -> u32 {
        match self {
            BankMerge::WidenSingleBank => 1,
            BankMerge::TandemSameBankGroup | BankMerge::InterleaveAcrossBankGroups => 2,
        }
    }

    /// Multiplier on the bank's internal dataline / BK-BUS width.
    pub fn bank_datapath_multiplier(self) -> u32 {
        match self {
            BankMerge::WidenSingleBank => 2,
            _ => 1,
        }
    }

    /// Whether the DRAM array or its buses must be modified.
    pub fn requires_dram_modification(self) -> bool {
        !matches!(self, BankMerge::InterleaveAcrossBankGroups)
    }
}

/// How the two pseudo channels are removed from the interface (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PcMerge {
    /// Fig. 8(a): one PC fetches twice the data and serves the full channel;
    /// the BG-BUS and I/O-control buffers double and muxes are added.
    WidenSinglePc,
    /// Fig. 8(b): both PCs operate simultaneously, as in HBM1/2 legacy
    /// channel mode — no extra wiring or buffering (RoMe's choice).
    LegacyBothPcs,
}

impl PcMerge {
    /// All options, in the paper's order.
    pub const ALL: [PcMerge; 2] = [PcMerge::WidenSinglePc, PcMerge::LegacyBothPcs];

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            PcMerge::WidenSinglePc => "Fig8(a) widen-PC",
            PcMerge::LegacyBothPcs => "Fig8(b) legacy-both-PC",
        }
    }

    /// Number of pseudo channels active per access.
    pub fn pcs_active(self) -> u32 {
        match self {
            PcMerge::WidenSinglePc => 1,
            PcMerge::LegacyBothPcs => 2,
        }
    }

    /// Multiplier on the BG-BUS width and I/O-control buffer.
    pub fn bg_bus_multiplier(self) -> u32 {
        match self {
            PcMerge::WidenSinglePc => 2,
            PcMerge::LegacyBothPcs => 1,
        }
    }

    /// Whether extra multiplexers / wiring are needed between GBUSes.
    pub fn requires_dram_modification(self) -> bool {
        matches!(self, PcMerge::WidenSinglePc)
    }
}

/// A point in the VBA design space: a bank-merge strategy combined with a
/// PC-merge strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VbaConfig {
    /// How banks are merged (Fig. 7).
    pub bank_merge: BankMerge,
    /// How pseudo channels are merged (Fig. 8).
    pub pc_merge: PcMerge,
}

impl VbaConfig {
    /// RoMe's adopted configuration: Fig. 7(d) + Fig. 8(b).
    pub fn rome_default() -> Self {
        VbaConfig {
            bank_merge: BankMerge::InterleaveAcrossBankGroups,
            pc_merge: PcMerge::LegacyBothPcs,
        }
    }

    /// The full six-point design space explored in §IV-B.
    pub fn design_space() -> Vec<VbaConfig> {
        let mut out = Vec::with_capacity(6);
        for bank_merge in BankMerge::ALL {
            for pc_merge in PcMerge::ALL {
                out.push(VbaConfig {
                    bank_merge,
                    pc_merge,
                });
            }
        }
        out
    }

    /// Short label used in experiment tables.
    pub fn label(&self) -> String {
        format!("{} + {}", self.bank_merge.label(), self.pc_merge.label())
    }

    /// Effective row size of one VBA in bytes, given the underlying
    /// organization: base row × banks combined × PCs active.
    pub fn effective_row_bytes(&self, org: &Organization) -> u64 {
        org.row_bytes as u64
            * self.bank_merge.banks_combined() as u64
            * self.pc_merge.pcs_active() as u64
    }

    /// Number of VBAs per channel.
    pub fn vbas_per_channel(&self, org: &Organization) -> u32 {
        let physical = org.banks_per_channel();
        let per_vba = self.bank_merge.banks_combined() * self.pc_merge.pcs_active();
        // When only one PC is active per access (Fig. 8(a)) the two PCs are
        // still controlled as a single channel, so the VBA count counts both
        // PCs' banks.
        let denom = match self.pc_merge {
            PcMerge::WidenSinglePc => self.bank_merge.banks_combined(),
            PcMerge::LegacyBothPcs => per_vba,
        };
        physical / denom
    }

    /// Number of VBAs per (channel, stack ID).
    pub fn vbas_per_rank(&self, org: &Organization) -> u32 {
        self.vbas_per_channel(org) / org.stack_ids as u32
    }

    /// Number of physical banks driven by one row command.
    pub fn banks_per_access(&self) -> u32 {
        self.bank_merge.banks_combined() * self.pc_merge.pcs_active()
    }

    /// Total datapath-width multiplier relative to the conventional design
    /// (the paper notes the worst combination reaches 4× and up to 77 % bank
    /// area overhead).
    pub fn datapath_multiplier(&self) -> u32 {
        self.bank_merge.bank_datapath_multiplier() * self.pc_merge.bg_bus_multiplier()
    }

    /// Estimated DRAM-core area overhead of this configuration relative to
    /// the conventional bank design, as a fraction (0.0 = none). The scaling
    /// follows the fine-grained-DRAM area model of O'Connor et al. \[51\] that
    /// the paper cites: each doubling of the bank datapath costs ≈ 38.5 % of
    /// bank area, so the 4× point lands at the paper's "up to 77 %".
    pub fn area_overhead_fraction(&self) -> f64 {
        match self.datapath_multiplier() {
            1 => 0.0,
            2 => 0.385,
            _ => 0.77,
        }
    }

    /// Whether the configuration needs any change to the DRAM array,
    /// internal buses, or buffers.
    pub fn requires_dram_modification(&self) -> bool {
        self.bank_merge.requires_dram_modification() || self.pc_merge.requires_dram_modification()
    }
}

impl Default for VbaConfig {
    fn default() -> Self {
        VbaConfig::rome_default()
    }
}

impl std::fmt::Display for VbaConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org() -> Organization {
        Organization::hbm4()
    }

    #[test]
    fn design_space_has_six_unique_points() {
        let space = VbaConfig::design_space();
        assert_eq!(space.len(), 6);
        for i in 0..space.len() {
            for j in (i + 1)..space.len() {
                assert_ne!(space[i], space[j]);
            }
        }
        assert!(space.contains(&VbaConfig::rome_default()));
    }

    #[test]
    fn rome_default_matches_table_v() {
        let cfg = VbaConfig::rome_default();
        let org = org();
        // Table V: RoMe row size 4 KB, 32 banks (VBAs) per channel.
        assert_eq!(cfg.effective_row_bytes(&org), 4096);
        assert_eq!(cfg.vbas_per_channel(&org), 32);
        assert_eq!(cfg.vbas_per_rank(&org), 8);
        assert_eq!(cfg.banks_per_access(), 4);
        assert_eq!(cfg.datapath_multiplier(), 1);
        assert_eq!(cfg.area_overhead_fraction(), 0.0);
        assert!(!cfg.requires_dram_modification());
    }

    #[test]
    fn widen_bank_with_widen_pc_is_the_worst_area_point() {
        let worst = VbaConfig {
            bank_merge: BankMerge::WidenSingleBank,
            pc_merge: PcMerge::WidenSinglePc,
        };
        assert_eq!(worst.datapath_multiplier(), 4);
        assert_eq!(worst.area_overhead_fraction(), 0.77);
        assert!(worst.requires_dram_modification());
    }

    #[test]
    fn widen_single_bank_keeps_bank_count() {
        let org = org();
        let cfg = VbaConfig {
            bank_merge: BankMerge::WidenSingleBank,
            pc_merge: PcMerge::LegacyBothPcs,
        };
        // One bank per BG-side unit, both PCs ganged: 128 banks / 2 = 64 VBAs,
        // effective row 2 KB.
        assert_eq!(cfg.vbas_per_channel(&org), 64);
        assert_eq!(cfg.effective_row_bytes(&org), 2048);
        assert_eq!(cfg.area_overhead_fraction(), 0.385);
    }

    #[test]
    fn widen_pc_keeps_row_size_at_one_kb_per_bank_pair() {
        let org = org();
        let cfg = VbaConfig {
            bank_merge: BankMerge::InterleaveAcrossBankGroups,
            pc_merge: PcMerge::WidenSinglePc,
        };
        // Fig. 8(a): effective row stays 1 KB * 2 banks = 2 KB, and the bank
        // count per channel stays higher (both PCs' banks usable separately).
        assert_eq!(cfg.effective_row_bytes(&org), 2048);
        assert_eq!(cfg.vbas_per_channel(&org), 64);
        assert!(cfg.requires_dram_modification());
    }

    #[test]
    fn every_point_reports_consistent_row_and_bank_accounting() {
        let org = org();
        for cfg in VbaConfig::design_space() {
            let row = cfg.effective_row_bytes(&org);
            assert!((1024..=4096).contains(&row), "{cfg}: row {row}");
            assert!(cfg.vbas_per_channel(&org) >= 32);
            assert!(cfg.datapath_multiplier() >= 1 && cfg.datapath_multiplier() <= 4);
            // The default is the only point with zero area overhead and no
            // DRAM modification.
            if cfg != VbaConfig::rome_default() {
                assert!(cfg.requires_dram_modification() || cfg.area_overhead_fraction() > 0.0);
            }
        }
    }

    #[test]
    fn labels_are_human_readable() {
        let cfg = VbaConfig::rome_default();
        let label = cfg.to_string();
        assert!(label.contains("Fig7(d)"));
        assert!(label.contains("Fig8(b)"));
        assert_eq!(BankMerge::ALL.len(), 3);
        assert_eq!(PcMerge::ALL.len(), 2);
    }
}
