//! The RoMe memory controller (§V-A).
//!
//! The controller issues only three commands — `RD_row`, `WR_row`, and a
//! pooled VBA refresh — and therefore tracks only the Table III timing
//! parameters, four bank states, at most five bank FSMs, and a request queue
//! of a handful of entries. Scheduling reduces to serving the oldest request
//! whose virtual bank is free, which automatically interleaves across VBAs.
//!
//! Performance is modeled at the interface level using [`RomeTimingParams`];
//! the conventional commands implied by each row command are accounted via
//! the [`CommandGenerator`] expansion so the energy model sees exact
//! ACT/RD/WR/PRE counts. The generator's expansion is separately verified
//! against the cycle-accurate channel model in `generator.rs` tests, so the
//! interface-level timing used here is known to be achievable.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use serde::{Deserialize, Serialize};

use rome_engine::trace::{FlightRecorder, TraceBuffer, TraceConfig, TraceEvent, TraceEventKind};
use rome_engine::EventHorizon;
use rome_hbm::organization::Organization;
use rome_hbm::timing::TimingParams;
use rome_hbm::units::Cycle;

use rome_mc::request::{CompletedRequest, MemoryRequest, RequestKind};

use crate::generator::{CommandGenerator, ExpansionCounts};
use crate::refresh::VbaRefreshScheduler;
use crate::row_command::{RowCommand, RowCommandKind, VbaAddress};
use crate::stats::RomeStats;
use crate::timing::RomeTimingParams;
use crate::vba::VbaConfig;

/// Configuration of one RoMe channel controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RomeControllerConfig {
    /// Underlying DRAM organization.
    pub organization: Organization,
    /// Conventional DRAM timing (drives the command generator).
    pub timing: TimingParams,
    /// Virtual-bank configuration.
    pub vba: VbaConfig,
    /// Interface timing (Table III / Table V).
    pub rome_timing: RomeTimingParams,
    /// Request-queue capacity. The paper provisions 4 entries and shows 2
    /// suffice for peak bandwidth.
    pub queue_capacity: usize,
}

impl RomeControllerConfig {
    /// The paper's default RoMe configuration.
    pub fn paper_default() -> Self {
        RomeControllerConfig {
            organization: Organization::hbm4(),
            timing: TimingParams::hbm4(),
            vba: VbaConfig::rome_default(),
            rome_timing: RomeTimingParams::paper_table_v(),
            queue_capacity: 4,
        }
    }

    /// Same as [`RomeControllerConfig::paper_default`] but with an explicit
    /// queue capacity (used by the queue-depth experiment).
    pub fn with_queue_depth(depth: usize) -> Self {
        let mut cfg = RomeControllerConfig::paper_default();
        cfg.queue_capacity = depth.max(1);
        cfg
    }

    /// Same as [`RomeControllerConfig::paper_default`] but with an explicit
    /// VBA configuration (used by the design-space exploration).
    pub fn with_vba(vba: VbaConfig) -> Self {
        let org = Organization::hbm4();
        let timing = TimingParams::hbm4();
        RomeControllerConfig {
            rome_timing: RomeTimingParams::derive(&timing, &org, &vba),
            organization: org,
            timing,
            vba,
            queue_capacity: 4,
        }
    }

    /// Effective row size (and therefore the request granularity) in bytes.
    pub fn row_bytes(&self) -> u64 {
        self.vba.effective_row_bytes(&self.organization)
    }
}

/// One queued request together with its decoded RoMe coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RomeQueueEntry {
    /// The pending request (one row-granularity chunk).
    pub request: MemoryRequest,
    /// The virtual bank it targets.
    pub target: VbaAddress,
    /// The row within that virtual bank.
    pub row: u32,
}

/// Ordered by `(complete_at, seq)` so the in-flight set can live in a
/// min-heap (wrapped in [`Reverse`]): completions pop in completion order
/// and the next completion time is a peek.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct InFlight {
    entry: RomeQueueEntry,
    complete_at: Cycle,
    /// Monotone issue sequence number (tie-breaker for equal completion
    /// times).
    seq: u64,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.complete_at, self.seq).cmp(&(other.complete_at, other.seq))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct LastIssue {
    at: Cycle,
    was_write: bool,
    stack_id: u8,
}

/// A RoMe channel controller.
#[derive(Debug, Clone)]
pub struct RomeController {
    config: RomeControllerConfig,
    generator: CommandGenerator,
    queue: VecDeque<RomeQueueEntry>,
    /// Parallel hot arrays mirroring `queue` position-for-position: each
    /// entry's VBA index and write flag, packed so the data-issue scan reads
    /// two small POD arrays instead of loading every `RomeQueueEntry`
    /// payload. Maintained at the queue's two mutation points
    /// ([`RomeController::enqueue_decoded`] and the remove in
    /// `try_issue_data`).
    hot_vba: Vec<u32>,
    hot_write: Vec<bool>,
    /// Whether `try_issue_data` scans the packed hot arrays (data-oriented)
    /// or the entry queue directly (oracle). Both paths evaluate the same
    /// predicate in the same order, so decisions are bit-identical; see
    /// [`RomeController::set_soa`].
    soa: bool,
    /// In-flight row transfers, ordered by completion time (min-heap):
    /// completions are popped, never scanned, and the next completion time
    /// is an O(1) peek for [`RomeController::next_event_at`].
    in_flight: BinaryHeap<Reverse<InFlight>>,
    /// Issue sequence counter feeding [`InFlight::seq`].
    inflight_seq: u64,
    /// Busy-until per (stack ID, VBA).
    vba_busy_until: Vec<Cycle>,
    refresh: Vec<VbaRefreshScheduler>,
    /// Cached minimum of the pooled refresh schedulers' `next_due` cycles,
    /// updated only on acknowledge. See
    /// `rome_mc::ChannelController::refresh_due_min` for the invalidation
    /// argument; the fallback scan runs only while a due refresh waits for
    /// its VBA.
    refresh_due_min: Cycle,
    last_issue: Option<LastIssue>,
    stats: RomeStats,
    /// Sim-time flight recorder: disarmed (a compiled-in no-op) by default,
    /// armed by the drivers through
    /// [`rome_engine::MemoryController::set_trace`]. A derived observation —
    /// the scheduler never reads it — so recording cannot perturb the
    /// schedule.
    trace: FlightRecorder,
    /// Offset from row-command issue to the completion of its data transfer.
    data_complete_offset: Cycle,
    vbas_per_rank: u32,
    /// Earliest future cycle at which a command the scheduler wanted to
    /// issue this tick becomes ready, recorded as a byproduct of the tick's
    /// failed issue attempts. Only complete after a tick that issued
    /// nothing; consumed by [`RomeController::next_event_at`].
    event_hint: Cycle,
    /// Per-kind command-expansion counts, precomputed once: the expansion of
    /// a row command depends only on its kind, so re-deriving the full
    /// Fig. 9 schedule on every issue would dominate the issue path.
    expansion: [ExpansionCounts; 3],
}

/// Index of a row-command kind in the precomputed expansion table.
fn expansion_index(kind: RowCommandKind) -> usize {
    match kind {
        RowCommandKind::RdRow => 0,
        RowCommandKind::WrRow => 1,
        RowCommandKind::RefVba => 2,
    }
}

impl RomeController {
    /// Create a controller from its configuration.
    pub fn new(config: RomeControllerConfig) -> Self {
        let generator = CommandGenerator::new(config.organization, config.timing, config.vba);
        let vbas_per_rank = config.vba.vbas_per_rank(&config.organization);
        let ranks = config.organization.stack_ids as usize;
        let refresh: Vec<VbaRefreshScheduler> = (0..ranks)
            .map(|_| VbaRefreshScheduler::new(&config.timing, vbas_per_rank))
            .collect();
        let refresh_due_min = refresh
            .iter()
            .map(VbaRefreshScheduler::next_due)
            .min()
            .unwrap_or(Cycle::MAX);
        // Data of a RD_row completes roughly tRCD + stagger + data beats +
        // CAS latency after the command is accepted.
        let beats = RomeTimingParams::columns_per_row_command(&config.organization, &config.vba);
        let data_complete_offset = Cycle::from(
            config.timing.t_rcd_rd
                + (config.timing.t_rrd_s - config.timing.t_ccd_s)
                + beats * config.timing.t_ccd_s
                + config.timing.t_cl,
        );
        let expansion = [
            generator.expansion_counts(RowCommandKind::RdRow),
            generator.expansion_counts(RowCommandKind::WrRow),
            generator.expansion_counts(RowCommandKind::RefVba),
        ];
        RomeController {
            vba_busy_until: vec![0; ranks * vbas_per_rank as usize],
            queue: VecDeque::with_capacity(config.queue_capacity),
            hot_vba: Vec::with_capacity(config.queue_capacity),
            hot_write: Vec::with_capacity(config.queue_capacity),
            soa: true,
            in_flight: BinaryHeap::new(),
            inflight_seq: 0,
            refresh,
            refresh_due_min,
            last_issue: None,
            stats: RomeStats::new(),
            trace: FlightRecorder::disabled(),
            generator,
            data_complete_offset,
            vbas_per_rank,
            event_hint: Cycle::MAX,
            expansion,
            config,
        }
    }

    /// The controller configuration.
    pub fn config(&self) -> &RomeControllerConfig {
        &self.config
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &RomeStats {
        &self.stats
    }

    /// The command generator used for expansion accounting.
    pub fn generator(&self) -> &CommandGenerator {
        &self.generator
    }

    /// Enable or disable the data-oriented issue scan (enabled by default).
    /// The packed hot arrays are always maintained; this only selects which
    /// representation the scan reads, and both make identical decisions —
    /// the toggle exists so equivalence tests and benchmarks can compare the
    /// two paths.
    pub fn set_soa(&mut self, enabled: bool) {
        self.soa = enabled;
    }

    /// Whether the controller has no pending or in-flight work.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_flight.is_empty()
    }

    /// Number of free request-queue slots.
    pub fn slots_free(&self) -> usize {
        self.config.queue_capacity - self.queue.len()
    }

    fn vba_index(&self, target: VbaAddress) -> usize {
        target.stack_id as usize * self.vbas_per_rank as usize + target.vba as usize
    }

    /// Decode a physical address into (VBA, row) for a standalone
    /// single-channel controller: consecutive row-sized chunks rotate over
    /// the VBAs of each stack ID, then over stack IDs, then rows.
    pub fn decode(&self, address: u64) -> (VbaAddress, u32) {
        let row_bytes = self.config.row_bytes();
        let chunk = address / row_bytes;
        let vba = (chunk % self.vbas_per_rank as u64) as u8;
        let rest = chunk / self.vbas_per_rank as u64;
        let sid = (rest % self.config.organization.stack_ids as u64) as u8;
        let row = (rest / self.config.organization.stack_ids as u64) as u32
            % self.config.organization.rows_per_bank;
        (VbaAddress::new(0, sid, vba), row)
    }

    /// Enqueue a request (one row-granularity chunk). Returns `false` if the
    /// queue is full.
    ///
    /// # Panics
    ///
    /// Panics if the request is larger than the effective row size.
    pub fn enqueue(&mut self, request: MemoryRequest) -> bool {
        assert!(
            request.bytes <= self.config.row_bytes(),
            "RoMe requests must be at most one effective row ({} B), got {} B",
            self.config.row_bytes(),
            request.bytes
        );
        let (target, row) = self.decode(request.address.raw());
        self.enqueue_decoded(RomeQueueEntry {
            request,
            target,
            row,
        })
    }

    /// Enqueue a request whose RoMe coordinates were already decoded (used by
    /// the multi-channel system). Returns `false` if the queue is full.
    pub fn enqueue_decoded(&mut self, entry: RomeQueueEntry) -> bool {
        if self.queue.len() >= self.config.queue_capacity {
            return false;
        }
        self.hot_vba.push(self.vba_index(entry.target) as u32);
        self.hot_write.push(!entry.request.kind.is_read());
        self.queue.push_back(entry);
        if self.trace.enabled() {
            let req = entry.request;
            let idx = self.vba_index(entry.target);
            self.trace.record(TraceEvent {
                id: req.id.0,
                bank: idx as u32,
                row: entry.row,
                bytes: req.bytes,
                write: !req.kind.is_read(),
                ..TraceEvent::at(TraceEventKind::Enqueue, req.arrival)
            });
        }
        true
    }

    fn earliest_interface_issue(&self, is_write: bool, stack_id: u8) -> Cycle {
        match self.last_issue {
            None => 0,
            Some(last) => {
                let spacing = self.config.rome_timing.different_vba_spacing(
                    last.was_write,
                    is_write,
                    last.stack_id == stack_id,
                );
                last.at + Cycle::from(spacing)
            }
        }
    }

    /// Advance the controller by one nanosecond.
    ///
    /// Allocates a fresh completion vector per call; hot loops should prefer
    /// [`RomeController::tick_into`] with a reused buffer.
    pub fn tick(&mut self, now: Cycle) -> Vec<CompletedRequest> {
        let mut completed = Vec::new();
        self.tick_into(now, &mut completed);
        completed
    }

    /// Advance the controller by one nanosecond, appending any completions to
    /// `completed`. Returns `true` if a row command (data or refresh) was
    /// issued.
    pub fn tick_into(&mut self, now: Cycle, completed: &mut Vec<CompletedRequest>) -> bool {
        self.stats.total_cycles += 1;
        self.event_hint = Cycle::MAX;
        self.collect_completions_into(now, completed);
        let had_work = !self.queue.is_empty();

        let issued_refresh = self.try_issue_refresh(now);
        let issued = if issued_refresh {
            true
        } else {
            self.try_issue_data(now)
        };

        if had_work && !issued {
            self.stats.stall_cycles += 1;
        } else if !had_work && self.in_flight.is_empty() {
            self.stats.idle_cycles += 1;
        }
        issued
    }

    /// The next cycle strictly after `now` at which this controller's state
    /// can change on its own: an in-flight transfer completing, a pooled
    /// refresh becoming due (or its target VBA freeing up), or a queued
    /// request's VBA and interface spacing both becoming ready. `None` when
    /// the controller is fully idle and no refresh is pending.
    ///
    /// Must be called immediately after a [`RomeController::tick_into`] at
    /// the same `now` that issued nothing: the scheduling-derived part of
    /// the answer is accumulated into the event hint during that tick's
    /// failed issue attempts. Like
    /// [`rome_mc::ChannelController::next_event_at`], the result is a lower
    /// bound on the next state change, so an event-driven driver that ticks
    /// at every reported cycle reproduces the cycle-stepped schedule exactly.
    ///
    /// O(1) on the hot path: accumulated hint, in-flight heap peek, and the
    /// cached refresh due minimum (O(ranks) fallback only while a due
    /// refresh is waiting for its VBA).
    pub fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon = EventHorizon::new(now);

        if self.event_hint != Cycle::MAX {
            horizon.consider(self.event_hint);
        }

        if let Some(Reverse(inflight)) = self.in_flight.peek() {
            horizon.consider(inflight.complete_at);
        }

        if self.refresh_due_min > now {
            horizon.consider(self.refresh_due_min);
        } else {
            for sched in &self.refresh {
                if !sched.due(now) {
                    horizon.consider(sched.next_due());
                }
            }
        }

        horizon.earliest()
    }

    /// Refresh the cached minimum refresh due time after an acknowledge
    /// moved one scheduler's `next_due` forward.
    fn note_refresh_acknowledged(&mut self) {
        self.refresh_due_min = self
            .refresh
            .iter()
            .map(VbaRefreshScheduler::next_due)
            .min()
            .unwrap_or(Cycle::MAX);
    }

    /// Record a future cycle at which a command the scheduler wanted this
    /// tick becomes ready.
    fn hint_event(&mut self, at: Cycle) {
        if at < self.event_hint {
            self.event_hint = at;
        }
    }

    fn collect_completions_into(&mut self, now: Cycle, done: &mut Vec<CompletedRequest>) {
        // The heap is ordered by completion time, so only due transfers are
        // ever touched — no scan over the rest of the in-flight set.
        while self
            .in_flight
            .peek()
            .is_some_and(|Reverse(f)| f.complete_at <= now)
        {
            let Reverse(f) = self.in_flight.pop().expect("peeked entry present");
            let req = f.entry.request;
            let completion = CompletedRequest {
                id: req.id,
                kind: req.kind,
                bytes: req.bytes,
                arrival: req.arrival,
                completed: f.complete_at,
            };
            match req.kind {
                RequestKind::Read => {
                    self.stats.reads_completed += 1;
                    self.stats.bytes_read += req.bytes;
                    self.stats.total_read_latency += completion.latency();
                    self.stats.max_read_latency =
                        self.stats.max_read_latency.max(completion.latency());
                }
                RequestKind::Write => {
                    self.stats.writes_completed += 1;
                    self.stats.bytes_written += req.bytes;
                }
            }
            if self.trace.enabled() {
                let idx = self.vba_index(f.entry.target);
                self.trace.record(TraceEvent {
                    id: req.id.0,
                    bank: idx as u32,
                    row: f.entry.row,
                    bytes: req.bytes,
                    dur: completion.latency(),
                    write: !req.kind.is_read(),
                    ..TraceEvent::at(TraceEventKind::Complete, req.arrival)
                });
            }
            done.push(completion);
        }
    }

    fn try_issue_refresh(&mut self, now: Cycle) -> bool {
        for sid in 0..self.config.organization.stack_ids {
            if !self.refresh[sid as usize].due(now) {
                continue;
            }
            // Identify the VBA next in rotation without consuming it.
            let probe = (self.refresh[sid as usize].issued() % self.vbas_per_rank as u64) as u8;
            let target = VbaAddress::new(0, sid, probe);
            let idx = self.vba_index(target);
            if self.vba_busy_until[idx] > now {
                // Pending refresh: it issues once the VBA frees up.
                self.hint_event(self.vba_busy_until[idx]);
                continue;
            }
            // Refresh rides the same interface but is short to transmit; the
            // Table III spacings only constrain data commands, so it is
            // issued as soon as the VBA is free.
            let vba = self.refresh[sid as usize].acknowledge();
            self.note_refresh_acknowledged();
            debug_assert_eq!(vba, probe as u32);
            let occupancy = self.generator.occupancy_ns(RowCommandKind::RefVba);
            self.vba_busy_until[idx] = now + occupancy;
            self.stats.refreshes_issued += 1;
            if self.trace.commands() {
                self.trace.record(TraceEvent {
                    bank: idx as u32,
                    dur: occupancy,
                    ..TraceEvent::at(TraceEventKind::Refresh, now)
                });
            }
            self.stats
                .derived
                .absorb(&self.expansion[expansion_index(RowCommandKind::RefVba)]);
            return true;
        }
        false
    }

    fn try_issue_data(&mut self, now: Cycle) -> bool {
        // Oldest-first over requests whose VBA is free and whose interface
        // spacing has elapsed — the entirety of the RoMe scheduling policy.
        // Blocked requests feed the event hint with the cycle both their VBA
        // and the interface become ready.
        let mut chosen: Option<usize> = None;
        let mut hint = Cycle::MAX;
        if self.soa {
            // Data-oriented scan: the VBA index and write flag come from the
            // packed hot arrays (the stack ID is recovered from the VBA
            // index, which is stack-ID-major), so skipped entries cost two
            // array reads instead of a payload load.
            for i in 0..self.queue.len() {
                let idx = self.hot_vba[i] as usize;
                let is_write = self.hot_write[i];
                let sid = (idx / self.vbas_per_rank as usize) as u8;
                let ready =
                    self.vba_busy_until[idx].max(self.earliest_interface_issue(is_write, sid));
                if ready > now {
                    hint = hint.min(ready);
                    continue;
                }
                chosen = Some(i);
                break;
            }
        } else {
            for (i, e) in self.queue.iter().enumerate() {
                let is_write = !e.request.kind.is_read();
                let idx = self.vba_index(e.target);
                let ready = self.vba_busy_until[idx]
                    .max(self.earliest_interface_issue(is_write, e.target.stack_id));
                if ready > now {
                    hint = hint.min(ready);
                    continue;
                }
                chosen = Some(i);
                break;
            }
        }
        if hint != Cycle::MAX {
            self.hint_event(hint);
        }
        let Some(i) = chosen else { return false };
        let entry = self.queue.remove(i).expect("index valid");
        self.hot_vba.remove(i);
        self.hot_write.remove(i);
        let is_write = !entry.request.kind.is_read();
        let kind = if is_write {
            RowCommandKind::WrRow
        } else {
            RowCommandKind::RdRow
        };
        let _command = RowCommand {
            kind,
            target: entry.target,
            row: entry.row,
        };

        let idx = self.vba_index(entry.target);
        if self.trace.commands() {
            self.trace.record(TraceEvent {
                id: entry.request.id.0,
                bank: idx as u32,
                row: entry.row,
                bytes: entry.request.bytes,
                write: is_write,
                ..TraceEvent::at(TraceEventKind::Issue, now)
            });
        }
        let same_vba_gap = self.config.rome_timing.same_vba_spacing(is_write);
        self.vba_busy_until[idx] = now + Cycle::from(same_vba_gap);
        self.last_issue = Some(LastIssue {
            at: now,
            was_write: is_write,
            stack_id: entry.target.stack_id,
        });

        let complete_at = now
            + if is_write {
                // Write data is absorbed once the last beat is on the bus.
                self.data_complete_offset - Cycle::from(self.config.timing.t_cl)
                    + Cycle::from(self.config.timing.t_cwl)
            } else {
                self.data_complete_offset
            };
        let seq = self.inflight_seq;
        self.inflight_seq += 1;
        self.in_flight.push(Reverse(InFlight {
            entry,
            complete_at,
            seq,
        }));

        match kind {
            RowCommandKind::RdRow => self.stats.rd_rows_issued += 1,
            RowCommandKind::WrRow => self.stats.wr_rows_issued += 1,
            RowCommandKind::RefVba => {}
        }
        self.stats.bytes_transferred += self.config.row_bytes();
        self.stats
            .derived
            .absorb(&self.expansion[expansion_index(kind)]);
        true
    }
}

impl rome_engine::MemoryController for RomeController {
    type Entry = RomeQueueEntry;

    fn enqueue(&mut self, request: MemoryRequest) -> bool {
        RomeController::enqueue(self, request)
    }

    fn enqueue_entry(&mut self, entry: RomeQueueEntry) -> bool {
        self.enqueue_decoded(entry)
    }

    fn entry_kind(entry: &RomeQueueEntry) -> RequestKind {
        entry.request.kind
    }

    fn tick_into(&mut self, now: Cycle, completed: &mut Vec<CompletedRequest>) -> bool {
        RomeController::tick_into(self, now, completed)
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        RomeController::next_event_at(self, now)
    }

    fn is_idle(&self) -> bool {
        RomeController::is_idle(self)
    }

    fn slots_free(&self) -> usize {
        RomeController::slots_free(self)
    }

    fn stats_snapshot(&self) -> rome_engine::StatsSnapshot {
        let s = self.stats();
        rome_engine::StatsSnapshot {
            bytes_read: s.bytes_read,
            bytes_written: s.bytes_written,
            bytes_transferred: s.bytes_transferred,
            mean_read_latency: s.mean_read_latency(),
            // RoMe has no row buffer at the MC–DRAM interface; every access
            // is a whole-row command.
            row_hit_rate: 0.0,
            activates: s.derived.activates,
        }
    }

    fn set_trace(&mut self, config: TraceConfig) {
        self.trace.arm(config);
    }

    fn take_trace(&mut self) -> TraceBuffer {
        self.trace.harvest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> RomeController {
        RomeController::new(RomeControllerConfig::paper_default())
    }

    fn run_until_idle(ctrl: &mut RomeController, max_ns: Cycle) -> (Vec<CompletedRequest>, Cycle) {
        let mut done = Vec::new();
        let mut now = 0;
        while !ctrl.is_idle() && now < max_ns {
            done.extend(ctrl.tick(now));
            now += 1;
        }
        (done, now)
    }

    #[test]
    fn config_defaults_match_the_paper() {
        let cfg = RomeControllerConfig::paper_default();
        assert_eq!(cfg.row_bytes(), 4096);
        assert_eq!(cfg.queue_capacity, 4);
        assert_eq!(cfg.rome_timing, RomeTimingParams::paper_table_v());
    }

    #[test]
    fn decode_rotates_vbas_then_stack_ids_then_rows() {
        let ctrl = controller();
        let (v0, r0) = ctrl.decode(0);
        let (v1, _) = ctrl.decode(4096);
        assert_eq!(v0, VbaAddress::new(0, 0, 0));
        assert_eq!(r0, 0);
        assert_eq!(v1, VbaAddress::new(0, 0, 1));
        // After all 8 VBAs of SID 0, SID advances.
        let (v8, _) = ctrl.decode(8 * 4096);
        assert_eq!(v8, VbaAddress::new(0, 1, 0));
        // After all VBAs of all SIDs, the row advances.
        let (v32, r32) = ctrl.decode(32 * 4096);
        assert_eq!(v32, VbaAddress::new(0, 0, 0));
        assert_eq!(r32, 1);
    }

    #[test]
    fn single_read_completes_with_row_latency() {
        let mut ctrl = controller();
        assert!(ctrl.enqueue(MemoryRequest::read(1, 0, 4096, 0)));
        let (done, _) = run_until_idle(&mut ctrl, 10_000);
        assert_eq!(done.len(), 1);
        let lat = done[0].latency();
        // tRCD + 64 beats + CAS latency plus a cycle of scheduling.
        assert!((95..=105).contains(&lat), "latency {lat}");
        assert_eq!(ctrl.stats().rd_rows_issued, 1);
        assert_eq!(ctrl.stats().bytes_read, 4096);
        assert_eq!(ctrl.stats().bytes_transferred, 4096);
        assert_eq!(ctrl.stats().derived.activates, 4);
        assert_eq!(ctrl.stats().derived.reads, 128);
    }

    #[test]
    fn small_request_overfetches_a_full_row() {
        let mut ctrl = controller();
        ctrl.enqueue(MemoryRequest::read(1, 0, 512, 0));
        run_until_idle(&mut ctrl, 10_000);
        assert_eq!(ctrl.stats().bytes_read, 512);
        assert_eq!(ctrl.stats().bytes_transferred, 4096);
        assert_eq!(ctrl.stats().overfetch_bytes(), 4096 - 512);
        assert!(ctrl.stats().overfetch_fraction() > 0.8);
    }

    #[test]
    #[should_panic(expected = "at most one effective row")]
    fn oversized_request_panics() {
        let mut ctrl = controller();
        ctrl.enqueue(MemoryRequest::read(1, 0, 8192, 0));
    }

    #[test]
    fn streaming_reads_saturate_the_channel_with_a_tiny_queue() {
        // Two outstanding row requests are enough to hide the ACT/PRE work of
        // the next VBA behind the data transfer of the current one (§V-A).
        let mut ctrl = RomeController::new(RomeControllerConfig::with_queue_depth(2));
        let total_chunks: u64 = 256;
        let mut next = 0u64;
        let mut now = 0;
        let mut completed = 0u64;
        while completed < total_chunks && now < 200_000 {
            while next < total_chunks && ctrl.slots_free() > 0 {
                ctrl.enqueue(MemoryRequest::read(next, next * 4096, 4096, now));
                next += 1;
            }
            completed += ctrl.tick(now).len() as u64;
            now += 1;
        }
        assert_eq!(completed, total_chunks);
        let bw = (total_chunks * 4096) as f64 / now as f64;
        // Peak is 64 GB/s; with a queue of two we should exceed 85 % of it.
        assert!(bw > 55.0, "achieved {bw:.1} GB/s at t={now}");
    }

    #[test]
    fn write_stream_completes_and_counts_wr_rows() {
        let mut ctrl = controller();
        let mut submitted = 0u64;
        let mut now = 0;
        let mut done = 0;
        while done < 16 && now < 50_000 {
            while submitted < 16 && ctrl.slots_free() > 0 {
                ctrl.enqueue(MemoryRequest::write(submitted, submitted * 4096, 4096, now));
                submitted += 1;
            }
            done += ctrl.tick(now).len();
            now += 1;
        }
        assert_eq!(done, 16);
        assert_eq!(ctrl.stats().wr_rows_issued, 16);
        assert_eq!(ctrl.stats().bytes_written, 16 * 4096);
        assert_eq!(ctrl.stats().derived.writes, 16 * 128);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let mut ctrl = RomeController::new(RomeControllerConfig::with_queue_depth(2));
        assert!(ctrl.enqueue(MemoryRequest::read(0, 0, 4096, 0)));
        assert!(ctrl.enqueue(MemoryRequest::read(1, 4096, 4096, 0)));
        assert!(!ctrl.enqueue(MemoryRequest::read(2, 8192, 4096, 0)));
        assert_eq!(ctrl.slots_free(), 0);
    }

    #[test]
    fn refreshes_are_issued_when_idle() {
        let mut ctrl = controller();
        for now in 0..10_000 {
            ctrl.tick(now);
        }
        assert!(ctrl.stats().refreshes_issued > 0);
        assert!(ctrl.stats().derived.refreshes >= 2 * ctrl.stats().refreshes_issued);
    }

    #[test]
    fn back_to_back_same_vba_requests_respect_t_rd_row() {
        let mut ctrl = controller();
        // Two chunks that decode to the same VBA (one full rotation apart).
        ctrl.enqueue(MemoryRequest::read(0, 0, 4096, 0));
        ctrl.enqueue(MemoryRequest::read(1, 32 * 4096, 4096, 0));
        let (done, _) = run_until_idle(&mut ctrl, 10_000);
        assert_eq!(done.len(), 2);
        let issue_gap = done[1].completed as i64 - done[0].completed as i64;
        assert!(
            issue_gap >= RomeTimingParams::paper_table_v().t_rd_row as i64,
            "same-VBA requests completed only {issue_gap} ns apart"
        );
    }

    #[test]
    fn different_vba_requests_stream_at_t_r2rs() {
        let mut ctrl = controller();
        ctrl.enqueue(MemoryRequest::read(0, 0, 4096, 0));
        ctrl.enqueue(MemoryRequest::read(1, 4096, 4096, 0));
        let (done, _) = run_until_idle(&mut ctrl, 10_000);
        assert_eq!(done.len(), 2);
        let gap = done[1].completed - done[0].completed;
        assert!((64..=70).contains(&gap), "completion gap {gap}");
    }

    #[test]
    fn vba_design_space_configs_all_work() {
        for vba in VbaConfig::design_space() {
            let cfg = RomeControllerConfig::with_vba(vba);
            let row = cfg.row_bytes();
            let mut ctrl = RomeController::new(cfg);
            let mut submitted = 0u64;
            let mut done = 0usize;
            let mut now = 0;
            while done < 8 && now < 50_000 {
                while submitted < 8 && ctrl.slots_free() > 0 {
                    ctrl.enqueue(MemoryRequest::read(submitted, submitted * row, row, now));
                    submitted += 1;
                }
                done += ctrl.tick(now).len();
                now += 1;
            }
            assert_eq!(done, 8, "config {vba} failed to complete");
            assert_eq!(ctrl.stats().bytes_read, 8 * row);
        }
    }
}
