//! Simulation drivers for a single RoMe channel controller.
//!
//! Mirrors `rome_mc::simulate` for the RoMe side: feed a request stream into
//! a [`RomeController`] as fast as its (tiny) queue accepts, advance time,
//! and summarize the outcome. Used by the queue-depth and VBA design-space
//! experiments and by the calibration kernels of `rome-sim`.
//!
//! # Event-driven time skipping
//!
//! Like the conventional driver, [`run_with_limit`] is event-driven: after a
//! tick that issued nothing (and with no new arrival possible) it jumps to
//! [`RomeController::next_event_at`] instead of stepping one nanosecond at a
//! time. RoMe benefits even more than the conventional system: a row command
//! occupies the interface for ~64 ns, so the cycle-stepped loop spends the
//! overwhelming majority of its iterations doing nothing. The original loop
//! is kept as [`run_with_limit_stepped`] as the equivalence baseline;
//! `tests/event_driven_equivalence.rs` pins bit-identical reports.

use serde::{Deserialize, Serialize};

use rome_hbm::units::{bytes_per_ns_to_gbps, Cycle};
use rome_mc::request::{MemoryRequest, RequestKind};

use crate::controller::RomeController;

/// Summary of one RoMe single-channel run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RomeSimulationReport {
    /// Total requests completed.
    pub requests_completed: u64,
    /// Useful bytes read.
    pub bytes_read: u64,
    /// Useful bytes written.
    pub bytes_written: u64,
    /// Bytes moved over the interface (≥ useful bytes; difference is
    /// overfetch).
    pub bytes_transferred: u64,
    /// Cycle of the last completion.
    pub finish_time: Cycle,
    /// Achieved useful bandwidth in decimal GB/s (1 byte/ns = 1 GB/s), via
    /// [`rome_hbm::units::bytes_per_ns_to_gbps`] — the same definition
    /// `rome_mc::simulate::SimulationReport` uses.
    pub achieved_bandwidth_gbps: f64,
    /// Mean read latency in ns.
    pub mean_read_latency: f64,
    /// Activations per KiB of useful data.
    pub activates_per_kib: f64,
}

/// Drive `controller` with `requests` until everything completes (or an
/// internal safety limit is hit).
pub fn run_to_completion(
    controller: &mut RomeController,
    requests: Vec<MemoryRequest>,
) -> RomeSimulationReport {
    run_with_limit(controller, requests, 50_000_000)
}

/// Like [`run_to_completion`] but with an explicit time limit. Event-driven:
/// skips directly between cycles where state can change.
pub fn run_with_limit(
    controller: &mut RomeController,
    requests: Vec<MemoryRequest>,
    max_ns: Cycle,
) -> RomeSimulationReport {
    drive(controller, requests, max_ns, false)
}

/// The original cycle-by-cycle driver: identical behaviour to
/// [`run_with_limit`], advancing one nanosecond per iteration. Kept as the
/// equivalence baseline and for wall-clock comparison benches.
pub fn run_with_limit_stepped(
    controller: &mut RomeController,
    requests: Vec<MemoryRequest>,
    max_ns: Cycle,
) -> RomeSimulationReport {
    drive(controller, requests, max_ns, true)
}

fn drive(
    controller: &mut RomeController,
    requests: Vec<MemoryRequest>,
    max_ns: Cycle,
    stepped: bool,
) -> RomeSimulationReport {
    let total = requests.len() as u64;
    let mut pending = requests.into_iter().peekable();
    let mut now: Cycle = 0;
    let mut completed = 0u64;
    let mut bytes_read = 0u64;
    let mut bytes_written = 0u64;
    let mut finish_time = 0;
    let mut completions = Vec::new();

    while (completed < total || !controller.is_idle()) && now < max_ns {
        while pending.peek().is_some() && controller.slots_free() > 0 {
            let mut req = pending.next().expect("peeked");
            req.arrival = now;
            let ok = controller.enqueue(req);
            debug_assert!(ok);
        }
        let issued = controller.tick_into(now, &mut completions);
        for done in completions.drain(..) {
            completed += 1;
            finish_time = finish_time.max(done.completed);
            match done.kind {
                RequestKind::Read => bytes_read += done.bytes,
                RequestKind::Write => bytes_written += done.bytes,
            }
        }
        let arrival_next = pending.peek().is_some() && controller.slots_free() > 0;
        now = if stepped || issued || arrival_next {
            now + 1
        } else {
            controller
                .next_event_at(now)
                .map_or(now + 1, |t| t.max(now + 1))
        };
    }

    let stats = controller.stats();
    let elapsed = finish_time.max(1);
    RomeSimulationReport {
        requests_completed: completed,
        bytes_read,
        bytes_written,
        bytes_transferred: stats.bytes_transferred,
        finish_time,
        achieved_bandwidth_gbps: bytes_per_ns_to_gbps(bytes_read + bytes_written, elapsed),
        mean_read_latency: stats.mean_read_latency(),
        activates_per_kib: if bytes_read + bytes_written == 0 {
            0.0
        } else {
            stats.derived.activates as f64 / ((bytes_read + bytes_written) as f64 / 1024.0)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::RomeControllerConfig;
    use rome_mc::workload;

    #[test]
    fn streaming_rome_reads_reach_near_peak_bandwidth() {
        let mut ctrl = RomeController::new(RomeControllerConfig::paper_default());
        let reqs = workload::streaming_reads(0, 1024 * 1024, 4096);
        let report = run_to_completion(&mut ctrl, reqs);
        assert_eq!(report.requests_completed, 256);
        assert_eq!(report.bytes_read, 1024 * 1024);
        assert!(
            report.achieved_bandwidth_gbps > 55.0,
            "{}",
            report.achieved_bandwidth_gbps
        );
        // RoMe uses the minimum number of ACTs: 4 per 4 KiB = 1 per KiB.
        assert!((report.activates_per_kib - 1.0).abs() < 0.05);
    }

    #[test]
    fn rome_needs_far_fewer_activates_per_kib_than_expected_from_conventional() {
        let mut ctrl = RomeController::new(RomeControllerConfig::paper_default());
        let reqs = workload::streaming_reads(0, 256 * 1024, 4096);
        let report = run_to_completion(&mut ctrl, reqs);
        // The conventional system activates a 1 KB row per KiB streamed in
        // the best case too, but pays extra ACTs on conflicts; RoMe is pinned
        // at exactly 4 ACTs per 4 KiB row command.
        assert!(report.activates_per_kib <= 1.0 + 1e-9);
    }

    #[test]
    fn time_limit_is_respected() {
        let mut ctrl = RomeController::new(RomeControllerConfig::paper_default());
        let reqs = workload::streaming_reads(0, 16 * 1024 * 1024, 4096);
        let report = run_with_limit(&mut ctrl, reqs, 1000);
        assert!(report.requests_completed < 4096);
        assert!(report.finish_time <= 1000 + 200);
    }

    #[test]
    fn write_streams_report_written_bytes() {
        let mut ctrl = RomeController::new(RomeControllerConfig::paper_default());
        let reqs = workload::streaming_writes(0, 64 * 1024, 4096);
        let report = run_to_completion(&mut ctrl, reqs);
        assert_eq!(report.bytes_written, 64 * 1024);
        assert_eq!(report.bytes_read, 0);
        assert!(report.achieved_bandwidth_gbps > 40.0);
    }

    #[test]
    fn bandwidth_matches_the_shared_unit_definition() {
        let mut ctrl = RomeController::new(RomeControllerConfig::paper_default());
        let report = run_to_completion(&mut ctrl, workload::streaming_reads(0, 64 * 1024, 4096));
        let expected =
            (report.bytes_read + report.bytes_written) as f64 / report.finish_time.max(1) as f64;
        assert_eq!(report.achieved_bandwidth_gbps, expected);
    }

    #[test]
    fn event_driven_matches_stepped_on_a_small_stream() {
        let reqs = workload::streaming_reads(0, 128 * 1024, 4096);
        let mut a = RomeController::new(RomeControllerConfig::paper_default());
        let mut b = RomeController::new(RomeControllerConfig::paper_default());
        let fast = run_with_limit(&mut a, reqs.clone(), 1_000_000);
        let slow = run_with_limit_stepped(&mut b, reqs, 1_000_000);
        assert_eq!(fast, slow);
    }
}
