//! Simulation drivers for a single RoMe channel controller.
//!
//! Since the engine extraction these are the *generic* event-driven drivers
//! of [`rome_engine::simulate`], re-exported here for backwards
//! compatibility: [`RomeController`](crate::controller::RomeController)
//! implements [`rome_engine::MemoryController`], so
//! `rome_core::simulate::run_with_limit(&mut ctrl, …)` is the same generic
//! loop that drives the conventional controller in `rome_mc::simulate` —
//! both memory systems now report through one unified [`SimulationReport`]
//! (`row_hit_rate` is 0 for RoMe, which has no row buffer at the interface;
//! `bytes_transferred − bytes_read − bytes_written` is the overfetch).
//!
//! RoMe benefits from event-driven time skipping even more than the
//! conventional system: a row command occupies the interface for ~64 ns, so
//! a cycle-stepped loop spends the overwhelming majority of its iterations
//! doing nothing. The stepped loop is kept as [`run_with_limit_stepped`] as
//! the equivalence baseline; `tests/event_driven_equivalence.rs` pins
//! bit-identical reports.

pub use rome_engine::simulate::{
    run_to_completion, run_with_budget, run_with_limit, run_with_limit_stepped, run_with_source,
    run_with_source_budgeted, SimulationReport,
};

/// Compatibility alias: the RoMe-specific report type was unified into the
/// engine-wide [`SimulationReport`].
pub type RomeSimulationReport = SimulationReport;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{RomeController, RomeControllerConfig};
    use rome_mc::workload;

    #[test]
    fn streaming_rome_reads_reach_near_peak_bandwidth() {
        let mut ctrl = RomeController::new(RomeControllerConfig::paper_default());
        let reqs = workload::streaming_reads(0, 1024 * 1024, 4096);
        let report = run_to_completion(&mut ctrl, reqs);
        assert_eq!(report.requests_completed, 256);
        assert_eq!(report.bytes_read, 1024 * 1024);
        assert!(
            report.achieved_bandwidth_gbps > 55.0,
            "{}",
            report.achieved_bandwidth_gbps
        );
        // RoMe uses the minimum number of ACTs: 4 per 4 KiB = 1 per KiB.
        assert!((report.activates_per_kib - 1.0).abs() < 0.05);
    }

    #[test]
    fn rome_needs_far_fewer_activates_per_kib_than_expected_from_conventional() {
        let mut ctrl = RomeController::new(RomeControllerConfig::paper_default());
        let reqs = workload::streaming_reads(0, 256 * 1024, 4096);
        let report = run_to_completion(&mut ctrl, reqs);
        // The conventional system activates a 1 KB row per KiB streamed in
        // the best case too, but pays extra ACTs on conflicts; RoMe is pinned
        // at exactly 4 ACTs per 4 KiB row command.
        assert!(report.activates_per_kib <= 1.0 + 1e-9);
    }

    #[test]
    fn time_limit_is_respected() {
        let mut ctrl = RomeController::new(RomeControllerConfig::paper_default());
        let reqs = workload::streaming_reads(0, 16 * 1024 * 1024, 4096);
        let report = run_with_limit(&mut ctrl, reqs, 1000);
        assert!(report.requests_completed < 4096);
        assert!(report.finish_time <= 1000 + 200);
    }

    #[test]
    fn write_streams_report_written_bytes() {
        let mut ctrl = RomeController::new(RomeControllerConfig::paper_default());
        let reqs = workload::streaming_writes(0, 64 * 1024, 4096);
        let report = run_to_completion(&mut ctrl, reqs);
        assert_eq!(report.bytes_written, 64 * 1024);
        assert_eq!(report.bytes_read, 0);
        assert!(report.achieved_bandwidth_gbps > 40.0);
    }

    #[test]
    fn bandwidth_matches_the_shared_unit_definition() {
        let mut ctrl = RomeController::new(RomeControllerConfig::paper_default());
        let report = run_to_completion(&mut ctrl, workload::streaming_reads(0, 64 * 1024, 4096));
        let expected =
            (report.bytes_read + report.bytes_written) as f64 / report.finish_time.max(1) as f64;
        assert_eq!(report.achieved_bandwidth_gbps, expected);
    }

    #[test]
    fn rome_reports_no_row_hit_rate_and_full_row_transfers() {
        let mut ctrl = RomeController::new(RomeControllerConfig::paper_default());
        let report = run_to_completion(&mut ctrl, workload::streaming_reads(0, 16 * 4096, 4096));
        assert_eq!(report.row_hit_rate, 0.0);
        // Row-granularity requests overfetch nothing on this stream.
        assert_eq!(report.bytes_transferred, 16 * 4096);
    }

    #[test]
    fn event_driven_matches_stepped_on_a_small_stream() {
        let reqs = workload::streaming_reads(0, 128 * 1024, 4096);
        let mut a = RomeController::new(RomeControllerConfig::paper_default());
        let mut b = RomeController::new(RomeControllerConfig::paper_default());
        let fast = run_with_limit(&mut a, reqs.clone(), 1_000_000);
        let slow = run_with_limit_stepped(&mut b, reqs, 1_000_000);
        assert_eq!(fast, slow);
    }
}
