//! Channel expansion plan (§IV-E).
//!
//! The 13 C/A pins RoMe frees per channel add up across a 32-channel cube;
//! re-budgeting them funds four additional channels (one more channel per
//! DRAM die, 8 → 9) at a cost of only a dozen extra pins, raising the cube's
//! bandwidth by 12.5 %.

use serde::{Deserialize, Serialize};

use rome_hbm::organization::Organization;

use crate::pins::CaPinModel;

/// The pin and bandwidth budget of a RoMe cube relative to HBM4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelPlan {
    /// Channels per cube in the conventional baseline.
    pub baseline_channels: u32,
    /// Channels per cube under RoMe.
    pub rome_channels: u32,
    /// Total interface pins per conventional channel (DQ + C/A + the rest of
    /// the 120-pin budget cited in §IV-E).
    pub pins_per_baseline_channel: u32,
    /// Total interface pins per RoMe channel.
    pub pins_per_rome_channel: u32,
    /// DRAM-die channel count in the baseline (channels per die).
    pub baseline_channels_per_die: u32,
    /// DRAM-die channel count under RoMe.
    pub rome_channels_per_die: u32,
}

impl ChannelPlan {
    /// Build the paper's plan from the pin model: 32 → 36 channels,
    /// 120 → 107 pins per channel, 8 → 9 channels per die.
    pub fn paper_default() -> Self {
        let pins = CaPinModel::rome_default();
        let saved = pins.pins_saved_per_channel();
        ChannelPlan {
            baseline_channels: 32,
            rome_channels: 36,
            pins_per_baseline_channel: 120,
            pins_per_rome_channel: 120 - saved,
            baseline_channels_per_die: 8,
            rome_channels_per_die: 9,
        }
    }

    /// Extra channels added per cube.
    pub fn extra_channels(&self) -> u32 {
        self.rome_channels - self.baseline_channels
    }

    /// Total interface pins of the baseline cube.
    pub fn baseline_total_pins(&self) -> u32 {
        self.baseline_channels * self.pins_per_baseline_channel
    }

    /// Total interface pins of the RoMe cube.
    pub fn rome_total_pins(&self) -> u32 {
        self.rome_channels * self.pins_per_rome_channel
    }

    /// Net extra pins RoMe needs at the processor interface.
    pub fn extra_pins(&self) -> i64 {
        self.rome_total_pins() as i64 - self.baseline_total_pins() as i64
    }

    /// Pins freed across the cube before adding channels.
    pub fn pins_freed_before_expansion(&self) -> u32 {
        self.baseline_channels * (self.pins_per_baseline_channel - self.pins_per_rome_channel)
    }

    /// Bandwidth gain of the RoMe cube relative to the baseline, as a
    /// fraction (0.125 = +12.5 %).
    pub fn bandwidth_gain(&self) -> f64 {
        self.rome_channels as f64 / self.baseline_channels as f64 - 1.0
    }

    /// Peak bandwidth of the RoMe cube in GB/s, given the per-channel
    /// bandwidth of `org`.
    pub fn rome_cube_bandwidth_gbps(&self, org: &Organization) -> f64 {
        org.channel_bandwidth_gbps() * self.rome_channels as f64
    }

    /// Peak bandwidth of the baseline cube in GB/s.
    pub fn baseline_cube_bandwidth_gbps(&self, org: &Organization) -> f64 {
        org.channel_bandwidth_gbps() * self.baseline_channels as f64
    }
}

impl Default for ChannelPlan {
    fn default() -> Self {
        ChannelPlan::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_matches_section_4e() {
        let p = ChannelPlan::paper_default();
        assert_eq!(p.extra_channels(), 4);
        assert_eq!(p.pins_per_rome_channel, 107);
        // 13 pins × 32 channels = 416 pins freed before expansion.
        assert_eq!(p.pins_freed_before_expansion(), 416);
        // Four new channels cost only a handful of extra pins (the paper
        // reports 12).
        assert_eq!(p.extra_pins(), 36 * 107 - 32 * 120);
        assert!(p.extra_pins() <= 16, "extra pins {}", p.extra_pins());
        assert!(p.extra_pins() > 0);
        assert_eq!(p.rome_channels_per_die, p.baseline_channels_per_die + 1);
    }

    #[test]
    fn bandwidth_gain_is_12_5_percent() {
        let p = ChannelPlan::paper_default();
        assert!((p.bandwidth_gain() - 0.125).abs() < 1e-9);
        let org = Organization::hbm4();
        assert_eq!(p.baseline_cube_bandwidth_gbps(&org), 2048.0);
        assert_eq!(p.rome_cube_bandwidth_gbps(&org), 2304.0);
    }

    #[test]
    fn default_is_paper_plan() {
        assert_eq!(ChannelPlan::default(), ChannelPlan::paper_default());
    }
}
