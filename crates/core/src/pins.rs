//! Command/address pin accounting (§IV-D, Fig. 10).
//!
//! A conventional HBM4 channel carries 10 row C/A pins and 8 column C/A pins.
//! Under RoMe the column pins disappear entirely (no RD/WR commands cross the
//! interface), MRS moves onto the row pins, and the address width shrinks
//! because pseudo-channel bits and one bank bit are no longer needed. The
//! remaining question is how few pins can serialize a command quickly enough:
//! the tightest case is a REF immediately following a `RD_row`/`WR_row`,
//! which must complete within `2 × tRRDS`. The model below reproduces
//! Figure 10 and the resulting five-pin design point.

use serde::{Deserialize, Serialize};

use rome_hbm::specs::HbmGeneration;
use rome_hbm::timing::TimingParams;

/// Width of the fields in a RoMe row-level command word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandEncoding {
    /// Opcode bits (the paper keeps all four HBM4 opcode pins' worth).
    pub opcode_bits: u32,
    /// Stack-ID bits.
    pub stack_id_bits: u32,
    /// Virtual-bank bits.
    pub vba_bits: u32,
    /// Row-address bits.
    pub row_bits: u32,
}

impl CommandEncoding {
    /// The encoding for the default RoMe configuration: 11 commands need a
    /// 4-bit opcode; 4 stack IDs → 2 bits; 8 VBAs per rank → 3 bits;
    /// 8192 rows → 13 bits.
    pub fn rome_default() -> Self {
        CommandEncoding {
            opcode_bits: 4,
            stack_id_bits: 2,
            vba_bits: 3,
            row_bits: 13,
        }
    }

    /// Total bits in one command word.
    pub fn total_bits(&self) -> u32 {
        self.opcode_bits + self.stack_id_bits + self.vba_bits + self.row_bits
    }
}

/// The C/A-pin model for a RoMe channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaPinModel {
    /// Command-word encoding.
    pub encoding: CommandEncoding,
    /// C/A pin toggle rate in transfers per nanosecond (HBM4 C/A runs at
    /// 4 GT/s → 4 transfers per ns).
    pub ca_transfers_per_ns: u32,
    /// Conventional timing (for the `2 × tRRDS` issue-latency bound).
    pub timing: TimingParams,
}

impl CaPinModel {
    /// The model for the paper's configuration: the C/A pins toggle at
    /// double data rate off a 1 GHz command clock (2 transfers per ns), and
    /// every command word occupies an integer number of command-clock cycles.
    pub fn rome_default() -> Self {
        CaPinModel {
            encoding: CommandEncoding::rome_default(),
            ca_transfers_per_ns: 2,
            timing: TimingParams::hbm4(),
        }
    }

    fn serialize_ns(&self, bits: u32, pins: u32) -> f64 {
        assert!(pins > 0, "at least one C/A pin is required");
        let per_ns = pins * self.ca_transfers_per_ns;
        bits.div_ceil(per_ns) as f64
    }

    /// Nanoseconds needed to serialize one `RD_row`/`WR_row` command word
    /// over `pins` pins.
    ///
    /// # Panics
    ///
    /// Panics if `pins` is zero.
    pub fn issue_latency_ns(&self, pins: u32) -> f64 {
        self.serialize_ns(self.encoding.total_bits(), pins)
    }

    /// Latency to issue a `RD_row`/`WR_row` immediately followed by a REF —
    /// the tightest command-bus sequence (Fig. 10) — over `pins` pins.
    pub fn access_then_refresh_latency_ns(&self, pins: u32) -> f64 {
        // The refresh word omits the row address.
        let refresh_bits =
            self.encoding.opcode_bits + self.encoding.stack_id_bits + self.encoding.vba_bits;
        self.serialize_ns(self.encoding.total_bits(), pins) + self.serialize_ns(refresh_bits, pins)
    }

    /// The issue-latency budget: two ACT-to-ACT windows (`2 × tRRDS`),
    /// per §IV-D.
    pub fn latency_budget_ns(&self) -> f64 {
        2.0 * self.timing.t_rrd_s as f64
    }

    /// Whether `pins` pins satisfy the budget.
    pub fn pins_sufficient(&self, pins: u32) -> bool {
        self.access_then_refresh_latency_ns(pins) <= self.latency_budget_ns()
    }

    /// The minimum number of C/A pins that satisfies the budget.
    pub fn min_pins(&self) -> u32 {
        (1..=18).find(|&p| self.pins_sufficient(p)).unwrap_or(18)
    }

    /// One row of the Figure 10 sweep: (pins, access→access latency,
    /// access→refresh latency, budget).
    pub fn figure10_sweep(&self, pins_range: std::ops::RangeInclusive<u32>) -> Vec<Figure10Row> {
        pins_range
            .map(|pins| Figure10Row {
                pins,
                access_latency_ns: self.issue_latency_ns(pins),
                access_then_refresh_latency_ns: self.access_then_refresh_latency_ns(pins),
                budget_ns: self.latency_budget_ns(),
            })
            .collect()
    }

    /// C/A pins of a conventional HBM4 channel.
    pub fn conventional_ca_pins() -> u32 {
        let spec = HbmGeneration::Hbm4.spec();
        spec.ca_pins_per_channel()
    }

    /// C/A pins RoMe needs per channel (the five-pin design point of §IV-D).
    pub fn rome_ca_pins(&self) -> u32 {
        self.min_pins()
    }

    /// C/A pins saved per channel relative to conventional HBM4.
    pub fn pins_saved_per_channel(&self) -> u32 {
        Self::conventional_ca_pins() - self.rome_ca_pins()
    }
}

/// One row of the Figure 10 data series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure10Row {
    /// Number of C/A pins.
    pub pins: u32,
    /// Latency to issue one `RD_row`/`WR_row` command word, in ns.
    pub access_latency_ns: f64,
    /// Latency to issue a `RD_row`/`WR_row` followed by a REF, in ns.
    pub access_then_refresh_latency_ns: f64,
    /// The `2 × tRRDS` budget, in ns.
    pub budget_ns: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_fits_22_bits() {
        let e = CommandEncoding::rome_default();
        assert_eq!(e.total_bits(), 22);
    }

    #[test]
    fn five_pins_meet_the_two_trrds_budget() {
        let m = CaPinModel::rome_default();
        assert_eq!(m.latency_budget_ns(), 4.0);
        assert!(m.pins_sufficient(5));
        assert!(!m.pins_sufficient(2));
        assert_eq!(m.min_pins(), 5);
        assert_eq!(m.rome_ca_pins(), 5);
    }

    #[test]
    fn conventional_hbm4_channel_has_18_ca_pins() {
        assert_eq!(CaPinModel::conventional_ca_pins(), 18);
        let m = CaPinModel::rome_default();
        assert_eq!(m.pins_saved_per_channel(), 13);
        // 13 of 18 pins removed is the paper's 72 % reduction.
        let reduction =
            m.pins_saved_per_channel() as f64 / CaPinModel::conventional_ca_pins() as f64;
        assert!((reduction - 0.72).abs() < 0.01);
    }

    #[test]
    fn latency_decreases_monotonically_with_pins() {
        let m = CaPinModel::rome_default();
        let rows = m.figure10_sweep(5..=10);
        assert_eq!(rows.len(), 6);
        for pair in rows.windows(2) {
            assert!(
                pair[1].access_then_refresh_latency_ns <= pair[0].access_then_refresh_latency_ns
            );
        }
        // Every point from 5 to 10 pins stays under the budget (Fig. 10).
        assert!(rows
            .iter()
            .all(|r| r.access_then_refresh_latency_ns <= r.budget_ns));
        // Access-only latency is below the combined latency everywhere.
        assert!(rows
            .iter()
            .all(|r| r.access_latency_ns < r.access_then_refresh_latency_ns));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_pins_panics() {
        CaPinModel::rome_default().issue_latency_ns(0);
    }
}
