//! The RoMe row-level command interface.
//!
//! RoMe exposes exactly three commands to the memory controller: `RD_row`,
//! `WR_row`, and refresh. The address carried by a row command names a
//! channel, a stack ID, a **virtual bank** (VBA), and a row — there are no
//! column, bank-group, or pseudo-channel fields, because a row command always
//! moves an entire effective row (4 KB in the default configuration) and the
//! VBA spans both pseudo channels and two bank groups internally.

use serde::{Deserialize, Serialize};

/// The address of one virtual bank within the memory system.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VbaAddress {
    /// Channel index within the memory system.
    pub channel: u16,
    /// Stack ID (rank) within the channel.
    pub stack_id: u8,
    /// Virtual-bank index within the (channel, stack ID).
    pub vba: u8,
}

impl VbaAddress {
    /// Create a VBA address.
    pub const fn new(channel: u16, stack_id: u8, vba: u8) -> Self {
        VbaAddress {
            channel,
            stack_id,
            vba,
        }
    }
}

impl std::fmt::Display for VbaAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CH{}/SID{}/VBA{}", self.channel, self.stack_id, self.vba)
    }
}

/// The kind of a RoMe interface command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowCommandKind {
    /// Read one entire effective row.
    RdRow,
    /// Write one entire effective row.
    WrRow,
    /// Refresh the virtual bank (expanded into paired per-bank refreshes by
    /// the command generator, §V-B).
    RefVba,
}

impl RowCommandKind {
    /// Whether the command transfers data.
    pub fn transfers_data(self) -> bool {
        !matches!(self, RowCommandKind::RefVba)
    }

    /// The number of distinct commands the RoMe MC can issue (Table IV
    /// discussion: `RD_row`, `WR_row`, REF).
    pub const COUNT: usize = 3;
}

impl std::fmt::Display for RowCommandKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RowCommandKind::RdRow => "RD_row",
            RowCommandKind::WrRow => "WR_row",
            RowCommandKind::RefVba => "REF_vba",
        };
        f.write_str(s)
    }
}

/// A RoMe row-level command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RowCommand {
    /// What the command does.
    pub kind: RowCommandKind,
    /// The virtual bank it targets.
    pub target: VbaAddress,
    /// The row within the virtual bank (ignored for refresh).
    pub row: u32,
}

impl RowCommand {
    /// A `RD_row` command.
    pub const fn rd_row(target: VbaAddress, row: u32) -> Self {
        RowCommand {
            kind: RowCommandKind::RdRow,
            target,
            row,
        }
    }

    /// A `WR_row` command.
    pub const fn wr_row(target: VbaAddress, row: u32) -> Self {
        RowCommand {
            kind: RowCommandKind::WrRow,
            target,
            row,
        }
    }

    /// A VBA refresh command.
    pub const fn ref_vba(target: VbaAddress) -> Self {
        RowCommand {
            kind: RowCommandKind::RefVba,
            target,
            row: 0,
        }
    }
}

impl std::fmt::Display for RowCommand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} row {}", self.kind, self.target, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        let t = VbaAddress::new(3, 1, 7);
        assert_eq!(t.to_string(), "CH3/SID1/VBA7");
        let rd = RowCommand::rd_row(t, 42);
        assert_eq!(rd.kind, RowCommandKind::RdRow);
        assert_eq!(rd.to_string(), "RD_row CH3/SID1/VBA7 row 42");
        let wr = RowCommand::wr_row(t, 1);
        assert_eq!(wr.kind, RowCommandKind::WrRow);
        let rf = RowCommand::ref_vba(t);
        assert_eq!(rf.kind, RowCommandKind::RefVba);
        assert_eq!(rf.row, 0);
    }

    #[test]
    fn data_transfer_classification() {
        assert!(RowCommandKind::RdRow.transfers_data());
        assert!(RowCommandKind::WrRow.transfers_data());
        assert!(!RowCommandKind::RefVba.transfers_data());
        assert_eq!(RowCommandKind::COUNT, 3);
    }

    #[test]
    fn vba_address_ordering_is_lexicographic() {
        let a = VbaAddress::new(0, 0, 1);
        let b = VbaAddress::new(0, 1, 0);
        let c = VbaAddress::new(1, 0, 0);
        assert!(a < b && b < c);
    }
}
