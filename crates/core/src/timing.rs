//! RoMe interface timing (the paper's Table III and the RoMe column of
//! Table V).
//!
//! The RoMe MC tracks only ten timing parameters: the four
//! read/write-to-read/write spacings for a *different* VBA (same or different
//! stack ID) and the two same-VBA command-to-command delays. All of them are
//! consequences of the fixed command sequence the command generator emits, so
//! this module can also *derive* them from the conventional HBM4 timing and a
//! VBA configuration and check the derivation against the paper's values.

use serde::{Deserialize, Serialize};

use rome_hbm::organization::Organization;
use rome_hbm::timing::TimingParams;

use crate::vba::VbaConfig;

/// The RoMe MC timing parameters, in nanoseconds (Table III / Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RomeTimingParams {
    /// `RD_row` → `RD_row`, different VBA, same stack ID.
    pub t_r2r_s: u32,
    /// `RD_row` → `RD_row`, different stack ID.
    pub t_r2r_r: u32,
    /// `RD_row` → `WR_row`, different VBA, same stack ID.
    pub t_r2w_s: u32,
    /// `RD_row` → `WR_row`, different stack ID.
    pub t_r2w_r: u32,
    /// `WR_row` → `RD_row`, different VBA, same stack ID.
    pub t_w2r_s: u32,
    /// `WR_row` → `RD_row`, different stack ID.
    pub t_w2r_r: u32,
    /// `WR_row` → `WR_row`, different VBA, same stack ID.
    pub t_w2w_s: u32,
    /// `WR_row` → `WR_row`, different stack ID.
    pub t_w2w_r: u32,
    /// Same-VBA `RD_row` turnaround (command to next command on that VBA).
    pub t_rd_row: u32,
    /// Same-VBA `WR_row` turnaround.
    pub t_wr_row: u32,
}

impl RomeTimingParams {
    /// The values the paper reports in Table V for the default configuration
    /// (4 KB effective rows, Fig. 7(d) + Fig. 8(b)).
    pub fn paper_table_v() -> Self {
        RomeTimingParams {
            t_r2r_s: 64,
            t_r2r_r: 68,
            t_r2w_s: 69,
            t_r2w_r: 73,
            t_w2r_s: 71,
            t_w2r_r: 75,
            t_w2w_s: 64,
            t_w2w_r: 68,
            t_rd_row: 95,
            t_wr_row: 115,
        }
    }

    /// Number of timing parameters the RoMe MC manages (Table IV: 10).
    pub const fn parameter_count() -> usize {
        10
    }

    /// Derive the RoMe timing from the conventional HBM4 parameters and a
    /// VBA configuration, following the command-generator schedule of Fig. 9.
    ///
    /// * A row command moves `effective_row_bytes` over the channel at one
    ///   burst (`access granularity × PCs active`) per `tCCDS`, so the
    ///   data-limited spacing between row commands to *different* VBAs is the
    ///   number of column commands per row command (`t_r2r_s`).
    /// * Switching the bus direction adds `tRTW` (read→write) or the
    ///   write-to-read turnaround (write→read).
    /// * Crossing stack IDs adds the cross-rank column spacing penalty for
    ///   every beat of one burst group (≈ 2·tCCDR).
    /// * Re-accessing the *same* VBA must additionally cover the activate and
    ///   precharge work that the different-VBA case hides behind the data
    ///   transfer of other VBAs.
    pub fn derive(conventional: &TimingParams, org: &Organization, vba: &VbaConfig) -> Self {
        let bytes_per_column = Self::bytes_per_beat(org, vba);
        let columns = (vba.effective_row_bytes(org) / bytes_per_column) as u32;
        let data = columns * conventional.t_ccd_s;

        let cross_sid_penalty = 2 * conventional.t_ccd_r;
        let r2w_extra = conventional.t_rtw - conventional.t_ccd_s * 2;
        let w2r_extra = conventional.t_wtr_s + conventional.t_ccd_s * 3;

        let t_rd_row = conventional.t_rcd_rd + data + conventional.t_rp - conventional.t_ccd_s;
        let t_wr_row = conventional.t_rcd_wr + data + conventional.t_wr + conventional.t_rp
            - conventional.t_ccd_s * 2
            + conventional.t_ccd_l * 3;

        RomeTimingParams {
            t_r2r_s: data,
            t_r2r_r: data + cross_sid_penalty,
            t_r2w_s: data + r2w_extra,
            t_r2w_r: data + r2w_extra + cross_sid_penalty,
            t_w2r_s: data + w2r_extra,
            t_w2r_r: data + w2r_extra + cross_sid_penalty,
            t_w2w_s: data,
            t_w2w_r: data + cross_sid_penalty,
            t_rd_row,
            t_wr_row,
        }
    }

    /// Bytes moved across the channel per column-command slot (`tCCDS`):
    /// the access granularity times the number of active PCs (Fig. 8(b))
    /// or times the widened BG-BUS factor (Fig. 8(a)).
    fn bytes_per_beat(org: &Organization, vba: &VbaConfig) -> u64 {
        (org.access_granularity as u64
            * vba.pc_merge.pcs_active() as u64
            * vba.pc_merge.bg_bus_multiplier() as u64)
            .max(1)
    }

    /// The number of column-granularity bursts one row command expands into
    /// for the given organization and VBA configuration.
    pub fn columns_per_row_command(org: &Organization, vba: &VbaConfig) -> u32 {
        (vba.effective_row_bytes(org) / Self::bytes_per_beat(org, vba)) as u32
    }

    /// Spacing to apply between two row commands issued to *different* VBAs.
    pub fn different_vba_spacing(
        &self,
        prev_was_write: bool,
        next_is_write: bool,
        same_sid: bool,
    ) -> u32 {
        match (prev_was_write, next_is_write, same_sid) {
            (false, false, true) => self.t_r2r_s,
            (false, false, false) => self.t_r2r_r,
            (false, true, true) => self.t_r2w_s,
            (false, true, false) => self.t_r2w_r,
            (true, false, true) => self.t_w2r_s,
            (true, false, false) => self.t_w2r_r,
            (true, true, true) => self.t_w2w_s,
            (true, true, false) => self.t_w2w_r,
        }
    }

    /// Spacing to apply between two row commands issued to the *same* VBA.
    pub fn same_vba_spacing(&self, prev_was_write: bool) -> u32 {
        if prev_was_write {
            self.t_wr_row
        } else {
            self.t_rd_row
        }
    }
}

impl Default for RomeTimingParams {
    fn default() -> Self {
        RomeTimingParams::paper_table_v()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table_v() {
        let t = RomeTimingParams::paper_table_v();
        assert_eq!(t.t_r2r_s, 64);
        assert_eq!(t.t_r2r_r, 68);
        assert_eq!(t.t_r2w_s, 69);
        assert_eq!(t.t_r2w_r, 73);
        assert_eq!(t.t_w2r_s, 71);
        assert_eq!(t.t_w2r_r, 75);
        assert_eq!(t.t_w2w_s, 64);
        assert_eq!(t.t_w2w_r, 68);
        assert_eq!(t.t_rd_row, 95);
        assert_eq!(t.t_wr_row, 115);
        assert_eq!(RomeTimingParams::parameter_count(), 10);
    }

    #[test]
    fn derivation_reproduces_table_v_for_the_default_config() {
        let derived = RomeTimingParams::derive(
            &TimingParams::hbm4(),
            &Organization::hbm4(),
            &VbaConfig::rome_default(),
        );
        let paper = RomeTimingParams::paper_table_v();
        // The data-limited spacings must match exactly.
        assert_eq!(derived.t_r2r_s, paper.t_r2r_s);
        assert_eq!(derived.t_w2w_s, paper.t_w2w_s);
        assert_eq!(derived.t_r2r_r, paper.t_r2r_r);
        // The turnaround and same-VBA values must land within a couple of ns
        // of the paper's numbers (the paper's exact pipeline accounting is
        // not published beyond Fig. 9).
        for (d, p, name) in [
            (derived.t_r2w_s, paper.t_r2w_s, "t_r2w_s"),
            (derived.t_w2r_s, paper.t_w2r_s, "t_w2r_s"),
            (derived.t_rd_row, paper.t_rd_row, "t_rd_row"),
            (derived.t_wr_row, paper.t_wr_row, "t_wr_row"),
        ] {
            let diff = (d as i64 - p as i64).abs();
            assert!(diff <= 4, "{name}: derived {d} vs paper {p}");
        }
    }

    #[test]
    fn columns_per_row_command_is_64_for_default() {
        let n = RomeTimingParams::columns_per_row_command(
            &Organization::hbm4(),
            &VbaConfig::rome_default(),
        );
        assert_eq!(n, 64);
    }

    #[test]
    fn spacing_lookup_covers_all_cases() {
        let t = RomeTimingParams::paper_table_v();
        assert_eq!(t.different_vba_spacing(false, false, true), 64);
        assert_eq!(t.different_vba_spacing(false, false, false), 68);
        assert_eq!(t.different_vba_spacing(false, true, true), 69);
        assert_eq!(t.different_vba_spacing(false, true, false), 73);
        assert_eq!(t.different_vba_spacing(true, false, true), 71);
        assert_eq!(t.different_vba_spacing(true, false, false), 75);
        assert_eq!(t.different_vba_spacing(true, true, true), 64);
        assert_eq!(t.different_vba_spacing(true, true, false), 68);
        assert_eq!(t.same_vba_spacing(false), 95);
        assert_eq!(t.same_vba_spacing(true), 115);
    }

    #[test]
    fn smaller_effective_rows_shrink_the_data_spacing() {
        use crate::vba::{BankMerge, PcMerge};
        let conv = TimingParams::hbm4();
        let org = Organization::hbm4();
        // Fig. 7(d) + Fig. 8(a): 2 KB effective row; the widened BG-BUS moves
        // 64 B per beat from the single active PC, so 32 slots.
        let cfg = VbaConfig {
            bank_merge: BankMerge::InterleaveAcrossBankGroups,
            pc_merge: PcMerge::WidenSinglePc,
        };
        let derived = RomeTimingParams::derive(&conv, &org, &cfg);
        assert_eq!(
            derived.t_r2r_s, 32,
            "2 KB over a 64 B/tCCDS widened beat is 32 slots"
        );
        // Fig. 7(b) + Fig. 8(b): 2 KB effective row over both PCs = 32 slots.
        let cfg = VbaConfig {
            bank_merge: BankMerge::WidenSingleBank,
            pc_merge: PcMerge::LegacyBothPcs,
        };
        let derived = RomeTimingParams::derive(&conv, &org, &cfg);
        assert_eq!(derived.t_r2r_s, 32);
    }
}
